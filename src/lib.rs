//! # blameit-repro — reproduction suite root
//!
//! Umbrella package for the BlameIt reproduction (Jin et al., *Zooming
//! in on Wide-area Latencies to a Global Cloud Provider*, SIGCOMM
//! 2019). It hosts the runnable [examples](../examples) and the
//! cross-crate integration tests; the functionality lives in the
//! workspace crates:
//!
//! * [`blameit_topology`] — synthetic Internet (ASes, PoP graph, BGP).
//! * [`blameit_simnet`] — deterministic telemetry simulator with
//!   fault-schedule ground truth.
//! * [`blameit`] — the BlameIt system itself (passive Algorithm 1 +
//!   budgeted active phase).
//! * [`blameit_baselines`] — comparator systems (tomography,
//!   continuous traceroutes, Trinocular-style probing, prefix-count
//!   ranking).
//! * [`blameit_bench`] — the experiment harness regenerating every
//!   table and figure of the paper.

pub use blameit;
pub use blameit_baselines;
pub use blameit_bench;
pub use blameit_simnet;
pub use blameit_topology;
