#!/usr/bin/env bash
# Local mirror of .github/workflows/ci.yml — run before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo run --release -p blameit-lint -- --self-check"
cargo run --release -p blameit-lint -- --self-check

echo "==> cargo run --release -p blameit-lint"
cargo run --release -p blameit-lint

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> BLAMEIT_THREADS=8 cargo test --workspace -q"
BLAMEIT_THREADS=8 cargo test --workspace -q

echo "==> cargo test --release -q --test parallel_determinism --test golden_output"
cargo test --release -q --test parallel_determinism --test golden_output

echo "==> BLAMEIT_THREADS=8 cargo test --release -q --test chaos_determinism"
BLAMEIT_THREADS=8 cargo test --release -q --test chaos_determinism

echo "==> BLAMEIT_THREADS=8 cargo test --release -q --test crash_recovery"
BLAMEIT_THREADS=8 cargo test --release -q --test crash_recovery

echo "==> blameit scenario check --all (1 and 4 threads)"
cargo run --release -q -p blameit-cli -- scenario check --all 1 --threads 1
cargo run --release -q -p blameit-cli -- scenario check --all 1 --threads 4

echo "==> blameit explain (golden scenario)"
cargo run --release -q -p blameit-cli -- \
  explain incident:0 --scale tiny --seed 2019 --target middle:104 \
  --ms 100 --at-hour 30 --hours 2 --limit 2 \
  | diff - tests/golden/explain_incident.txt

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "OK"
