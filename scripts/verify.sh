#!/usr/bin/env bash
# Local mirror of .github/workflows/ci.yml — run before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo run --release -p blameit-lint -- --self-check"
cargo run --release -p blameit-lint -- --self-check

echo "==> cargo run --release -p blameit-lint -- --effect-map target/effect-map.json"
cargo run --release -p blameit-lint -- --effect-map target/effect-map.json

echo "==> cargo run --release -p blameit-lint -- --only stale-suppression"
cargo run --release -p blameit-lint -- --only stale-suppression

echo "==> blameit-lint exit-code contract (0 clean / 1 findings / 2 usage)"
LINT=target/release/blameit-lint
BAD_TREE=crates/lint/tests/fixtures/transitive-effect/bad
rc=0; "$LINT" --root "$BAD_TREE" --no-cache >/dev/null 2>&1 || rc=$?
[ "$rc" -eq 1 ] || { echo "expected exit 1 on the bad fixture tree, got $rc"; exit 1; }
rc=0; "$LINT" --root "$BAD_TREE" --no-cache --only as-cast-truncation >/dev/null 2>&1 || rc=$?
[ "$rc" -eq 0 ] || { echo "expected exit 0 with --only filtering the finding out, got $rc"; exit 1; }
rc=0; "$LINT" --definitely-not-a-flag >/dev/null 2>&1 || rc=$?
[ "$rc" -eq 2 ] || { echo "expected exit 2 on an unknown flag, got $rc"; exit 1; }

echo "==> cargo run --release -q -p blameit-bench --bin lint (BENCH_lint.json)"
cargo run --release -q -p blameit-bench --bin lint

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> BLAMEIT_THREADS=8 cargo test --workspace -q"
BLAMEIT_THREADS=8 cargo test --workspace -q

echo "==> cargo test --release -q --test parallel_determinism --test golden_output"
cargo test --release -q --test parallel_determinism --test golden_output

echo "==> BLAMEIT_THREADS=8 cargo test --release -q --test chaos_determinism"
BLAMEIT_THREADS=8 cargo test --release -q --test chaos_determinism

echo "==> BLAMEIT_THREADS=8 cargo test --release -q --test crash_recovery"
BLAMEIT_THREADS=8 cargo test --release -q --test crash_recovery

echo "==> BLAMEIT_THREADS=8 cargo test --release -q --test daemon_overload --test daemon_crash --test daemon_smoke"
BLAMEIT_THREADS=8 cargo test --release -q --test daemon_overload --test daemon_crash --test daemon_smoke

echo "==> blameitd smoke: 10x surge feed, live scrapes, clean TERM, resume"
DSTATE=$(mktemp -d)
WORLD_ARGS=(--scale tiny --seed 2019 --days 2)
target/release/blameitd --state-dir "$DSTATE" "${WORLD_ARGS[@]}" \
  --ingest-addr 127.0.0.1:0 --http-addr 127.0.0.1:0 \
  --queue-cap 160000 --shed-watermark 90000 --per-loc-shed-cap 30000 \
  >"$DSTATE/daemon.out" 2>"$DSTATE/daemon.err" &
DPID=$!
for _ in $(seq 1 100); do
  grep -q '^http=' "$DSTATE/daemon.out" 2>/dev/null && break
  sleep 0.1
done
INGEST=$(sed -n 's/^ingest=//p' "$DSTATE/daemon.out")
HTTP=$(sed -n 's/^http=//p' "$DSTATE/daemon.out")
target/release/blameit feed --addr "$INGEST" "${WORLD_ARGS[@]}" \
  --surge-mult 10 --surge-start-hour 26 --surge-hours 1 \
  --max-attempts 3 --max-backoff-ms 50 --no-term 1
target/release/blameit scrape --addr "$HTTP" --path /healthz | grep -q ok
target/release/blameit scrape --addr "$HTTP" --path /metrics \
  | grep -q blameit_ingest_queue_depth_records
target/release/blameit scrape --addr "$HTTP" --path /alerts >/dev/null
target/release/blameit feed --addr "$INGEST" "${WORLD_ARGS[@]}" --term-only 1
wait "$DPID"
grep -q 'clean_shutdown=true' "$DSTATE/daemon.out"
grep -Eq 'shed_low_impact=[1-9]' "$DSTATE/daemon.out"
# A restart with --resume recovers the surged run's state and TERMs clean.
target/release/blameitd --state-dir "$DSTATE" "${WORLD_ARGS[@]}" --resume 1 \
  --ingest-addr 127.0.0.1:0 --http-addr 127.0.0.1:0 \
  >"$DSTATE/resume.out" 2>"$DSTATE/resume.err" &
DPID=$!
for _ in $(seq 1 100); do
  grep -q '^http=' "$DSTATE/resume.out" 2>/dev/null && break
  sleep 0.1
done
INGEST=$(sed -n 's/^ingest=//p' "$DSTATE/resume.out")
target/release/blameit feed --addr "$INGEST" "${WORLD_ARGS[@]}" --term-only 1
wait "$DPID"
grep -q 'clean_shutdown=true' "$DSTATE/resume.out"
grep -q 'recovered from snapshot' "$DSTATE/resume.err"
rm -rf "$DSTATE"

echo "==> blameit scenario check --all (1 and 4 threads)"
cargo run --release -q -p blameit-cli -- scenario check --all 1 --threads 1
cargo run --release -q -p blameit-cli -- scenario check --all 1 --threads 4

echo "==> blameit explain (golden scenario)"
cargo run --release -q -p blameit-cli -- \
  explain incident:0 --scale tiny --seed 2019 --target middle:104 \
  --ms 100 --at-hour 30 --hours 2 --limit 2 \
  | diff - tests/golden/explain_incident.txt

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "OK"
