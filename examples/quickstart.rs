//! Quickstart: simulate a small cloud + Internet, run BlameIt for an
//! hour of telemetry, and print what it blames.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use blameit::{BadnessThresholds, BlameItConfig, BlameItEngine, WorldBackend};
use blameit_simnet::{SimTime, TimeRange, World, WorldConfig};

fn main() {
    // 1. A deterministic world: synthetic Internet + telemetry, with
    //    organically scheduled faults (the ground truth).
    let world = World::new(WorldConfig::tiny(2, 2019));
    println!(
        "world: {} cloud locations, {} client /24s, {} middle paths, {} scheduled faults",
        world.topology().cloud_locations.len(),
        world.topology().clients.len(),
        world.topology().paths.len(),
        world.faults().len(),
    );

    // 2. Region/device badness targets, derived the way the paper's
    //    targets are set (§2.1).
    let thresholds = BadnessThresholds::default_for(&world);

    // 3. The engine learns expected RTTs from a day of history, then
    //    analyzes the next hour in 15-minute ticks.
    let mut engine = BlameItEngine::new(BlameItConfig::new(thresholds));
    let mut backend = WorldBackend::new(&world);
    engine.warmup(&backend, TimeRange::days(1), 1);

    let start = SimTime::from_days(1);
    for out in engine.run(&mut backend, TimeRange::new(start, start + 3_600)) {
        for alert in &out.alerts {
            println!(
                "[{}] {:>7} blame  loc={} path={:?} client_as={:?} culprit={:?} ({} connections, {} /24s, confidence {:.0}%)",
                alert.bucket,
                alert.blame.to_string(),
                alert.loc,
                alert.path,
                alert.client_as,
                alert.culprit,
                alert.impacted_connections,
                alert.impacted_p24s,
                100.0 * alert.confidence,
            );
        }
    }
    println!(
        "probes issued: {} background + {} on-demand",
        engine.background_probes_total, engine.on_demand_probes_total
    );
}
