//! Incident investigation: re-create the paper's §6.3 case 3 — the
//! Australia cloud overload — and watch BlameIt pin it on the cloud
//! segment even though whole BGP paths looked bad.
//!
//! ```text
//! cargo run --release --example incident_investigation
//! ```

use blameit::{BadnessThresholds, Blame, BlameItConfig, BlameItEngine, WorldBackend};
use blameit_bench::{quiet_world, Scale};
use blameit_simnet::{Fault, FaultId, FaultTarget, SimTime, TimeRange};
use blameit_topology::Region;

fn main() {
    // A quiet world (no organic faults) + one injected incident: the
    // median RTT at an Australian edge jumps from ~25 ms to ~82 ms
    // because the servers are overloaded.
    let mut world = quiet_world(Scale::Tiny, 3, 7);
    let loc = world
        .topology()
        .locations_in(Region::Australia)
        .next()
        .expect("an Australian edge exists")
        .id;
    world.add_faults(vec![Fault {
        id: FaultId(0),
        target: FaultTarget::CloudLocation(loc),
        start: SimTime::from_days(2),
        duration_secs: 3 * 3_600,
        added_ms: 57.0,
    }]);
    println!("injected: +57 ms server overload at {loc} for 3 h starting day 2\n");

    let thresholds = BadnessThresholds::default_for(&world);
    let mut engine = BlameItEngine::new(BlameItConfig::new(thresholds));
    let mut backend = WorldBackend::new(&world);
    engine.warmup(&backend, TimeRange::days(2), 2);

    // Analyze the first hour of the incident.
    let start = SimTime::from_days(2);
    let mut votes = [0u64; 5];
    for out in engine.run(&mut backend, TimeRange::new(start, start + 3_600)) {
        for b in out.blames.iter().filter(|b| b.obs.loc == loc) {
            votes[Blame::ALL.iter().position(|x| *x == b.blame).unwrap()] += 1;
        }
    }
    println!("verdicts for quartets at {loc} during the incident:");
    for (i, blame) in Blame::ALL.iter().enumerate() {
        println!("  {:>12}: {}", blame.to_string(), votes[i]);
    }

    // The paper's validation: the same BGP paths also serve the other
    // nearby location, whose clients are fine — Insight-2 in action.
    let other = world
        .topology()
        .locations_in(Region::Australia)
        .map(|l| l.id)
        .find(|l| *l != loc);
    if let Some(other) = other {
        let gt_bad = world
            .topology()
            .clients
            .iter()
            .filter(|c| c.primary_loc == other)
            .map(|c| world.ground_truth(other, c, start + 1_800))
            .filter(|gt| gt.total_inflation_ms() >= 5.0)
            .count();
        println!(
            "\ncross-check at the other Australian edge {other}: {gt_bad} inflated clients (expected 0 —\nthe shared middle paths are healthy, so blame correctly starts at the cloud)"
        );
    }

    let cloud_frac = votes[0] as f64 / votes.iter().sum::<u64>().max(1) as f64;
    println!(
        "\nconclusion: {} of in-incident verdicts blame the cloud — {}",
        blameit_bench::fmt::pct(cloud_frac),
        if cloud_frac > 0.8 {
            "matches the manual investigation"
        } else {
            "unexpected; inspect"
        }
    );
}
