//! Live pipeline: stream one simulated day through the BlameIt engine
//! tick by tick, printing a one-line operations dashboard per tick —
//! what §6.1's production deployment feeds to network operators — plus
//! the per-tick stage profile and a final metrics snapshot.
//!
//! ```text
//! cargo run --release --example live_pipeline
//! ```

use blameit::{tally, BadnessThresholds, Blame, BlameItConfig, BlameItEngine, WorldBackend};
use blameit_simnet::{SimTime, TimeRange, World, WorldConfig};

fn main() {
    let world = World::new(WorldConfig::tiny(2, 99));
    let thresholds = BadnessThresholds::default_for(&world);
    let mut engine = BlameItEngine::new(BlameItConfig::new(thresholds));
    let mut backend = WorldBackend::new(&world);

    eprintln!("learning expected RTTs from day 0 …");
    engine.warmup(&backend, TimeRange::days(1), 1);

    println!(
        "{:<16} {:>5} {:>6} {:>6} {:>6} {:>9} {:>7}  top alert",
        "tick", "bad", "cloud", "middle", "client", "probes", "localized"
    );
    let day = TimeRange::new(SimTime::from_days(1), SimTime::from_days(2));
    let mut total_blames = 0usize;
    for out in engine.run(&mut backend, day) {
        total_blames += out.blames.len();
        // Quiet ticks stay quiet on the dashboard.
        if out.blames.is_empty() {
            continue;
        }
        let t = tally(&out.blames);
        let first_bucket = out.blames[0].obs.bucket;
        let top = out.alerts.first().map(|a| {
            format!(
                "{} at {} ({} conns)",
                a.blame, a.loc, a.impacted_connections
            )
        });
        println!(
            "{:<16} {:>5} {:>6} {:>6} {:>6} {:>9} {:>7}  {}",
            first_bucket.start().to_string(),
            t.total(),
            t.count(Blame::Cloud),
            t.count(Blame::Middle),
            t.count(Blame::Client),
            out.background_probes + out.on_demand_probes,
            out.localizations.len(),
            top.unwrap_or_default(),
        );
        println!("    stages: {}", out.stage_timings.render());
    }
    println!(
        "\nday summary: {} blame verdicts; {} background + {} on-demand probes total",
        total_blames, engine.background_probes_total, engine.on_demand_probes_total
    );
    println!("\nmetrics snapshot:\n");
    print!("{}", engine.metrics().registry().render_prometheus());
}
