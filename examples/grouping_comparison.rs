//! Grouping comparison: why BlameIt groups middle segments by BGP path
//! (§4.2, Fig. 6 and Fig. 11 in one walkthrough).
//!
//! For a single injected path-scoped middle fault, the four grouping
//! granularities are compared on two axes:
//! * how many RTT samples each aggregate pools (more samples → more
//!   confident τ checks), and
//! * whether Algorithm 1 lands on "middle" under each grouping.
//!
//! ```text
//! cargo run --release --example grouping_comparison
//! ```

use blameit::{
    assign_blames, enrich_bucket, BadnessThresholds, Blame, BlameConfig, ExpectedRttLearner,
    MiddleGrouping, RttKey, WorldBackend,
};
use blameit_bench::{quiet_world, Scale};
use blameit_simnet::{Fault, FaultId, FaultTarget, SimTime, TimeRange};

fn main() {
    let mut world = quiet_world(Scale::Tiny, 2, 11);
    // Fault the busiest middle path (most client /24s behind it).
    let mut path_pop: std::collections::HashMap<_, usize> = std::collections::HashMap::new();
    for c in &world.topology().clients {
        let r = world.route_at(c.primary_loc, c, SimTime::from_days(1));
        if !world.topology().paths.get(r.path_id).middle.is_empty() {
            *path_pop.entry(r.path_id).or_default() += 1;
        }
    }
    let path = *path_pop
        .iter()
        .max_by_key(|(_, n)| **n)
        .expect("a middle path exists")
        .0;
    let asn = world.topology().paths.get(path).middle[0];
    world.add_faults(vec![Fault {
        id: FaultId(0),
        target: FaultTarget::MiddleAs {
            asn,
            via_path: Some(path),
        },
        start: SimTime::from_days(1),
        duration_secs: 24 * 3600,
        added_ms: 120.0,
    }]);
    println!("injected: +120 ms on {asn}, scoped to {path}\n");

    let thresholds = BadnessThresholds::default_for(&world);
    let backend = WorldBackend::new(&world);
    // Pick a mid-fault bucket where the path actually carries bad
    // quartets (activity is diurnal).
    let bucket = (1..286)
        .step_by(12)
        .map(|k| SimTime::from_days(1).bucket().plus(k))
        .max_by_key(|b| {
            enrich_bucket(&backend, *b, &thresholds)
                .iter()
                .filter(|q| q.info.path == path && q.bad)
                .count()
        })
        .unwrap();

    println!(
        "{:<14} {:>18} {:>14} {:>12}",
        "grouping", "faulted aggregate", "middle blames", "other/none"
    );
    for grouping in [
        MiddleGrouping::BgpPrefix,
        MiddleGrouping::BgpAtom,
        MiddleGrouping::BgpPath,
        MiddleGrouping::AsMetro,
    ] {
        let cfg = BlameConfig {
            grouping,
            ..BlameConfig::default()
        };
        // Learn day-0 expectations under this grouping.
        let mut learner = ExpectedRttLearner::new(1);
        for b in TimeRange::days(1).buckets().step_by(4) {
            for q in enrich_bucket(&backend, b, &thresholds) {
                learner.observe(
                    RttKey::Cloud(q.obs.loc, q.obs.mobile),
                    b.day(),
                    q.obs.mean_rtt_ms,
                );
                learner.observe(
                    RttKey::Middle(cfg.grouping.key(&q.info), q.obs.mobile),
                    b.day(),
                    q.obs.mean_rtt_ms,
                );
            }
        }
        let quartets = enrich_bucket(&backend, bucket, &thresholds);
        // Size of the aggregate containing the faulted path's quartets.
        let agg_size = quartets
            .iter()
            .filter(|q| q.info.path == path)
            .map(|q| cfg.grouping.key(&q.info))
            .next()
            .map(|key| {
                quartets
                    .iter()
                    .filter(|q| cfg.grouping.key(&q.info) == key)
                    .count()
            })
            .unwrap_or(0);
        let (blames, _) = assign_blames(&quartets, &learner, &cfg);
        let on_path: Vec<_> = blames.iter().filter(|b| b.path == path).collect();
        let middle = on_path.iter().filter(|b| b.blame == Blame::Middle).count();
        let other = on_path.len() - middle;
        println!(
            "{:<14} {:>18} {:>14} {:>12}",
            grouping.label(),
            agg_size,
            middle,
            other
        );
    }
    println!(
        "\nBGP-path grouping pools the most quartets per aggregate (Fig. 6), which is\n\
         what lets the τ = 0.8 check fire reliably; ⟨AS, Metro⟩ mixes unrelated paths\n\
         and dilutes the signal (Fig. 11)."
    );
}
