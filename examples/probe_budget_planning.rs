//! Probe budget planning: the client-time-product arithmetic of §5.3
//! and Fig. 5, on hand-built issues.
//!
//! Two middle-segment issues compete for one traceroute:
//! * issue A afflicts 3 prefixes × 10 users and historically ends fast;
//! * issue B afflicts 1 prefix × 100 users and historically drags on.
//!
//! Prefix-count ranking (prior work) picks A; impact ranking picks B.
//!
//! ```text
//! cargo run --release --example probe_budget_planning
//! ```

use blameit::{
    prioritize, select_within_budget, ClientCountHistory, DurationHistory, MiddleIssue, MiddleKey,
};
use blameit_simnet::TimeBucket;
use blameit_topology::{CloudLocId, PathId, Prefix24};

fn main() {
    // Historical incident durations per path (in 5-minute buckets):
    // path A's issues last ~20 min, path B's ~30 min and longer.
    let mut durations = DurationHistory::new();
    for _ in 0..20 {
        durations.record(PathId(1), 4);
        durations.record(PathId(2), 6);
    }

    // Same-slot client volume over the past 3 days.
    let mut clients = ClientCountHistory::new();
    let slot = 100u32;
    for day in 0..3u32 {
        let b = TimeBucket(day * blameit_simnet::BUCKETS_PER_DAY + slot);
        clients.record(PathId(1), b, 30); // 3 prefixes × 10 users
        clients.record(PathId(2), b, 100); // 1 prefix × 100 users
    }
    let now = TimeBucket(3 * blameit_simnet::BUCKETS_PER_DAY + slot);

    let issue_a = MiddleIssue {
        loc: CloudLocId(0),
        path: PathId(1),
        middle_key: MiddleKey::Path(PathId(1)),
        bucket: now,
        elapsed_buckets: 2,
        current_clients: 30,
        affected_p24s: vec![
            Prefix24::from_block(101),
            Prefix24::from_block(102),
            Prefix24::from_block(103),
        ],
    };
    let issue_b = MiddleIssue {
        loc: CloudLocId(0),
        path: PathId(2),
        middle_key: MiddleKey::Path(PathId(2)),
        bucket: now,
        elapsed_buckets: 2,
        current_clients: 100,
        affected_p24s: vec![Prefix24::from_block(200)],
    };

    println!(
        "issue A: {} affected prefixes, ~30 clients, short history",
        issue_a.affected_p24s.len()
    );
    println!(
        "issue B: {} affected prefix,  ~100 clients, long history\n",
        issue_b.affected_p24s.len()
    );

    let ranked = prioritize(vec![issue_a, issue_b], &durations, &clients);
    println!("client-time-product ranking:");
    for (i, p) in ranked.iter().enumerate() {
        println!(
            "  #{} path {}  E[remaining] = {:.1} buckets × predicted clients {:.0} = product {:.0}",
            i + 1,
            p.issue.path,
            p.expected_remaining_buckets,
            p.predicted_clients,
            p.client_time_product,
        );
    }

    let picked = select_within_budget(&ranked, 1);
    println!(
        "\nwith budget for ONE probe, BlameIt traceroutes path {} — the Fig. 5 answer\n(prefix-count ranking would have picked path {} with its {} prefixes)",
        picked[0].issue.path,
        ranked.iter().map(|p| &p.issue).max_by_key(|i| i.affected_p24s.len()).unwrap().path,
        3,
    );
}
