//! Cross-crate property-based tests (proptest): invariants that must
//! hold for arbitrary inputs, spanning the public APIs of the
//! workspace crates.

use blameit::{aggregate_records, diff_contributions, ks_two_sample};
use blameit_simnet::{RttRecord, SimTime};
use blameit_topology::{Asn, CloudLocId, IpPrefix, Prefix24};
use proptest::prelude::*;

fn arb_record() -> impl Strategy<Value = RttRecord> {
    (0u16..8, 0u32..64, any::<bool>(), 0u64..3600, 1.0f64..500.0).prop_map(
        |(loc, block, mobile, secs, rtt)| RttRecord {
            loc: CloudLocId(loc),
            p24: Prefix24::from_block(block),
            mobile,
            at: SimTime(secs),
            rtt_ms: rtt,
        },
    )
}

proptest! {
    /// Aggregation conserves samples and respects RTT bounds.
    #[test]
    fn aggregation_conserves_mass(records in proptest::collection::vec(arb_record(), 0..300)) {
        let quartets = aggregate_records(&records);
        let total: u64 = quartets.iter().map(|q| q.n as u64).sum();
        prop_assert_eq!(total, records.len() as u64);
        let lo = records.iter().map(|r| r.rtt_ms).fold(f64::INFINITY, f64::min);
        let hi = records.iter().map(|r| r.rtt_ms).fold(f64::NEG_INFINITY, f64::max);
        for q in &quartets {
            prop_assert!(q.n >= 1);
            prop_assert!(q.mean_rtt_ms >= lo - 1e-9 && q.mean_rtt_ms <= hi + 1e-9);
        }
        // Keys are unique.
        let mut keys: Vec<_> = quartets.iter().map(|q| (q.loc, q.p24, q.mobile, q.bucket)).collect();
        keys.sort();
        keys.dedup();
        prop_assert_eq!(keys.len(), quartets.len());
    }

    /// The traceroute diff is antisymmetric in its inputs and never
    /// names a culprit below the floor.
    #[test]
    fn diff_antisymmetry(
        contributions in proptest::collection::vec((100u32..140, 0.0f64..100.0), 1..12)
    ) {
        let a: Vec<(Asn, f64)> = contributions.iter().map(|(x, ms)| (Asn(*x), *ms)).collect();
        let d = diff_contributions(&a, &a);
        prop_assert!(d.culprit.is_none(), "identical traceroutes have no culprit");
        for row in &d.rows {
            prop_assert!(row.delta_ms().abs() < 1e-9);
        }
    }

    /// Raising one AS's contribution by more than the floor names it.
    #[test]
    fn diff_names_the_raised_as(
        contributions in proptest::collection::vec((100u32..200, 0.0f64..50.0), 1..10),
        idx in 0usize..10,
        bump in 10.0f64..200.0
    ) {
        // Dedup ASNs to keep one contribution each.
        let mut base: Vec<(Asn, f64)> = Vec::new();
        for (x, ms) in &contributions {
            if !base.iter().any(|(a, _)| *a == Asn(*x)) {
                base.push((Asn(*x), *ms));
            }
        }
        let idx = idx % base.len();
        let mut cur = base.clone();
        cur[idx].1 += bump;
        let d = diff_contributions(&base, &cur);
        prop_assert_eq!(d.culprit, Some(base[idx].0));
    }

    /// KS of a sample against itself never rejects; the statistic is in
    /// [0, 1]; and the test is symmetric.
    #[test]
    fn ks_properties(xs in proptest::collection::vec(0.0f64..1000.0, 1..200),
                     ys in proptest::collection::vec(0.0f64..1000.0, 1..200)) {
        let same = ks_two_sample(&xs, &xs).unwrap();
        prop_assert!(same.statistic < 1e-9);
        let r1 = ks_two_sample(&xs, &ys).unwrap();
        let r2 = ks_two_sample(&ys, &xs).unwrap();
        prop_assert!((r1.statistic - r2.statistic).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&r1.statistic));
        prop_assert!((0.0..=1.0).contains(&r1.p_value));
    }

    /// Prefix containment is consistent between the /24 and
    /// variable-length views.
    #[test]
    fn prefix_containment_consistent(base in 0u32..=u32::MAX, len in 8u8..=24, host in any::<u8>()) {
        let p = IpPrefix::new(base, len);
        for p24 in p.iter_24s().take(4) {
            prop_assert!(p.covers_24(p24));
            prop_assert!(p.contains(p24.addr(host)));
            prop_assert!(p.covers(p24.as_prefix()));
        }
        prop_assert_eq!(p.num_24s(), 1u32 << (24 - len));
    }
}
