//! Cross-crate property-based tests: invariants that must hold for
//! arbitrary inputs, spanning the public APIs of the workspace crates.
//! Driven by the in-repo seeded harness in `blameit_topology::testkit`.

use blameit::{aggregate_records, diff_contributions, ks_two_sample};
use blameit_simnet::{RttRecord, SimTime};
use blameit_topology::rng::DetRng;
use blameit_topology::testkit::check;
use blameit_topology::{Asn, CloudLocId, IpPrefix, Prefix24};

fn arb_record(rng: &mut DetRng) -> RttRecord {
    RttRecord {
        loc: CloudLocId(rng.below(8) as u16),
        p24: Prefix24::from_block(rng.below(64) as u32),
        mobile: rng.chance(0.5),
        at: SimTime(rng.below(3600)),
        rtt_ms: rng.range_f64(1.0, 500.0),
    }
}

/// Aggregation conserves samples and respects RTT bounds.
#[test]
fn aggregation_conserves_mass() {
    check("aggregation_conserves_mass", 64, |rng| {
        let n = rng.below(300) as usize;
        let records: Vec<RttRecord> = (0..n).map(|_| arb_record(rng)).collect();
        let quartets = aggregate_records(&records);
        let total: u64 = quartets.iter().map(|q| q.n as u64).sum();
        assert_eq!(total, records.len() as u64);
        let lo = records
            .iter()
            .map(|r| r.rtt_ms)
            .fold(f64::INFINITY, f64::min);
        let hi = records
            .iter()
            .map(|r| r.rtt_ms)
            .fold(f64::NEG_INFINITY, f64::max);
        for q in &quartets {
            assert!(q.n >= 1);
            assert!(q.mean_rtt_ms >= lo - 1e-9 && q.mean_rtt_ms <= hi + 1e-9);
        }
        // Keys are unique.
        let mut keys: Vec<_> = quartets
            .iter()
            .map(|q| (q.loc, q.p24, q.mobile, q.bucket))
            .collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), quartets.len());
    });
}

/// The traceroute diff is antisymmetric in its inputs and never names a
/// culprit below the floor.
#[test]
fn diff_antisymmetry() {
    check("diff_antisymmetry", 128, |rng| {
        let n = rng.range_u64(1, 11) as usize;
        let a: Vec<(Asn, f64)> = (0..n)
            .map(|_| {
                (
                    Asn(rng.range_u64(100, 139) as u32),
                    rng.range_f64(0.0, 100.0),
                )
            })
            .collect();
        let d = diff_contributions(&a, &a);
        assert!(d.culprit.is_none(), "identical traceroutes have no culprit");
        for row in &d.rows {
            assert!(row.delta_ms().abs() < 1e-9);
        }
    });
}

/// Raising one AS's contribution by more than the floor names it.
#[test]
fn diff_names_the_raised_as() {
    check("diff_names_the_raised_as", 128, |rng| {
        let n = rng.range_u64(1, 9) as usize;
        let contributions: Vec<(u32, f64)> = (0..n)
            .map(|_| (rng.range_u64(100, 199) as u32, rng.range_f64(0.0, 50.0)))
            .collect();
        let bump = rng.range_f64(10.0, 200.0);
        // Dedup ASNs to keep one contribution each.
        let mut base: Vec<(Asn, f64)> = Vec::new();
        for (x, ms) in &contributions {
            if !base.iter().any(|(a, _)| *a == Asn(*x)) {
                base.push((Asn(*x), *ms));
            }
        }
        let idx = rng.index(base.len());
        let mut cur = base.clone();
        cur[idx].1 += bump;
        let d = diff_contributions(&base, &cur);
        assert_eq!(d.culprit, Some(base[idx].0));
    });
}

/// KS of a sample against itself never rejects; the statistic is in
/// [0, 1]; and the test is symmetric.
#[test]
fn ks_properties() {
    check("ks_properties", 64, |rng| {
        let nx = rng.range_u64(1, 199) as usize;
        let ny = rng.range_u64(1, 199) as usize;
        let xs: Vec<f64> = (0..nx).map(|_| rng.range_f64(0.0, 1000.0)).collect();
        let ys: Vec<f64> = (0..ny).map(|_| rng.range_f64(0.0, 1000.0)).collect();
        let same = ks_two_sample(&xs, &xs).unwrap();
        assert!(same.statistic < 1e-9);
        let r1 = ks_two_sample(&xs, &ys).unwrap();
        let r2 = ks_two_sample(&ys, &xs).unwrap();
        assert!((r1.statistic - r2.statistic).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&r1.statistic));
        assert!((0.0..=1.0).contains(&r1.p_value));
    });
}

/// Prefix containment is consistent between the /24 and variable-length
/// views.
#[test]
fn prefix_containment_consistent() {
    check("prefix_containment_consistent", 256, |rng| {
        let base = rng.next_u64() as u32;
        let len = rng.range_u64(8, 24) as u8;
        let host = rng.next_u64() as u8;
        let p = IpPrefix::new(base, len);
        for p24 in p.iter_24s().take(4) {
            assert!(p.covers_24(p24));
            assert!(p.contains(p24.addr(host)));
            assert!(p.covers(p24.as_prefix()));
        }
        assert_eq!(p.num_24s(), 1u32 << (24 - len));
    });
}
