//! Cross-crate property-based tests: invariants that must hold for
//! arbitrary inputs, spanning the public APIs of the workspace crates.
//! Driven by the in-repo seeded harness in `blameit_topology::testkit`.

use blameit::{
    aggregate_records, diff_contributions, ks_two_sample, prioritize, select_within_budget,
    ClientCountHistory, DurationHistory, MiddleIssue, MiddleKey,
};
use blameit_simnet::{RttRecord, SimTime, TimeBucket};
use blameit_topology::rng::DetRng;
use blameit_topology::testkit::check;
use blameit_topology::{Asn, CloudLocId, IpPrefix, PathId, Prefix24};

fn arb_record(rng: &mut DetRng) -> RttRecord {
    RttRecord {
        loc: CloudLocId(rng.below(8) as u16),
        p24: Prefix24::from_block(rng.below(64) as u32),
        mobile: rng.chance(0.5),
        at: SimTime(rng.below(3600)),
        rtt_ms: rng.range_f64(1.0, 500.0),
    }
}

/// Aggregation conserves samples and respects RTT bounds.
#[test]
fn aggregation_conserves_mass() {
    check("aggregation_conserves_mass", 64, |rng| {
        let n = rng.below(300) as usize;
        let records: Vec<RttRecord> = (0..n).map(|_| arb_record(rng)).collect();
        let quartets = aggregate_records(&records);
        let total: u64 = quartets.iter().map(|q| q.n as u64).sum();
        assert_eq!(total, records.len() as u64);
        let lo = records
            .iter()
            .map(|r| r.rtt_ms)
            .fold(f64::INFINITY, f64::min);
        let hi = records
            .iter()
            .map(|r| r.rtt_ms)
            .fold(f64::NEG_INFINITY, f64::max);
        for q in &quartets {
            assert!(q.n >= 1);
            assert!(q.mean_rtt_ms >= lo - 1e-9 && q.mean_rtt_ms <= hi + 1e-9);
        }
        // Keys are unique.
        let mut keys: Vec<_> = quartets
            .iter()
            .map(|q| (q.loc, q.p24, q.mobile, q.bucket))
            .collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), quartets.len());
    });
}

/// The traceroute diff is antisymmetric in its inputs and never names a
/// culprit below the floor.
#[test]
fn diff_antisymmetry() {
    check("diff_antisymmetry", 128, |rng| {
        let n = rng.range_u64(1, 11) as usize;
        let a: Vec<(Asn, f64)> = (0..n)
            .map(|_| {
                (
                    Asn(rng.range_u64(100, 139) as u32),
                    rng.range_f64(0.0, 100.0),
                )
            })
            .collect();
        let d = diff_contributions(&a, &a);
        assert!(d.culprit.is_none(), "identical traceroutes have no culprit");
        for row in &d.rows {
            assert!(row.delta_ms().abs() < 1e-9);
        }
    });
}

/// Raising one AS's contribution by more than the floor names it.
#[test]
fn diff_names_the_raised_as() {
    check("diff_names_the_raised_as", 128, |rng| {
        let n = rng.range_u64(1, 9) as usize;
        let contributions: Vec<(u32, f64)> = (0..n)
            .map(|_| (rng.range_u64(100, 199) as u32, rng.range_f64(0.0, 50.0)))
            .collect();
        let bump = rng.range_f64(10.0, 200.0);
        // Dedup ASNs to keep one contribution each.
        let mut base: Vec<(Asn, f64)> = Vec::new();
        for (x, ms) in &contributions {
            if !base.iter().any(|(a, _)| *a == Asn(*x)) {
                base.push((Asn(*x), *ms));
            }
        }
        let idx = rng.index(base.len());
        let mut cur = base.clone();
        cur[idx].1 += bump;
        let d = diff_contributions(&base, &cur);
        assert_eq!(d.culprit, Some(base[idx].0));
    });
}

/// KS of a sample against itself never rejects; the statistic is in
/// [0, 1]; and the test is symmetric.
#[test]
fn ks_properties() {
    check("ks_properties", 64, |rng| {
        let nx = rng.range_u64(1, 199) as usize;
        let ny = rng.range_u64(1, 199) as usize;
        let xs: Vec<f64> = (0..nx).map(|_| rng.range_f64(0.0, 1000.0)).collect();
        let ys: Vec<f64> = (0..ny).map(|_| rng.range_f64(0.0, 1000.0)).collect();
        let same = ks_two_sample(&xs, &xs).unwrap();
        assert!(same.statistic < 1e-9);
        let r1 = ks_two_sample(&xs, &ys).unwrap();
        let r2 = ks_two_sample(&ys, &xs).unwrap();
        assert!((r1.statistic - r2.statistic).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&r1.statistic));
        assert!((0.0..=1.0).contains(&r1.p_value));
    });
}

fn arb_issue(rng: &mut DetRng) -> MiddleIssue {
    let path = PathId(rng.below(24) as u32);
    MiddleIssue {
        loc: CloudLocId(rng.below(6) as u16),
        path,
        middle_key: MiddleKey::Path(path),
        bucket: TimeBucket(rng.below(4000) as u32),
        elapsed_buckets: rng.below(12) as u32,
        current_clients: rng.below(100_000),
        affected_p24s: vec![Prefix24::from_block(path.0)],
    }
}

fn arb_issues(rng: &mut DetRng) -> (Vec<MiddleIssue>, DurationHistory, ClientCountHistory) {
    let n = rng.range_u64(1, 40) as usize;
    let mut issues = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for _ in 0..n {
        let i = arb_issue(rng);
        // One issue per (loc, path), as the pipeline emits.
        if seen.insert((i.loc, i.path)) {
            issues.push(i);
        }
    }
    let mut durations = DurationHistory::new();
    for _ in 0..rng.below(60) {
        durations.record(PathId(rng.below(24) as u32), rng.below(30) as u32 + 1);
    }
    let mut clients = ClientCountHistory::new();
    for _ in 0..rng.below(60) {
        clients.record(
            PathId(rng.below(24) as u32),
            TimeBucket(rng.below(4000) as u32),
            rng.below(1_000_000),
        );
    }
    (issues, durations, clients)
}

/// The per-location budget is never exceeded, and the selection is the
/// per-location prefix of the ranking: scanning `ranked` and keeping
/// the first `per_loc` issues of each location reproduces it exactly.
#[test]
fn budget_selection_is_ranked_prefix() {
    check("budget_selection_is_ranked_prefix", 128, |rng| {
        let (issues, durations, clients) = arb_issues(rng);
        let total = issues.len();
        let ranked = prioritize(issues, &durations, &clients);
        let per_loc = rng.below(5) as usize;
        let picked = select_within_budget(&ranked, per_loc);
        let mut used: std::collections::HashMap<CloudLocId, usize> =
            std::collections::HashMap::new();
        for p in &picked {
            *used.entry(p.issue.loc).or_default() += 1;
        }
        assert!(
            used.values().all(|u| *u <= per_loc),
            "budget {per_loc} exceeded: {used:?}"
        );
        // Order-preserving subsequence of the ranking…
        let mut cursor = 0;
        for p in &picked {
            let pos = ranked[cursor..]
                .iter()
                .position(|r| std::ptr::eq(*p, r))
                .expect("picked issues appear in rank order");
            cursor += pos + 1;
        }
        // …and exactly the greedy per-location prefix.
        let mut greedy_used: std::collections::HashMap<CloudLocId, usize> =
            std::collections::HashMap::new();
        let greedy: Vec<_> = ranked
            .iter()
            .filter(|r| {
                let u = greedy_used.entry(r.issue.loc).or_default();
                *u += 1;
                *u <= per_loc
            })
            .collect();
        assert_eq!(greedy.len(), picked.len());
        for (g, p) in greedy.iter().zip(&picked) {
            assert!(std::ptr::eq(*g, *p));
        }
        // A budget covering everything selects everything, in order.
        let all = select_within_budget(&ranked, total.max(1));
        assert_eq!(all.len(), ranked.len());
    });
}

/// Ranking is a deterministic function of the issue *set*: shuffling
/// the input changes nothing, equal client-time products break ties by
/// (location, path), and products are sorted descending.
#[test]
fn prioritize_is_order_insensitive_with_total_tie_break() {
    check("prioritize_order_insensitive", 128, |rng| {
        let (mut issues, durations, clients) = arb_issues(rng);
        // Force some exact product ties: clone volumes across paths.
        if issues.len() >= 2 {
            let c = issues[0].current_clients;
            let e = issues[0].elapsed_buckets;
            let half = issues.len() / 2;
            for i in issues.iter_mut().take(half) {
                i.current_clients = c;
                i.elapsed_buckets = e;
            }
        }
        let key = |r: &blameit::PrioritizedIssue| (r.issue.loc, r.issue.path);
        let a = prioritize(issues.clone(), &durations, &clients);
        rng.shuffle(&mut issues);
        let b = prioritize(issues, &durations, &clients);
        assert_eq!(
            a.iter().map(key).collect::<Vec<_>>(),
            b.iter().map(key).collect::<Vec<_>>(),
            "shuffled input must rank identically"
        );
        for w in a.windows(2) {
            assert!(
                w[0].client_time_product >= w[1].client_time_product,
                "descending products"
            );
            if w[0].client_time_product == w[1].client_time_product {
                assert!(key(&w[0]) < key(&w[1]), "ties break by (loc, path)");
            }
        }
    });
}

/// Prefix containment is consistent between the /24 and variable-length
/// views.
#[test]
fn prefix_containment_consistent() {
    check("prefix_containment_consistent", 256, |rng| {
        let base = rng.next_u64() as u32;
        let len = rng.range_u64(8, 24) as u8;
        let host = rng.next_u64() as u8;
        let p = IpPrefix::new(base, len);
        for p24 in p.iter_24s().take(4) {
            assert!(p.covers_24(p24));
            assert!(p.contains(p24.addr(host)));
            assert!(p.covers(p24.as_prefix()));
        }
        assert_eq!(p.num_24s(), 1u32 << (24 - len));
    });
}
