//! The daemon's durability contract: a hard kill at any point of the
//! durable-tick protocol — with batches arriving over the ingest path,
//! through the WAL and the bounded queue — recovers to a state from
//! which the resumed feed produces a transcript **byte-identical** to
//! a run that never crashed. Also: a graceful TERM mid-surge leaves a
//! state dir that reopens with zero journal replay and zero WAL
//! refill.

use blameit::{
    render_tick_transcript, Backend, BadnessThresholds, BlameItConfig, PersistError, RecordBatch,
    StartMode, TickOutput, WorldBackend,
};
use blameit_bench::{quiet_world, Scale};
use blameit_daemon::{DaemonConfig, DaemonCore, DaemonError, OfferReply};
use blameit_obs::MetricsRegistry;
use blameit_simnet::{CrashPlan, CrashPoint, SurgePlan, TimeBucket, TimeRange, World};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const N_TICKS: u32 = 6;

fn state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("blameit-dcr-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(world: &World, dir: &Path, threads: usize) -> BlameItConfig {
    let mut cfg = BlameItConfig::new(BadnessThresholds::default_for(world));
    cfg.parallelism = threads;
    cfg.state_dir = Some(dir.to_path_buf());
    cfg.snapshot_every_ticks = 2;
    cfg
}

/// Roomy admission knobs: the unsurged feed must never shed or refuse
/// (a tiny-world bucket is ≈ 8–12k records and up to four buckets sit
/// queued between ticks), while a 10× surge still overflows them.
fn roomy_dcfg() -> DaemonConfig {
    let mut dcfg = DaemonConfig::default();
    dcfg.admission.queue_cap_records = 160_000;
    dcfg.admission.shed_watermark_records = 90_000;
    dcfg.admission.per_loc_shed_cap = 30_000;
    dcfg
}

fn open_core<'a>(
    world: &'a World,
    dir: &Path,
    threads: usize,
) -> (DaemonCore<WorldBackend<'a>>, blameit::RecoveryReport) {
    let cfg = config(world, dir, threads);
    let inner = WorldBackend::with_parallelism(world, threads);
    DaemonCore::open(
        cfg,
        roomy_dcfg(),
        Arc::new(MetricsRegistry::new()),
        inner,
        TimeRange::days(1),
    )
    .unwrap()
}

/// Offers world buckets `from..to` one by one, pumping after each.
/// Returns the delivered outputs, or (on a simulated kill) the outputs
/// plus the first bucket that had been offered but whose windows were
/// interrupted.
fn feed(
    core: &mut DaemonCore<WorldBackend<'_>>,
    world: &World,
    surge: &SurgePlan,
    from: u32,
    to: u32,
) -> Result<Vec<TickOutput>, (Vec<TickOutput>, u32)> {
    let backend = WorldBackend::new(world);
    let mut outs = Vec::new();
    for b in from..to {
        let bucket = TimeBucket(b);
        let records = backend.rtt_records_in(bucket).unwrap();
        let records = surge.amplify(bucket, &records);
        if records.is_empty() {
            continue;
        }
        let batch = RecordBatch::from_records(bucket, &records);
        match core.offer(batch) {
            Ok(OfferReply::Ack { .. }) => {}
            Ok(OfferReply::SlowDown { .. }) => panic!("unsurged feed refused at bucket {b}"),
            Err(e) => panic!("offer failed: {e}"),
        }
        match core.pump() {
            Ok(ticked) => outs.extend(ticked),
            Err(DaemonError::Persist(PersistError::Crashed(_))) => return Err((outs, b + 1)),
            Err(e) => panic!("pump failed: {e}"),
        }
    }
    Ok(outs)
}

/// The uninterrupted reference: feed all buckets, terminate, render.
fn reference_run(world: &World, threads: usize, feed_range: (u32, u32)) -> String {
    let dir = state_dir(&format!("ref-t{threads}"));
    let (mut core, recovery) = open_core(world, &dir, threads);
    assert_eq!(recovery.mode, StartMode::Cold);
    let mut outs = feed(
        &mut core,
        world,
        &SurgePlan::default(),
        feed_range.0,
        feed_range.1,
    )
    .expect("no crash armed");
    outs.extend(core.term().unwrap());
    assert_eq!(outs.len(), N_TICKS as usize);
    let t = render_tick_transcript(&outs);
    drop(core);
    let _ = std::fs::remove_dir_all(&dir);
    t
}

#[test]
fn kill_points_recover_to_byte_identical_transcripts() {
    let world = quiet_world(Scale::Tiny, 2, 0xC4A5);
    let start = TimeRange::days(1).end.bucket().0;
    let end = start + N_TICKS * 3;

    for threads in [1usize, 4] {
        let reference = reference_run(&world, threads, (start, end));
        for point in CrashPoint::ALL {
            // Snapshot-phase kill points only fire on a tick where a
            // snapshot is due (snapshot_every_ticks = 2 → odd 0-based
            // tick indices).
            let kill_tick = match point {
                CrashPoint::MidJournal | CrashPoint::PostJournal => 2,
                CrashPoint::PreSnapshot | CrashPoint::MidSnapshotWrite => 1,
            };
            let dir = state_dir(&format!("kill-{threads}-{point}"));
            let (mut core, recovery) = open_core(&world, &dir, threads);
            assert_eq!(recovery.mode, StartMode::Cold, "{point}");
            core.set_crash_plan(Some(CrashPlan::kill_at(kill_tick, point, 0x5EED)));
            let (delivered, resume_from) =
                feed(&mut core, &world, &SurgePlan::default(), start, end)
                    .expect_err("the crash plan must fire");
            assert_eq!(delivered.len() as u64, kill_tick, "{point}");
            drop(core); // hard kill: no term, no snapshot, WAL as-is

            let (mut core, recovery) = open_core(&world, &dir, threads);
            assert_eq!(recovery.mode, StartMode::Recovered, "{point}");
            assert_eq!(recovery.snapshots_rejected, 0, "{point}");
            // Everything before the crash tick was already delivered.
            let skip = (delivered.len() as u64 - recovery.snapshot_ticks_done) as usize;
            assert!(recovery.replayed.len() >= skip, "{point}");
            let mut full = delivered;
            full.extend(recovery.replayed.into_iter().skip(skip));
            let resumed = feed(&mut core, &world, &SurgePlan::default(), resume_from, end)
                .expect("no second crash");
            full.extend(resumed);
            full.extend(core.term().unwrap());

            assert_eq!(
                render_tick_transcript(&full),
                reference,
                "composed crash/recover/resume transcript differs ({point}, {threads} threads)"
            );
            drop(core);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn term_during_surge_leaves_a_clean_resumable_state() {
    let world = quiet_world(Scale::Tiny, 2, 0xC4A5);
    let start = TimeRange::days(1).end.bucket().0;
    // The whole fed range is surged 10×: TERM lands mid-overload.
    let surge = SurgePlan::single(TimeBucket(start), TimeBucket(start + N_TICKS * 3), 10, 0x7E);

    let dir = state_dir("term-surge");
    let (mut core, recovery) = open_core(&world, &dir, 1);
    assert_eq!(recovery.mode, StartMode::Cold);
    // Feed half the range, then TERM with the surge still in flight.
    let mut outs = Vec::new();
    let backend = WorldBackend::new(&world);
    for b in start..start + N_TICKS * 3 / 2 {
        let bucket = TimeBucket(b);
        let records = surge.amplify(bucket, &backend.rtt_records_in(bucket).unwrap());
        let batch = RecordBatch::from_records(bucket, &records);
        // Under surge the offer may shed or refuse; both are fine —
        // TERM must cope with whatever state that leaves.
        let _ = core.offer(batch).unwrap();
        outs.extend(core.pump().unwrap());
    }
    assert!(core.stats().shed_low_impact > 0, "TERM landed mid-overload");
    outs.extend(core.term().unwrap());
    let ticks_before = core.ticks_done();
    drop(core);

    // The state dir must reopen warm: no journal replay, no WAL refill
    // (TERM compacted it), same tick count, and accept further feed.
    let (core, recovery) = open_core(&world, &dir, 1);
    assert_eq!(recovery.mode, StartMode::Recovered);
    assert!(recovery.replayed.is_empty(), "TERM left zero replay");
    assert_eq!(recovery.snapshots_rejected, 0);
    assert_eq!(core.ticks_done(), ticks_before);
    assert_eq!(
        core.queue_depth(),
        0,
        "TERM drained and compacted the queue"
    );
    drop(core);
    let _ = std::fs::remove_dir_all(&dir);
}
