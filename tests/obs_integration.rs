//! Integration: the observability layer reflects what the engine did.
//!
//! Runs a real engine over a simulated day and cross-checks the
//! metrics registry and per-tick stage profile against the tick
//! outputs themselves.

use blameit::{
    metrics::stage, BadnessThresholds, Blame, BlameItConfig, BlameItEngine, WorldBackend,
};
use blameit_obs::MetricsRegistry;
use blameit_simnet::{SimTime, TimeRange, World, WorldConfig};
use std::sync::Arc;

fn run_day(world: &World) -> (BlameItEngine, Vec<blameit::TickOutput>) {
    let thresholds = BadnessThresholds::default_for(world);
    let registry = Arc::new(MetricsRegistry::new());
    let mut engine = BlameItEngine::with_metrics(BlameItConfig::new(thresholds), registry);
    let mut backend = WorldBackend::new(world);
    engine.warmup(&backend, TimeRange::days(1), 2);
    let outs = engine.run(
        &mut backend,
        TimeRange::new(SimTime::from_days(1), SimTime::from_days(2)),
    );
    (engine, outs)
}

#[test]
fn stage_timings_are_consistent() {
    let world = World::new(WorldConfig::tiny(2, 7));
    let (_, outs) = run_day(&world);
    assert!(!outs.is_empty());
    for out in &outs {
        let t = &out.stage_timings;
        assert!(t.total() > std::time::Duration::ZERO, "tick took time");
        assert!(
            t.stage_sum() <= t.total(),
            "stage laps are disjoint slices of the tick: {} > {}",
            t.stage_sum().as_nanos(),
            t.total().as_nanos()
        );
        // Every recorded stage is a canonical one, in pipeline order.
        let names: Vec<&str> = t.iter().map(|(n, _)| n).collect();
        for n in &names {
            assert!(stage::ALL.contains(n), "unknown stage {n}");
        }
        let positions: Vec<usize> = names
            .iter()
            .map(|n| stage::ALL.iter().position(|s| s == n).unwrap())
            .collect();
        let mut sorted = positions.clone();
        sorted.sort_unstable();
        assert_eq!(positions, sorted, "stages in pipeline order");
        // Each tick exercises at least the passive path.
        assert!(t.get(stage::INGEST).is_some());
        assert!(t.get(stage::PASSIVE).is_some());
    }
}

#[test]
fn blame_counters_match_tick_outputs() {
    let world = World::new(WorldConfig::tiny(2, 7));
    let (engine, outs) = run_day(&world);
    let m = engine.metrics();

    let mut by_segment = [0u64; 5];
    let mut blamed = 0u64;
    let mut alerts = 0u64;
    let mut on_demand = 0u64;
    let mut background = 0u64;
    for out in &outs {
        for b in &out.blames {
            let idx = Blame::ALL.iter().position(|x| *x == b.blame).unwrap();
            by_segment[idx] += 1;
        }
        blamed += out.blames.len() as u64;
        alerts += out.alerts.len() as u64;
        on_demand += out.on_demand_probes;
        background += out.background_probes;
    }

    assert_eq!(m.ticks.get(), outs.len() as u64);
    // `quartets_processed` counts every enriched quartet, of which the
    // blamed (bad) ones are a subset.
    assert!(blamed > 0, "the day produced bad quartets");
    assert!(m.quartets_processed.get() >= blamed);
    for (i, b) in Blame::ALL.into_iter().enumerate() {
        assert_eq!(m.blame_counter(b).get(), by_segment[i], "{b}");
    }
    assert_eq!(m.alerts.get(), alerts);
    assert_eq!(m.on_demand_probes.get(), on_demand);
    assert_eq!(m.background_probes.get(), background);
    assert_eq!(m.tick_duration_us.count(), outs.len() as u64);
    assert_eq!(m.quartet_rtt_ms.count(), m.quartets_processed.get());
    // Baselines were stored, and the staleness gauges describe them.
    assert!(m.baselines_stored.get() > 0.0);
    assert!(m.baseline_staleness_max_secs.get() >= m.baseline_staleness_mean_secs.get());
}

#[test]
fn registry_renders_after_real_run() {
    let world = World::new(WorldConfig::tiny(2, 7));
    let (engine, outs) = run_day(&world);
    let prom = engine.metrics().registry().render_prometheus();
    assert!(
        prom.contains(&format!("blameit_ticks_total {}", outs.len())),
        "{prom}"
    );
    assert!(
        prom.contains("# TYPE blameit_stage_duration_us histogram"),
        "{prom}"
    );
    let json = engine.metrics().registry().render_json();
    assert!(json.starts_with('[') && json.ends_with(']'));
    assert!(
        json.contains("\"blameit_quartets_processed_total\""),
        "{json}"
    );
}
