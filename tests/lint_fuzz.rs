//! Property tests for the lint analysis layer.
//!
//! `blameit-lint` runs over every source file on every CI push, so its
//! lexer, item parser, and rule scanners must hold the same bar the
//! scenario loader does: whatever the input — truncated mid-token,
//! braces unbalanced, strings unterminated, raw bytes spliced in — the
//! analysis returns *something* and never panics. The fuzzer mutates
//! real workspace sources deterministically (same seed → same cases,
//! replayable via `check_one`), so a failure here is a failure anyone
//! can reproduce.

use blameit_topology::rng::DetRng;
use blameit_topology::testkit::check;
use std::path::Path;

/// Real sources as the mutation corpus — the lint crate itself plus
/// the gnarliest decode path it guards.
fn corpus() -> Vec<String> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut out = Vec::new();
    for rel in [
        "crates/lint/src/lexer.rs",
        "crates/lint/src/parse.rs",
        "crates/lint/src/rules.rs",
        "crates/core/src/persist/codec.rs",
        "crates/core/src/persist/snapshot.rs",
        "crates/daemon/src/wire.rs",
    ] {
        out.push(std::fs::read_to_string(root.join(rel)).expect("corpus file readable"));
    }
    out
}

/// Largest char-boundary index `<= at`, so byte-level truncation stays
/// valid UTF-8 (the analyzer takes `&str`; invalid UTF-8 cannot reach
/// it through `read_to_string` either).
fn floor_char_boundary(s: &str, mut at: usize) -> usize {
    at = at.min(s.len());
    while at > 0 && !s.is_char_boundary(at) {
        at -= 1;
    }
    at
}

/// Applies 1–4 random structural mutations to a source file.
fn mutate(base: &str, rng: &mut DetRng) -> String {
    let mut text = base.to_string();
    for _ in 0..1 + rng.below(4) {
        if text.is_empty() {
            break;
        }
        match rng.below(7) {
            // Truncate anywhere — mid-fn, mid-comment, mid-string.
            0 => {
                let at = floor_char_boundary(&text, rng.index(text.len() + 1));
                text.truncate(at);
            }
            // Splice in tokens that break nesting or terminate scopes
            // the parser thinks are open.
            1 => {
                let junk = [
                    "{", "}", "}}}", "{{{", "\"", "/*", "*/", "fn", "impl (", "r#\"",
                ];
                let at = floor_char_boundary(&text, rng.index(text.len() + 1));
                text.insert_str(at, junk[rng.index(junk.len())]);
            }
            // Delete a random line.
            2 => {
                let mut lines: Vec<&str> = text.lines().collect();
                if !lines.is_empty() {
                    lines.remove(rng.index(lines.len()));
                    text = lines.join("\n");
                }
            }
            // Duplicate a random line (repeated items, double braces).
            3 => {
                let lines: Vec<&str> = text.lines().collect();
                if !lines.is_empty() {
                    let i = rng.index(lines.len());
                    let mut rebuilt: Vec<&str> = lines.clone();
                    rebuilt.insert(i, lines[i]);
                    text = rebuilt.join("\n");
                }
            }
            // Swap two lines (signatures away from their bodies).
            4 => {
                let mut lines: Vec<&str> = text.lines().collect();
                if lines.len() >= 2 {
                    let i = rng.index(lines.len());
                    let j = rng.index(lines.len());
                    lines.swap(i, j);
                    text = lines.join("\n");
                }
            }
            // Clobber one char with a brace or quote.
            5 => {
                let at = floor_char_boundary(&text, rng.index(text.len()));
                let mut end = (at + 1).min(text.len());
                while end < text.len() && !text.is_char_boundary(end) {
                    end += 1;
                }
                let repl = ["{", "}", "\"", "'", "#["][rng.index(5)];
                text.replace_range(at..end, repl);
            }
            // Concatenate the file with itself (duplicate items
            // everywhere: resolver ambiguity stress).
            _ => {
                let copy = text.clone();
                text.push('\n');
                text.push_str(&copy);
            }
        }
    }
    text
}

#[test]
fn mutated_sources_never_panic_the_analyzer() {
    let sources = corpus();
    check("lint_fuzz", 400, |rng| {
        let base = &sources[rng.index(sources.len())];
        let text = mutate(base, rng);
        // The decode-file virtual path arms every path-scoped rule the
        // corpus can reach, so the scan itself is exercised too.
        let fa = blameit_lint::analyze_source("crates/core/src/persist/codec.rs", &text);
        // Internal consistency the downstream passes rely on.
        assert_eq!(fa.fn_lines.len(), fa.items.fns.len());
        assert_eq!(fa.fn_sigs.len(), fa.items.fns.len());
        assert_eq!(fa.allow_targets.len(), fa.allows.len());
        for (ai, a) in fa.allows.iter().enumerate() {
            assert!(
                fa.allow_targets[ai] >= a.line,
                "target above its annotation"
            );
        }
    });
}

#[test]
fn mutated_workspaces_never_panic_the_graph() {
    // Whole-pipeline variant: two mutated files as one mini workspace,
    // through the call graph, effect propagation, and the report.
    let sources = corpus();
    check("lint_graph_fuzz", 120, |rng| {
        let a = mutate(&sources[rng.index(sources.len())], rng);
        let b = mutate(&sources[rng.index(sources.len())], rng);
        let dir = std::env::temp_dir().join(format!(
            "blameit-lint-fuzz-{}-{}",
            std::process::id(),
            rng.below(u64::MAX)
        ));
        let src = dir.join("crates/x/src");
        std::fs::create_dir_all(&src).expect("temp tree");
        std::fs::write(src.join("lib.rs"), &a).expect("write a");
        std::fs::write(src.join("other.rs"), &b).expect("write b");
        let report = blameit_lint::run_workspace(&dir).expect("analysis runs");
        assert_eq!(report.files_scanned, 2);
        let _ = std::fs::remove_dir_all(&dir);
    });
}
