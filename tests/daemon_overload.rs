//! Overload determinism through the daemon's decision core: the same
//! surged feed, replayed bucket by bucket at different thread counts,
//! must shed exactly the same quartet groups and produce byte-identical
//! tick transcripts — while the queue never exceeds its hard cap and
//! backpressure is actually exercised. This is the in-process half of
//! the `blameitd` overload contract (the socket half lives in
//! `tests/daemon_smoke.rs`, the scenario-library golden in
//! `scenarios/ingest-surge-overload.scn`).

use blameit::Backend;
use blameit::{
    render_tick_transcript, BadnessThresholds, BlameItConfig, RecordBatch, StartMode, TickOutput,
    WorldBackend,
};
use blameit_bench::{quiet_world, Scale};
use blameit_daemon::{DaemonConfig, DaemonCore, IngestStats, OfferReply, ShedEntry};
use blameit_obs::{FlightTrigger, MetricsRegistry};
use blameit_simnet::{SurgePlan, TimeBucket, TimeRange, World};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("blameit-dov-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(world: &World, dir: &Path, threads: usize) -> BlameItConfig {
    let mut cfg = BlameItConfig::new(BadnessThresholds::default_for(world));
    cfg.parallelism = threads;
    cfg.state_dir = Some(dir.to_path_buf());
    cfg.snapshot_every_ticks = 2;
    cfg
}

/// The overload knobs the surged tiny-world feed was calibrated
/// against (one post-midnight tiny-world bucket carries ≈ 8k records,
/// a 10× surged bucket ≈ 80k): surged buckets are admitted with heavy
/// shedding until the parked queue forces wholesale refusals.
fn overload_dcfg() -> DaemonConfig {
    let mut dcfg = DaemonConfig::default();
    dcfg.admission.queue_cap_records = 160_000;
    dcfg.admission.shed_watermark_records = 90_000;
    dcfg.admission.per_loc_shed_cap = 30_000;
    dcfg
}

struct OverloadRun {
    transcript: String,
    shed_log: Vec<ShedEntry>,
    stats: IngestStats,
    abandoned: u64,
    overload_fired: bool,
}

/// Feeds `n_ticks` windows of (surged) world telemetry through a fresh
/// `DaemonCore`, abandoning a bucket after three refusals like the
/// reference feeder, and terminates gracefully.
fn run_surged(world: &World, tag: &str, threads: usize, surge: &SurgePlan) -> OverloadRun {
    let dir = state_dir(&format!("{tag}-t{threads}"));
    let cfg = config(world, &dir, threads);
    let tick_buckets = cfg.tick_buckets;
    let inner = WorldBackend::with_parallelism(world, threads);
    let feed = WorldBackend::with_parallelism(world, threads);
    let warmup = TimeRange::days(1);
    let (mut core, recovery) = DaemonCore::open(
        cfg,
        overload_dcfg(),
        Arc::new(MetricsRegistry::new()),
        inner,
        warmup,
    )
    .unwrap();
    assert_eq!(recovery.mode, StartMode::Cold);

    let n_ticks = 8u32;
    let feed_start = warmup.end.bucket().0;
    let mut outs: Vec<TickOutput> = Vec::new();
    let mut abandoned = 0u64;
    for b in feed_start..feed_start + n_ticks * tick_buckets {
        let bucket = TimeBucket(b);
        let records = feed.rtt_records_in(bucket).unwrap();
        let records = surge.amplify(bucket, &records);
        if records.is_empty() {
            continue;
        }
        let batch = RecordBatch::from_records(bucket, &records);
        let cap = core.admission().config().queue_cap_records;
        for attempt in 1..=3u32 {
            match core.offer(batch.clone()).unwrap() {
                OfferReply::Ack { .. } => break,
                OfferReply::SlowDown { queue_depth, .. } => {
                    assert!(
                        queue_depth as usize <= cap,
                        "refusal quotes a bounded depth"
                    );
                    if attempt == 3 {
                        abandoned += 1;
                    }
                }
            }
            outs.extend(core.pump().unwrap());
        }
        outs.extend(core.pump().unwrap());
        assert!(
            core.queue_depth() <= cap,
            "queue depth {} exceeded the hard cap {cap}",
            core.queue_depth()
        );
    }
    outs.extend(core.term().unwrap());
    assert_eq!(outs.len(), n_ticks as usize, "every tick window fired");

    let overload_fired = core
        .engine()
        .flight()
        .dump_events()
        .iter()
        .any(|e| e.trigger == FlightTrigger::OverloadSustained);
    let run = OverloadRun {
        transcript: render_tick_transcript(&outs),
        shed_log: core.shed_log().to_vec(),
        stats: core.stats(),
        abandoned,
        overload_fired,
    };
    drop(core);
    let _ = std::fs::remove_dir_all(&dir);
    run
}

#[test]
fn surged_feed_sheds_identically_at_any_thread_count() {
    let world = quiet_world(Scale::Tiny, 2, 0xD5EED);
    let feed_start = TimeRange::days(1).end.bucket().0;
    // A 10× surge over four of the eight fed tick windows.
    let surge = SurgePlan::single(
        TimeBucket(feed_start + 6),
        TimeBucket(feed_start + 17),
        10,
        0xAB,
    );

    let one = run_surged(&world, "det", 1, &surge);
    let four = run_surged(&world, "det", 4, &surge);

    // The overload machinery actually engaged.
    assert!(one.stats.shed_low_impact > 0, "surge provoked shedding");
    assert!(
        one.stats.backpressure_replies > 0,
        "surge provoked SLOW_DOWN refusals"
    );
    assert!(one.abandoned > 0, "some surged buckets exhausted retries");
    assert!(
        one.stats.queue_peak <= 160_000,
        "queue peak {} stayed under the cap",
        one.stats.queue_peak
    );
    assert!(
        one.overload_fired,
        "sustained overload tripped the flight recorder"
    );

    // And did so identically regardless of engine parallelism.
    assert_eq!(
        one.stats, four.stats,
        "ingest accounting is thread-invariant"
    );
    assert_eq!(one.abandoned, four.abandoned);
    assert_eq!(
        one.shed_log, four.shed_log,
        "the same groups shed in the same order"
    );
    assert_eq!(
        one.transcript, four.transcript,
        "tick transcripts byte-identical across thread counts"
    );
    assert_eq!(one.overload_fired, four.overload_fired);
}

#[test]
fn quiet_feed_sheds_nothing() {
    let world = quiet_world(Scale::Tiny, 2, 0xD5EED);
    let run = run_surged(&world, "quiet", 1, &SurgePlan::default());
    assert_eq!(run.stats.shed_low_impact, 0);
    assert_eq!(run.stats.backpressure_replies, 0);
    assert_eq!(run.abandoned, 0);
    assert!(run.shed_log.is_empty());
    assert_eq!(run.stats.offered, run.stats.admitted);
    assert!(!run.overload_fired, "no overload episode on a quiet feed");
}
