//! End-to-end smoke over real sockets: bind `blameitd`'s IO shell on
//! ephemeral localhost ports, replay a surged world feed through the
//! framed wire protocol with the reference `feed` client, scrape
//! `/metrics`, `/alerts`, and `/healthz` over plain HTTP mid-run, then
//! TERM — and verify the state dir reopens warm with zero replay.
//!
//! This is the only test that exercises the socket shell; everything
//! it decides is covered socket-free in `tests/daemon_overload.rs` and
//! `tests/daemon_crash.rs`.

use blameit::{BadnessThresholds, BlameItConfig, StartMode, WorldBackend};
use blameit_bench::{quiet_world, Scale};
use blameit_daemon::{
    feed_world, http_get, DaemonConfig, DaemonCore, FeedConfig, Server, ServerConfig, WallClock,
};
use blameit_obs::MetricsRegistry;
use blameit_simnet::{SurgePlan, TimeBucket, TimeRange, World};
use std::path::{Path, PathBuf};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

fn state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("blameit-dsm-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(world: &World, dir: &Path) -> BlameItConfig {
    let mut cfg = BlameItConfig::new(BadnessThresholds::default_for(world));
    cfg.state_dir = Some(dir.to_path_buf());
    cfg.snapshot_every_ticks = 2;
    cfg
}

fn dcfg() -> DaemonConfig {
    let mut dcfg = DaemonConfig::default();
    dcfg.admission.queue_cap_records = 160_000;
    dcfg.admission.shed_watermark_records = 90_000;
    dcfg.admission.per_loc_shed_cap = 30_000;
    dcfg
}

#[test]
fn daemon_serves_feeds_scrapes_and_terminates() {
    let world = quiet_world(Scale::Tiny, 2, 0x50C7);
    let dir = state_dir("smoke");
    let warmup = TimeRange::days(1);
    let feed_start = warmup.end.bucket().0;
    let n_ticks = 4u32;
    let feed_mid = feed_start + n_ticks * 3 / 2;
    let feed_end = feed_start + n_ticks * 3;
    // Surge the third tick window 10× so the wire path exercises
    // shedding too, not just happy-path ACKs; the final window stays
    // quiet so its buckets are admitted and the TERM drain ticks it.
    let surge = SurgePlan::single(TimeBucket(feed_mid), TimeBucket(feed_start + 8), 10, 0x51);

    let inner = WorldBackend::new(&world);
    let (mut core, recovery) = DaemonCore::open(
        config(&world, &dir),
        dcfg(),
        Arc::new(MetricsRegistry::new()),
        inner,
        warmup,
    )
    .unwrap();
    assert_eq!(recovery.mode, StartMode::Cold);

    let server = Server::bind(&ServerConfig::default()).unwrap();
    let ingest = server.ingest_addr.to_string();
    let http = server.http_addr.to_string();
    let shutdown = AtomicBool::new(false);
    let clock = WallClock;

    let summary = std::thread::scope(|s| {
        let handle = s.spawn(|| server.run(&mut core, &clock, &shutdown).unwrap());

        // Quiet first half, no TERM: the connection closes, the daemon
        // keeps serving.
        let quiet_cfg = FeedConfig {
            addr: ingest.clone(),
            surge: SurgePlan::default(),
            max_attempts: 5,
            max_backoff_ms: 1,
            term: false,
        };
        let range1 = TimeRange::new(TimeBucket(feed_start).start(), TimeBucket(feed_mid).start());
        let first = feed_world(&world, range1, &quiet_cfg, &clock).unwrap();
        assert!(first.batches > 0);
        assert_eq!(first.records_admitted, first.records_offered);
        assert_eq!(first.slow_downs, 0);
        assert!(!first.terminated);

        // Scrape mid-run, between feeder connections.
        let health = http_get(&http, "/healthz").unwrap();
        assert!(health.contains("ok"), "healthz says: {health}");
        let metrics = http_get(&http, "/metrics").unwrap();
        assert!(metrics.contains("blameit_ingest_queue_depth_records"));
        assert!(metrics.contains("blameit_shed_quartets_total"));
        let alerts = http_get(&http, "/alerts").unwrap();
        assert!(alerts.is_empty() || alerts.contains("bucket"));

        // Surged second half, TERM at the end: drain + snapshot + BYE.
        let surged_cfg = FeedConfig {
            addr: ingest.clone(),
            surge: surge.clone(),
            max_attempts: 5,
            max_backoff_ms: 1,
            term: true,
        };
        let range2 = TimeRange::new(TimeBucket(feed_mid).start(), TimeBucket(feed_end).start());
        let second = feed_world(&world, range2, &surged_cfg, &clock).unwrap();
        assert!(second.terminated, "TERM acknowledged with BYE");
        assert!(second.records_shed > 0, "the surge provoked shedding");

        handle.join().unwrap()
    });

    assert!(summary.clean_shutdown);
    assert_eq!(summary.ticks, u64::from(n_ticks), "every fed window ticked");
    assert!(summary.stats.shed_low_impact > 0);
    assert!(
        summary.stats.queue_peak <= 160_000,
        "queue peak {} bounded by the cap",
        summary.stats.queue_peak
    );
    let ticks_before = core.ticks_done();
    drop(core);

    // A TERM'd state dir reopens warm: no journal replay, no WAL
    // refill, queue empty.
    let inner = WorldBackend::new(&world);
    let (core, recovery) = DaemonCore::open(
        config(&world, &dir),
        dcfg(),
        Arc::new(MetricsRegistry::new()),
        inner,
        warmup,
    )
    .unwrap();
    assert_eq!(recovery.mode, StartMode::Recovered);
    assert!(recovery.replayed.is_empty());
    assert_eq!(recovery.snapshots_rejected, 0);
    assert_eq!(core.ticks_done(), ticks_before);
    assert_eq!(core.queue_depth(), 0);
    drop(core);
    let _ = std::fs::remove_dir_all(&dir);
}
