//! The chaos layer's determinism contract: for a fixed (seed, fault
//! plan) pair, every fault decision and every engine-side recovery —
//! retries, backoff re-issues, degraded verdicts, baseline
//! quarantines — is a pure function of identity keys, never of thread
//! interleaving. Verified the same way PR 2 verified the sharded tick:
//! the canonical tick transcript must be byte-identical at every
//! thread count. A 0%-fault plan must additionally be a perfect no-op:
//! it reproduces the pinned golden transcript exactly.

use blameit::{
    render_tick_transcript, BadnessThresholds, BlameItConfig, BlameItEngine, ChaosBackend,
    TickOutput, WorldBackend,
};
use blameit_bench::{quiet_world, Scale};
use blameit_simnet::{Fault, FaultId, FaultPlan, FaultTarget, SimTime, TimeRange, World};
use blameit_topology::rng::DetRng;
use blameit_topology::testkit::check;
use blameit_topology::{Asn, CloudLocId};

/// A quiet tiny world with one cloud fault and one middle fault chosen
/// by `rng`, so the passive, active, and background phases all have
/// real work for the chaos plan to disturb.
fn faulty_world(rng: &mut DetRng) -> (World, SimTime) {
    let mut world = quiet_world(Scale::Tiny, 2, rng.next_u64());
    let topo = world.topology();
    let loc = topo.clients[rng.index(topo.clients.len())].primary_loc;
    let mut middles: Vec<Asn> = topo
        .clients
        .iter()
        .flat_map(|c| {
            let route = &topo.routes_for(c.primary_loc, c).options[0];
            topo.paths.get(route.path_id).middle.clone()
        })
        .collect();
    middles.sort_unstable();
    middles.dedup();
    let middle = *rng.pick(&middles);
    let start = SimTime::from_hours(25 + rng.below(3));
    world.add_faults(vec![
        Fault {
            id: FaultId(0),
            target: FaultTarget::CloudLocation(loc),
            start,
            duration_secs: 2 * 3_600,
            added_ms: rng.range_f64(60.0, 140.0),
        },
        Fault {
            id: FaultId(1),
            target: FaultTarget::MiddleAs {
                asn: middle,
                via_path: None,
            },
            start,
            duration_secs: 2 * 3_600,
            added_ms: rng.range_f64(60.0, 140.0),
        },
    ]);
    (world, start)
}

/// Warm an engine on day 0 and evaluate one faulty hour through a
/// chaos-wrapped backend at the given thread count.
fn run_with_plan(
    world: &World,
    plan: FaultPlan,
    threads: usize,
    eval: TimeRange,
) -> Vec<TickOutput> {
    let mut cfg = BlameItConfig::new(BadnessThresholds::default_for(world));
    cfg.parallelism = threads;
    let mut engine = BlameItEngine::new(cfg);
    let mut backend = ChaosBackend::new(WorldBackend::with_parallelism(world, threads), plan);
    engine.warmup(&backend, TimeRange::days(1), 2);
    engine.run(&mut backend, eval)
}

#[test]
fn chaos_transcript_identical_across_thread_counts() {
    check("chaos_determinism", 6, |rng| {
        let (world, fault_start) = faulty_world(rng);
        let eval = TimeRange::new(fault_start, fault_start + 3_600);
        let plans = [
            FaultPlan::mild(rng.next_u64()),
            FaultPlan::heavy(rng.next_u64()),
            FaultPlan::probe_storm(rng.next_u64()),
        ];
        for plan in plans {
            let reference = run_with_plan(&world, plan, 1, eval);
            let reference_transcript = render_tick_transcript(&reference);
            assert!(
                reference.iter().any(|o| !o.blames.is_empty()),
                "the injected faults must produce verdicts to compare"
            );
            let outs = run_with_plan(&world, plan, 4, eval);
            assert_eq!(
                reference_transcript,
                render_tick_transcript(&outs),
                "chaos transcript at 4 threads diverged (plan {plan:?})"
            );
        }
    });
}

#[test]
fn zero_fault_plan_reproduces_golden_transcript() {
    // The exact pinned scenario from tests/golden_output.rs, run
    // through a ChaosBackend with an all-zero plan: the decorator must
    // be perfectly transparent, down to the byte.
    const SEED: u64 = 20190519;
    let mut world = quiet_world(Scale::Tiny, 2, SEED);
    world.add_faults(vec![Fault {
        id: FaultId(0),
        target: FaultTarget::CloudLocation(CloudLocId(0)),
        start: SimTime::from_hours(25),
        duration_secs: 2 * 3_600,
        added_ms: 110.0,
    }]);
    let mut cfg = BlameItConfig::new(BadnessThresholds::default_for(&world));
    cfg.parallelism = 2;
    let mut engine = BlameItEngine::new(cfg);
    let mut backend = ChaosBackend::new(
        WorldBackend::with_parallelism(&world, 2),
        FaultPlan::none(SEED),
    );
    engine.warmup(&backend, TimeRange::days(1), 2);
    let start = SimTime::from_hours(25);
    let outs = engine.run(&mut backend, TimeRange::new(start, start + 90 * 60));
    let got = render_tick_transcript(&outs);

    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("tick_transcript.txt");
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with BLESS=1 cargo test --test golden_output",
            path.display()
        )
    });
    assert_eq!(backend.stats().total(), 0, "a none plan injects nothing");
    assert_eq!(
        want, got,
        "a 0%-fault ChaosBackend must reproduce the golden transcript byte-for-byte"
    );
}
