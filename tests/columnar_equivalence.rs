//! Differential harness for the columnar ingest path.
//!
//! The columnar quartet store replaced the legacy per-record `HashMap`
//! upsert on the hot path; its contract is *bit* equivalence, not
//! approximate equivalence. Every test here drives identical RTT
//! record streams through both aggregators and compares outputs down
//! to the f64 bit pattern — on organically generated worlds, on
//! chaos-disturbed backends, on adversarial synthetic streams with
//! duplicates and late (bucket-churned) records, and across
//! parallelism 1 vs 4 for both the sharded aggregator and full engine
//! transcripts.

use blameit::{
    aggregate_batch_reuse, aggregate_records_into, aggregate_records_reference,
    aggregate_records_sharded, render_tick_transcript, Backend, BadnessThresholds, BlameItConfig,
    BlameItEngine, ChaosBackend, IngestArena, QuartetStore, RecordBatch, TickOutput, WorldBackend,
};
use blameit_bench::{quiet_world, Scale};
use blameit_simnet::{
    Fault, FaultId, FaultPlan, FaultTarget, QuartetObs, RttRecord, SimTime, TimeBucket, TimeRange,
    World,
};
use blameit_topology::rng::DetRng;
use blameit_topology::testkit::check;
use blameit_topology::{Asn, CloudLocId, Prefix24};

/// Asserts two aggregate vectors are bit-identical: same quartets in
/// the same order, with means matching on the exact f64 bit pattern
/// (`assert_eq!` alone would let `-0.0 == 0.0` slide).
fn assert_bit_identical(got: &[QuartetObs], want: &[QuartetObs], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: aggregate count diverged");
    for (g, w) in got.iter().zip(want) {
        assert_eq!(
            (g.loc, g.p24, g.mobile, g.bucket, g.n),
            (w.loc, w.p24, w.mobile, w.bucket, w.n),
            "{what}: quartet identity diverged"
        );
        assert_eq!(
            g.mean_rtt_ms.to_bits(),
            w.mean_rtt_ms.to_bits(),
            "{what}: mean bits diverged for {:?} ({} vs {})",
            (g.loc, g.p24, g.mobile, g.bucket),
            g.mean_rtt_ms,
            w.mean_rtt_ms,
        );
    }
}

/// A quiet tiny world with one cloud fault and one middle fault (the
/// `tests/chaos_determinism.rs` construction), so aggregates carry
/// fault-shifted RTTs and engine runs produce real verdicts.
fn faulty_world(rng: &mut DetRng) -> (World, SimTime) {
    let mut world = quiet_world(Scale::Tiny, 2, rng.next_u64());
    let topo = world.topology();
    let loc = topo.clients[rng.index(topo.clients.len())].primary_loc;
    let mut middles: Vec<Asn> = topo
        .clients
        .iter()
        .flat_map(|c| {
            let route = &topo.routes_for(c.primary_loc, c).options[0];
            topo.paths.get(route.path_id).middle.clone()
        })
        .collect();
    middles.sort_unstable();
    middles.dedup();
    let middle = *rng.pick(&middles);
    let start = SimTime::from_hours(25 + rng.below(3));
    world.add_faults(vec![
        Fault {
            id: FaultId(0),
            target: FaultTarget::CloudLocation(loc),
            start,
            duration_secs: 2 * 3_600,
            added_ms: rng.range_f64(60.0, 140.0),
        },
        Fault {
            id: FaultId(1),
            target: FaultTarget::MiddleAs {
                asn: middle,
                via_path: None,
            },
            start,
            duration_secs: 2 * 3_600,
            added_ms: rng.range_f64(60.0, 140.0),
        },
    ]);
    (world, start)
}

#[test]
fn columnar_matches_reference_on_organic_streams_across_threads() {
    // 8 seeded worlds; for each, every bucket of a faulty hour is
    // aggregated four ways — reference upsert, columnar single-shot,
    // columnar with arena/store reuse, sharded at 1 and 4 threads —
    // and all must agree bit for bit.
    check("columnar_equivalence::organic", 8, |rng| {
        let (world, fault_start) = faulty_world(rng);
        let eval = TimeRange::new(fault_start, fault_start + 3_600);
        let backend = WorldBackend::with_parallelism(&world, 1);
        let mut arena = IngestArena::new();
        let mut nonempty = 0usize;
        for bucket in eval.buckets() {
            let records = backend
                .rtt_records_in(bucket)
                .expect("WorldBackend serves the raw record stream");
            nonempty += usize::from(!records.is_empty());
            let want = aggregate_records_reference(&records);
            let store = aggregate_records_into(&records, &mut arena);
            assert_bit_identical(&store.to_obs(), &want, "columnar vs reference");
            // The collector-sorted columnar batch (the engine's hot
            // ingest shape) must agree too, with zero sort fallbacks.
            let batch = backend
                .record_batch_in(bucket)
                .expect("WorldBackend serves columnar batches");
            let before = arena.sort_fallbacks;
            let mut batch_store = QuartetStore::new();
            aggregate_batch_reuse(&batch, &mut arena, &mut batch_store);
            assert_eq!(
                arena.sort_fallbacks, before,
                "sorted batches never fall back"
            );
            assert_bit_identical(
                &batch_store.to_obs(),
                &want,
                "sorted batch kernel vs reference",
            );
            for threads in [1usize, 4] {
                let sharded = aggregate_records_sharded(&records, threads);
                assert_bit_identical(
                    &sharded.to_obs(),
                    &want,
                    &format!("sharded({threads}) vs reference"),
                );
            }
        }
        assert!(nonempty > 0, "the faulty hour must carry records");
    });
}

#[test]
fn chaos_streams_aggregate_identically_and_transcripts_agree() {
    // Chaos plans drop whole batches and disturb probes, but the
    // record stream a ChaosBackend serves for a given (seed, plan,
    // bucket) is parallelism-invariant, so both aggregators must agree
    // on it — and full engine runs over the same chaos must render
    // byte-identical transcripts and verdicts at 1 vs 4 threads.
    check("columnar_equivalence::chaos", 8, |rng| {
        let (world, fault_start) = faulty_world(rng);
        let eval = TimeRange::new(fault_start, fault_start + 3_600);
        let plan = [
            FaultPlan::mild(rng.next_u64()),
            FaultPlan::heavy(rng.next_u64()),
            FaultPlan::probe_storm(rng.next_u64()),
        ][rng.index(3)];

        // Record-stream equivalence through the chaos decorator.
        let mut arena = IngestArena::new();
        for threads in [1usize, 4] {
            let chaos = ChaosBackend::new(WorldBackend::with_parallelism(&world, threads), plan);
            for bucket in eval.buckets() {
                let records = chaos
                    .rtt_records_in(bucket)
                    .expect("chaos backend serves the record stream");
                let want = aggregate_records_reference(&records);
                let store = aggregate_records_into(&records, &mut arena);
                assert_bit_identical(&store.to_obs(), &want, "chaos columnar vs reference");
            }
        }

        // Engine equivalence: verdicts and transcript across threads.
        let run = |threads: usize| -> Vec<TickOutput> {
            let mut cfg = BlameItConfig::new(BadnessThresholds::default_for(&world));
            cfg.parallelism = threads;
            let mut engine = BlameItEngine::new(cfg);
            let mut backend =
                ChaosBackend::new(WorldBackend::with_parallelism(&world, threads), plan);
            engine.warmup(&backend, TimeRange::days(1), 2);
            engine.run(&mut backend, eval)
        };
        let reference = run(1);
        let outs = run(4);
        for (r, o) in reference.iter().zip(&outs) {
            // BlameResult carries no PartialEq; the Debug rendering
            // covers every field, so string equality is bit equality.
            assert_eq!(
                format!("{:?}", r.blames),
                format!("{:?}", o.blames),
                "verdicts diverged across thread counts (plan {plan:?})"
            );
        }
        assert_eq!(
            render_tick_transcript(&reference),
            render_tick_transcript(&outs),
            "chaos transcript diverged across thread counts (plan {plan:?})"
        );
    });
}

#[test]
fn duplicate_and_late_records_keep_both_paths_bit_identical() {
    // Adversarial synthetic streams: heavy duplication (the same
    // record re-delivered), late records whose bucket churns behind
    // the stream head (interleaved old/new buckets force the columnar
    // fallback sort), and whole-group shuffles. The fallback must
    // reproduce the reference's stream-order accumulation exactly.
    check("columnar_equivalence::duplicates_late", 8, |rng| {
        let mut records: Vec<RttRecord> = Vec::new();
        let buckets = [TimeBucket(300), TimeBucket(301), TimeBucket(302)];
        let groups = 2 + rng.below(6) as usize;
        for _ in 0..groups {
            let loc = CloudLocId(rng.below(4) as u16);
            let p24 = Prefix24::from_block(rng.below(8) as u32);
            let mobile = rng.chance(0.3);
            let n = 1 + rng.below(12);
            for _ in 0..n {
                let bucket = buckets[rng.index(buckets.len())];
                let rec = RttRecord {
                    loc,
                    p24,
                    mobile,
                    at: bucket.mid(),
                    // Mix magnitudes so accumulation order is visible
                    // in the low mantissa bits if either path strays.
                    rtt_ms: if rng.chance(0.2) {
                        1e12 + rng.f64()
                    } else {
                        rng.range_f64(1.0, 400.0)
                    },
                };
                records.push(rec);
                // Duplicate re-delivery: the exact same record again,
                // sometimes immediately, sometimes after churn.
                if rng.chance(0.3) {
                    records.push(rec);
                }
            }
        }
        // Late churn: yank a suffix and splice it in early, so bucket
        // and key order interleave badly.
        if records.len() > 4 {
            let cut = 1 + rng.index(records.len() - 2);
            let tail: Vec<RttRecord> = records.split_off(cut);
            let insert_at = rng.index(records.len());
            let head = records.split_off(insert_at);
            records.extend(tail);
            records.extend(head);
        }
        rng.shuffle(&mut records);

        let want = aggregate_records_reference(&records);
        let mut arena = IngestArena::new();
        let store = aggregate_records_into(&records, &mut arena);
        assert_bit_identical(&store.to_obs(), &want, "adversarial columnar vs reference");
        // Per-bucket columnar batches (raw and collector-sorted) must
        // agree with the reference restricted to that bucket.
        for &bucket in &buckets {
            let in_bucket: Vec<RttRecord> = records
                .iter()
                .copied()
                .filter(|r| r.at.bucket() == bucket)
                .collect();
            let bucket_want = aggregate_records_reference(&in_bucket);
            let mut batch = RecordBatch::from_records(bucket, &in_bucket);
            let mut batch_store = QuartetStore::new();
            aggregate_batch_reuse(&batch, &mut arena, &mut batch_store);
            assert_bit_identical(
                &batch_store.to_obs(),
                &bucket_want,
                "raw batch vs reference",
            );
            batch.sort_by_key();
            aggregate_batch_reuse(&batch, &mut arena, &mut batch_store);
            assert_bit_identical(
                &batch_store.to_obs(),
                &bucket_want,
                "sorted batch vs reference",
            );
        }
        for threads in [1usize, 4] {
            assert_bit_identical(
                &aggregate_records_sharded(&records, threads).to_obs(),
                &want,
                &format!("adversarial sharded({threads}) vs reference"),
            );
        }
    });
}
