//! The named-scenario regression library: every `.scn` file under
//! `scenarios/` replays through the deterministic tick at 1 and 4
//! engine threads, must produce byte-identical transcripts at both,
//! must satisfy its own `[expect]` block, and must match its pinned
//! golden transcript under `tests/golden/scenarios/`.
//!
//! To re-pin after an intentional behavior change:
//!
//! ```text
//! BLESS=1 cargo test --test scenario_library
//! ```
//!
//! (or `blameit scenario check --all 1 --bless 1`, which writes the
//! same bytes).
//!
//! The suite is parameterized by the `scenario_suite!` macro — one test
//! per scenario, so the harness runs them in parallel and a failure
//! names its scenario. `suite_covers_every_scenario_file` guards the
//! registration: adding a `.scn` without listing it here fails.

use blameit_scenario::{compile, evaluate, parse_scenario, run_scenario, ScenarioRun};
use blameit_topology::rng::DetRng;
use blameit_topology::testkit::check;
use std::path::PathBuf;

fn scenarios_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("scenarios")
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("scenarios")
        .join(format!("{name}.txt"))
}

fn run_at(name: &str, threads: usize) -> ScenarioRun {
    let path = scenarios_dir().join(format!("{name}.scn"));
    let file = path.display().to_string();
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("scenario {} must be readable: {e}", path.display()));
    let spec = parse_scenario(&file, &text).unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(spec.name, name, "scenario name must match its file stem");
    let scn = compile(&file, spec).unwrap_or_else(|e| panic!("{e}"));
    run_scenario(&file, &scn, threads).unwrap_or_else(|e| panic!("{e}"))
}

/// Replay at {1, 4} threads, demand byte-identical transcripts and
/// flight dumps, check the `[expect]` block on both runs, and pin the
/// transcript against the golden.
fn check_scenario(name: &str) {
    let one = run_at(name, 1);
    let four = run_at(name, 4);
    assert_eq!(
        one.transcript, four.transcript,
        "{name}: transcript at 4 threads diverged from 1 thread"
    );
    assert_eq!(
        one.flight_dump, four.flight_dump,
        "{name}: flight dump at 4 threads diverged from 1 thread"
    );
    for (threads, run) in [(1, &one), (4, &four)] {
        let path = scenarios_dir().join(format!("{name}.scn"));
        let text = std::fs::read_to_string(&path).unwrap();
        let spec = parse_scenario(&path.display().to_string(), &text).unwrap();
        let failures = evaluate(&spec, run);
        assert!(
            failures.is_empty(),
            "{name} at {threads} thread(s) missed expectations:\n  {}",
            failures.join("\n  ")
        );
    }
    bless_or_compare(&golden_path(name), &one.transcript, name);
}

/// Blesses `got` into `path` under BLESS=1, otherwise compares with a
/// first-divergence report.
fn bless_or_compare(path: &std::path::Path, got: &str, name: &str) {
    if std::env::var("BLESS").is_ok_and(|v| !v.is_empty() && v != "0") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(path, got).unwrap();
        eprintln!("blessed {} ({} bytes)", path.display(), got.len());
        return;
    }
    let want = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); re-pin with BLESS=1 cargo test --test scenario_library",
            path.display()
        )
    });
    if want == got {
        return;
    }
    for (i, (w, g)) in want.lines().zip(got.lines()).enumerate() {
        assert_eq!(
            w,
            g,
            "{name}: golden transcript diverges at line {} (re-bless with BLESS=1 if intended)",
            i + 1
        );
    }
    panic!(
        "{name}: golden transcript length changed: {} vs {} lines (re-bless with BLESS=1 if intended)",
        want.lines().count(),
        got.lines().count()
    );
}

macro_rules! scenario_suite {
    ($($test:ident => $name:literal),+ $(,)?) => {
        $(
            #[test]
            fn $test() {
                check_scenario($name);
            }
        )+

        /// Every `.scn` on disk must be registered above (and vice
        /// versa): an unregistered scenario would silently skip the
        /// {1,4}-thread replay and golden pinning.
        #[test]
        fn suite_covers_every_scenario_file() {
            let mut registered: Vec<&str> = vec![$($name),+];
            registered.sort_unstable();
            let mut on_disk: Vec<String> = std::fs::read_dir(scenarios_dir())
                .expect("scenarios/ must exist")
                .map(|e| e.unwrap().path())
                .filter(|p| p.extension().is_some_and(|x| x == "scn"))
                .map(|p| p.file_stem().unwrap().to_string_lossy().into_owned())
                .collect();
            on_disk.sort_unstable();
            assert_eq!(
                on_disk, registered,
                "scenarios/ and the scenario_suite! registration disagree"
            );
        }
    };
}

scenario_suite! {
    bgp_route_leak => "bgp-route-leak",
    cloud_maintenance_spike => "cloud-maintenance-spike",
    crash_mid_incident => "crash-mid-incident",
    ddos_scrubbing_detour => "ddos-scrubbing-detour",
    degraded_deadline_budget => "degraded-deadline-budget",
    degraded_no_baseline => "degraded-no-baseline",
    degraded_no_material_delta => "degraded-no-material-delta",
    degraded_probe_timeout => "degraded-probe-timeout",
    degraded_stale_baseline => "degraded-stale-baseline",
    degraded_truncated_probe => "degraded-truncated-probe",
    flash_crowd => "flash-crowd",
    ingest_surge_overload => "ingest-surge-overload",
    mobile_evening_congestion => "mobile-evening-congestion",
    multi_as_middle_failure => "multi-as-middle-failure",
    regional_cable_cut => "regional-cable-cut",
}

// ── loader robustness ───────────────────────────────────────────────

/// Deterministic mutations of real scenario files: whatever the
/// corruption — clobbered values, duplicated or deleted lines, junk
/// sections, truncation mid-file — the loader must return `Err` or a
/// still-valid spec, never panic. Compilation of surviving specs must
/// hold the same bar.
#[test]
fn mutated_scenario_files_error_never_panic() {
    let sources: Vec<String> = std::fs::read_dir(scenarios_dir())
        .expect("scenarios/ must exist")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "scn"))
        .map(|p| std::fs::read_to_string(p).unwrap())
        .collect();
    assert!(sources.len() >= 7, "the shipped corpus feeds the fuzzer");
    check("scenario_fuzz", 300, |rng| {
        let base = &sources[rng.index(sources.len())];
        let text = mutate(base, rng);
        if let Ok(spec) = parse_scenario("fuzz.scn", &text) {
            // A mutation that still parses must still compile cleanly
            // or fail with a positioned error — same no-panic bar.
            let _ = compile("fuzz.scn", spec);
        }
    });
}

/// Applies 1–3 random structural mutations to a scenario source.
fn mutate(base: &str, rng: &mut DetRng) -> String {
    let mut lines: Vec<String> = base.lines().map(|l| l.to_string()).collect();
    for _ in 0..1 + rng.below(3) {
        if lines.is_empty() {
            break;
        }
        let i = rng.index(lines.len());
        match rng.below(8) {
            // Clobber the value side of a `key = value` line.
            0 => {
                if let Some(eq) = lines[i].find('=') {
                    let junk = [
                        "",
                        "NaN",
                        "-3",
                        "1e309",
                        "tiny tiny",
                        "999999999999999999999",
                    ];
                    let j = junk[rng.index(junk.len())];
                    lines[i] = format!("{}= {}", &lines[i][..eq], j);
                }
            }
            // Corrupt the key side.
            1 => lines[i] = format!("x{}", lines[i]),
            // Delete a line.
            2 => {
                lines.remove(i);
            }
            // Duplicate a line (repeated keys / sections).
            3 => {
                let l = lines[i].clone();
                lines.insert(i, l);
            }
            // Insert an unknown section.
            4 => lines.insert(i, "[garbage]".to_string()),
            // Insert an orphan key.
            5 => lines.insert(i, "orphan = 1".to_string()),
            // Swap two lines (keys into the wrong section).
            6 => {
                let j = rng.index(lines.len());
                lines.swap(i, j);
            }
            // Truncate the file at this line.
            _ => lines.truncate(i),
        }
    }
    lines.join("\n")
}
