//! End-to-end integration: a scripted incident flows through the whole
//! stack — topology → telemetry → Algorithm 1 → prioritization →
//! active localization → alerts — and the ground truth adjudicates.

use blameit::{Backend, BadnessThresholds, Blame, BlameItConfig, BlameItEngine, WorldBackend};
use blameit_bench::{quiet_world, Scale};
use blameit_simnet::{Fault, FaultId, FaultTarget, SimTime, TimeRange};

/// A world with one strong AS-wide middle fault on day 2. Also returns
/// the faulty AS's worst per-location traffic share (tiny topologies
/// concentrate traffic; callers relax dominance checks when the AS
/// blankets a location).
fn middle_fault_world() -> (blameit_simnet::World, blameit_topology::Asn, f64) {
    let mut world = quiet_world(Scale::Tiny, 3, 1234);
    // Find a middle AS that does not blanket any location (so the
    // hierarchy resolves to "middle", not "cloud").
    let topo = world.topology();
    let mut counts: std::collections::HashMap<
        (blameit_topology::CloudLocId, blameit_topology::Asn),
        usize,
    > = std::collections::HashMap::new();
    let mut totals: std::collections::HashMap<blameit_topology::CloudLocId, usize> =
        std::collections::HashMap::new();
    for c in &topo.clients {
        *totals.entry(c.primary_loc).or_default() += 1;
        let route = &topo.routes_for(c.primary_loc, c).options[0];
        for asn in &topo.paths.get(route.path_id).middle {
            *counts.entry((c.primary_loc, *asn)).or_default() += 1;
        }
    }
    // Pick the middle AS with the lowest worst-location share (most
    // diverse), breaking ties toward higher total coverage.
    let mut best: Option<(blameit_topology::Asn, f64, usize)> = None;
    let mut candidates: Vec<blameit_topology::Asn> = counts.keys().map(|(_, a)| *a).collect();
    candidates.sort();
    candidates.dedup();
    for asn in candidates {
        let max_share = counts
            .iter()
            .filter(|((_, a), _)| *a == asn)
            .map(|((loc, _), n)| *n as f64 / totals[loc] as f64)
            .fold(0.0, f64::max);
        let coverage: usize = counts
            .iter()
            .filter(|((_, a), _)| *a == asn)
            .map(|(_, n)| *n)
            .sum();
        if coverage < 10 {
            continue;
        }
        let better = match best {
            None => true,
            Some((_, s, c)) => max_share < s - 1e-9 || (max_share < s + 1e-9 && coverage > c),
        };
        if better {
            best = Some((asn, max_share, coverage));
        }
    }
    let (asn, share, _) = best.expect("a usable middle AS exists");
    world.add_faults(vec![Fault {
        id: FaultId(0),
        target: FaultTarget::MiddleAs {
            asn,
            via_path: None,
        },
        start: SimTime::from_days(2),
        duration_secs: 4 * 3600,
        added_ms: 80.0,
    }]);
    (world, asn, share)
}

#[test]
fn middle_fault_detected_prioritized_and_localized() {
    let (world, faulty_as, share) = middle_fault_world();
    let thresholds = BadnessThresholds::default_for(&world);
    let mut engine = BlameItEngine::new(BlameItConfig::new(thresholds));
    let mut backend = WorldBackend::new(&world);
    // Learn on the quiet day 0, build baselines during day 1 (burn-in).
    engine.warmup(&backend, TimeRange::days(1), 1);
    for _ in engine.run(
        &mut backend,
        TimeRange::new(SimTime::from_days(1), SimTime::from_days(2)),
    ) {}

    // Analyze the first two hours of the fault.
    let start = SimTime::from_days(2);
    let mut middle_blames = 0u64;
    let mut other_blames = 0u64;
    let mut localized_correct = false;
    let mut saw_middle_alert = false;
    for out in engine.run(&mut backend, TimeRange::new(start, start + 2 * 3600)) {
        for b in &out.blames {
            let on_fault_path = world
                .topology()
                .paths
                .get(b.path)
                .middle
                .contains(&faulty_as);
            if !on_fault_path {
                continue;
            }
            if b.blame == Blame::Middle {
                middle_blames += 1;
            } else {
                other_blames += 1;
            }
        }
        for l in &out.localizations {
            if l.culprit == Some(faulty_as) {
                localized_correct = true;
            }
        }
        if out
            .alerts
            .iter()
            .any(|a| a.blame == Blame::Middle && a.culprit == Some(faulty_as))
        {
            saw_middle_alert = true;
        }
    }
    assert!(middle_blames > 0, "the fault must produce middle verdicts");
    if share < 0.5 {
        // Only meaningful when the AS does not blanket a location (a
        // blanketed location's verdicts legitimately go to the cloud
        // check first — Insight-2's trade-off).
        assert!(
            middle_blames > other_blames,
            "middle must dominate on the fault's paths: {middle_blames} vs {other_blames}"
        );
    }
    assert!(localized_correct, "the active phase must name {faulty_as}");
    assert!(
        saw_middle_alert,
        "operators must get a middle alert naming the culprit"
    );
}

#[test]
fn probe_accounting_is_exact() {
    let (world, _, _) = middle_fault_world();
    let thresholds = BadnessThresholds::default_for(&world);
    let mut engine = BlameItEngine::new(BlameItConfig::new(thresholds));
    let mut backend = WorldBackend::new(&world);
    engine.warmup(&backend, TimeRange::days(2), 2);
    assert_eq!(backend.probes_issued(), 0, "warmup must not probe");
    let start = SimTime::from_days(2);
    let outs = engine.run(&mut backend, TimeRange::new(start, start + 3 * 3600));
    let from_ticks: u64 = outs
        .iter()
        .map(|o| o.on_demand_probes + o.background_probes)
        .sum();
    assert_eq!(backend.probes_issued(), from_ticks);
    assert_eq!(
        from_ticks,
        engine.on_demand_probes_total + engine.background_probes_total
    );
}

#[test]
fn engine_run_is_deterministic() {
    let run = || {
        let (world, _, _) = middle_fault_world();
        let thresholds = BadnessThresholds::default_for(&world);
        let mut engine = BlameItEngine::new(BlameItConfig::new(thresholds));
        let mut backend = WorldBackend::new(&world);
        engine.warmup(&backend, TimeRange::days(2), 2);
        let start = SimTime::from_days(2);
        let outs = engine.run(&mut backend, TimeRange::new(start, start + 3600));
        outs.iter()
            .flat_map(|o| o.blames.iter())
            .map(|b| (b.obs.loc, b.obs.p24, b.obs.bucket, b.blame))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}
