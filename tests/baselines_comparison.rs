//! Cross-crate integration: the comparator systems and BlameIt run over
//! the same backend, and the paper's qualitative orderings hold.

use blameit::{
    Backend, BadnessThresholds, BlameItConfig, BlameItEngine, ProbeTarget, WorldBackend,
};
use blameit_baselines::{boolean_tomography, ActiveOnlyMonitor, TrinocularMonitor};
use blameit_bench::{organic_world, Scale};
use blameit_simnet::{SimTime, TimeRange};
use std::collections::HashMap;

fn targets(world: &blameit_simnet::World) -> Vec<ProbeTarget> {
    let mut map: HashMap<_, ProbeTarget> = HashMap::new();
    for c in &world.topology().clients {
        let route = world.route_at(c.primary_loc, c, SimTime::ZERO);
        map.entry((c.primary_loc, route.path_id))
            .or_insert(ProbeTarget {
                loc: c.primary_loc,
                path: route.path_id,
                p24: c.p24,
            });
    }
    map.into_values().collect()
}

#[test]
fn probe_budgets_order_as_in_the_paper() {
    let world = organic_world(Scale::Tiny, 3, 31);
    let targets = targets(&world);
    let day = TimeRange::new(SimTime::from_days(2), SimTime::from_days(3));

    // BlameIt, steady state.
    let thresholds = BadnessThresholds::default_for(&world);
    let mut engine = BlameItEngine::new(BlameItConfig::new(thresholds));
    let mut backend = WorldBackend::new(&world);
    engine.warmup(&backend, TimeRange::days(1), 2);
    for _ in engine.run(
        &mut backend,
        TimeRange::new(SimTime::from_days(1), SimTime::from_days(2)),
    ) {}
    let before = backend.probes_issued();
    for _ in engine.run(&mut backend, day) {}
    let blameit_day = backend.probes_issued() - before;

    // Trinocular-style adaptive probing.
    let mut tri_backend = WorldBackend::new(&world);
    let mut tri = TrinocularMonitor::paper_default();
    let tri_day = tri.run(&mut tri_backend, day, &targets);

    // Continuous 10-minute probing.
    let active_day = ActiveOnlyMonitor::new(600, 4).probes_per_day(targets.len());

    assert!(
        blameit_day < tri_day && tri_day < active_day,
        "expected BlameIt ({blameit_day}) < Trinocular ({tri_day}) < active-only ({active_day})"
    );
    // The headline factor is an order of magnitude or more.
    assert!(
        active_day as f64 / blameit_day as f64 > 8.0,
        "BlameIt must be ≥8× cheaper than continuous probing at tiny scale \
         ({active_day} vs {blameit_day})"
    );
}

#[test]
fn tomography_is_more_ambiguous_than_blameit_on_sparse_buckets() {
    use blameit::enrich_bucket;
    let world = organic_world(Scale::Tiny, 1, 77);
    let thresholds = BadnessThresholds::default_for(&world);
    let backend = WorldBackend::new(&world);

    // A sparse overnight bucket: thin coverage is where tomography
    // struggles (§4.1).
    let mut worst_unresolved: f64 = 0.0;
    let mut buckets_with_bad = 0;
    for b in TimeRange::days(1).buckets().step_by(24) {
        let quartets = enrich_bucket(&backend, b, &thresholds);
        if quartets.iter().filter(|q| q.bad).count() < 3 {
            continue;
        }
        buckets_with_bad += 1;
        let r = boolean_tomography(&quartets);
        worst_unresolved = worst_unresolved.max(r.unresolved_fraction());
    }
    assert!(buckets_with_bad > 0, "need some bad buckets to compare");
    assert!(
        worst_unresolved > 0.0,
        "boolean tomography should hit ambiguity somewhere in a day"
    );
}
