//! The sharded tick's determinism contract: for any seed and any
//! thread count, `TickOutput` — blames, ranked issues, localizations,
//! alerts, probe decisions, stage-timing keys — is byte-identical to
//! the single-threaded run. Verified through the canonical tick
//! transcript, which serializes every one of those sections.

use blameit::{
    render_tick_transcript, BadnessThresholds, BlameItConfig, BlameItEngine, TickOutput,
    WorldBackend,
};
use blameit_bench::{quiet_world, Scale};
use blameit_simnet::{Fault, FaultId, FaultTarget, SimTime, TimeRange, World};
use blameit_topology::rng::DetRng;
use blameit_topology::testkit::check;
use blameit_topology::Asn;

/// A quiet tiny world with one cloud fault and one middle fault chosen
/// by `rng` (plus the faults' start), so both the passive and active
/// phases have real work.
fn faulty_world(rng: &mut DetRng) -> (World, SimTime) {
    let mut world = quiet_world(Scale::Tiny, 2, rng.next_u64());
    let topo = world.topology();
    let loc = topo.clients[rng.index(topo.clients.len())].primary_loc;
    let mut middles: Vec<Asn> = topo
        .clients
        .iter()
        .flat_map(|c| {
            let route = &topo.routes_for(c.primary_loc, c).options[0];
            topo.paths.get(route.path_id).middle.clone()
        })
        .collect();
    middles.sort_unstable();
    middles.dedup();
    let middle = *rng.pick(&middles);
    let start = SimTime::from_hours(25 + rng.below(3));
    world.add_faults(vec![
        Fault {
            id: FaultId(0),
            target: FaultTarget::CloudLocation(loc),
            start,
            duration_secs: 2 * 3_600,
            added_ms: rng.range_f64(60.0, 140.0),
        },
        Fault {
            id: FaultId(1),
            target: FaultTarget::MiddleAs {
                asn: middle,
                via_path: None,
            },
            start,
            duration_secs: 2 * 3_600,
            added_ms: rng.range_f64(60.0, 140.0),
        },
    ]);
    (world, start)
}

/// Warm an engine on day 0 and evaluate one faulty hour at the given
/// thread count, keeping the engine alive so post-run surfaces (the
/// flight recorder) can be inspected.
fn run_engine_at(
    world: &World,
    threads: usize,
    eval: TimeRange,
) -> (BlameItEngine, Vec<TickOutput>) {
    let mut cfg = BlameItConfig::new(BadnessThresholds::default_for(world));
    cfg.parallelism = threads;
    let mut engine = BlameItEngine::new(cfg);
    let mut backend = WorldBackend::with_parallelism(world, threads);
    engine.warmup(&backend, TimeRange::days(1), 2);
    let outs = engine.run(&mut backend, eval);
    (engine, outs)
}

/// Warm an engine on day 0 and evaluate one faulty hour at the given
/// thread count.
fn run_at(world: &World, threads: usize, eval: TimeRange) -> Vec<TickOutput> {
    run_engine_at(world, threads, eval).1
}

#[test]
fn tick_output_identical_across_thread_counts() {
    check("parallel_determinism", 8, |rng| {
        let (world, fault_start) = faulty_world(rng);
        let eval = TimeRange::new(fault_start, fault_start + 3_600);
        let reference = run_at(&world, 1, eval);
        let reference_transcript = render_tick_transcript(&reference);
        assert!(
            reference.iter().any(|o| !o.blames.is_empty()),
            "the injected faults must produce verdicts to compare"
        );
        for threads in [2, 4, 8] {
            let outs = run_at(&world, threads, eval);
            assert_eq!(
                reference_transcript,
                render_tick_transcript(&outs),
                "transcript at {threads} threads diverged"
            );
            // Stage-timing *keys* must agree tick by tick (durations are
            // wall time and legitimately differ).
            for (a, b) in reference.iter().zip(&outs) {
                let keys = |o: &TickOutput| -> Vec<String> {
                    o.stage_timings.iter().map(|(k, _)| k.to_string()).collect()
                };
                assert_eq!(keys(a), keys(b));
            }
        }
    });
}

#[test]
fn provenance_and_flight_recorder_identical_across_thread_counts() {
    // The observability surfaces are part of the determinism contract:
    // every verdict must carry populated evidence, and the flight
    // recorder's JSONL dump must be byte-identical at any parallelism.
    let mut rng = DetRng::from_keys(0xF11, &[0]);
    let (world, fault_start) = faulty_world(&mut rng);
    let eval = TimeRange::new(fault_start, fault_start + 3_600);
    let (engine1, outs1) = run_engine_at(&world, 1, eval);

    let (mut blames, mut locs) = (0, 0);
    for out in &outs1 {
        for b in &out.blames {
            blames += 1;
            assert_eq!(
                b.passive.branch, b.blame,
                "evidence branch must match the verdict"
            );
            assert!(b.passive.tau > 0.0, "τ must be recorded at decision time");
            assert!(
                b.passive.cloud_n + b.passive.middle_n > 0,
                "a verdict cannot rest on zero observed quartets"
            );
        }
        for l in &out.localizations {
            locs += 1;
            assert_eq!(
                l.provenance.probe.attempts, l.attempts,
                "probe evidence must agree with the localization record"
            );
            assert!(
                l.provenance.incident.affected_p24s > 0,
                "a probed issue affects at least one /24"
            );
            assert!(
                l.provenance.priority.budget_rank < l.provenance.priority.selected
                    && l.provenance.priority.selected <= l.provenance.priority.candidates,
                "budget position must be internally consistent: {}",
                l.provenance.priority.render_compact()
            );
        }
    }
    assert!(
        blames > 0 && locs > 0,
        "the faulty hour must produce both verdicts and localizations"
    );

    let dump1 = engine1.flight().dump_jsonl();
    assert!(
        dump1.contains("\"kind\":\"frame\""),
        "the eval window must record flight frames:\n{dump1}"
    );
    for threads in [2, 4] {
        let (engine_n, outs_n) = run_engine_at(&world, threads, eval);
        assert_eq!(
            render_tick_transcript(&outs1),
            render_tick_transcript(&outs_n),
            "transcript at {threads} threads diverged"
        );
        assert_eq!(
            dump1,
            engine_n.flight().dump_jsonl(),
            "flight dump at {threads} threads diverged"
        );
    }
}

#[test]
fn maintenance_spike_scenario_flight_dump_identical_across_thread_counts() {
    // The library's Fig. 8 day-24 scenario is the one that exercises
    // the flight recorder hardest: a cloud maintenance window, two
    // concurrent middle faults, and full probe-timeout chaos fire the
    // `degraded-spike` trigger. Its dump — trigger frames included —
    // must be byte-identical at any parallelism.
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("scenarios")
        .join("cloud-maintenance-spike.scn");
    let file = path.display().to_string();
    let text = std::fs::read_to_string(&path).expect("shipped scenario must be readable");
    let scn = blameit_scenario::compile(
        &file,
        blameit_scenario::parse_scenario(&file, &text).expect("shipped scenario must parse"),
    )
    .expect("shipped scenario must compile");
    let one = blameit_scenario::run_scenario(&file, &scn, 1).expect("run at 1 thread");
    assert!(
        one.report
            .flight_triggers
            .iter()
            .any(|t| t == "degraded-spike"),
        "the maintenance spike must fire degraded-spike, fired: {:?}",
        one.report.flight_triggers
    );
    assert!(
        one.flight_dump.contains("degraded-spike"),
        "the trigger must appear in the dump:\n{}",
        one.flight_dump
    );
    for threads in [2, 4] {
        let n = blameit_scenario::run_scenario(&file, &scn, threads)
            .unwrap_or_else(|e| panic!("run at {threads} threads: {e}"));
        assert_eq!(
            one.transcript, n.transcript,
            "transcript at {threads} threads diverged"
        );
        assert_eq!(
            one.flight_dump, n.flight_dump,
            "flight dump at {threads} threads diverged"
        );
    }
}

#[test]
fn alerts_emit_in_canonical_order() {
    // The alert stream is a rendered surface: any HashMap-ordered
    // emission upstream shows up here as an out-of-order pair. The
    // canonical key is impact (descending), then (loc, path, client_as).
    let mut rng = DetRng::from_keys(0xA1E7, &[0]);
    let (world, fault_start) = faulty_world(&mut rng);
    let outs = run_at(
        &world,
        4,
        TimeRange::new(fault_start, fault_start + 2 * 3_600),
    );
    let mut alerts_seen = 0;
    for out in &outs {
        for pair in out.alerts.windows(2) {
            let key = |a: &blameit::Alert| {
                (
                    std::cmp::Reverse(a.impacted_connections),
                    a.loc,
                    a.path,
                    a.client_as,
                )
            };
            assert!(
                key(&pair[0]) <= key(&pair[1]),
                "alerts out of canonical order: {:?} then {:?}",
                (pair[0].loc, pair[0].path, pair[0].impacted_connections),
                (pair[1].loc, pair[1].path, pair[1].impacted_connections),
            );
        }
        alerts_seen += out.alerts.len();
    }
    assert!(alerts_seen > 0, "the faulty window must alert");
}
