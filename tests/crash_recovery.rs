//! The durability contract: a crash at *any* kill point of the
//! durable-tick protocol, at any thread count, recovers to a state
//! from which the resumed run is **byte-identical** to a run that
//! never crashed. Verified over the canonical tick transcript — the
//! same instrument PR 2 used for the sharded tick and PR 3 for the
//! chaos layer — by composing the crashed run's delivered outputs,
//! the recovery replay, and the resumed ticks.
//!
//! Also covered: corrupted (bit-flipped) and truncated snapshots are
//! rejected at load with a counted fallback to an older snapshot, and
//! `fsck` distinguishes crash residue (warnings) from corruption
//! (errors).

use blameit::{
    render_tick_transcript, BadnessThresholds, BlameItConfig, BlameItEngine, DurableEngine,
    PersistError, StartMode, StateStore, TickOutput, WorldBackend,
};
use blameit_bench::{quiet_world, Scale};
use blameit_obs::MetricsRegistry;
use blameit_simnet::{
    CrashPlan, CrashPoint, Fault, FaultId, FaultTarget, SimTime, TimeBucket, TimeRange, World,
};
use blameit_topology::rng::DetRng;
use blameit_topology::testkit::check;
use blameit_topology::Asn;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A quiet tiny world with one cloud fault and one middle fault chosen
/// by `rng`, so every pipeline phase has real state worth persisting.
fn faulty_world(rng: &mut DetRng) -> (World, SimTime) {
    let mut world = quiet_world(Scale::Tiny, 2, rng.next_u64());
    let topo = world.topology();
    let loc = topo.clients[rng.index(topo.clients.len())].primary_loc;
    let mut middles: Vec<Asn> = topo
        .clients
        .iter()
        .flat_map(|c| {
            let route = &topo.routes_for(c.primary_loc, c).options[0];
            topo.paths.get(route.path_id).middle.clone()
        })
        .collect();
    middles.sort_unstable();
    middles.dedup();
    let middle = *rng.pick(&middles);
    let start = SimTime::from_hours(25 + rng.below(3));
    world.add_faults(vec![
        Fault {
            id: FaultId(0),
            target: FaultTarget::CloudLocation(loc),
            start,
            duration_secs: 2 * 3_600,
            added_ms: rng.range_f64(60.0, 140.0),
        },
        Fault {
            id: FaultId(1),
            target: FaultTarget::MiddleAs {
                asn: middle,
                via_path: None,
            },
            start,
            duration_secs: 2 * 3_600,
            added_ms: rng.range_f64(60.0, 140.0),
        },
    ]);
    (world, start)
}

fn state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("blameit-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(world: &World, dir: &Path, threads: usize) -> BlameItConfig {
    let mut cfg = BlameItConfig::new(BadnessThresholds::default_for(world));
    cfg.parallelism = threads;
    cfg.state_dir = Some(dir.to_path_buf());
    cfg.snapshot_every_ticks = 2;
    cfg
}

/// The first bucket of every tick in `eval` at the engine's tick width.
fn tick_starts(eval: TimeRange, tick_buckets: u32) -> Vec<TimeBucket> {
    let buckets: Vec<TimeBucket> = eval.buckets().collect();
    buckets
        .chunks(tick_buckets as usize)
        .filter(|c| c.len() == tick_buckets as usize)
        .map(|c| c[0])
        .collect()
}

/// The uninterrupted reference: a plain in-memory engine over the same
/// warmup + eval window.
fn reference_transcript(world: &World, eval: TimeRange, threads: usize) -> String {
    let mut cfg = BlameItConfig::new(BadnessThresholds::default_for(world));
    cfg.parallelism = threads;
    let mut engine = BlameItEngine::new(cfg);
    let mut backend = WorldBackend::with_parallelism(world, threads);
    engine.warmup(&backend, TimeRange::days(1), 2);
    let outs = engine.run(&mut backend, eval);
    render_tick_transcript(&outs)
}

/// Runs the durable engine from cold until `plan` kills it; returns
/// the outputs delivered before the crash and the tick index it died
/// on.
fn run_until_crash(
    world: &World,
    dir: &Path,
    threads: usize,
    eval: TimeRange,
    plan: CrashPlan,
    expect_point: CrashPoint,
) -> (Vec<TickOutput>, u64) {
    let cfg = config(world, dir, threads);
    let mut backend = WorldBackend::with_parallelism(world, threads);
    let registry = Arc::new(MetricsRegistry::new());
    let (mut durable, report) = DurableEngine::open(cfg, registry, &mut backend).unwrap();
    assert_eq!(report.mode, StartMode::Cold);
    durable
        .warmup_and_checkpoint(&backend, TimeRange::days(1), 2)
        .unwrap();
    durable.set_crash_plan(Some(plan));

    let starts = tick_starts(eval, durable.engine().config().tick_buckets);
    let mut delivered = Vec::new();
    for start in &starts {
        match durable.tick(&mut backend, *start) {
            Ok(out) => delivered.push(out),
            Err(PersistError::Crashed(p)) => {
                assert_eq!(p, expect_point, "wrong kill point fired");
                let crash_tick = delivered.len() as u64;
                return (delivered, crash_tick);
            }
            Err(e) => panic!("unexpected persist error: {e}"),
        }
    }
    panic!("crash plan never fired over {} ticks", starts.len());
}

/// Reopens the state dir, resumes the run, and returns the transcript
/// of delivered ++ replayed-beyond-delivered ++ resumed ticks.
fn recover_and_resume(
    world: &World,
    dir: &Path,
    threads: usize,
    eval: TimeRange,
    delivered: Vec<TickOutput>,
    crash_tick: u64,
    point: CrashPoint,
) -> String {
    let cfg = config(world, dir, threads);
    let mut backend = WorldBackend::with_parallelism(world, threads);
    let registry = Arc::new(MetricsRegistry::new());
    let (mut durable, report) = DurableEngine::open(cfg, registry, &mut backend).unwrap();
    assert_eq!(
        report.mode,
        StartMode::Recovered,
        "a pure crash (no corruption) must recover cleanly ({point})"
    );
    assert_eq!(report.snapshots_rejected, 0, "{point}");
    assert_eq!(
        report.journal_torn,
        point == CrashPoint::MidJournal,
        "only a mid-journal crash leaves a torn tail ({point})"
    );
    // The replay covers [snapshot_ticks_done, journal_end); everything
    // before `crash_tick` was already delivered to the caller in run 1.
    let skip = (crash_tick - report.snapshot_ticks_done) as usize;
    assert!(
        report.replayed.len() >= skip,
        "replay cannot end before the delivered prefix ({point})"
    );
    let mut full = delivered;
    full.extend(report.replayed.into_iter().skip(skip));
    full.extend(durable.run(&mut backend, eval).unwrap());
    render_tick_transcript(&full)
}

#[test]
fn kill_point_matrix_recovery_is_byte_identical() {
    check("crash_recovery", 6, |rng| {
        let (world, fault_start) = faulty_world(rng);
        let eval = TimeRange::new(fault_start, fault_start + 3_600);
        for threads in [1usize, 4] {
            let reference = reference_transcript(&world, eval, threads);
            for point in CrashPoint::ALL {
                // Snapshot-phase kill points only fire on a tick where
                // a snapshot is due: with snapshot_every_ticks = 2,
                // that is every odd 0-based tick index.
                let kill_tick = match point {
                    CrashPoint::MidJournal | CrashPoint::PostJournal => 2,
                    CrashPoint::PreSnapshot | CrashPoint::MidSnapshotWrite => 1,
                };
                let dir = state_dir(&format!("matrix-{threads}-{point}"));
                let plan = CrashPlan::kill_at(kill_tick, point, rng.next_u64());
                let (delivered, crash_tick) =
                    run_until_crash(&world, &dir, threads, eval, plan, point);
                assert_eq!(crash_tick, kill_tick, "{point}");

                // Crash residue is survivable by design: fsck must
                // report warnings at worst, never corruption.
                let report = blameit::fsck(&dir);
                assert!(
                    report.ok(),
                    "fsck after a {point} crash found errors:\n{}",
                    report.render()
                );

                let got =
                    recover_and_resume(&world, &dir, threads, eval, delivered, crash_tick, point);
                assert_eq!(
                    reference, got,
                    "recovered run diverged ({threads} thread(s), {point})"
                );
                std::fs::remove_dir_all(&dir).unwrap();
            }
        }
    });
}

#[test]
fn flight_recorder_survives_crash_recovery() {
    // The flight recorder is persisted state: after a crash at any
    // kill point, the recovered-and-resumed ring must dump JSONL
    // byte-identical to an in-memory engine that never persisted or
    // crashed at all (snapshot restore + journal replay re-record the
    // post-snapshot frames).
    let mut rng = DetRng::from_keys(21, &[0xF1]);
    let (world, fault_start) = faulty_world(&mut rng);
    let eval = TimeRange::new(fault_start, fault_start + 3_600);

    let mut cfg = BlameItConfig::new(BadnessThresholds::default_for(&world));
    cfg.parallelism = 1;
    let mut reference = BlameItEngine::new(cfg);
    let mut backend = WorldBackend::with_parallelism(&world, 1);
    reference.warmup(&backend, TimeRange::days(1), 2);
    reference.run(&mut backend, eval);
    let want = reference.flight().dump_jsonl();
    assert!(
        want.contains("\"kind\":\"frame\""),
        "the reference run must record flight frames:\n{want}"
    );

    for point in CrashPoint::ALL {
        let kill_tick = match point {
            CrashPoint::MidJournal | CrashPoint::PostJournal => 2,
            CrashPoint::PreSnapshot | CrashPoint::MidSnapshotWrite => 1,
        };
        let dir = state_dir(&format!("flight-{point}"));
        let plan = CrashPlan::kill_at(kill_tick, point, 0x5EED);
        let (_, crash_tick) = run_until_crash(&world, &dir, 1, eval, plan, point);
        assert_eq!(crash_tick, kill_tick, "{point}");

        let cfg = config(&world, &dir, 1);
        let mut backend = WorldBackend::with_parallelism(&world, 1);
        let registry = Arc::new(MetricsRegistry::new());
        let (mut durable, report) = DurableEngine::open(cfg, registry, &mut backend).unwrap();
        assert_eq!(report.mode, StartMode::Recovered, "{point}");
        durable.run(&mut backend, eval).unwrap();
        assert_eq!(
            want,
            durable.engine().flight().dump_jsonl(),
            "flight dump diverged after {point} recovery"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Runs a full durable window to completion and returns the state dir
/// plus the reference transcript.
fn completed_run(tag: &str, seed: u64) -> (World, PathBuf, TimeRange) {
    let mut rng = DetRng::from_keys(seed, &[0xD1]);
    let (world, fault_start) = faulty_world(&mut rng);
    let eval = TimeRange::new(fault_start, fault_start + 3_600);
    let dir = state_dir(tag);
    let cfg = config(&world, &dir, 1);
    let mut backend = WorldBackend::with_parallelism(&world, 1);
    let (mut durable, _) =
        DurableEngine::open(cfg, Arc::new(MetricsRegistry::new()), &mut backend).unwrap();
    durable
        .warmup_and_checkpoint(&backend, TimeRange::days(1), 2)
        .unwrap();
    durable.run(&mut backend, eval).unwrap();
    (world, dir, eval)
}

#[test]
fn corrupted_snapshot_falls_back_and_is_counted() {
    let (world, dir, eval) = completed_run("bitflip", 11);
    let store = StateStore::create(&dir).unwrap();
    let snaps = store.list_snapshots().unwrap();
    assert!(snaps.len() >= 2, "need an older snapshot to fall back to");
    let (_, newest) = snaps.last().unwrap();
    let mut bytes = std::fs::read(newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(newest, &bytes).unwrap();

    // fsck sees the corruption.
    let report = blameit::fsck(&dir);
    assert!(!report.ok(), "{}", report.render());
    assert!(report.render().contains("CORRUPT"), "{}", report.render());

    // Recovery rejects the corrupt snapshot, falls back to the older
    // one, replays the journal gap, and counts the fallback.
    let cfg = config(&world, &dir, 1);
    let mut backend = WorldBackend::with_parallelism(&world, 1);
    let registry = Arc::new(MetricsRegistry::new());
    let (durable, recovery) = DurableEngine::open(cfg, registry.clone(), &mut backend).unwrap();
    assert_eq!(recovery.mode, StartMode::RecoveredFallback);
    assert_eq!(recovery.snapshots_rejected, 1);
    assert!(recovery.ticks_replayed > 0, "the journal gap replays");
    assert_eq!(durable.ticks_done(), tick_starts(eval, 3).len() as u64);

    let exposition = registry.render_prometheus();
    assert!(
        exposition.contains("blameit_recoveries_total{outcome=\"fallback\"} 1"),
        "{exposition}"
    );
    assert!(
        exposition.contains("blameit_snapshots_rejected_total 1"),
        "{exposition}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn truncated_snapshot_falls_back() {
    let (world, dir, _eval) = completed_run("truncate", 12);
    let store = StateStore::create(&dir).unwrap();
    let snaps = store.list_snapshots().unwrap();
    let (_, newest) = snaps.last().unwrap();
    let bytes = std::fs::read(newest).unwrap();
    std::fs::write(newest, &bytes[..bytes.len() / 3]).unwrap();

    let cfg = config(&world, &dir, 1);
    let mut backend = WorldBackend::with_parallelism(&world, 1);
    let (_, recovery) =
        DurableEngine::open(cfg, Arc::new(MetricsRegistry::new()), &mut backend).unwrap();
    assert_eq!(recovery.mode, StartMode::RecoveredFallback);
    assert_eq!(recovery.snapshots_rejected, 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn foreign_state_dir_is_refused_not_overwritten() {
    let (world, dir, _eval) = completed_run("foreign", 13);
    // An engine with a different seed must refuse the directory
    // outright rather than silently starting cold over foreign state.
    let mut cfg = config(&world, &dir, 1);
    cfg.seed ^= 1;
    let mut backend = WorldBackend::with_parallelism(&world, 1);
    let err = DurableEngine::open(cfg, Arc::new(MetricsRegistry::new()), &mut backend)
        .err()
        .expect("foreign dir must be refused");
    assert!(
        matches!(err, PersistError::ConfigMismatch(_)),
        "got {err:?}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
