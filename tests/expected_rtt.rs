//! Integration test for §4.3: learned expected RTTs disambiguate cloud
//! faults that the raw badness threshold would miss.
//!
//! The paper's worked example: threshold 50 ms, historical RTTs
//! uniform [35, 45] ms (median 40), post-fault RTTs uniform
//! [40, 70] ms. Against the *threshold* only 1/3 of quartets read bad
//! (< τ = 0.8, no cloud blame); against the learned 40 ms median they
//! all read elevated, and the cloud is blamed. Here the same effect is
//! exercised through the full simulator: a moderate cloud fault that
//! only pushes *some* quartets past the threshold still gets blamed on
//! the cloud because every quartet exceeds its learned expectation.

use blameit::{
    assign_blames, enrich_bucket, BadnessThresholds, Blame, BlameConfig, ExpectedRttLearner,
    RttKey, WorldBackend,
};
use blameit_bench::{quiet_world, Scale};
use blameit_simnet::{Fault, FaultId, FaultTarget, SimTime, TimeBucket, TimeRange};

#[test]
fn learned_expectation_catches_partial_threshold_breach() {
    let mut world = quiet_world(Scale::Tiny, 2, 777);

    // Find the busiest (location, daytime bucket) pair for non-mobile
    // traffic — activity is diurnal, so scan slots around the clock.
    let thresholds = BadnessThresholds::default_for(&world);
    let backend0 = WorldBackend::new(&world);
    let mut best: Option<(blameit_topology::CloudLocId, TimeBucket, usize)> = None;
    for slot in (24..288).step_by(48) {
        let bucket = TimeBucket(slot);
        let mut per_loc: std::collections::HashMap<_, usize> = std::collections::HashMap::new();
        for q in enrich_bucket(&backend0, bucket, &thresholds) {
            if !q.obs.mobile {
                *per_loc.entry(q.obs.loc).or_default() += 1;
            }
        }
        for (loc, n) in per_loc {
            if best.is_none_or(|(_, _, b)| n > b) {
                best = Some((loc, bucket, n));
            }
        }
    }
    let (loc, probe_bucket, _) = best.expect("some location has traffic");
    let loc_quartets: Vec<f64> = enrich_bucket(&backend0, probe_bucket, &thresholds)
        .into_iter()
        .filter(|q| q.obs.loc == loc && !q.obs.mobile)
        .map(|q| q.obs.mean_rtt_ms)
        .collect();
    assert!(loc_quartets.len() > 10, "need a busy location");
    let typical = blameit::stats::median(&loc_quartets).unwrap();
    let region = world.topology().cloud_location(loc).region;
    let threshold = thresholds.get(region, false);
    assert!(typical < threshold);
    let added = ((threshold - typical) * 1.1).max(12.0);
    world.add_faults(vec![Fault {
        id: FaultId(0),
        target: FaultTarget::CloudLocation(loc),
        start: SimTime::from_days(1),
        duration_secs: 86_400,
        added_ms: added,
    }]);

    // Learn day-0 expected RTTs.
    let backend = WorldBackend::new(&world);
    let cfg = BlameConfig::default();
    let mut learner = ExpectedRttLearner::new(1);
    for bucket in TimeRange::days(1).buckets().step_by(2) {
        for q in enrich_bucket(&backend, bucket, &thresholds) {
            learner.observe(
                RttKey::Cloud(q.obs.loc, q.obs.mobile),
                bucket.day(),
                q.obs.mean_rtt_ms,
            );
            learner.observe(
                RttKey::Middle(cfg.grouping.key(&q.info), q.obs.mobile),
                bucket.day(),
                q.obs.mean_rtt_ms,
            );
        }
    }

    // Mid-fault, same time-of-day slot as the calibration bucket so
    // activity is comparable.
    let bucket = SimTime::from_days(1).bucket().plus(probe_bucket.0);
    let quartets = enrich_bucket(&backend, bucket, &thresholds);
    let at_loc: Vec<_> = quartets.iter().filter(|q| q.obs.loc == loc).collect();
    let bad_frac_by_threshold =
        at_loc.iter().filter(|q| q.bad).count() as f64 / at_loc.len() as f64;
    assert!(
        bad_frac_by_threshold < 0.8,
        "fault must be moderate for the test to be meaningful; got {bad_frac_by_threshold}"
    );
    assert!(
        bad_frac_by_threshold > 0.0,
        "some quartets must still breach the threshold"
    );

    let (blames, stats) = assign_blames(&quartets, &learner, &cfg);
    // Against the learned expectation the whole location is shifted.
    assert!(
        stats.cloud_bad_fraction(loc) >= 0.8,
        "learned expectation must expose the shift; got {}",
        stats.cloud_bad_fraction(loc)
    );
    let at_loc_blames: Vec<_> = blames.iter().filter(|b| b.obs.loc == loc).collect();
    assert!(!at_loc_blames.is_empty());
    for b in &at_loc_blames {
        assert_eq!(b.blame, Blame::Cloud, "{:?}", b.obs);
    }
}
