//! Golden regression: the full blame/alert stream of one fixed
//! seed+scenario, serialized through the canonical tick transcript and
//! pinned under `tests/golden/`. Any change to verdict logic, ranking,
//! localization, probe scheduling, or emission order shows up as a
//! transcript diff.
//!
//! To re-bless after an intentional behavior change:
//!
//! ```text
//! BLESS=1 cargo test --test golden_output
//! ```

use blameit::{
    render_tick_transcript, BadnessThresholds, BlameItConfig, BlameItEngine, WorldBackend,
};
use blameit_bench::{quiet_world, Scale};
use blameit_simnet::{Fault, FaultId, FaultTarget, SimTime, TimeRange};
use blameit_topology::CloudLocId;
use std::path::PathBuf;

const SEED: u64 = 20190519; // SIGCOMM '19 camera-ready vintage

fn golden_path() -> PathBuf {
    golden_file("tick_transcript.txt")
}

fn golden_file(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join(name)
}

/// The pinned scenario: a quiet tiny world, one +110 ms cloud fault at
/// hour 25 for two hours, evaluated over the fault's first 90 minutes.
fn transcript() -> String {
    let mut world = quiet_world(Scale::Tiny, 2, SEED);
    world.add_faults(vec![Fault {
        id: FaultId(0),
        target: FaultTarget::CloudLocation(CloudLocId(0)),
        start: SimTime::from_hours(25),
        duration_secs: 2 * 3_600,
        added_ms: 110.0,
    }]);
    let mut cfg = BlameItConfig::new(BadnessThresholds::default_for(&world));
    // Pin the thread count so the golden run does not depend on the
    // machine — though the whole point of the sharded tick is that it
    // wouldn't anyway.
    cfg.parallelism = 2;
    let mut engine = BlameItEngine::new(cfg);
    let mut backend = WorldBackend::with_parallelism(&world, 2);
    engine.warmup(&backend, TimeRange::days(1), 2);
    let start = SimTime::from_hours(25);
    let outs = engine.run(&mut backend, TimeRange::new(start, start + 90 * 60));
    render_tick_transcript(&outs)
}

/// Blesses `got` into `path` under BLESS=1, otherwise compares.
fn bless_or_compare(path: &std::path::Path, got: &str) {
    if std::env::var("BLESS").is_ok_and(|v| !v.is_empty() && v != "0") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(path, got).unwrap();
        eprintln!("blessed {} ({} bytes)", path.display(), got.len());
        return;
    }
    let want = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with BLESS=1 cargo test --test golden_output",
            path.display()
        )
    });
    similar_assert(&want, got);
}

#[test]
fn blame_and_alert_stream_matches_golden() {
    let got = transcript();
    assert!(
        got.contains("blame "),
        "scenario must produce verdicts; transcript:\n{got}"
    );
    bless_or_compare(&golden_path(), &got);
}

#[test]
fn explain_incident_matches_golden() {
    // The `explain` surface is golden-pinned end to end: an injected
    // +100 ms middle-AS fault, localized and rendered with its full
    // provenance chain (Algorithm-1 branch, priority/budget position,
    // probe attempts, baseline age, per-AS delta table).
    let argv: Vec<String> = [
        "explain",
        "incident:0",
        "--scale",
        "tiny",
        "--seed",
        "2019",
        "--target",
        "middle:104",
        "--ms",
        "100",
        "--at-hour",
        "30",
        "--hours",
        "2",
        "--limit",
        "2",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let got = blameit_cli::run(&argv).expect("explain must succeed on the pinned scenario");
    assert!(
        got.contains("culprit(AS104)"),
        "the injected middle fault must be localized; output:\n{got}"
    );
    bless_or_compare(&golden_file("explain_incident.txt"), &got);
}

/// assert_eq! with a first-divergence report instead of dumping two
/// multi-kilobyte strings.
fn similar_assert(want: &str, got: &str) {
    if want == got {
        return;
    }
    for (i, (w, g)) in want.lines().zip(got.lines()).enumerate() {
        assert_eq!(
            w,
            g,
            "golden transcript diverges at line {} (re-bless with BLESS=1 if intended)",
            i + 1
        );
    }
    panic!(
        "golden transcript length changed: {} vs {} lines (re-bless with BLESS=1 if intended)",
        want.lines().count(),
        got.lines().count()
    );
}
