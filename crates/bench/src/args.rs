//! Minimal command-line parsing for the experiment binaries.
//!
//! Every binary accepts `--seed N`, `--scale tiny|small|default`, and
//! usually `--days N`; figure-specific flags parse through the same
//! helper. No dependency needed for flags this simple.

use crate::scenarios::Scale;

/// Parsed `--key value` arguments.
#[derive(Clone, Debug, Default)]
pub struct Args {
    pairs: Vec<(String, String)>,
}

impl Args {
    /// Parses the process arguments.
    ///
    /// # Panics
    /// Panics (with usage help) on a dangling `--key` or a stray
    /// positional argument.
    pub fn parse() -> Args {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    pub fn parse_from(items: impl IntoIterator<Item = String>) -> Args {
        let mut pairs = Vec::new();
        let mut it = items.into_iter();
        while let Some(k) = it.next() {
            let Some(key) = k.strip_prefix("--") else {
                panic!("unexpected positional argument {k:?}; use --key value");
            };
            let v = it
                .next()
                .unwrap_or_else(|| panic!("missing value for --{key}"));
            pairs.push((key.to_string(), v));
        }
        Args { pairs }
    }

    /// Raw string lookup (last occurrence wins).
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// u64 with default.
    pub fn u64(&self, key: &str, default: u64) -> u64 {
        self.get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} expects an integer, got {v:?}"))
            })
            .unwrap_or(default)
    }

    /// f64 with default.
    pub fn f64(&self, key: &str, default: f64) -> f64 {
        self.get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} expects a number, got {v:?}"))
            })
            .unwrap_or(default)
    }

    /// Scale with default.
    pub fn scale(&self, default: Scale) -> Scale {
        match self.get("scale") {
            None => default,
            Some("tiny") => Scale::Tiny,
            Some("small") => Scale::Small,
            Some("default") => Scale::Default,
            Some(v) => panic!("--scale expects tiny|small|default, got {v:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Args {
        Args::parse_from(s.iter().map(|x| x.to_string()))
    }

    #[test]
    fn parses_pairs() {
        let a = args(&["--seed", "7", "--scale", "tiny"]);
        assert_eq!(a.u64("seed", 1), 7);
        assert_eq!(a.scale(Scale::Small), Scale::Tiny);
        assert_eq!(a.u64("days", 3), 3);
        assert_eq!(a.f64("tau", 0.8), 0.8);
    }

    #[test]
    fn last_occurrence_wins() {
        let a = args(&["--seed", "7", "--seed", "9"]);
        assert_eq!(a.u64("seed", 1), 9);
    }

    #[test]
    #[should_panic(expected = "missing value")]
    fn dangling_key_panics() {
        args(&["--seed"]);
    }

    #[test]
    #[should_panic(expected = "positional")]
    fn positional_panics() {
        args(&["seed"]);
    }
}
