//! Evaluation: scoring BlameIt against the simulator's ground truth.
//!
//! The paper validates against manual incident investigations (§6.3)
//! and continuous-traceroute corroboration (§6.4). Here the simulator
//! *is* the adjudicator: every quartet's true culprit segment/AS is
//! known, so accuracy is exact.

use crate::scenarios::IncidentScenario;
use blameit::{Blame, BlameResult, MiddleLocalization};
use blameit_simnet::{Segment, World};
use blameit_topology::Asn;
use std::collections::HashMap;
use std::fmt;

/// Confusion matrix: ground-truth segment (rows) × BlameIt verdict
/// (columns). Quartets that are bad without any ground-truth cause
/// (pure noise) are tracked separately.
#[derive(Clone, Debug, Default)]
pub struct ConfusionMatrix {
    counts: HashMap<(Segment, Blame), u64>,
    /// Bad quartets with no ground-truth culprit (noise-only badness).
    pub no_ground_truth: u64,
}

impl ConfusionMatrix {
    /// An empty matrix.
    pub fn new() -> Self {
        ConfusionMatrix::default()
    }

    /// Adds one scored quartet.
    pub fn add(&mut self, gt: Segment, blame: Blame) {
        *self.counts.entry((gt, blame)).or_default() += 1;
    }

    /// Count in one cell.
    pub fn get(&self, gt: Segment, blame: Blame) -> u64 {
        self.counts.get(&(gt, blame)).copied().unwrap_or(0)
    }

    /// Total scored quartets (excluding no-ground-truth ones).
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Decisive verdicts (cloud/middle/client, not
    /// ambiguous/insufficient).
    pub fn decisive(&self) -> u64 {
        self.counts
            .iter()
            .filter(|((_, b), _)| matches!(b, Blame::Cloud | Blame::Middle | Blame::Client))
            .map(|(_, n)| n)
            .sum()
    }

    /// Correct decisive verdicts: GT segment matches the blame.
    pub fn correct(&self) -> u64 {
        [
            (Segment::Cloud, Blame::Cloud),
            (Segment::Middle, Blame::Middle),
            (Segment::Client, Blame::Client),
        ]
        .iter()
        .map(|(g, b)| self.get(*g, *b))
        .sum()
    }

    /// Accuracy over decisive verdicts (0 when none).
    pub fn accuracy(&self) -> f64 {
        let d = self.decisive();
        if d == 0 {
            0.0
        } else {
            self.correct() as f64 / d as f64
        }
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:>10} | {:>8} {:>8} {:>8} {:>10} {:>12}",
            "gt\\blame", "cloud", "middle", "client", "ambiguous", "insufficient"
        )?;
        for gt in [Segment::Cloud, Segment::Middle, Segment::Client] {
            writeln!(
                f,
                "{:>10} | {:>8} {:>8} {:>8} {:>10} {:>12}",
                gt.to_string(),
                self.get(gt, Blame::Cloud),
                self.get(gt, Blame::Middle),
                self.get(gt, Blame::Client),
                self.get(gt, Blame::Ambiguous),
                self.get(gt, Blame::Insufficient),
            )?;
        }
        writeln!(f, "no-ground-truth bad quartets: {}", self.no_ground_truth)?;
        write!(f, "decisive accuracy: {:.1}%", 100.0 * self.accuracy())
    }
}

/// Scores each blame verdict against the quartet's ground truth at its
/// bucket midpoint.
pub fn score_blames(world: &World, blames: &[BlameResult]) -> ConfusionMatrix {
    let mut m = ConfusionMatrix::new();
    for b in blames {
        let Some(client) = world.topology().client(b.obs.p24) else {
            continue;
        };
        let gt = world.ground_truth(b.obs.loc, client, b.obs.bucket.mid());
        match gt.culprit {
            Some(c) => m.add(c.segment, b.blame),
            None => m.no_ground_truth += 1,
        }
    }
    m
}

/// The verdict for one scripted incident.
#[derive(Clone, Debug)]
pub struct IncidentVerdict {
    /// Scenario name.
    pub name: String,
    /// Blame verdicts within the incident's scope, per category.
    pub votes: HashMap<Blame, u64>,
    /// The dominant (plurality) verdict, if any votes exist.
    pub dominant: Option<Blame>,
    /// Culprit AS named by the active phase, if localized.
    pub localized_culprit: Option<Asn>,
    /// True if the dominant verdict matches the expected segment (and,
    /// for middle incidents with a localization, the culprit AS too).
    pub correct: bool,
    /// Confidence: fraction of in-scope votes agreeing with the
    /// dominant verdict (the §6.3 case-5 notion).
    pub confidence: f64,
}

/// Scores one incident from the engine outputs produced while it was
/// active. `blames` and `localizations` may span more than the
/// incident; scoping is applied here.
pub fn score_incident(
    world: &World,
    scenario: &IncidentScenario,
    blames: &[BlameResult],
    localizations: &[MiddleLocalization],
) -> IncidentVerdict {
    let window = scenario.window();
    let topo = world.topology();
    let in_scope = |b: &BlameResult| -> bool {
        if !window.contains(b.obs.bucket.mid()) {
            return false;
        }
        match scenario.expected_segment {
            Segment::Cloud => {
                scenario.visible_at.is_empty() || scenario.visible_at.contains(&b.obs.loc)
            }
            Segment::Middle => topo
                .paths
                .get(b.path)
                .middle
                .contains(&scenario.expected_asn),
            Segment::Client => b.origin == scenario.expected_asn,
        }
    };

    let mut votes: HashMap<Blame, u64> = HashMap::new();
    for b in blames.iter().filter(|b| in_scope(b)) {
        *votes.entry(b.blame).or_default() += 1;
    }
    let dominant = votes
        .iter()
        .max_by_key(|(b, n)| (**n, std::cmp::Reverse(**b)))
        .map(|(b, _)| *b);
    let total: u64 = votes.values().sum();
    let confidence = dominant
        .map(|d| votes[&d] as f64 / total as f64)
        .unwrap_or(0.0);

    // Active-phase attribution inside the window: for middle
    // incidents, a localization on a path through the faulty AS; for
    // client incidents, any localization naming the client AS (a path
    // dominated by one client AS is passively indistinguishable from a
    // middle issue, but the traceroute diff pins the client hop).
    let localized_culprit = match scenario.expected_segment {
        Segment::Middle => localizations
            .iter()
            .filter(|l| window.contains(l.probed_at))
            .filter(|l| {
                topo.paths
                    .get(l.issue.issue.path)
                    .middle
                    .contains(&scenario.expected_asn)
            })
            .find_map(|l| l.culprit),
        Segment::Client => localizations
            .iter()
            .filter(|l| window.contains(l.probed_at))
            .find_map(|l| l.culprit.filter(|c| *c == scenario.expected_asn)),
        Segment::Cloud => None,
    };

    let expected_blame = match scenario.expected_segment {
        Segment::Cloud => Blame::Cloud,
        Segment::Middle => Blame::Middle,
        Segment::Client => Blame::Client,
    };
    let segment_ok = dominant == Some(expected_blame);
    // BlameIt's deliverable is the blamed AS (§1): the incident counts
    // as localized when either the coarse verdict or the active-phase
    // culprit names the injected fault — and counts as missed when the
    // active phase confidently names a *different* AS.
    let correct = match scenario.expected_segment {
        Segment::Cloud => segment_ok,
        Segment::Middle | Segment::Client => match localized_culprit {
            Some(c) => c == scenario.expected_asn,
            None => segment_ok,
        },
    };

    IncidentVerdict {
        name: scenario.name.clone(),
        votes,
        dominant,
        localized_culprit,
        correct,
        confidence,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_matrix_accuracy() {
        let mut m = ConfusionMatrix::new();
        for _ in 0..8 {
            m.add(Segment::Middle, Blame::Middle);
        }
        m.add(Segment::Middle, Blame::Client);
        m.add(Segment::Cloud, Blame::Cloud);
        m.add(Segment::Client, Blame::Ambiguous); // not decisive
        assert_eq!(m.total(), 11);
        assert_eq!(m.decisive(), 10);
        assert_eq!(m.correct(), 9);
        assert!((m.accuracy() - 0.9).abs() < 1e-12);
        let s = m.to_string();
        assert!(s.contains("decisive accuracy: 90.0%"), "{s}");
    }

    #[test]
    fn empty_matrix() {
        let m = ConfusionMatrix::new();
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.total(), 0);
    }
}
