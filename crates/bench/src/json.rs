//! Minimal JSON writer for machine-readable experiment output.
//!
//! The figure binaries print aligned text for humans; downstream
//! plotting wants JSON. This is a tiny, dependency-free emitter (the
//! workspace keeps runtime deps at zero) covering exactly the shapes
//! the harness produces: objects, arrays, strings, numbers, booleans.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Finite number (non-finite values serialize as `null`).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object builder.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds a field to an object (panics on non-objects).
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            _ => panic!("field() on a non-object"),
        }
        self
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) if x.is_finite() => {
                if *x == x.trunc() && x.abs() < 1e15 {
                    write!(out, "{}", *x as i64).unwrap();
                } else {
                    write!(out, "{x}").unwrap();
                }
            }
            Json::Num(_) => out.push_str("null"),
            Json::Str(s) => {
                out.push('"');
                for ch in s.chars() {
                    match ch {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32).unwrap(),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}
impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::Num(x as f64)
    }
}
impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::Num(x as f64)
    }
}
impl From<bool> for Json {
    fn from(x: bool) -> Json {
        Json::Bool(x)
    }
}
impl From<&str> for Json {
    fn from(x: &str) -> Json {
        Json::Str(x.to_string())
    }
}
impl From<String> for Json {
    fn from(x: String) -> Json {
        Json::Str(x)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(xs: Vec<T>) -> Json {
        Json::Arr(xs.into_iter().map(Into::into).collect())
    }
}

/// A CDF as a JSON array of `[x, F(x)]` pairs.
pub fn cdf_json(points: &[(f64, f64)]) -> Json {
    Json::Arr(
        points
            .iter()
            .map(|(x, f)| Json::Arr(vec![Json::Num(*x), Json::Num(*f)]))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::Num(3.0).to_string(), "3");
        assert_eq!(Json::Num(3.25).to_string(), "3.25");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Str("a\"b\n".into()).to_string(), r#""a\"b\n""#);
    }

    #[test]
    fn structures() {
        let j = Json::obj()
            .field("experiment", "fig4a")
            .field("seed", 2019u64)
            .field("holds", true)
            .field("series", vec![1.0, 0.5]);
        assert_eq!(
            j.to_string(),
            r#"{"experiment":"fig4a","seed":2019,"holds":true,"series":[1,0.5]}"#
        );
    }

    #[test]
    fn cdf_pairs() {
        let j = cdf_json(&[(1.0, 0.25), (2.0, 1.0)]);
        assert_eq!(j.to_string(), "[[1,0.25],[2,1]]");
    }

    #[test]
    fn control_chars_escaped() {
        let j = Json::Str("\u{1}".into());
        assert_eq!(j.to_string(), "\"\\u0001\"");
    }

    #[test]
    #[should_panic(expected = "non-object")]
    fn field_on_array_panics() {
        let _ = Json::Arr(vec![]).field("x", 1u64);
    }
}
