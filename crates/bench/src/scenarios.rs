//! Standard seeded scenarios for the experiment harness.
//!
//! Every figure/table binary builds its world here so scales and seeds
//! stay consistent and each experiment is reproducible from its
//! default seed. The incident suite re-creates the paper's §6.3
//! validation set: 88 scripted incidents (including the five named
//! case studies) with known ground truth.

use blameit::BadnessThresholds;
use blameit_simnet::{
    Fault, FaultId, FaultRates, FaultTarget, Segment, SimTime, TimeRange, World, WorldConfig,
};
use blameit_topology::rng::DetRng;
use blameit_topology::{Asn, CloudLocId, Region, TopologyConfig};

/// World scale for experiments.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// ~400 client /24s (unit-test speed).
    Tiny,
    /// ~1500 client /24s (figure regeneration; minutes-long runs).
    Small,
    /// Paper-shaped default (~5000 /24s).
    Default,
}

impl Scale {
    /// Topology configuration at this scale.
    pub fn topology(self, seed: u64) -> TopologyConfig {
        match self {
            Scale::Tiny => TopologyConfig::tiny(seed),
            Scale::Small => TopologyConfig {
                seed,
                broadband_per_metro: 3,
                mobile_per_metro: 1,
                prefixes_per_access: (2, 3),
                prefix_len: (20, 21),
                ..TopologyConfig::default()
            },
            Scale::Default => TopologyConfig {
                seed,
                ..TopologyConfig::default()
            },
        }
    }
}

/// The [`WorldConfig`] behind [`organic_world`]/[`quiet_world`],
/// exposed so scenario files (`blameit-scenario`) can override model
/// knobs — activity, latency, churn, topology — before the world is
/// built. `quiet` zeroes generated faults and churn.
pub fn world_config(scale: Scale, days: u64, seed: u64, quiet: bool) -> WorldConfig {
    let mut cfg = WorldConfig {
        topology: scale.topology(seed ^ 0x7090),
        ..WorldConfig::new(days, seed)
    };
    if quiet {
        cfg.fault_rates = FaultRates {
            cloud_per_loc_day: 0.0,
            middle_per_as_day: 0.0,
            client_as_per_day: 0.0,
            client_prefix_per_k_day: 0.0,
            middle_path_scoped_frac: 0.0,
        };
        cfg.churn_rate_per_day = 0.0;
    }
    cfg
}

/// A world with organic (generated) faults and churn — the standard
/// measurement-study setting.
pub fn organic_world(scale: Scale, days: u64, seed: u64) -> World {
    let _span = blameit_obs::span!("blameit::bench", "organic_world", days = days, seed = seed);
    World::new(world_config(scale, days, seed, false))
}

/// A world with *no* generated faults and no churn: scenarios inject
/// their own.
pub fn quiet_world(scale: Scale, days: u64, seed: u64) -> World {
    let _span = blameit_obs::span!("blameit::bench", "quiet_world", days = days, seed = seed);
    World::new(world_config(scale, days, seed, true))
}

/// One scripted incident with ground truth, for the §6.3 validation.
#[derive(Clone, Debug)]
pub struct IncidentScenario {
    /// Short name (the five case studies carry the paper's names).
    pub name: String,
    /// The injected fault.
    pub fault: Fault,
    /// Expected coarse blame.
    pub expected_segment: Segment,
    /// Expected culprit AS.
    pub expected_asn: Asn,
    /// Locations where the incident should be visible (empty = any).
    pub visible_at: Vec<CloudLocId>,
}

impl IncidentScenario {
    /// The incident's active window.
    pub fn window(&self) -> TimeRange {
        TimeRange::new(self.fault.start, self.fault.end())
    }
}

/// Builds the 88-incident validation suite over a (quiet) world:
/// 5 named case studies patterned on §6.3 plus 83 generated incidents
/// mixing cloud, middle (AS-wide and path-scoped) and client faults.
/// Incidents are serialized — each starts ≥ 30 minutes after the
/// previous one *ends* — so every one can be scored in isolation, as
/// the paper's individually-investigated incidents were. All are long
/// (≥ 45 min) and strong — they model *investigated* incidents, which
/// are exactly the long-lived, high-impact tail (§2.3).
pub fn incident_suite(world: &World, start_day: u64, seed: u64) -> Vec<IncidentScenario> {
    let _span = blameit_obs::span!("blameit::bench", "incident_suite", start_day = start_day);
    let topo = world.topology();
    // Investigated incidents are the strong, unambiguous ones (the
    // paper's case 5 is an 18× RTT jump); scale client-fault magnitudes
    // to the region's badness target so every affected /24 breaches it
    // at its nearest location, not just dual-homed secondaries.
    let thresholds = BadnessThresholds::default_for(world);
    let region_of_as = |asn: Asn| -> Region {
        topo.clients
            .iter()
            .find(|c| c.origin == asn)
            .map(|c| c.region)
            .unwrap_or(Region::Europe)
    };
    let client_fault_ms = |asn: Asn, rng: &mut DetRng| -> f64 {
        let thr = thresholds.get(region_of_as(asn), false);
        (thr * rng.range_f64(0.9, 1.3)).max(80.0)
    };
    let mut rng = DetRng::from_keys(seed, &[0x88]);
    let mut out: Vec<IncidentScenario> = Vec::new();
    let mut t = SimTime::from_days(start_day);
    fn advance(t: &mut SimTime, rng: &mut DetRng) -> SimTime {
        let cur = *t;
        *t = *t + 3_600 + rng.below(1_800);
        cur
    }
    fn settle(t: &mut SimTime, out: &[IncidentScenario], rng: &mut DetRng) {
        if let Some(last) = out.last() {
            let gap_end = last.fault.end() + 1_800 + rng.below(1_800);
            if gap_end > *t {
                *t = gap_end;
            }
        }
    }

    let loc_in = |region: Region, rng: &mut DetRng| -> CloudLocId {
        let locs: Vec<CloudLocId> = topo
            .cloud_locations
            .iter()
            .filter(|l| l.region == region)
            .map(|l| l.id)
            .collect();
        *rng.pick(&locs)
    };
    // A broadband client AS serving a given region (any if None). The
    // paper's investigated client incidents are broadband ISPs (case 5
    // is a fixed-line ISP); cellular thresholds are loose enough that a
    // moderate fault can stay under them at the nearest location.
    // Share of each location's clients belonging to one access AS —
    // a client AS holding most of a small edge location's traffic is
    // indistinguishable from the location itself under hierarchical
    // elimination (Azure locations serve thousands of ASes; our
    // simulated ones serve a handful).
    let mut client_loc_share: std::collections::HashMap<Asn, f64> =
        std::collections::HashMap::new();
    {
        let mut per_loc_total: std::collections::HashMap<CloudLocId, u32> =
            std::collections::HashMap::new();
        let mut per_loc_as: std::collections::HashMap<(CloudLocId, Asn), u32> =
            std::collections::HashMap::new();
        for c in &topo.clients {
            *per_loc_total.entry(c.primary_loc).or_default() += 1;
            *per_loc_as.entry((c.primary_loc, c.origin)).or_default() += 1;
        }
        for ((loc, asn), n) in per_loc_as {
            let total = per_loc_total[&loc];
            if total >= 6 {
                let share = n as f64 / total as f64;
                let e = client_loc_share.entry(asn).or_default();
                *e = e.max(share);
            }
        }
    }
    let client_as = |region: Option<Region>, rng: &mut DetRng| -> Asn {
        let ases: Vec<Asn> = topo
            .clients
            .iter()
            .filter(|c| !c.mobile)
            .filter(|c| region.is_none_or(|r| c.region == r))
            .filter(|c| client_loc_share.get(&c.origin).copied().unwrap_or(0.0) < 0.6)
            .map(|c| c.origin)
            .collect();
        *rng.pick(&ases)
    };
    // Share of each location's clients whose primary route crosses a
    // given AS — the paper's regime has no middle AS carrying ≥80% of
    // a location's traffic (each Azure edge is served by many
    // transits); exclude overconcentrated ASes from the suite, since
    // hierarchical elimination cannot tell them from the cloud itself.
    let mut loc_share: std::collections::HashMap<Asn, f64> = std::collections::HashMap::new();
    {
        let mut per_loc_total: std::collections::HashMap<CloudLocId, u32> =
            std::collections::HashMap::new();
        let mut per_loc_as: std::collections::HashMap<(CloudLocId, Asn), u32> =
            std::collections::HashMap::new();
        for c in &topo.clients {
            *per_loc_total.entry(c.primary_loc).or_default() += 1;
            let route = &topo.routes_for(c.primary_loc, c).options[0];
            for asn in &topo.paths.get(route.path_id).middle {
                *per_loc_as.entry((c.primary_loc, *asn)).or_default() += 1;
            }
        }
        for ((loc, asn), n) in per_loc_as {
            let total = per_loc_total[&loc];
            if total >= 6 {
                let share = n as f64 / total as f64;
                let e = loc_share.entry(asn).or_default();
                *e = e.max(share);
            }
        }
    }
    // A middle AS actually traversed by someone's primary route and
    // not blanketing any location.
    let middle_as = |region_hint: Option<Region>, rng: &mut DetRng| -> Asn {
        let mut ases: Vec<Asn> = Vec::new();
        for c in &topo.clients {
            if region_hint.is_some_and(|r| c.region != r) {
                continue;
            }
            let route = &topo.routes_for(c.primary_loc, c).options[0];
            ases.extend(topo.paths.get(route.path_id).middle.iter().copied());
        }
        ases.sort();
        ases.dedup();
        let diverse: Vec<Asn> = ases
            .iter()
            .copied()
            .filter(|a| loc_share.get(a).copied().unwrap_or(0.0) < 0.55)
            .collect();
        let pool = if diverse.is_empty() { &ases } else { &diverse };
        assert!(!pool.is_empty(), "no middle AS for {region_hint:?}");
        *rng.pick(pool)
    };

    // ── The five named case studies (§6.3) ──────────────────────────
    // 1) "Maintenance in Brazil": unfinished maintenance inside the
    //    cloud location; lasted days.
    {
        let loc = loc_in(Region::Brazil, &mut rng);
        let start = advance(&mut t, &mut rng);
        t = t + 2 * 86_400; // the next incident waits out the two days
        out.push(IncidentScenario {
            name: "case1-brazil-maintenance".into(),
            fault: Fault {
                id: FaultId(0),
                target: FaultTarget::CloudLocation(loc),
                start,
                duration_secs: 2 * 86_400,
                added_ms: 70.0,
            },
            expected_segment: Segment::Cloud,
            expected_asn: topo.cloud_asn,
            visible_at: vec![loc],
        });
    }
    // 2) "Peering fault": a widespread middle-AS issue hitting many US
    //    clients on all paths through the AS.
    {
        settle(&mut t, &out, &mut rng);
        let asn = middle_as(Some(Region::UnitedStates), &mut rng);
        out.push(IncidentScenario {
            name: "case2-us-peering-fault".into(),
            fault: Fault {
                id: FaultId(0),
                target: FaultTarget::MiddleAs {
                    asn,
                    via_path: None,
                },
                start: advance(&mut t, &mut rng),
                duration_secs: 4 * 3_600,
                added_ms: 55.0,
            },
            expected_segment: Segment::Middle,
            expected_asn: asn,
            visible_at: vec![],
        });
    }
    // 3) "Cloud overload in Australia": median RTT 25 → 82 ms from
    //    server CPU overload.
    {
        settle(&mut t, &out, &mut rng);
        let loc = loc_in(Region::Australia, &mut rng);
        out.push(IncidentScenario {
            name: "case3-australia-overload".into(),
            fault: Fault {
                id: FaultId(0),
                target: FaultTarget::CloudLocation(loc),
                start: advance(&mut t, &mut rng),
                duration_secs: 3 * 3_600,
                added_ms: 57.0,
            },
            expected_segment: Segment::Cloud,
            expected_asn: topo.cloud_asn,
            visible_at: vec![loc],
        });
    }
    // 4) "Traffic shift from East Asia": clients rerouted through a
    //    poorly-connected transit — a path-scoped middle inflation.
    {
        settle(&mut t, &out, &mut rng);
        let asn = middle_as(Some(Region::EastAsia), &mut rng);
        out.push(IncidentScenario {
            name: "case4-east-asia-shift".into(),
            fault: Fault {
                id: FaultId(0),
                target: FaultTarget::MiddleAs {
                    asn,
                    via_path: None,
                },
                start: advance(&mut t, &mut rng),
                duration_secs: 5 * 3_600,
                added_ms: 90.0,
            },
            expected_segment: Segment::Middle,
            expected_asn: asn,
            visible_at: vec![],
        });
    }
    // 5) "Client ISP issues in Italy": median 9 → 161 ms from an
    //    unannounced maintenance inside the client ISP.
    {
        settle(&mut t, &out, &mut rng);
        let asn = client_as(Some(Region::Europe), &mut rng);
        out.push(IncidentScenario {
            name: "case5-client-isp-maintenance".into(),
            fault: Fault {
                id: FaultId(0),
                target: FaultTarget::ClientAs(asn),
                start: advance(&mut t, &mut rng),
                duration_secs: 6 * 3_600,
                added_ms: client_fault_ms(asn, &mut rng).max(152.0),
            },
            expected_segment: Segment::Client,
            expected_asn: asn,
            visible_at: vec![],
        });
    }

    // ── 83 generated incidents ──────────────────────────────────────
    while out.len() < 88 {
        settle(&mut t, &out, &mut rng);
        let kind = rng.below(3);
        let duration_secs = rng.range_u64(2_700, 4 * 3_600);
        let start = advance(&mut t, &mut rng);
        let scenario = match kind {
            0 => {
                let loc = *rng.pick(
                    &topo
                        .cloud_locations
                        .iter()
                        .map(|l| l.id)
                        .collect::<Vec<_>>(),
                );
                IncidentScenario {
                    name: format!("gen{}-cloud-{loc}", out.len()),
                    fault: Fault {
                        id: FaultId(0),
                        target: FaultTarget::CloudLocation(loc),
                        start,
                        duration_secs,
                        added_ms: rng.range_f64(50.0, 150.0),
                    },
                    expected_segment: Segment::Cloud,
                    expected_asn: topo.cloud_asn,
                    visible_at: vec![loc],
                }
            }
            1 => {
                let asn = middle_as(None, &mut rng);
                IncidentScenario {
                    name: format!("gen{}-middle-{asn}", out.len()),
                    fault: Fault {
                        id: FaultId(0),
                        target: FaultTarget::MiddleAs {
                            asn,
                            via_path: None,
                        },
                        start,
                        duration_secs,
                        added_ms: rng.range_f64(50.0, 150.0),
                    },
                    expected_segment: Segment::Middle,
                    expected_asn: asn,
                    visible_at: vec![],
                }
            }
            _ => {
                let asn = client_as(None, &mut rng);
                let added = client_fault_ms(asn, &mut rng);
                IncidentScenario {
                    name: format!("gen{}-client-{asn}", out.len()),
                    fault: Fault {
                        id: FaultId(0),
                        target: FaultTarget::ClientAs(asn),
                        start,
                        duration_secs,
                        added_ms: added,
                    },
                    expected_segment: Segment::Client,
                    expected_asn: asn,
                    visible_at: vec![],
                }
            }
        };
        out.push(scenario);
    }
    out
}

/// The end of the last incident in a suite (for sizing the world).
pub fn suite_end(suite: &[IncidentScenario]) -> SimTime {
    suite
        .iter()
        .map(|s| s.fault.end())
        .max()
        .unwrap_or(SimTime::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_88_incidents_with_case_studies() {
        let w = quiet_world(Scale::Tiny, 1, 7);
        let suite = incident_suite(&w, 2, 7);
        assert_eq!(suite.len(), 88);
        let names: Vec<&str> = suite.iter().map(|s| s.name.as_str()).collect();
        for case in [
            "case1-brazil-maintenance",
            "case2-us-peering-fault",
            "case3-australia-overload",
            "case4-east-asia-shift",
            "case5-client-isp-maintenance",
        ] {
            assert!(names.contains(&case), "{case} missing");
        }
        // Every category represented.
        for seg in [Segment::Cloud, Segment::Middle, Segment::Client] {
            assert!(suite.iter().any(|s| s.expected_segment == seg));
        }
    }

    #[test]
    fn incidents_do_not_overlap() {
        let w = quiet_world(Scale::Tiny, 1, 9);
        let mut suite = incident_suite(&w, 2, 9);
        suite.sort_by_key(|s| s.fault.start);
        for pair in suite.windows(2) {
            assert!(
                pair[1].fault.start >= pair[0].fault.end() + 1_800,
                "{} overlaps {}",
                pair[0].name,
                pair[1].name
            );
        }
    }

    #[test]
    fn suite_deterministic() {
        let w = quiet_world(Scale::Tiny, 1, 11);
        let a = incident_suite(&w, 2, 11);
        let b = incident_suite(&w, 2, 11);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.fault.start, y.fault.start);
            assert_eq!(x.expected_asn, y.expected_asn);
        }
    }

    #[test]
    fn expected_asns_consistent_with_targets() {
        let w = quiet_world(Scale::Tiny, 1, 13);
        for s in incident_suite(&w, 2, 13) {
            match s.fault.target {
                FaultTarget::CloudLocation(_) => {
                    assert_eq!(s.expected_segment, Segment::Cloud);
                    assert_eq!(s.expected_asn, w.topology().cloud_asn);
                }
                FaultTarget::MiddleAs { asn, .. } => {
                    assert_eq!(s.expected_segment, Segment::Middle);
                    assert_eq!(s.expected_asn, asn);
                    let role = w.topology().as_info(asn).unwrap().role;
                    assert!(role.is_middle());
                }
                FaultTarget::ClientAs(asn) => {
                    assert_eq!(s.expected_segment, Segment::Client);
                    assert_eq!(s.expected_asn, asn);
                    assert!(w.topology().as_info(asn).unwrap().role.is_access());
                }
                FaultTarget::ClientPrefix(_) | FaultTarget::MiddleAsReverse { .. } => {
                    unreachable!("suite never uses prefix or reverse faults")
                }
            }
        }
        let _ = blameit_topology::AsRole::Tier1;
    }

    #[test]
    fn quiet_world_truly_quiet() {
        let w = quiet_world(Scale::Tiny, 2, 15);
        assert!(w.faults().is_empty());
        assert!(w.churn_events(TimeRange::days(2)).is_empty());
    }
}
