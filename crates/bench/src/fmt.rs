//! Plain-text output helpers for the figure/table binaries.
//!
//! Every experiment binary prints the same rows/series the paper's
//! table or figure reports, as aligned text — easy to diff across
//! runs and to paste into EXPERIMENTS.md.

/// Prints a header banner for an experiment.
pub fn banner(id: &str, title: &str) {
    println!("{}", "=".repeat(72));
    println!("{id}: {title}");
    println!("{}", "=".repeat(72));
}

/// Prints an aligned two-column table.
pub fn kv_table(rows: &[(&str, String)]) {
    let w = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
    for (k, v) in rows {
        println!("  {k:<w$}  {v}");
    }
}

/// Prints a CDF as `x  F(x)` rows, downsampled to at most `max_rows`
/// evenly spaced points (always keeping the last).
pub fn cdf(label: &str, points: &[(f64, f64)], max_rows: usize) {
    println!("  CDF: {label} ({} points)", points.len());
    if points.is_empty() {
        println!("    (empty)");
        return;
    }
    let step = (points.len().div_ceil(max_rows)).max(1);
    for (i, (x, f)) in points.iter().enumerate() {
        if i % step == 0 || i == points.len() - 1 {
            println!("    {x:>12.3}  {f:>7.4}");
        }
    }
}

/// Formats a fraction as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Prints a labelled series (e.g. one figure line) as index/value rows.
pub fn series(label: &str, values: &[(String, f64)]) {
    println!("  series: {label}");
    for (k, v) in values {
        println!("    {k:>16}  {v:>10.3}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.1234), "12.3%");
        assert_eq!(pct(1.0), "100.0%");
    }

    #[test]
    fn printers_do_not_panic() {
        banner("figX", "smoke");
        kv_table(&[("alpha", "1".into()), ("beta-longer", "2".into())]);
        cdf("empty", &[], 10);
        cdf("tiny", &[(1.0, 0.5), (2.0, 1.0)], 1);
        series("s", &[("a".into(), 1.0)]);
    }
}
