//! # blameit-bench — experiment harness
//!
//! Regenerates every table and figure of the BlameIt paper over the
//! simulator, plus Criterion performance benches for the system itself.
//!
//! * [`scenarios`] — standard seeded worlds at three scales and the
//!   88-incident validation suite (§6.3).
//! * [`eval`] — ground-truth scoring: confusion matrices and
//!   per-incident verdicts.
//! * [`fmt`] — tiny table/CDF printers shared by the figure binaries.
//! * [`json`] — dependency-free JSON emitter for machine-readable
//!   results.
//!
//! Binaries (`cargo run -p blameit-bench --release --bin <name>`):
//! `table1`, `table2`, `fig2`, `fig3`, `fig4a`, `fig4b`, `fig6`,
//! `fig8`, `fig9`, `fig10`, `fig11`, `fig12`, `fig13`,
//! `probe_overhead`, `incidents`, `insights`, `confusion`, `ablations`,
//! and `run_all`.

pub mod args;
pub mod eval;
pub mod fmt;
pub mod json;
pub mod scenarios;

pub use args::Args;
pub use eval::{score_blames, score_incident, ConfusionMatrix, IncidentVerdict};
pub use scenarios::{
    incident_suite, organic_world, quiet_world, world_config, IncidentScenario, Scale,
};
