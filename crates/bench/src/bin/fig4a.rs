//! Figure 4a: CDF of bad-RTT incident persistence (consecutive 5-min
//! buckets) within a day.
//!
//! Paper shape: long-tailed — over 60% of issues last ≤ 5 minutes
//! (one bucket) while ~8% last over 2 hours.

use blameit::{Backend, BadnessThresholds, IncidentTracker, WorldBackend, MIN_SAMPLES};
use blameit_bench::{fmt, Args, Scale};
use blameit_simnet::TimeRange;
use blameit_topology::{CloudLocId, Prefix24};

fn main() {
    let args = Args::parse();
    let seed = args.u64("seed", 2019);
    let days = args.u64("days", 1);
    let scale = args.scale(Scale::Small);

    fmt::banner(
        "Figure 4a",
        "Persistence of bad-RTT incidents (5-min buckets)",
    );
    let world = blameit_bench::organic_world(scale, days, seed);
    let thresholds = BadnessThresholds::default_for(&world);
    let backend = WorldBackend::new(&world);
    let topo = world.topology();

    // Track runs of consecutive bad buckets per ⟨/24, location, device⟩.
    let mut tracker: IncidentTracker<(Prefix24, CloudLocId, bool)> = IncidentTracker::new();
    let mut durations: Vec<f64> = Vec::new();
    for bucket in TimeRange::days(days).buckets() {
        let bad_keys: Vec<_> = backend
            .quartets_in(bucket)
            .into_iter()
            .filter(|q| q.n >= MIN_SAMPLES)
            .filter(|q| {
                let c = topo.client(q.p24).expect("known client");
                q.mean_rtt_ms > thresholds.get(c.region, q.mobile)
            })
            .map(|q| (q.p24, q.loc, q.mobile))
            .collect();
        for inc in tracker.observe(bucket, bad_keys) {
            durations.push(inc.buckets as f64);
        }
    }
    for inc in tracker.finish() {
        durations.push(inc.buckets as f64);
    }

    let cdf = blameit::stats::ecdf(&durations);
    fmt::cdf("incident persistence (buckets of 5 min)", &cdf, 25);

    let le_1 = blameit::stats::fraction(&durations, |d| *d <= 1.0);
    let ge_24 = blameit::stats::fraction(&durations, |d| *d >= 24.0);
    println!();
    println!("incidents observed: {}", durations.len());
    println!("≤ 5 min (1 bucket): {}   [paper: >60%]", fmt::pct(le_1));
    println!("≥ 2 h (24 buckets): {}   [paper: ~8%]", fmt::pct(ge_24));
    println!(
        "long-tail shape: {}",
        if le_1 > 0.45 && ge_24 < 0.2 && ge_24 > 0.005 {
            "HOLDS"
        } else {
            "check fault-duration calibration"
        }
    );
}
