//! Figure 4b: CDF of problem impact when ⟨cloud location, BGP path⟩
//! tuples are ranked by (a) problematic IP-/24 count vs (b) true
//! impact (affected clients × duration).
//!
//! Paper shape: ranked by IP space, the top 60% of tuples cover ~80%
//! of cumulative impact; ranked by impact, only ~20% are needed — a
//! ~3× difference that motivates impact-proportional probing.

use blameit_baselines::{
    cumulative_impact_curve, rank_by_impact, rank_by_prefix_count, tuples_needed_for_coverage,
};
use blameit_bench::{fmt, Args, Scale};
use blameit_simnet::TimeRange;

fn main() {
    let args = Args::parse();
    let seed = args.u64("seed", 2019);
    let days = args.u64("days", 3);
    let scale = args.scale(Scale::Small);

    fmt::banner(
        "Figure 4b",
        "CDF of problem impact under two rankings of <location, BGP path>",
    );
    let world = blameit_bench::organic_world(scale, days, seed);
    let records = blameit_baselines::impact_records(&world, TimeRange::days(days));
    println!("middle-segment issues with footprints: {}", records.len());

    let mut by_impact = records.clone();
    rank_by_impact(&mut by_impact);
    let mut by_prefix = records;
    rank_by_prefix_count(&mut by_prefix);

    fmt::cdf(
        "ranked by problem impact (clients × duration)",
        &cumulative_impact_curve(&by_impact),
        20,
    );
    fmt::cdf(
        "ranked by problematic IP-/24 count",
        &cumulative_impact_curve(&by_prefix),
        20,
    );

    let need_impact = tuples_needed_for_coverage(&by_impact, 0.8);
    let need_prefix = tuples_needed_for_coverage(&by_prefix, 0.8);
    println!();
    println!(
        "tuples needed for 80% impact: by-impact {} vs by-prefix-count {}  [paper: ~20% vs ~60%]",
        fmt::pct(need_impact),
        fmt::pct(need_prefix)
    );
    let ratio = need_prefix / need_impact.max(1e-9);
    println!(
        "advantage {:.1}×  [paper: ~3×] → {}",
        ratio,
        if ratio > 1.5 {
            "HOLDS"
        } else {
            "check impact skew"
        }
    );
}
