//! Figure 9: blame fractions for one day, split across six regions.
//!
//! Paper shape: middle-segment issues dominate in India, China and
//! Brazil (still-evolving transit networks) relative to mature regions
//! like the USA; "insufficient"/"ambiguous" are a visible share.

use blameit::{
    tally_by_region, BadnessThresholds, Blame, BlameItConfig, BlameItEngine, WorldBackend,
};
use blameit_bench::{fmt, Args, Scale};
use blameit_simnet::{SimTime, TimeRange};
use blameit_topology::Region;

fn main() {
    let args = Args::parse();
    let seed = args.u64("seed", 2019);
    let warmup_days = args.u64("warmup", 2);
    // The paper snapshots one day; at simulation scale a single day
    // holds only a handful of middle faults per region, so the default
    // widens to 3 days for a stable regional picture (override with
    // --eval 1 for the literal one-day view).
    let eval_days = args.u64("eval", 3);
    let scale = args.scale(Scale::Small);

    fmt::banner(
        "Figure 9",
        "Blame fractions by region (paper: one day; see --eval)",
    );
    let world = blameit_bench::organic_world(scale, warmup_days + eval_days, seed);
    let thresholds = BadnessThresholds::default_for(&world);
    let mut engine = BlameItEngine::new(BlameItConfig::new(thresholds));
    let mut backend = WorldBackend::new(&world);
    engine.warmup(
        &backend,
        TimeRange::new(SimTime::ZERO, SimTime::from_days(warmup_days)),
        2,
    );

    let eval = TimeRange::new(
        SimTime::from_days(warmup_days),
        SimTime::from_days(warmup_days + eval_days),
    );
    let mut blames = Vec::new();
    for out in engine.run(&mut backend, eval) {
        blames.extend(out.blames);
    }

    let by_region = tally_by_region(&blames);
    let regions = [
        Region::India,
        Region::China,
        Region::Brazil,
        Region::UnitedStates,
        Region::Europe,
        Region::Australia,
    ];
    println!(
        "{:>12} {:>8} {:>8} {:>8} {:>10} {:>12} {:>8}",
        "region", "cloud%", "middle%", "client%", "ambiguous%", "insufficient%", "n"
    );
    let mut middle_fracs = Vec::new();
    for r in regions {
        let c = by_region.get(&r).cloned().unwrap_or_default();
        println!(
            "{:>12} {:>8.2} {:>8.2} {:>8.2} {:>10.2} {:>12.2} {:>8}",
            r.label(),
            100.0 * c.fraction(Blame::Cloud),
            100.0 * c.fraction(Blame::Middle),
            100.0 * c.fraction(Blame::Client),
            100.0 * c.fraction(Blame::Ambiguous),
            100.0 * c.fraction(Blame::Insufficient),
            c.total()
        );
        middle_fracs.push(c.fraction(Blame::Middle));
    }
    println!();
    // India/China/Brazil vs USA/Europe/Australia middle dominance.
    let immature = (middle_fracs[0] + middle_fracs[1] + middle_fracs[2]) / 3.0;
    let mature = (middle_fracs[3] + middle_fracs[4] + middle_fracs[5]) / 3.0;
    println!(
        "mean middle fraction: IN/CN/BR {} vs US/EU/AU {} → middle-heavy immature transit: {}",
        fmt::pct(immature),
        fmt::pct(mature),
        if immature > mature {
            "HOLDS"
        } else {
            "check fault-rate scaling"
        }
    );
}
