//! §6.3 validation: 88 scripted incidents (5 named case studies + 83
//! generated), scored against the simulator's ground truth.
//!
//! The paper reports BlameIt's localization matched the network
//! engineers' manual conclusion in **all 88** investigated incidents.
//! Here the fault injector plays the adversary and the fault schedule
//! plays the engineers: an incident is correct when the dominant blame
//! matches the injected segment (and the actively-localized culprit AS
//! matches for middle incidents).

use blameit::{Backend, BadnessThresholds, BlameItConfig, BlameItEngine, WorldBackend};
use blameit_bench::{fmt, scenarios, Args, Scale};
use blameit_simnet::{SimTime, TimeRange};

fn main() {
    let args = Args::parse();
    let seed = args.u64("seed", 2019);
    let warmup_days = args.u64("warmup", 2);
    let scale = args.scale(Scale::Small);

    fmt::banner("§6.3", "88-incident validation against ground truth");
    // Build the suite over a quiet world, then inject all incidents.
    let prototype = scenarios::quiet_world(scale, 1, seed);
    let suite = scenarios::incident_suite(&prototype, warmup_days, seed);
    let end = scenarios::suite_end(&suite);
    let days = end.secs() / 86_400 + 2;
    let mut world = scenarios::quiet_world(scale, days, seed);
    world.add_faults(suite.iter().map(|s| s.fault).collect());
    println!(
        "{} incidents over days {}..{} ({} case studies named)",
        suite.len(),
        warmup_days,
        days,
        5
    );

    let thresholds = BadnessThresholds::default_for(&world);
    let mut engine = BlameItEngine::new(BlameItConfig::new(thresholds));
    let mut backend = WorldBackend::new(&world);
    engine.warmup(
        &backend,
        TimeRange::new(SimTime::ZERO, SimTime::from_days(warmup_days)),
        2,
    );

    let eval = TimeRange::new(SimTime::from_days(warmup_days), SimTime::from_days(days));
    let mut blames = Vec::new();
    let mut localizations = Vec::new();
    for out in engine.run(&mut backend, eval) {
        blames.extend(out.blames);
        localizations.extend(out.localizations);
    }
    println!(
        "engine: {} blame verdicts, {} active localizations, {} probes",
        blames.len(),
        localizations.len(),
        backend.probes_issued()
    );
    println!();

    let mut correct = 0usize;
    let mut failures = Vec::new();
    for s in &suite {
        let v = blameit_bench::score_incident(&world, s, &blames, &localizations);
        let ok = v.correct;
        if ok {
            correct += 1;
        } else {
            failures.push(v.clone());
        }
        // Print the named case studies and any failures in detail.
        if s.name.starts_with("case") || !ok {
            println!(
                "{:<32} expected {:<7} {:<7} → dominant {:?} culprit {:?} confidence {} [{}]",
                v.name,
                s.expected_segment.to_string(),
                s.expected_asn.to_string(),
                v.dominant,
                v.localized_culprit,
                fmt::pct(v.confidence),
                if ok { "OK" } else { "MISS" }
            );
        }
    }
    println!();
    println!(
        "correctly localized: {correct}/{}  [paper: 88/88]",
        suite.len()
    );
    println!(
        "verdict: {}",
        if correct == suite.len() {
            "HOLDS (all incidents localized)"
        } else if correct * 100 >= suite.len() * 90 {
            "MOSTLY HOLDS (≥90%)"
        } else {
            "check engine calibration"
        }
    );
}
