//! Table 2: details of the dataset analyzed.
//!
//! The paper summarizes one month of Azure telemetry (trillions of
//! RTTs, O(100M) client IPs, millions of /24s, O(100k) BGP prefixes,
//! O(10k) client ASes, O(100) metros). This regenerates the same rows
//! from the simulated corpus; absolute counts are smaller by design
//! (the simulator runs on one machine), but the row *structure* and
//! the relative ordering of magnitudes match.

use blameit_bench::{fmt, Args, Scale};
use blameit_simnet::{DatasetSummary, TimeRange};

fn main() {
    let args = Args::parse();
    let seed = args.u64("seed", 2019);
    let days = args.u64("days", 1);
    let scale = args.scale(Scale::Small);

    fmt::banner("Table 2", "Details of the dataset analyzed");
    let world = blameit_bench::organic_world(scale, days, seed);
    let s = DatasetSummary::collect(&world, TimeRange::days(days));

    fmt::kv_table(&[
        ("# RTT measurements", s.rtt_measurements.to_string()),
        ("# quartets", s.quartets.to_string()),
        ("# client IP /24's", s.client_p24s.to_string()),
        ("# BGP prefixes", s.bgp_prefixes.to_string()),
        ("# client AS'es", s.client_ases.to_string()),
        ("# client metros", s.client_metros.to_string()),
        ("# middle BGP paths", s.bgp_paths.to_string()),
        ("# cloud locations", s.cloud_locations.to_string()),
        ("days covered", days.to_string()),
    ]);
    println!();
    println!(
        "paper (1 month of Azure): many trillions RTTs, O(100M) client IPs,\n\
         many millions /24s, O(100k) BGP prefixes, O(10k) client ASes, O(100) metros."
    );
    println!(
        "shape check: RTTs >> /24s > prefixes > ASes > metros: {}",
        if s.rtt_measurements as usize > s.client_p24s
            && s.client_p24s > s.bgp_prefixes
            && s.bgp_prefixes > s.client_ases
            && s.client_ases > s.client_metros
        {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );
}
