//! Figure 5: the illustrative two-orderings example, reproduced with
//! the actual ranking code.
//!
//! Two ⟨cloud location, BGP path⟩ tuples:
//! * tuple #1 — three /24s (10 users each) bad for 30/20/10 minutes →
//!   3 problematic prefixes, client-time impact 10·30 + 10·20 + 10·10
//!   ≈ 350 user-minutes (the paper rounds from its timeline);
//! * tuple #2 — two /24s (100 users each) bad for 10 and 10 minutes →
//!   1–2 prefixes, impact ≈ 2000 user-minutes.
//!
//! Prefix-count ranking puts #1 first; impact ranking puts #2 first.

use blameit_baselines::{rank_by_impact, rank_by_prefix_count, ImpactRecord};
use blameit_bench::fmt;
use blameit_topology::{CloudLocId, PathId, Prefix24};

fn main() {
    fmt::banner(
        "Figure 5",
        "Ranking tuples by prefix count vs problem impact",
    );

    // The paper's timeline, as impact records.
    let tuple1 = ImpactRecord {
        loc: CloudLocId(0),
        path: PathId(1),
        p24s: [1u32, 2, 3]
            .iter()
            .map(|b| Prefix24::from_block(*b))
            .collect(),
        impact: 10.0 * 30.0 + 10.0 * 20.0 + 10.0 * 10.0, // 600 ≈ "350" band
    };
    let tuple2 = ImpactRecord {
        loc: CloudLocId(0),
        path: PathId(2),
        p24s: [10u32].iter().map(|b| Prefix24::from_block(*b)).collect(),
        impact: 100.0 * 10.0 + 100.0 * 10.0, // 2000
    };

    let mut by_prefix = vec![tuple1.clone(), tuple2.clone()];
    rank_by_prefix_count(&mut by_prefix);
    let mut by_impact = vec![tuple1, tuple2];
    rank_by_impact(&mut by_impact);

    println!("{:<28} {:>10} {:>12}", "ordering", "#1 tuple", "#2 tuple");
    println!(
        "{:<28} {:>10} {:>12}",
        "by # of affected prefixes",
        by_prefix[0].path.to_string(),
        by_prefix[1].path.to_string()
    );
    println!(
        "{:<28} {:>10} {:>12}",
        "by actual problem impact",
        by_impact[0].path.to_string(),
        by_impact[1].path.to_string()
    );
    println!();
    println!(
        "prefix-count ranking favors the 3-prefix tuple; impact ranking favors the\n\
         2000-user-minute tuple — {}",
        if by_prefix[0].path == PathId(1) && by_impact[0].path == PathId(2) {
            "matches the paper's Fig. 5"
        } else {
            "unexpected"
        }
    );
}
