//! Ablations of BlameIt's design choices (DESIGN.md §6).
//!
//! Sweeps, each against ground truth on the same world:
//!
//! * **τ** (the bad-fraction threshold, paper: 0.8) — too low misfires
//!   the cloud/middle checks on noise; too high starves them.
//! * **expected-RTT window** (paper: 14-day median) — too short chases
//!   incidents; 1 day vs 14 days.
//! * **minimum quartet samples** (paper: ≥10 RTTs) — lower floors
//!   admit noisy quartets.
//!
//! Each row reports the decisive-verdict accuracy (confusion-matrix
//! diagonal over cloud/middle/client verdicts) plus the decisive rate
//! (how often BlameIt commits to a verdict at all).

use blameit::{
    assign_blames, enrich_bucket_min_samples, BadnessThresholds, Blame, BlameConfig,
    ExpectedRttLearner, RttKey, WorldBackend,
};
use blameit_bench::{fmt, organic_world, Args, ConfusionMatrix, Scale};
use blameit_simnet::{SimTime, TimeRange, World};

struct Row {
    label: String,
    accuracy: f64,
    decisive_rate: f64,
    verdicts: u64,
}

/// Runs Algorithm 1 standalone over an eval day with the given knobs
/// and scores it against ground truth.
fn run_variant(
    world: &World,
    cfg: &BlameConfig,
    min_samples: u32,
    learner_window_days: u32,
    warmup_days: u64,
    label: String,
) -> Row {
    let thresholds = BadnessThresholds::default_for(world);
    let backend = WorldBackend::new(world);
    let mut learner = ExpectedRttLearner::with_window(learner_window_days, 1);

    // Warmup learning (strided).
    for bucket in TimeRange::days(warmup_days).buckets().step_by(2) {
        for q in enrich_bucket_min_samples(&backend, bucket, &thresholds, min_samples) {
            learner.observe(
                RttKey::Cloud(q.obs.loc, q.obs.mobile),
                bucket.day(),
                q.obs.mean_rtt_ms,
            );
            learner.observe(
                RttKey::Middle(cfg.grouping.key(&q.info), q.obs.mobile),
                bucket.day(),
                q.obs.mean_rtt_ms,
            );
        }
    }

    // Eval day.
    let mut matrix = ConfusionMatrix::new();
    let mut ambiguous_or_insufficient = 0u64;
    let eval = TimeRange::new(
        SimTime::from_days(warmup_days),
        SimTime::from_days(warmup_days + 1),
    );
    for bucket in eval.buckets() {
        let quartets = enrich_bucket_min_samples(&backend, bucket, &thresholds, min_samples);
        let (blames, _) = assign_blames(&quartets, &learner, cfg);
        for b in &blames {
            let Some(client) = world.topology().client(b.obs.p24) else {
                continue;
            };
            let gt = world.ground_truth(b.obs.loc, client, bucket.mid());
            if matches!(b.blame, Blame::Ambiguous | Blame::Insufficient) {
                ambiguous_or_insufficient += 1;
            }
            if let Some(c) = gt.culprit {
                matrix.add(c.segment, b.blame);
            }
        }
        // Keep learning forward, post-assignment.
        for q in &quartets {
            learner.observe(
                RttKey::Cloud(q.obs.loc, q.obs.mobile),
                bucket.day(),
                q.obs.mean_rtt_ms,
            );
            learner.observe(
                RttKey::Middle(cfg.grouping.key(&q.info), q.obs.mobile),
                bucket.day(),
                q.obs.mean_rtt_ms,
            );
        }
    }
    let total = matrix.total() + ambiguous_or_insufficient;
    Row {
        label,
        accuracy: matrix.accuracy(),
        decisive_rate: if total == 0 {
            0.0
        } else {
            matrix.decisive() as f64 / total as f64
        },
        verdicts: matrix.total(),
    }
}

fn main() {
    let args = Args::parse();
    let seed = args.u64("seed", 2019);
    let warmup = args.u64("warmup", 2);
    let scale = args.scale(Scale::Small);
    fmt::banner("Ablations", "τ / learning window / sample floor sweeps");
    let world = organic_world(scale, warmup + 1, seed);

    let mut rows: Vec<Row> = Vec::new();
    for tau in [0.5, 0.65, 0.8, 0.9, 0.99] {
        let cfg = BlameConfig {
            tau,
            ..BlameConfig::default()
        };
        rows.push(run_variant(
            &world,
            &cfg,
            10,
            14,
            warmup,
            format!("tau={tau}"),
        ));
    }
    for window in [1u32, 3, 14] {
        let cfg = BlameConfig::default();
        rows.push(run_variant(
            &world,
            &cfg,
            10,
            window,
            warmup,
            format!("window={window}d"),
        ));
    }
    for min_samples in [1u32, 10, 40] {
        let cfg = BlameConfig::default();
        rows.push(run_variant(
            &world,
            &cfg,
            min_samples,
            14,
            warmup,
            format!("min_samples={min_samples}"),
        ));
    }

    println!(
        "{:<20} {:>10} {:>14} {:>10}",
        "variant", "accuracy", "decisive-rate", "scored"
    );
    for r in &rows {
        println!(
            "{:<20} {:>9.1}% {:>13.1}% {:>10}",
            r.label,
            100.0 * r.accuracy,
            100.0 * r.decisive_rate,
            r.verdicts
        );
    }

    let at = |label: &str| rows.iter().find(|r| r.label == label).unwrap();
    println!();
    println!(
        "paper's τ=0.8 within 3 pts of the best τ: {}",
        if rows[..5]
            .iter()
            .all(|r| r.accuracy <= at("tau=0.8").accuracy + 0.03)
        {
            "HOLDS"
        } else {
            "a different τ wins here"
        }
    );
    println!(
        "14-day window no worse than 1-day: {}",
        if at("window=14d").accuracy + 1e-9 >= at("window=1d").accuracy {
            "HOLDS"
        } else {
            "short window wins here"
        }
    );
}
