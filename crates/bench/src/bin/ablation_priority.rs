//! Ablation: what does client-time-product prioritization buy?
//!
//! §2.4/§5.3: a 5% probe budget suffices *because* BlameIt aims it at
//! predicted impact. This ablation holds the budget fixed — the top K%
//! of middle-segment faults may be investigated — and compares three
//! ways of choosing them:
//!
//! * **impact-ranked** — BlameIt's client-time-product estimates
//!   (duration prediction × client prediction, accumulated per fault
//!   over its lifetime exactly as the engine computes them);
//! * **detection-order** — first detected, first investigated
//!   (PlanetSeer-style triggering without prioritization);
//! * **random** — Odin-style undirected sampling.
//!
//! Each selection is scored by the *true* client-time impact covered.

use blameit::{BadnessThresholds, BlameItConfig, BlameItEngine, WorldBackend};
use blameit_bench::{fmt, organic_world, Args, Scale};
use blameit_simnet::{FaultId, SimTime, TimeRange};
use blameit_topology::rng::DetRng;
use std::collections::HashMap;

fn main() {
    let args = Args::parse();
    let seed = args.u64("seed", 2019);
    let days = args.u64("days", 7);
    let warmup_days = args.u64("warmup", 2).min(days.saturating_sub(1));
    let budget_pct = args.f64("budget-pct", 5.0);
    let scale = args.scale(Scale::Small);

    fmt::banner(
        "Ablation",
        "Investigation budget: impact-ranked vs detection-order vs random",
    );
    let world = organic_world(scale, days, seed);
    let eval = TimeRange::new(SimTime::from_days(warmup_days), SimTime::from_days(days));

    // True impact per middle fault.
    let oracle: HashMap<FaultId, f64> = blameit_baselines::middle_issues(&world, eval)
        .into_iter()
        .map(|i| (i.fault, i.client_time_product()))
        .collect();
    let total_impact: f64 = oracle.values().sum();

    // Run the engine, accumulating per-fault estimates exactly as
    // fig12 does: per (loc, path) issue, the peak client-time product;
    // per fault, the sum over its issues. Also record first detection.
    let thresholds = BadnessThresholds::default_for(&world);
    let mut engine = BlameItEngine::new(BlameItConfig::new(thresholds));
    let mut backend = WorldBackend::new(&world);
    engine.warmup(
        &backend,
        TimeRange::new(SimTime::ZERO, SimTime::from_days(warmup_days)),
        1,
    );
    let mut per_issue: HashMap<FaultId, HashMap<(u16, u32), f64>> = HashMap::new();
    let mut first_detect: HashMap<FaultId, u32> = HashMap::new();
    for (tick_i, out) in engine.run(&mut backend, eval).into_iter().enumerate() {
        for p in &out.ranked_issues {
            let fault = p
                .issue
                .affected_p24s
                .first()
                .and_then(|p24| world.topology().client(*p24))
                .and_then(|client| {
                    world
                        .ground_truth(p.issue.loc, client, p.issue.bucket.mid())
                        .middle_infl
                        .iter()
                        .max_by(|a, b| a.1.total_cmp(&b.1))
                        .map(|m| m.2)
                });
            if let Some(f) = fault {
                let e = per_issue
                    .entry(f)
                    .or_default()
                    .entry((p.issue.loc.0, p.issue.path.0))
                    .or_insert(0.0);
                *e = e.max(p.client_time_product);
                first_detect.entry(f).or_insert(tick_i as u32);
            }
        }
    }
    let estimates: HashMap<FaultId, f64> = per_issue
        .into_iter()
        .map(|(f, m)| (f, m.values().sum()))
        .collect();

    let detected: Vec<FaultId> = estimates.keys().copied().collect();
    let k = ((oracle.len() as f64 * budget_pct / 100.0).ceil() as usize).max(1);
    println!(
        "middle faults: {} total, {} detected; investigation budget: top {k} ({budget_pct}%)",
        oracle.len(),
        detected.len()
    );

    let coverage = |picked: &[FaultId]| -> f64 {
        picked
            .iter()
            .take(k)
            .filter_map(|f| oracle.get(f))
            .sum::<f64>()
            / total_impact.max(1.0)
    };

    // Impact-ranked.
    let mut by_estimate = detected.clone();
    by_estimate.sort_by(|a, b| estimates[b].total_cmp(&estimates[a]).then(a.cmp(b)));
    // Detection order.
    let mut by_detection = detected.clone();
    by_detection.sort_by_key(|f| (first_detect[f], *f));
    // Random (mean over 20 seeded shuffles for a stable number).
    let mut rng = DetRng::from_keys(seed, &[0xAB1A]);
    let mut random_cov = 0.0;
    for _ in 0..20 {
        let mut shuffled = detected.clone();
        rng.shuffle(&mut shuffled);
        random_cov += coverage(&shuffled);
    }
    random_cov /= 20.0;
    // Oracle ceiling for this budget.
    let mut by_truth: Vec<FaultId> = oracle.keys().copied().collect();
    by_truth.sort_by(|a, b| oracle[b].total_cmp(&oracle[a]).then(a.cmp(b)));

    let ranked_cov = coverage(&by_estimate);
    let fifo_cov = coverage(&by_detection);
    let oracle_cov = coverage(&by_truth);

    println!();
    println!("{:<18} {:>16}", "policy", "impact covered");
    println!("{:<18} {:>16}", "oracle ceiling", fmt::pct(oracle_cov));
    println!("{:<18} {:>16}", "impact-ranked", fmt::pct(ranked_cov));
    println!("{:<18} {:>16}", "detection-order", fmt::pct(fifo_cov));
    println!("{:<18} {:>16}", "random", fmt::pct(random_cov));
    println!();
    println!(
        "impact ranking beats unprioritized policies: {}",
        if ranked_cov > fifo_cov && ranked_cov > random_cov {
            "HOLDS"
        } else {
            "check estimators"
        }
    );
    println!(
        "and approaches the oracle ceiling ({} of it): {}",
        fmt::pct(ranked_cov / oracle_cov.max(1e-9)),
        if ranked_cov > 0.6 * oracle_cov {
            "HOLDS"
        } else {
            "check"
        }
    );
}
