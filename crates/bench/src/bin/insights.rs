//! §4.1 empirical insights validation.
//!
//! * **Insight-1**: typically a single segment dominates an RTT
//!   inflation — the paper found one segment contributing ≥80% of the
//!   inflation in 93% of traceroute-observed instances.
//! * **Insight-2**: a smaller failure set is likelier than a larger
//!   one — when all RTTs to a location go bad it is (in ~98% of
//!   incidents) one cloud fault, not many coincident client faults.

use blameit::{Backend, BadnessThresholds, WorldBackend, MIN_SAMPLES};
use blameit_bench::{fmt, Args, Scale};
use blameit_simnet::{FaultTarget, TimeRange};
use std::collections::HashMap;

fn main() {
    let args = Args::parse();
    let seed = args.u64("seed", 2019);
    let days = args.u64("days", 3);
    let stride = args.u64("stride", 4) as usize;
    let scale = args.scale(Scale::Small);

    fmt::banner("§4.1", "Empirical insights behind Algorithm 1");
    let world = blameit_bench::organic_world(scale, days, seed);
    let thresholds = BadnessThresholds::default_for(&world);
    let backend = WorldBackend::new(&world);
    let topo = world.topology();

    // Insight-1: dominance of the largest single cause among inflated
    // (bad) quartets with material ground-truth inflation.
    let mut inflated = 0u64;
    let mut dominated = 0u64;
    // Insight-2: of (location, bucket) aggregates with ≥80% bad /24s,
    // how many are explained by a *single* failure (one cloud fault or
    // one shared middle fault) rather than many coincident client
    // faults — the smaller-failure-set prior.
    let mut wide_bad = 0u64;
    let mut wide_bad_single = 0u64;
    let mut wide_bad_cloud = 0u64;

    for (i, bucket) in TimeRange::days(days).buckets().enumerate() {
        if i % stride != 0 {
            continue;
        }
        let mut per_loc: HashMap<_, (u64, u64)> = HashMap::new();
        for q in backend.quartets_in(bucket) {
            if q.n < MIN_SAMPLES {
                continue;
            }
            let c = topo.client(q.p24).expect("known client");
            let bad = q.mean_rtt_ms > thresholds.get(c.region, q.mobile);
            let e = per_loc.entry(q.loc).or_default();
            e.1 += 1;
            if bad {
                e.0 += 1;
            }
            if bad {
                let gt = world.ground_truth(q.loc, c, bucket.mid());
                if gt.total_inflation_ms() >= 5.0 {
                    inflated += 1;
                    if gt.dominant_fraction >= 0.8 {
                        dominated += 1;
                    }
                }
            }
        }
        for (loc, (bad, total)) in per_loc {
            if total >= 20 && bad as f64 / total as f64 >= 0.8 {
                wide_bad += 1;
                let mut cloud_active = false;
                let mut single_non_client = false;
                for f in world.faults().active_at(bucket.mid()) {
                    match f.target {
                        FaultTarget::CloudLocation(l) if l == loc => {
                            cloud_active = true;
                            single_non_client = true;
                        }
                        FaultTarget::MiddleAs { .. } => single_non_client = true,
                        _ => {}
                    }
                }
                if cloud_active {
                    wide_bad_cloud += 1;
                }
                if single_non_client {
                    wide_bad_single += 1;
                }
            }
        }
    }

    println!("bad quartets with material inflation sampled: {inflated}");
    let i1 = if inflated == 0 {
        0.0
    } else {
        dominated as f64 / inflated as f64
    };
    println!(
        "Insight-1: single cause ≥80% of inflation in {}  [paper: 93%] → {}",
        fmt::pct(i1),
        if i1 > 0.8 {
            "HOLDS"
        } else {
            "check fault overlap rates"
        }
    );
    println!();
    println!("location-wide badness events (≥80% of ≥20 /24s bad): {wide_bad}");
    let i2 = if wide_bad == 0 {
        1.0
    } else {
        wide_bad_single as f64 / wide_bad as f64
    };
    let i2c = if wide_bad == 0 {
        0.0
    } else {
        wide_bad_cloud as f64 / wide_bad as f64
    };
    println!(
        "Insight-2: explained by one shared (cloud/middle) failure in {}  [paper: 98%] → {}",
        fmt::pct(i2),
        if i2 > 0.85 { "HOLDS" } else { "check" }
    );
    println!("  (a cloud fault specifically: {})", fmt::pct(i2c));
}
