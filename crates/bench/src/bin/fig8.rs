//! Figure 8: blame fractions worldwide over one month.
//!
//! Paper shape: fractions are stable day to day; middle slightly above
//! client; cloud generally < 4% — except a spike around day 24 caused
//! by scheduled maintenance, which we reproduce by injecting cloud
//! maintenance faults on day 24.

use blameit::{tally_by_day, BadnessThresholds, Blame, BlameItConfig, BlameItEngine, WorldBackend};
use blameit_bench::{fmt, Args, Scale};
use blameit_simnet::{Fault, FaultId, FaultTarget, SimTime, TimeRange};

fn main() {
    let args = Args::parse();
    let seed = args.u64("seed", 2019);
    let days = args.u64("days", 30);
    let warmup_days = args.u64("warmup", 2).min(days.saturating_sub(1));
    let scale = args.scale(Scale::Small);

    fmt::banner(
        "Figure 8",
        "Blame fractions over one month (maintenance on day 24)",
    );
    let mut world = blameit_bench::organic_world(scale, days, seed);

    // Scheduled maintenance: several cloud locations degraded for a few
    // hours on day 24 (matching the paper's day-24 cloud spike).
    if days > 24 {
        let locs: Vec<_> = world
            .topology()
            .cloud_locations
            .iter()
            .map(|l| l.id)
            .collect();
        let maintenance: Vec<Fault> = locs
            .iter()
            .take(8)
            .enumerate()
            .map(|(i, loc)| Fault {
                id: FaultId(0),
                target: FaultTarget::CloudLocation(*loc),
                start: SimTime::from_days(24) + (i as u64) * 1800,
                duration_secs: 4 * 3600,
                added_ms: 60.0,
            })
            .collect();
        world.add_faults(maintenance);
    }

    let thresholds = BadnessThresholds::default_for(&world);
    let mut engine = BlameItEngine::new(BlameItConfig::new(thresholds));
    let mut backend = WorldBackend::new(&world);
    engine.warmup(
        &backend,
        TimeRange::new(SimTime::ZERO, SimTime::from_days(warmup_days)),
        2,
    );

    let eval = TimeRange::new(SimTime::from_days(warmup_days), SimTime::from_days(days));
    let mut all_blames = Vec::new();
    for out in engine.run(&mut backend, eval) {
        all_blames.extend(out.blames);
    }

    let by_day = tally_by_day(&all_blames);
    println!(
        "{:>4} {:>8} {:>8} {:>8} {:>10} {:>12} {:>8}",
        "day", "cloud%", "middle%", "client%", "ambiguous%", "insufficient%", "n"
    );
    let mut days_sorted: Vec<_> = by_day.keys().copied().collect();
    days_sorted.sort();
    let mut cloud_day24 = 0.0;
    let mut cloud_other: Vec<f64> = Vec::new();
    for d in days_sorted {
        let c = &by_day[&d];
        println!(
            "{:>4} {:>8.2} {:>8.2} {:>8.2} {:>10.2} {:>12.2} {:>8}",
            d,
            100.0 * c.fraction(Blame::Cloud),
            100.0 * c.fraction(Blame::Middle),
            100.0 * c.fraction(Blame::Client),
            100.0 * c.fraction(Blame::Ambiguous),
            100.0 * c.fraction(Blame::Insufficient),
            c.total()
        );
        if d == 24 {
            cloud_day24 = c.fraction(Blame::Cloud);
        } else {
            cloud_other.push(c.fraction(Blame::Cloud));
        }
    }
    println!();
    let overall = blameit::tally(&all_blames);
    println!("overall: {overall}");
    if !cloud_other.is_empty() && days > 24 {
        let mean_other = cloud_other.iter().sum::<f64>() / cloud_other.len() as f64;
        println!(
            "day-24 cloud fraction {} vs other-day mean {} → maintenance spike: {}",
            fmt::pct(cloud_day24),
            fmt::pct(mean_other),
            if cloud_day24 > 2.0 * mean_other {
                "HOLDS"
            } else {
                "check"
            }
        );
    }
    println!(
        "middle ≥ client overall: {}   cloud small: {}",
        if overall.fraction(Blame::Middle) >= overall.fraction(Blame::Client) {
            "HOLDS"
        } else {
            "INVERTED"
        },
        if overall.fraction(Blame::Cloud) < 0.10 {
            "HOLDS"
        } else {
            "check"
        }
    );
}
