//! Passive-phase confusion matrix: Algorithm 1 verdicts vs the
//! simulator's ground truth, per quartet.
//!
//! Not a paper figure, but the diagnostic behind §6.3/§6.4: every bad
//! quartet's verdict is scored against the injected fault (or
//! congestion) that actually caused it. Rows are ground-truth
//! segments, columns BlameIt verdicts.

use blameit::{BadnessThresholds, BlameItConfig, BlameItEngine, WorldBackend};
use blameit_bench::{fmt, Args, Scale};
use blameit_simnet::{SimTime, TimeRange};

fn main() {
    let args = Args::parse();
    let seed = args.u64("seed", 2019);
    let days = args.u64("days", 3);
    let warmup_days = args.u64("warmup", 2).min(days.saturating_sub(1));
    let scale = args.scale(Scale::Small);

    fmt::banner("Confusion", "Algorithm 1 verdicts vs ground truth");
    let world = blameit_bench::organic_world(scale, days, seed);
    let thresholds = BadnessThresholds::default_for(&world);
    let mut engine = BlameItEngine::new(BlameItConfig::new(thresholds));
    let mut backend = WorldBackend::new(&world);
    engine.warmup(
        &backend,
        TimeRange::new(SimTime::ZERO, SimTime::from_days(warmup_days)),
        2,
    );
    let eval = TimeRange::new(SimTime::from_days(warmup_days), SimTime::from_days(days));
    let mut blames = Vec::new();
    for out in engine.run(&mut backend, eval) {
        blames.extend(out.blames);
    }
    let matrix = blameit_bench::score_blames(&world, &blames);
    println!("{matrix}");
}
