//! Figure 12: CDF of client-time product of middle-segment issues
//! ranked by the oracle, and how BlameIt's *estimated* prioritization
//! compares.
//!
//! Paper shape: impact is extremely skewed — ~5% of middle issues
//! cover >83% of cumulative client-time product, so a 5% probe budget
//! suffices; and BlameIt's estimates prioritize "as good as an
//! oracle".

use blameit::{BadnessThresholds, BlameItConfig, BlameItEngine, WorldBackend};
use blameit_bench::{fmt, Args, Scale};
use blameit_simnet::{FaultId, SimTime, TimeRange};
use std::collections::HashMap;

fn main() {
    let args = Args::parse();
    let seed = args.u64("seed", 2019);
    let days = args.u64("days", 10);
    let warmup_days = args.u64("warmup", 3).min(days.saturating_sub(1));
    let scale = args.scale(Scale::Small);

    fmt::banner(
        "Figure 12",
        "Client-time product of middle issues: oracle vs BlameIt ranking",
    );
    let world = blameit_bench::organic_world(scale, days, seed);
    let eval = TimeRange::new(SimTime::from_days(warmup_days), SimTime::from_days(days));

    // Oracle: true client-time products of middle issues in the window.
    let oracle = blameit_baselines::middle_issues(&world, eval);
    let mut true_product: HashMap<FaultId, f64> = oracle
        .iter()
        .map(|i| (i.fault, i.client_time_product()))
        .collect();
    println!("middle issues in window (oracle): {}", oracle.len());

    // BlameIt: run the engine, capture every pre-budget ranked issue's
    // estimated product, attribute it to the ground-truth fault.
    let thresholds = BadnessThresholds::default_for(&world);
    let mut engine = BlameItEngine::new(BlameItConfig::new(thresholds));
    let mut backend = WorldBackend::new(&world);
    engine.warmup(
        &backend,
        TimeRange::new(SimTime::ZERO, SimTime::from_days(warmup_days)),
        1,
    );
    // A fault may span many (location, path) issues; the engine
    // estimates per issue, so a fault's estimate is the sum over its
    // issues of each issue's peak client-time product.
    let mut per_issue: HashMap<
        FaultId,
        HashMap<(blameit_topology::CloudLocId, blameit_topology::PathId), f64>,
    > = HashMap::new();
    let mut max_elapsed: HashMap<FaultId, u32> = HashMap::new();
    let mut max_rem: HashMap<FaultId, f64> = HashMap::new();
    for out in engine.run(&mut backend, eval) {
        for p in &out.ranked_issues {
            let Some(p24) = p.issue.affected_p24s.first() else {
                continue;
            };
            let Some(client) = world.topology().client(*p24) else {
                continue;
            };
            let gt = world.ground_truth(p.issue.loc, client, p.issue.bucket.mid());
            // Attribute to the dominant middle fault on the path.
            let fault = gt
                .middle_infl
                .iter()
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .map(|m| m.2);
            if let Some(f) = fault {
                let e = per_issue
                    .entry(f)
                    .or_default()
                    .entry((p.issue.loc, p.issue.path))
                    .or_insert(0.0);
                *e = e.max(p.client_time_product);
                if args.get("debug").is_some() {
                    max_elapsed
                        .entry(f)
                        .and_modify(|m: &mut u32| *m = (*m).max(p.issue.elapsed_buckets))
                        .or_insert(p.issue.elapsed_buckets);
                    max_rem
                        .entry(f)
                        .and_modify(|m: &mut f64| *m = m.max(p.expected_remaining_buckets))
                        .or_insert(p.expected_remaining_buckets);
                }
            }
        }
    }
    let estimates: HashMap<FaultId, f64> = per_issue
        .into_iter()
        .map(|(f, m)| (f, m.values().sum()))
        .collect();
    println!(
        "middle issues detected & ranked by BlameIt: {}",
        estimates.len()
    );

    // Oracle ordering CDF.
    let mut by_true: Vec<(FaultId, f64)> = true_product.clone().into_iter().collect();
    by_true.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    let total: f64 = by_true.iter().map(|x| x.1).sum();
    let mut acc = 0.0;
    let curve: Vec<(f64, f64)> = by_true
        .iter()
        .enumerate()
        .map(|(i, (_, p))| {
            acc += p;
            ((i + 1) as f64 / by_true.len() as f64, acc / total)
        })
        .collect();
    fmt::cdf("cumulative impact vs issue rank (oracle order)", &curve, 20);

    let coverage_at = |curve: &[(f64, f64)], frac: f64| {
        curve
            .iter()
            .take_while(|(x, _)| *x <= frac + 1e-9)
            .last()
            .map(|(_, y)| *y)
            .unwrap_or(0.0)
    };
    let oracle_top5 = coverage_at(&curve, 0.05);

    // BlameIt's ordering, measured in *true* impact.
    let mut by_est: Vec<(FaultId, f64)> = estimates.iter().map(|(f, e)| (*f, *e)).collect();
    by_est.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    let k = (by_true.len() as f64 * 0.05).ceil() as usize;
    let blameit_top5_impact: f64 = by_est
        .iter()
        .take(k)
        .map(|(f, _)| true_product.remove(f).unwrap_or(0.0))
        .sum();
    let blameit_top5 = blameit_top5_impact / total;

    if args.get("debug").is_some() {
        println!(
            "top-10 true faults: (true_product, duration_buckets, est, max_elapsed, max_E[rem])"
        );
        for (f, p) in by_true.iter().take(10) {
            let dur = oracle
                .iter()
                .find(|i| i.fault == *f)
                .map(|i| i.duration_buckets)
                .unwrap_or(0);
            println!(
                "  {:?} true={:.0} dur={} est={:.0} elapsed={} rem={:.1}",
                f,
                p,
                dur,
                estimates.get(f).copied().unwrap_or(0.0),
                max_elapsed.get(f).copied().unwrap_or(0),
                max_rem.get(f).copied().unwrap_or(0.0)
            );
        }
    }
    println!();
    println!(
        "top-5% coverage of total client-time impact: oracle {}  blameit {}  [paper: ~83%, near-oracle]",
        fmt::pct(oracle_top5),
        fmt::pct(blameit_top5)
    );
    println!(
        "skew + near-oracle prioritization: {}",
        if oracle_top5 > 0.5 && blameit_top5 > 0.6 * oracle_top5 {
            "HOLDS"
        } else {
            "check estimators"
        }
    );
}
