//! Figure 13: active-phase localization accuracy vs background probing
//! frequency, with and without BGP-churn-triggered probes.
//!
//! Paper shape: accuracy degrades as background probes become rarer
//! (baselines go stale, especially across path changes); churn
//! triggers recover most of it. The paper's sweet spot: once per 12 h
//! plus churn triggers retains ≈93% accuracy at 72× fewer probes than
//! 10-minute continuous probing.

use blameit::{Backend, BadnessThresholds, BlameItConfig, BlameItEngine, WorldBackend};
use blameit_bench::{fmt, Args, Scale};
use blameit_simnet::{Segment, SimTime, TimeRange, World};

struct Cell {
    period_secs: u64,
    churn: bool,
    accuracy: f64,
    localized: u64,
    probes_per_day: f64,
    background_per_day: f64,
}

fn run_cell(world: &World, period_secs: u64, churn: bool, warmup_days: u64, days: u64) -> Cell {
    let thresholds = BadnessThresholds::default_for(world);
    let mut cfg = BlameItConfig::new(thresholds);
    cfg.background_period_secs = period_secs;
    cfg.churn_triggered = churn;
    let mut engine = BlameItEngine::new(cfg);
    let mut backend = WorldBackend::new(world);
    engine.warmup(
        &backend,
        TimeRange::new(SimTime::ZERO, SimTime::from_days(warmup_days - 1)),
        2,
    );
    // One unscored burn-in day: the paper's system runs in steady
    // state, with background baselines already in place.
    let burn_in = TimeRange::new(
        SimTime::from_days(warmup_days - 1),
        SimTime::from_days(warmup_days),
    );
    for _ in engine.run(&mut backend, burn_in) {}
    backend.reset_probes();
    engine.background_probes_total = 0;
    engine.on_demand_probes_total = 0;
    let eval = TimeRange::new(SimTime::from_days(warmup_days), SimTime::from_days(days));

    let mut attempted = 0u64;
    let mut correct = 0u64;
    for out in engine.run(&mut backend, eval) {
        for l in &out.localizations {
            let Some(client) = world.topology().client(l.probed_p24) else {
                continue;
            };
            let gt = world.ground_truth(l.issue.issue.loc, client, l.probed_at);
            // Only score issues whose ground truth is a middle fault.
            let Some(culprit) = gt.culprit.filter(|c| c.segment == Segment::Middle) else {
                continue;
            };
            attempted += 1;
            if l.culprit == Some(culprit.asn) {
                correct += 1;
            }
        }
    }
    let eval_days = (days - warmup_days) as f64;
    Cell {
        period_secs,
        churn,
        accuracy: if attempted == 0 {
            0.0
        } else {
            correct as f64 / attempted as f64
        },
        localized: attempted,
        probes_per_day: backend.probes_issued() as f64 / eval_days,
        background_per_day: engine.background_probes_total as f64 / eval_days,
    }
}

fn main() {
    let args = Args::parse();
    let seed = args.u64("seed", 2019);
    let days = args.u64("days", 5);
    let warmup_days = args.u64("warmup", 2).min(days.saturating_sub(1));
    let scale = args.scale(Scale::Small);

    fmt::banner(
        "Figure 13",
        "Localization accuracy vs background probing frequency (± churn triggers)",
    );
    let world = blameit_bench::organic_world(scale, days, seed);

    let periods: [(u64, &str); 5] = [
        (600, "10 min"),
        (3_600, "1 h"),
        (21_600, "6 h"),
        (43_200, "12 h"),
        (86_400, "24 h"),
    ];
    println!(
        "{:>8} {:>7} {:>10} {:>10} {:>14} {:>10}",
        "period", "churn", "accuracy", "scored", "probes/day", "bg/day"
    );
    let mut cells: Vec<Cell> = Vec::new();
    for churn in [true, false] {
        for (p, label) in periods {
            let c = run_cell(&world, p, churn, warmup_days, days);
            println!(
                "{:>8} {:>7} {:>9.1}% {:>10} {:>14.0} {:>10.0}",
                label,
                if churn { "yes" } else { "no" },
                100.0 * c.accuracy,
                c.localized,
                c.probes_per_day,
                c.background_per_day
            );
            cells.push(c);
        }
    }

    // Shape checks.
    let find = |p: u64, churn: bool| {
        cells
            .iter()
            .find(|c| c.period_secs == p && c.churn == churn)
            .unwrap()
    };
    let fast = find(600, true);
    let sweet = find(43_200, true);
    let sweet_nochurn = find(43_200, false);
    let slow_nochurn = find(86_400, false);
    println!();
    println!(
        "12h+churn accuracy {} vs 10min {}  [paper: 93% at the sweet spot]",
        fmt::pct(sweet.accuracy),
        fmt::pct(fast.accuracy)
    );
    println!(
        "churn triggers help at 12 h: {} vs {} without → {}",
        fmt::pct(sweet.accuracy),
        fmt::pct(sweet_nochurn.accuracy),
        if sweet.accuracy >= sweet_nochurn.accuracy {
            "HOLDS"
        } else {
            "check"
        }
    );
    println!(
        "degradation with rarer probing (no churn): 10min {} → 24h {}",
        fmt::pct(find(600, false).accuracy),
        fmt::pct(slow_nochurn.accuracy),
    );
    println!(
        "  (known deviation: the paper's accuracy falls steeply toward 24 h because real\n\
         \x20  Internet baselines drift continuously; the simulator's baselines are more\n\
         \x20  stationary, so the frequency axis is muted — the sweet-spot accuracy and the\n\
         \x20  churn-trigger benefit are the reproduced effects)"
    );
    println!(
        "background probe saving 12h vs 10min continuous: {:.0}×  [paper: 72×]",
        find(600, false).background_per_day / sweet_nochurn.background_per_day.max(1.0)
    );
    println!(
        "total probe saving 12h+churn vs 10min full coverage: {:.0}×",
        fast.probes_per_day / sweet.probes_per_day.max(1.0)
    );
}
