//! Table 1: comparison with prior network-diagnosis solutions on the
//! desired properties for scalable fault localization.
//!
//! This table is qualitative in the paper; here each row is annotated
//! with where the corresponding behaviour lives in this codebase, so
//! the checklist is grounded in implemented artifacts rather than
//! citations alone.

use blameit_bench::fmt;

fn main() {
    fmt::banner("Table 1", "Desired properties vs prior solutions");
    let systems = [
        "BlameIt",
        "Tomography",
        "EdgeFabric",
        "PlanetSeer",
        "iPlane",
        "Trinocular",
        "Odin",
        "WhyHigh",
    ];
    // (property, per-system ✓/✗ as in the paper, where it lives here)
    let rows: &[(&str, [bool; 8], &str)] = &[
        (
            "Latency degradation",
            [true, true, true, false, true, false, true, true],
            "blameit::passive + thresholds",
        ),
        (
            "Internet scale",
            [true, false, true, false, false, true, true, true],
            "quartet aggregation; blameit::quartet",
        ),
        (
            "Work with insufficient coverage",
            [true, false, true, true, false, true, true, true],
            "hierarchical elimination vs tomography (blameit_baselines::tomography)",
        ),
        (
            "Automated root-cause diagnosis",
            [true, true, false, true, true, true, true, false],
            "blameit::pipeline alerts + culprit AS",
        ),
        (
            "Diagnosis with low latency",
            [true, false, true, false, false, true, true, false],
            "15-minute tick cadence; blameit::pipeline",
        ),
        (
            "Triggered timely probes",
            [true, false, false, true, false, false, false, false],
            "on-demand probes during the incident; blameit::pipeline",
        ),
        (
            "Impact-prioritized probes",
            [true, false, false, false, false, false, false, false],
            "client-time product; blameit::priority",
        ),
    ];

    print!("{:<32}", "Desired property");
    for s in systems {
        print!("{s:>11}");
    }
    println!();
    for (prop, marks, _) in rows {
        print!("{prop:<32}");
        for m in marks {
            print!("{:>11}", if *m { "yes" } else { "-" });
        }
        println!();
    }
    println!();
    println!("implementation index:");
    for (prop, _, loc) in rows {
        println!("  {prop:<32} {loc}");
    }
    println!();
    println!(
        "implemented comparators in this repo: Tomography (boolean),\n\
         continuous-traceroute active-only (iPlane/PlanetSeer-style coverage),\n\
         Trinocular-style adaptive probing, WhyHigh-style prefix-count ranking."
    );
}
