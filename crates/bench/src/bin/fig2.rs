//! Figure 2: fraction (%) of quartets whose average RTT was bad, by
//! region, split mobile / non-mobile.
//!
//! Paper shape: badness is widely distributed across *all* regions for
//! both device classes; less-developed regions trend higher; the USA
//! is surprisingly high because its RTT targets are aggressive.

use blameit::{Backend, BadnessThresholds, WorldBackend, MIN_SAMPLES};
use blameit_bench::{fmt, Args, Scale};
use blameit_simnet::TimeRange;
use blameit_topology::Region;

fn main() {
    let args = Args::parse();
    let seed = args.u64("seed", 2019);
    let days = args.u64("days", 2);
    let scale = args.scale(Scale::Small);

    fmt::banner("Figure 2", "% bad quartets by region (mobile / non-mobile)");
    let world = blameit_bench::organic_world(scale, days, seed);
    let thresholds = BadnessThresholds::default_for(&world);
    let backend = WorldBackend::new(&world);
    let topo = world.topology();

    // counts[region][mobile] = (bad, total); per-location tallies for
    // the §2.2 "one-third of locations have ≥13% bad quartets" check.
    let mut counts = [[(0u64, 0u64); 2]; Region::ALL.len()];
    let mut per_loc: std::collections::HashMap<_, (u64, u64)> = std::collections::HashMap::new();
    for bucket in TimeRange::days(days).buckets() {
        for q in backend.quartets_in(bucket) {
            if q.n < MIN_SAMPLES {
                continue;
            }
            let c = topo.client(q.p24).expect("known client");
            let cell = &mut counts[c.region.index()][usize::from(q.mobile)];
            cell.1 += 1;
            let bad = q.mean_rtt_ms > thresholds.get(c.region, q.mobile);
            if bad {
                cell.0 += 1;
            }
            let l = per_loc.entry(q.loc).or_default();
            l.1 += 1;
            if bad {
                l.0 += 1;
            }
        }
    }

    println!(
        "{:>14} {:>16} {:>16}",
        "region", "non-mobile bad%", "mobile bad%"
    );
    let mut usa_nm = 0.0;
    let mut others_nm: Vec<f64> = Vec::new();
    for r in Region::ALL {
        let row = counts[r.index()];
        let pct = |(bad, tot): (u64, u64)| {
            if tot == 0 {
                0.0
            } else {
                100.0 * bad as f64 / tot as f64
            }
        };
        let nm = pct(row[0]);
        let mb = pct(row[1]);
        println!("{:>14} {:>15.2}% {:>15.2}%", r.label(), nm, mb);
        if r == Region::UnitedStates {
            usa_nm = nm;
        } else {
            others_nm.push(nm);
        }
    }
    println!();
    let mean_others = others_nm.iter().sum::<f64>() / others_nm.len() as f64;
    println!("paper shape: every region shows non-negligible badness; the USA is");
    println!("elevated despite good infrastructure (aggressive targets).");
    println!(
        "USA non-mobile {usa_nm:.2}% vs other-region mean {mean_others:.2}% → USA elevated: {}",
        if usa_nm > mean_others {
            "HOLDS"
        } else {
            "check thresholds"
        }
    );
    // §2.2: "one-third of the cloud locations have at least 13% bad
    // quartets".
    let locs_over_13 = per_loc
        .values()
        .filter(|(bad, tot)| *tot >= 100 && *bad as f64 / *tot as f64 >= 0.13)
        .count();
    let frac = locs_over_13 as f64 / per_loc.len().max(1) as f64;
    println!(
        "locations with ≥13% bad quartets: {}  [paper: ~1/3 of locations]",
        fmt::pct(frac)
    );
}
