//! Extension experiment (§5.1): reverse-path faults and
//! client-coordinated reverse traceroutes.
//!
//! The paper's active phase probes only cloud→client ("for ease of
//! deployment") and notes that "reverse traceroute techniques can be
//! incorporated" because "Azure already has many users with rich
//! clients". This experiment quantifies what that buys: inject
//! reverse-direction middle faults (invisible to forward per-hop
//! structure — they shift every hop uniformly, which diffs onto the
//! first AS), then localize with (a) forward-only diffs, as deployed,
//! and (b) forward + reverse combined.
//!
//! Expected shape: forward-only accuracy collapses on reverse faults;
//! adding the reverse probe recovers most of it.

use blameit::{combine_directional_diffs, diff_traceroutes};
use blameit_bench::{fmt, quiet_world, Args, Scale};
use blameit_simnet::{Fault, FaultId, FaultTarget, SimTime};
use blameit_topology::rng::DetRng;

fn main() {
    let args = Args::parse();
    let seed = args.u64("seed", 2019);
    let trials = args.u64("trials", 120) as usize;
    let scale = args.scale(Scale::Small);

    fmt::banner(
        "§5.1 extension",
        "Reverse-path faults: forward-only vs forward+reverse localization",
    );
    let base_world = quiet_world(scale, 2, seed);
    let topo = base_world.topology();
    let mut rng = DetRng::from_keys(seed, &[0x004E_5EEE]);

    let mut fwd_correct = 0usize;
    let mut fwd_blamed_first_hop = 0usize;
    let mut both_correct = 0usize;
    let mut scored = 0usize;

    for trial in 0..trials {
        // A random client and a middle AS on its *reverse* path.
        let c = &topo.clients[rng.index(topo.clients.len())];
        let probe_t = SimTime::from_hours(30 + (trial as u64 % 7));
        let rev = base_world.reverse_route_at(c.primary_loc, c, probe_t);
        let rev_middle = &topo.paths.get(rev.path_id).middle;
        let Some(asn) = rev_middle.first().copied() else {
            continue;
        };

        let mut world = base_world.clone();
        world.add_faults(vec![Fault {
            id: FaultId(0),
            target: FaultTarget::MiddleAsReverse { asn },
            start: SimTime::from_hours(28),
            duration_secs: 12 * 3_600,
            added_ms: 70.0,
        }]);

        // Baselines from before the fault; probes during it.
        let base_t = SimTime::from_hours(20);
        let (Some(fwd_base), Some(fwd_now)) = (
            base_world.traceroute(c.primary_loc, c.p24, base_t),
            world.traceroute(c.primary_loc, c.p24, probe_t),
        ) else {
            continue;
        };
        let (Some(rev_base), Some(rev_now)) = (
            base_world.reverse_traceroute(c.primary_loc, c.p24, base_t),
            world.reverse_traceroute(c.primary_loc, c.p24, probe_t),
        ) else {
            continue;
        };

        scored += 1;
        let fwd_diff = diff_traceroutes(&fwd_base, &fwd_now);
        let rev_diff = diff_traceroutes(&rev_base, &rev_now);

        if fwd_diff.culprit == Some(asn) {
            fwd_correct += 1;
        }
        // The characteristic failure: a uniform shift lands on the
        // first forward hop (the cloud AS).
        if fwd_diff.culprit == Some(topo.cloud_asn) {
            fwd_blamed_first_hop += 1;
        }
        if combine_directional_diffs(&fwd_diff, &rev_diff) == Some(asn) {
            both_correct += 1;
        }
    }

    let pct = |n: usize| fmt::pct(n as f64 / scored.max(1) as f64);
    println!("reverse-fault trials scored: {scored}");
    fmt::kv_table(&[
        ("forward-only culprit accuracy", pct(fwd_correct)),
        ("  …misblamed the cloud AS", pct(fwd_blamed_first_hop)),
        ("forward + reverse accuracy", pct(both_correct)),
    ]);
    println!();
    println!(
        "reverse probing recovers reverse-path faults: {}",
        if both_correct > fwd_correct && both_correct as f64 / scored.max(1) as f64 > 0.6 {
            "HOLDS"
        } else {
            "check asymmetry model"
        }
    );
}
