//! Recovery-time bench: how long does `DurableEngine::open` take as a
//! function of journal lag (ticks journaled since the last snapshot)?
//!
//! Recovery cost = newest-snapshot decode + deterministic replay of
//! the journal gap, so it should grow linearly in the lag — this bench
//! plots that line, plus the snapshot sizes and write latencies the
//! persistence layer pays per checkpoint. Respects `BLAMEIT_STATE_DIR`
//! (exported by `run_all`) for where state directories are created;
//! every directory is removed afterwards.

use blameit::{BadnessThresholds, BlameItConfig, DurableEngine, StartMode, WorldBackend};
use blameit_bench::{fmt, quiet_world, Args, Scale};
use blameit_obs::MetricsRegistry;
use blameit_simnet::{Fault, FaultId, FaultTarget, SimTime, TimeRange, World};
use blameit_topology::CloudLocId;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// A quiet world with one cloud fault so the persisted state carries
/// real incidents, episodes, and baselines.
fn bench_world(scale: Scale, seed: u64) -> (World, TimeRange) {
    let mut world = quiet_world(scale, 2, seed);
    let start = SimTime::from_hours(25);
    world.add_faults(vec![Fault {
        id: FaultId(0),
        target: FaultTarget::CloudLocation(CloudLocId(0)),
        start,
        duration_secs: 2 * 3_600,
        added_ms: 110.0,
    }]);
    // 22h of evaluation keeps the range inside the 2-day world while
    // leaving enough ticks for the largest journal lag below.
    (world, TimeRange::new(start, start + 22 * 3_600))
}

fn state_root() -> PathBuf {
    std::env::var_os("BLAMEIT_STATE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(std::env::temp_dir)
}

fn main() {
    let args = Args::parse_from(std::env::args().skip(1));
    let scale = args.scale(Scale::Tiny);
    let seed = args.u64("seed", 2019);
    let threads = args.u64("threads", 0) as usize;
    let (world, eval) = bench_world(scale, seed);

    fmt::banner(
        "recovery",
        "crash-recovery wall time vs journal lag (snapshot decode + deterministic replay)",
    );

    let mut rows: Vec<(String, f64)> = Vec::new();
    let mut snapshot_bytes = 0u64;
    for lag in [0u64, 2, 4, 8, 16] {
        let dir = state_root().join(format!(
            "blameit-bench-recovery-{lag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let mut cfg = BlameItConfig::new(BadnessThresholds::default_for(&world));
        if threads > 0 {
            cfg.parallelism = threads;
        }
        cfg.state_dir = Some(dir.clone());
        // Snapshot cadence chosen so exactly `lag` ticks of the run
        // end up journaled beyond the last snapshot.
        let total_ticks = (eval.buckets().count() as u32) / cfg.tick_buckets;
        cfg.snapshot_every_ticks = if lag == 0 {
            1
        } else {
            lag.min(total_ticks as u64) as u32
        };

        let mut backend = WorldBackend::with_parallelism(&world, cfg.parallelism);
        let registry = Arc::new(MetricsRegistry::new());
        let (mut durable, _) =
            DurableEngine::open(cfg.clone(), registry, &mut backend).expect("open fresh");
        durable
            .warmup_and_checkpoint(&backend, TimeRange::days(1), 2)
            .expect("warmup checkpoint");
        let ticks = lag.max(1).min(total_ticks as u64) as usize;
        let starts: Vec<_> = eval.buckets().step_by(cfg.tick_buckets as usize).collect();
        for start in starts.iter().take(ticks) {
            durable.tick(&mut backend, *start).expect("durable tick");
        }
        if lag > 0 {
            // Drop the post-run snapshot if one landed on the last
            // tick, so recovery really replays `lag` ticks from the
            // warmup checkpoint.
            let store = blameit::StateStore::create(&dir).expect("store");
            for (tick, path) in store.list_snapshots().expect("list") {
                if tick > 0 {
                    std::fs::remove_file(path).expect("rm snapshot");
                }
            }
        }
        drop(durable);

        let t0 = Instant::now();
        let registry = Arc::new(MetricsRegistry::new());
        let (reopened, report) = DurableEngine::open(cfg, registry, &mut backend).expect("recover");
        let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(report.mode, StartMode::Recovered);
        let snap = blameit::StateStore::create(&dir)
            .and_then(|s| s.list_snapshots())
            .ok()
            .and_then(|s| s.last().and_then(|(_, p)| std::fs::metadata(p).ok()))
            .map(|m| m.len())
            .unwrap_or(0);
        snapshot_bytes = snapshot_bytes.max(snap);
        rows.push((
            format!(
                "lag {:>2} tick(s) ({} replayed)",
                lag, report.ticks_replayed
            ),
            elapsed_ms,
        ));
        drop(reopened);
        std::fs::remove_dir_all(&dir).expect("cleanup state dir");
    }

    fmt::series("recovery wall time (ms)", &rows);
    fmt::kv_table(&[
        (
            "snapshot size (bytes, post-warmup)",
            snapshot_bytes.to_string(),
        ),
        ("seed", seed.to_string()),
    ]);
}
