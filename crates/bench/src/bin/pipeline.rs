//! Sharded-tick scaling benchmark.
//!
//! Runs the same warmed engine evaluation at increasing thread counts
//! (`1, 2, 4, … --threads`) on one world, times the eval window, and
//! verifies the determinism contract the sharded tick promises: the
//! canonical tick transcript at every thread count is *byte-identical*
//! to the single-threaded run. Also reports how evenly the location
//! shard key spreads a bucket's quartets, since shard balance bounds
//! the achievable speedup.

use blameit::{
    render_tick_transcript, BadnessThresholds, BlameItConfig, BlameItEngine, WorldBackend,
};
use blameit_bench::{fmt, Args, Scale};
use blameit_simnet::{partition_quartets, SimTime, TimeRange};
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let seed = args.u64("seed", 2019);
    let days = args.u64("days", 2).max(2);
    let warmup_days = args.u64("warmup", 1).min(days - 1);
    let max_threads = args.u64("threads", 8).max(1) as usize;
    let scale = args.scale(Scale::Default);

    fmt::banner("perf", "Sharded engine tick: scaling and determinism");
    // Wall-clock speedup is bounded by the host: on a single-core
    // machine every thread count degenerates to ~1.0x (only the
    // determinism assertion is meaningful there).
    println!(
        "host cores available: {}",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    let world = blameit_bench::organic_world(scale, days, seed);
    let eval = TimeRange::new(SimTime::from_days(warmup_days), SimTime::from_days(days));
    let thresholds = BadnessThresholds::default_for(&world);

    // Shard balance of the location key on a representative bucket.
    let probe_bucket = eval.start.bucket();
    let quartets = world.quartets_in(probe_bucket);
    let shards = partition_quartets(&quartets, max_threads);
    let sizes: Vec<usize> = shards.iter().map(Vec::len).collect();
    let max = sizes.iter().copied().max().unwrap_or(0);
    let ideal = quartets.len() as f64 / sizes.len().max(1) as f64;
    println!(
        "shard balance at {} ({} quartets over {} shards): sizes {:?}, max/ideal {:.2}",
        probe_bucket,
        quartets.len(),
        sizes.len(),
        sizes,
        max as f64 / ideal.max(1.0),
    );
    println!();

    let mut threads = Vec::new();
    let mut n = 1;
    while n < max_threads {
        threads.push(n);
        n *= 2;
    }
    threads.push(max_threads);
    threads.dedup();

    let mut reference: Option<String> = None;
    let mut base_secs = 0.0;
    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    for &t in &threads {
        let mut cfg = BlameItConfig::new(thresholds.clone());
        cfg.parallelism = t;
        let mut engine = BlameItEngine::new(cfg);
        let mut backend = WorldBackend::with_parallelism(&world, t);
        engine.warmup(&backend, TimeRange::days(warmup_days), 2);

        let started = Instant::now();
        let outs = engine.run(&mut backend, eval);
        let secs = started.elapsed().as_secs_f64();

        let transcript = render_tick_transcript(&outs);
        match &reference {
            None => {
                reference = Some(transcript);
                base_secs = secs;
            }
            Some(r) => assert_eq!(
                *r, transcript,
                "transcript at {t} threads diverged from the single-threaded run"
            ),
        }
        rows.push((format!("{t}"), secs, base_secs / secs));
        println!(
            "  threads={t:<3} eval {:.2}s  speedup {:.2}x  (ticks={}, transcript ok)",
            secs,
            base_secs / secs,
            outs.len()
        );
    }

    println!();
    let best = rows
        .iter()
        .max_by(|a, b| a.2.total_cmp(&b.2))
        .expect("at least one row");
    println!(
        "best: {:.2}x at {} threads over {} eval day(s); every transcript byte-identical",
        best.2,
        best.0,
        days - warmup_days
    );
}
