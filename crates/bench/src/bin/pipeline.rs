//! Sharded-tick scaling benchmark, plus the columnar ingest kernel.
//!
//! Runs the same warmed engine evaluation at increasing thread counts
//! (`1, 2, 4, … --threads`) on one world, times the eval window, and
//! verifies the determinism contract the sharded tick promises: the
//! canonical tick transcript at every thread count is *byte-identical*
//! to the single-threaded run. Also reports how evenly the location
//! shard key spreads a bucket's quartets, since shard balance bounds
//! the achievable speedup.
//!
//! The second half benchmarks the ingest stage in isolation on one
//! core: the same per-bucket RTT streams are aggregated by the legacy
//! per-record `HashMap` upsert ([`blameit::aggregate_records_reference`]
//! over row-form records) and by the columnar path
//! ([`blameit::aggregate_batch_reuse`] over the key-sorted
//! [`blameit::RecordBatch`] the collector hands the ingest stage, with
//! an arena and store reused across buckets, as the engine would).
//! Outputs are asserted bit-identical batch by batch before either
//! path is timed, and the quartets/sec results land in
//! `BENCH_ingest.json` for CI to archive.

use blameit::{
    aggregate_batch_reuse, aggregate_records_reference, render_tick_transcript, Backend,
    BadnessThresholds, BlameItConfig, BlameItEngine, IngestArena, QuartetStore, RecordBatch,
    WorldBackend,
};
use blameit_bench::{fmt, json::Json, Args, Scale};
use blameit_simnet::{partition_quartets, RttRecord, SimTime, TimeRange};
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let seed = args.u64("seed", 2019);
    let days = args.u64("days", 2).max(2);
    let warmup_days = args.u64("warmup", 1).min(days - 1);
    let max_threads = args.u64("threads", 8).max(1) as usize;
    let scale = args.scale(Scale::Default);

    fmt::banner("perf", "Sharded engine tick: scaling and determinism");
    // Wall-clock speedup is bounded by the host: on a single-core
    // machine every thread count degenerates to ~1.0x (only the
    // determinism assertion is meaningful there).
    println!(
        "host cores available: {}",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    let world = blameit_bench::organic_world(scale, days, seed);
    let eval = TimeRange::new(SimTime::from_days(warmup_days), SimTime::from_days(days));
    let thresholds = BadnessThresholds::default_for(&world);

    // Shard balance of the location key on a representative bucket.
    let probe_bucket = eval.start.bucket();
    let quartets = world.quartets_in(probe_bucket);
    let shards = partition_quartets(&quartets, max_threads);
    let sizes: Vec<usize> = shards.iter().map(Vec::len).collect();
    let max = sizes.iter().copied().max().unwrap_or(0);
    let ideal = quartets.len() as f64 / sizes.len().max(1) as f64;
    println!(
        "shard balance at {} ({} quartets over {} shards): sizes {:?}, max/ideal {:.2}",
        probe_bucket,
        quartets.len(),
        sizes.len(),
        sizes,
        max as f64 / ideal.max(1.0),
    );
    println!();

    let mut threads = Vec::new();
    let mut n = 1;
    while n < max_threads {
        threads.push(n);
        n *= 2;
    }
    threads.push(max_threads);
    threads.dedup();

    let mut reference: Option<String> = None;
    let mut base_secs = 0.0;
    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    for &t in &threads {
        let mut cfg = BlameItConfig::new(thresholds.clone());
        cfg.parallelism = t;
        let mut engine = BlameItEngine::new(cfg);
        let mut backend = WorldBackend::with_parallelism(&world, t);
        engine.warmup(&backend, TimeRange::days(warmup_days), 2);

        let started = Instant::now();
        let outs = engine.run(&mut backend, eval);
        let secs = started.elapsed().as_secs_f64();

        let transcript = render_tick_transcript(&outs);
        match &reference {
            None => {
                reference = Some(transcript);
                base_secs = secs;
            }
            Some(r) => assert_eq!(
                *r, transcript,
                "transcript at {t} threads diverged from the single-threaded run"
            ),
        }
        rows.push((format!("{t}"), secs, base_secs / secs));
        println!(
            "  threads={t:<3} eval {:.2}s  speedup {:.2}x  (ticks={}, transcript ok)",
            secs,
            base_secs / secs,
            outs.len()
        );
    }

    println!();
    let best = rows
        .iter()
        .max_by(|a, b| a.2.total_cmp(&b.2))
        .expect("at least one row");
    println!(
        "best: {:.2}x at {} threads over {} eval day(s); every transcript byte-identical",
        best.2,
        best.0,
        days - warmup_days
    );

    println!();
    ingest_bench(&args, &world, eval, scale, seed);
}

/// One-core ingest-stage shootout: legacy per-record `HashMap` upsert
/// vs the columnar sort-and-collapse kernel, on identical record
/// batches pulled from the backend's raw RTT stream.
fn ingest_bench(
    args: &Args,
    world: &blameit_simnet::World,
    eval: TimeRange,
    scale: Scale,
    seed: u64,
) {
    let ingest_buckets = args.u64("ingest-buckets", 36).max(1) as usize;
    let reps = args.u64("reps", 5).max(1) as usize;

    fmt::banner(
        "perf",
        "Columnar ingest: reference upsert vs sort-and-collapse",
    );
    let backend = WorldBackend::with_parallelism(world, 1);
    // The same stream, in both forms: row-form records for the legacy
    // per-record upsert, columnar batches (what the collector hands the
    // ingest stage) for the columnar kernel. Materializing either form
    // is collector-side work and excluded from both timings.
    let row_batches: Vec<Vec<RttRecord>> = eval
        .buckets()
        .take(ingest_buckets)
        .map(|b| {
            backend
                .rtt_records_in(b)
                .expect("WorldBackend always serves the raw record stream")
        })
        .collect();
    let col_batches: Vec<RecordBatch> = eval
        .buckets()
        .take(ingest_buckets)
        .map(|b| {
            backend
                .record_batch_in(b)
                .expect("WorldBackend always serves the columnar batch")
        })
        .collect();
    let records: u64 = row_batches.iter().map(|b| b.len() as u64).sum();

    // Correctness gate before any timing: the columnar path must be
    // bit-identical to the reference on every batch.
    let mut arena = IngestArena::new();
    let mut store = QuartetStore::new();
    let mut quartets: u64 = 0;
    for (rows, cols) in row_batches.iter().zip(&col_batches) {
        aggregate_batch_reuse(cols, &mut arena, &mut store);
        quartets += store.len() as u64;
        assert_eq!(
            store.to_obs(),
            aggregate_records_reference(rows),
            "columnar ingest diverged from the reference aggregator"
        );
    }

    // Minimum across reps: the noise-robust estimator for a shared
    // host (anything above the minimum is scheduler interference, not
    // the kernel). Reps of the two paths interleave so drift hits both.
    let mut ref_secs = f64::INFINITY;
    let mut col_secs = f64::INFINITY;
    for _ in 0..reps {
        let started = Instant::now();
        for batch in &row_batches {
            std::hint::black_box(aggregate_records_reference(std::hint::black_box(batch)));
        }
        ref_secs = ref_secs.min(started.elapsed().as_secs_f64());

        let started = Instant::now();
        for batch in &col_batches {
            aggregate_batch_reuse(std::hint::black_box(batch), &mut arena, &mut store);
            std::hint::black_box(&store);
        }
        col_secs = col_secs.min(started.elapsed().as_secs_f64());
    }

    let qps = |secs: f64| quartets as f64 / secs.max(1e-12);
    let rps = |secs: f64| records as f64 / secs.max(1e-12);
    let speedup = ref_secs / col_secs.max(1e-12);
    println!(
        "  batches={} records={} quartets={} (sort fallbacks {}/{} batches)",
        row_batches.len(),
        records,
        quartets,
        arena.sort_fallbacks,
        arena.batches,
    );
    println!(
        "  reference: {:.4}s  {:>12.0} records/s  {:>12.0} quartets/s",
        ref_secs,
        rps(ref_secs),
        qps(ref_secs)
    );
    println!(
        "  columnar:  {:.4}s  {:>12.0} records/s  {:>12.0} quartets/s",
        col_secs,
        rps(col_secs),
        qps(col_secs)
    );
    println!("  speedup: {speedup:.2}x (single core)");

    let out = Json::obj()
        .field("experiment", "ingest")
        .field("seed", seed)
        .field("scale", format!("{scale:?}").to_lowercase())
        .field(
            "host_cores",
            std::thread::available_parallelism().map_or(1usize, |n| n.get()),
        )
        .field("buckets", row_batches.len())
        .field("records", records)
        .field("quartets", quartets)
        .field("reps", reps)
        .field("reference_secs", ref_secs)
        .field("reference_quartets_per_sec", qps(ref_secs))
        .field("reference_records_per_sec", rps(ref_secs))
        .field("columnar_secs", col_secs)
        .field("columnar_quartets_per_sec", qps(col_secs))
        .field("columnar_records_per_sec", rps(col_secs))
        .field("speedup", speedup)
        .field("sort_fallbacks", arena.sort_fallbacks);
    let path = "BENCH_ingest.json";
    std::fs::write(path, format!("{out}\n")).expect("write BENCH_ingest.json");
    println!("  wrote {path}");
}
