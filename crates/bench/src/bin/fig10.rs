//! Figure 10: duration CDFs of cloud / middle / client incidents.
//!
//! Paper shape: all three categories show the long-tailed persistence
//! distribution of Fig. 4a, with cloud issues generally shorter than
//! middle or client issues (Azure dedicates a team to fixing cloud
//! faults quickly). The simulator encodes no such team, so the three
//! curves here share the same duration law — the comparison point is
//! the per-category long tail itself.

use blameit::{
    BadnessThresholds, Blame, BlameItConfig, BlameItEngine, IncidentTracker, WorldBackend,
};
use blameit_bench::{fmt, Args, Scale};
use blameit_simnet::{SimTime, TimeRange};
use blameit_topology::{CloudLocId, Prefix24};
use std::collections::HashMap;

fn main() {
    let args = Args::parse();
    let seed = args.u64("seed", 2019);
    let days = args.u64("days", 7);
    let warmup_days = args.u64("warmup", 2).min(days.saturating_sub(1));
    let scale = args.scale(Scale::Small);

    fmt::banner("Figure 10", "Incident durations split by blame category");
    let world = blameit_bench::organic_world(scale, days, seed);
    let thresholds = BadnessThresholds::default_for(&world);
    let mut engine = BlameItEngine::new(BlameItConfig::new(thresholds));
    let mut backend = WorldBackend::new(&world);
    engine.warmup(
        &backend,
        TimeRange::new(SimTime::ZERO, SimTime::from_days(warmup_days)),
        2,
    );

    // Track incidents per ⟨/24, loc, device⟩; attribute each incident
    // to the plurality blame over its lifetime.
    let mut tracker: IncidentTracker<(Prefix24, CloudLocId, bool)> = IncidentTracker::new();
    let mut votes: HashMap<(Prefix24, CloudLocId, bool), HashMap<Blame, u32>> = HashMap::new();
    let mut per_cat: HashMap<Blame, Vec<f64>> = HashMap::new();

    let eval = TimeRange::new(SimTime::from_days(warmup_days), SimTime::from_days(days));
    let buckets: Vec<_> = eval.buckets().collect();
    let mut i = 0;
    while i + 3 <= buckets.len() {
        let out = engine.tick(&mut backend, buckets[i]);
        // Group this tick's blames per bucket to feed the tracker.
        let mut by_bucket: HashMap<u32, Vec<_>> = HashMap::new();
        for b in &out.blames {
            by_bucket.entry(b.obs.bucket.0).or_default().push(b.clone());
        }
        for k in 0..3 {
            let bucket = buckets[i + k];
            let blames = by_bucket.remove(&bucket.0).unwrap_or_default();
            let mut keys = Vec::new();
            for b in &blames {
                let key = (b.obs.p24, b.obs.loc, b.obs.mobile);
                *votes.entry(key).or_default().entry(b.blame).or_default() += 1;
                keys.push(key);
            }
            for inc in tracker.observe(bucket, keys) {
                if let Some(v) = votes.remove(&inc.key) {
                    let (blame, _) = v
                        .into_iter()
                        .max_by_key(|(b, n)| (*n, std::cmp::Reverse(*b)))
                        .unwrap();
                    per_cat.entry(blame).or_default().push(inc.buckets as f64);
                }
            }
        }
        i += 3;
    }
    for inc in tracker.finish() {
        if let Some(v) = votes.remove(&inc.key) {
            let (blame, _) = v
                .into_iter()
                .max_by_key(|(b, n)| (*n, std::cmp::Reverse(*b)))
                .unwrap();
            per_cat.entry(blame).or_default().push(inc.buckets as f64);
        }
    }

    for cat in [Blame::Cloud, Blame::Middle, Blame::Client] {
        let ds = per_cat.get(&cat).cloned().unwrap_or_default();
        println!();
        println!("category {cat}: {} incidents", ds.len());
        if ds.is_empty() {
            continue;
        }
        fmt::cdf(
            &format!("{cat} incident duration (5-min buckets)"),
            &blameit::stats::ecdf(&ds),
            15,
        );
        let le1 = blameit::stats::fraction(&ds, |d| *d <= 1.0);
        let ge24 = blameit::stats::fraction(&ds, |d| *d >= 24.0);
        println!("    ≤5min {}  ≥2h {}", fmt::pct(le1), fmt::pct(ge24));
    }
    println!();
    println!("paper shape: every category long-tailed (mostly ≤5 min, small >2 h tail).");
}
