//! Figure 3: % bad quartets by the hour over one week — USA overall
//! (top) and two contrasting ISPs (bottom).
//!
//! Paper shape: a clear diurnal pattern with badness *higher at night*
//! than during work hours (off-work traffic comes from home ISPs, not
//! well-provisioned enterprise networks); weekends flatten the
//! pattern; different ISPs show different variance.

use blameit::{Backend, BadnessThresholds, WorldBackend, MIN_SAMPLES};
use blameit_bench::{fmt, Args, Scale};
use blameit_simnet::time::BUCKETS_PER_HOUR;
use blameit_simnet::TimeRange;
use blameit_topology::{Asn, Region};
use std::collections::HashMap;

fn main() {
    let args = Args::parse();
    let seed = args.u64("seed", 2019);
    let days = args.u64("days", 7);
    let scale = args.scale(Scale::Small);

    fmt::banner(
        "Figure 3",
        "% bad quartets by hour over a week (USA; two ISPs)",
    );
    let world = blameit_bench::organic_world(scale, days, seed);
    let thresholds = BadnessThresholds::default_for(&world);
    let backend = WorldBackend::new(&world);
    let topo = world.topology();

    // Pick two contrasting US broadband ISPs: the one with the highest
    // enterprise share vs the one with the lowest.
    let mut ent_share: HashMap<Asn, (u64, u64)> = HashMap::new();
    for c in &topo.clients {
        if c.region == Region::UnitedStates && !c.mobile {
            let e = ent_share.entry(c.origin).or_default();
            e.1 += 1;
            if c.enterprise {
                e.0 += 1;
            }
        }
    }
    let mut isps: Vec<(Asn, f64)> = ent_share
        .iter()
        .filter(|(_, (_, tot))| *tot >= 8)
        .map(|(a, (e, t))| (*a, *e as f64 / *t as f64))
        .collect();
    isps.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    let isp1 = isps.first().map(|x| x.0);
    let isp2 = isps.last().map(|x| x.0);

    let hours = (days * 24) as usize;
    let mut usa = vec![(0u64, 0u64); hours];
    let mut s1 = vec![(0u64, 0u64); hours];
    let mut s2 = vec![(0u64, 0u64); hours];
    for bucket in TimeRange::days(days).buckets() {
        let hour = (bucket.0 / BUCKETS_PER_HOUR) as usize;
        for q in backend.quartets_in(bucket) {
            if q.n < MIN_SAMPLES {
                continue;
            }
            let c = topo.client(q.p24).expect("known client");
            if c.region != Region::UnitedStates {
                continue;
            }
            let bad = q.mean_rtt_ms > thresholds.get(c.region, q.mobile);
            let tally = |v: &mut Vec<(u64, u64)>| {
                v[hour].1 += 1;
                if bad {
                    v[hour].0 += 1;
                }
            };
            tally(&mut usa);
            if Some(c.origin) == isp1 {
                tally(&mut s1);
            }
            if Some(c.origin) == isp2 {
                tally(&mut s2);
            }
        }
    }

    let pct = |(bad, tot): (u64, u64)| {
        if tot == 0 {
            0.0
        } else {
            100.0 * bad as f64 / tot as f64
        }
    };
    println!("hour  usa-bad%  isp1-bad%  isp2-bad%   (isp1 = enterprise-heavy {:?}, isp2 = home-heavy {:?})", isp1, isp2);
    for h in 0..hours {
        println!(
            "{:>4}  {:>8.2}  {:>9.2}  {:>9.2}",
            h,
            pct(usa[h]),
            pct(s1[h]),
            pct(s2[h])
        );
    }

    // Shape checks: night (local US evening ≈ 00–06 UTC next day) vs
    // work hours. us-east local evening 19–23 ≈ UTC 00–04.
    let day_frac = |v: &[(u64, u64)], lo: usize, hi: usize| {
        let mut bad = 0;
        let mut tot = 0;
        for (h, cell) in v.iter().enumerate().take(hours) {
            if (lo..hi).contains(&(h % 24)) {
                bad += cell.0;
                tot += cell.1;
            }
        }
        if tot == 0 {
            0.0
        } else {
            100.0 * bad as f64 / tot as f64
        }
    };
    let night = day_frac(&usa, 0, 6); // UTC 00–06 ≈ US evening/night
    let work = day_frac(&usa, 14, 22); // UTC 14–22 ≈ US work hours
    println!();
    println!("paper shape: nights worse than work hours.");
    println!(
        "US-evening window bad% {night:.2} vs work-hours bad% {work:.2} → {}",
        if night > work { "HOLDS" } else { "check model" }
    );
    // Weekend flattening (the paper's ISP1 loses its diurnal pattern
    // between hours 48–96): compare within-day variance of the USA
    // series on weekdays vs the weekend.
    if days >= 7 {
        let day_variance = |d0: usize, d1: usize| {
            let vals: Vec<f64> = (d0 * 24..d1 * 24).map(|h| pct(usa[h])).collect();
            blameit::stats::variance(&vals).unwrap_or(0.0)
        };
        // Epoch is a Monday: weekend = days 5–6.
        let weekday_var = day_variance(0, 5);
        let weekend_var = day_variance(5, 7);
        println!(
            "within-day variance weekdays {weekday_var:.2} vs weekend {weekend_var:.2} → diurnal pattern {} on weekends",
            if weekend_var < weekday_var { "flattens" } else { "does not flatten" }
        );
    }
}
