//! §6.5 headline: probe-budget comparison.
//!
//! * BlameIt (12 h background + churn triggers + budgeted on-demand)
//!   vs continuous 10-minute traceroutes over every (location, BGP
//!   path): the paper reports **72× fewer** probes.
//! * vs Trinocular-style adaptive probing: **20× fewer**.
//!
//! All three run over the same target set (the (location, path) pairs
//! that actually carry traffic), with probes counted by the backend.

use blameit::{
    Backend, BadnessThresholds, BlameItConfig, BlameItEngine, ProbeTarget, WorldBackend,
};
use blameit_baselines::{ActiveOnlyMonitor, TrinocularMonitor};
use blameit_bench::{fmt, Args, Scale};
use blameit_simnet::{SimTime, TimeRange};
use std::collections::HashMap;

fn main() {
    let args = Args::parse();
    let seed = args.u64("seed", 2019);
    let days = args.u64("days", 3);
    let warmup_days = args.u64("warmup", 2).min(days.saturating_sub(1));
    let scale = args.scale(Scale::Small);

    fmt::banner(
        "§6.5",
        "Probe overhead: BlameIt vs active-only vs Trinocular",
    );
    let world = blameit_bench::organic_world(scale, days, seed);
    let eval = TimeRange::new(SimTime::from_days(warmup_days), SimTime::from_days(days));
    let eval_days = (days - warmup_days) as f64;

    // The common target set: (loc, path) pairs observed carrying
    // traffic (primary + secondary anycast assignments).
    let topo = world.topology();
    let mut targets_map: HashMap<(_, _), ProbeTarget> = HashMap::new();
    for c in &topo.clients {
        for loc in [Some(c.primary_loc), c.secondary_loc].into_iter().flatten() {
            let route = world.route_at(loc, c, eval.start);
            targets_map
                .entry((loc, route.path_id))
                .or_insert(ProbeTarget {
                    loc,
                    path: route.path_id,
                    p24: c.p24,
                });
        }
    }
    let targets: Vec<ProbeTarget> = targets_map.into_values().collect();
    println!("monitored (location, BGP path) targets: {}", targets.len());

    // BlameIt.
    let thresholds = BadnessThresholds::default_for(&world);
    let mut engine = BlameItEngine::new(BlameItConfig::new(thresholds));
    let mut backend = WorldBackend::new(&world);
    engine.warmup(
        &backend,
        TimeRange::new(SimTime::ZERO, SimTime::from_days(warmup_days)),
        2,
    );
    for _ in engine.run(&mut backend, eval) {}
    let blameit_per_day = backend.probes_issued() as f64 / eval_days;

    // Active-only: continuous 10-minute probing, full coverage.
    // (Counted analytically and cross-checked by running the monitor
    // for two hours on the real backend.)
    let active_only_per_day = (86_400f64 / 600.0) * targets.len() as f64;
    let mut check_backend = WorldBackend::new(&world);
    let mut monitor = ActiveOnlyMonitor::new(600, 12);
    let two_hours = TimeRange::new(eval.start, eval.start + 2 * 3_600);
    let sample = monitor.run(&mut check_backend, two_hours, &targets);
    let extrapolated = sample as f64 * 12.0;

    // Trinocular-style adaptive probing, run for a full eval day.
    let mut tri_backend = WorldBackend::new(&world);
    let mut tri = TrinocularMonitor::paper_default();
    let one_day = TimeRange::new(eval.start, eval.start + 86_400);
    let tri_per_day = tri.run(&mut tri_backend, one_day, &targets) as f64;

    println!();
    fmt::kv_table(&[
        (
            "BlameIt probes/day (bg + on-demand)",
            format!("{blameit_per_day:.0}"),
        ),
        (
            "  of which background",
            format!("{:.0}", engine.background_probes_total as f64 / eval_days),
        ),
        (
            "  of which on-demand",
            format!("{:.0}", engine.on_demand_probes_total as f64 / eval_days),
        ),
        (
            "active-only probes/day (10 min)",
            format!("{active_only_per_day:.0} (measured 2h×12 = {extrapolated:.0})"),
        ),
        (
            "Trinocular-style probes/day",
            format!("{tri_per_day:.0} ({} anomalies)", tri.anomalies_detected()),
        ),
    ]);
    println!();
    let bg_per_day = engine.background_probes_total as f64 / eval_days;
    let vs_active_bg = active_only_per_day / bg_per_day.max(1.0);
    let vs_active = active_only_per_day / blameit_per_day.max(1.0);
    let vs_tri = tri_per_day / blameit_per_day.max(1.0);
    println!("BlameIt background vs active-only: {vs_active_bg:.0}× fewer  [paper: 72× = 144/day vs 2/day]");
    println!("BlameIt total (bg+on-demand) vs active-only: {vs_active:.0}× fewer");
    println!("BlameIt total vs Trinocular:  {vs_tri:.0}× fewer  [paper: 20×]");
    println!(
        "ordering BlameIt < Trinocular < active-only: {}",
        if blameit_per_day < tri_per_day && tri_per_day < active_only_per_day {
            "HOLDS"
        } else {
            "check budgets"
        }
    );
}
