//! Chaos sweep: blame quality under data-plane fault injection.
//!
//! Wraps the simulator backend in a [`ChaosBackend`] and sweeps the
//! probe-timeout rate (plus the named `mild`/`heavy` plans) over a
//! quiet world carrying one injected middle-AS fault. For each point
//! it reports how often the active phase still names the culprit AS,
//! how the failures degrade (per-reason breakdown), and the passive
//! phase's blame accuracy — the degradation curve the chaos layer is
//! designed to flatten: verdicts may become `MiddleUnlocalized`, but
//! never wrong or panicked.

use blameit::{
    BadnessThresholds, BlameItConfig, BlameItEngine, ChaosBackend, LocalizationVerdict, TickOutput,
    UnlocalizedReason, WorldBackend,
};
use blameit_bench::{fmt, quiet_world, score_blames, Args, Scale};
use blameit_simnet::{Fault, FaultId, FaultPlan, FaultTarget, SimTime, TimeRange, World};
use blameit_topology::rng::DetRng;
use blameit_topology::Asn;

/// A quiet world with one strong middle-AS fault in hour 25–27.
fn chaos_world(seed: u64) -> (World, Asn, TimeRange) {
    let mut world = quiet_world(Scale::Tiny, 2, seed);
    let topo = world.topology();
    let mut middles: Vec<Asn> = topo
        .clients
        .iter()
        .flat_map(|c| {
            let route = &topo.routes_for(c.primary_loc, c).options[0];
            topo.paths.get(route.path_id).middle.clone()
        })
        .collect();
    middles.sort_unstable();
    middles.dedup();
    let mut rng = DetRng::from_keys(seed, &[0xC4A0]);
    let culprit = *rng.pick(&middles);
    let start = SimTime::from_hours(25);
    world.add_faults(vec![Fault {
        id: FaultId(0),
        target: FaultTarget::MiddleAs {
            asn: culprit,
            via_path: None,
        },
        start,
        duration_secs: 2 * 3_600,
        added_ms: 110.0,
    }]);
    (world, culprit, TimeRange::new(start, start + 2 * 3_600))
}

struct CasePoint {
    label: String,
    localizations: u64,
    culprit_named: u64,
    culprit_correct: u64,
    degraded: [u64; UnlocalizedReason::ALL.len()],
    retries: u64,
    faults_injected: u64,
    accuracy: f64,
}

impl CasePoint {
    fn culprit_fraction(&self) -> f64 {
        if self.localizations == 0 {
            return 0.0;
        }
        self.culprit_named as f64 / self.localizations as f64
    }
}

fn run_case(
    label: &str,
    world: &World,
    culprit: Asn,
    plan: FaultPlan,
    eval: TimeRange,
) -> CasePoint {
    let cfg = BlameItConfig::new(BadnessThresholds::default_for(world));
    let mut engine = BlameItEngine::new(cfg);
    let mut backend = ChaosBackend::new(WorldBackend::new(world), plan);
    engine.warmup(&backend, TimeRange::days(1), 2);
    let outs: Vec<TickOutput> = engine.run(&mut backend, eval);

    let mut point = CasePoint {
        label: label.to_string(),
        localizations: 0,
        culprit_named: 0,
        culprit_correct: 0,
        degraded: [0; UnlocalizedReason::ALL.len()],
        retries: engine.metrics().probe_retries.get(),
        faults_injected: backend.faults_injected(),
        accuracy: 0.0,
    };
    let blames: Vec<_> = outs.iter().flat_map(|o| o.blames.iter().cloned()).collect();
    point.accuracy = score_blames(world, &blames).accuracy();
    for out in &outs {
        for l in &out.localizations {
            point.localizations += 1;
            match l.verdict {
                LocalizationVerdict::Culprit(asn) => {
                    point.culprit_named += 1;
                    if asn == culprit {
                        point.culprit_correct += 1;
                    }
                }
                LocalizationVerdict::MiddleUnlocalized { reason } => {
                    let idx = UnlocalizedReason::ALL
                        .iter()
                        .position(|r| *r == reason)
                        .expect("reason in ALL");
                    point.degraded[idx] += 1;
                }
            }
        }
    }
    point
}

fn main() {
    let args = Args::parse();
    let seed = args.u64("seed", 2019);
    let fault_seed = args.u64("fault-seed", 0xC4A05);

    fmt::banner(
        "chaos",
        "Fault injection: blame degradation vs probe-timeout rate",
    );
    let (world, culprit, eval) = chaos_world(seed);
    println!(
        "world: quiet tiny, middle fault on {culprit:?} (+110 ms, hours 25\u{2013}27), \
         fault seed {fault_seed:#x}"
    );
    println!();

    let mut cases: Vec<(String, FaultPlan)> = [0.0, 0.1, 0.2, 0.3, 0.5]
        .iter()
        .map(|&rate| {
            (
                format!("timeout {:>3.0}%", rate * 100.0),
                FaultPlan::probe_timeouts(rate, fault_seed),
            )
        })
        .collect();
    for name in ["mild", "heavy"] {
        cases.push((
            format!("plan {name:>6}"),
            FaultPlan::parse(name, fault_seed).expect("named plan"),
        ));
    }

    let mut points: Vec<CasePoint> = Vec::new();
    println!(
        "{:<14} {:>7} {:>9} {:>9} {:>9} {:>8} {:>8} {:>9}",
        "case", "faults", "localized", "culprit%", "correct", "degraded", "retries", "accuracy"
    );
    for (label, plan) in cases {
        let p = run_case(&label, &world, culprit, plan, eval);
        println!(
            "{:<14} {:>7} {:>9} {:>8.0}% {:>9} {:>8} {:>8} {:>8.0}%",
            p.label,
            p.faults_injected,
            p.localizations,
            p.culprit_fraction() * 100.0,
            p.culprit_correct,
            p.degraded.iter().sum::<u64>(),
            p.retries,
            p.accuracy * 100.0,
        );
        points.push(p);
    }

    println!();
    println!(
        "degraded-verdict reasons (worst case, {}):",
        points.last().unwrap().label
    );
    let worst = points
        .iter()
        .max_by_key(|p| p.degraded.iter().sum::<u64>())
        .unwrap();
    for (i, r) in UnlocalizedReason::ALL.iter().enumerate() {
        if worst.degraded[i] > 0 {
            println!("  {:<18} {}", r.label(), worst.degraded[i]);
        }
    }

    // The contract under fire: faults cost coverage (fewer culprits
    // named), never honesty (no panics; clean runs stay clean).
    let clean = &points[0];
    let storm = &points[4];
    assert!(
        clean.faults_injected == 0,
        "a 0% plan must inject nothing (saw {})",
        clean.faults_injected
    );
    assert!(
        storm.culprit_fraction() <= clean.culprit_fraction() + 1e-9,
        "culprit coverage should not improve under a 50% timeout storm"
    );
    println!();
    println!(
        "degradation: culprit coverage {} -> {} from 0% to 50% timeouts (graceful: {})",
        fmt::pct(clean.culprit_fraction()),
        fmt::pct(storm.culprit_fraction()),
        if storm.culprit_fraction() <= clean.culprit_fraction() + 1e-9 {
            "HOLDS"
        } else {
            "violated"
        }
    );
}
