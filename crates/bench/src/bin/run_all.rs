//! Runs every experiment binary in sequence (the full paper
//! reproduction), forwarding common flags, and reports wall-clock per
//! experiment. Use `--scale tiny` for a fast smoke pass and
//! `--threads N` to run every experiment's engine sharded over N
//! worker threads (exported as `BLAMEIT_THREADS` to the children).

use std::process::Command;
use std::time::Instant;

const EXPERIMENTS: &[&str] = &[
    "pipeline",
    "table1",
    "table2",
    "fig2",
    "fig3",
    "fig4a",
    "fig4b",
    "fig5",
    "fig6",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "insights",
    "confusion",
    "ablations",
    "ablation_priority",
    "ext_reverse",
    "probe_overhead",
    "incidents",
    "chaos",
    "recovery",
];

fn main() {
    let forwarded: Vec<String> = std::env::args().skip(1).collect();
    // `--threads N` also becomes BLAMEIT_THREADS for the children, so
    // experiments that don't parse the flag still run sharded.
    let threads = forwarded
        .windows(2)
        .rev()
        .find(|w| w[0] == "--threads")
        .map(|w| w[1].clone());
    let me = std::env::current_exe().expect("current_exe");
    let dir = me.parent().expect("bin dir");

    // A per-run scratch directory for experiments that persist engine
    // state (exported as BLAMEIT_STATE_DIR), removed at the end so
    // repeated runs never see each other's snapshots.
    let state_dir = std::env::temp_dir().join(format!("blameit-run-all-{}", std::process::id()));
    std::fs::create_dir_all(&state_dir).expect("create run state dir");

    let mut failed = Vec::new();
    let total = Instant::now();
    for exp in EXPERIMENTS {
        let path = dir.join(exp);
        let started = Instant::now();
        println!();
        let mut cmd = Command::new(&path);
        cmd.args(&forwarded);
        cmd.env("BLAMEIT_STATE_DIR", &state_dir);
        if let Some(t) = &threads {
            cmd.env("BLAMEIT_THREADS", t);
        }
        let status = cmd
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", path.display()));
        println!(
            "[run_all] {exp} finished in {:.1}s with {status}",
            started.elapsed().as_secs_f64()
        );
        if !status.success() {
            failed.push(*exp);
        }
    }
    let _ = std::fs::remove_dir_all(&state_dir);

    // The scenario regression library rides along: every named
    // scenario replays against its golden transcript and `[expect]`
    // block at 1 and 4 engine threads via the `blameit` CLI (built
    // into the same target dir).
    let repo_root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate lives two levels under the repo root")
        .to_path_buf();
    for scenario_threads in ["1", "4"] {
        let started = Instant::now();
        println!();
        let status = Command::new(dir.join("blameit"))
            .args([
                "scenario",
                "check",
                "--all",
                "1",
                "--threads",
                scenario_threads,
                "--dir",
            ])
            .arg(repo_root.join("scenarios"))
            .arg("--golden-dir")
            .arg(repo_root.join("tests/golden/scenarios"))
            .arg("--fail-dir")
            .arg(repo_root.join("target/scenario-failures"))
            .status()
            .expect("failed to launch the blameit CLI for scenario check");
        println!(
            "[run_all] scenario check (threads={scenario_threads}) finished in {:.1}s with {status}",
            started.elapsed().as_secs_f64()
        );
        if !status.success() {
            failed.push("scenario-check");
        }
    }

    println!();
    println!(
        "[run_all] {} experiments in {:.1}s; failures: {:?}",
        EXPERIMENTS.len() + 2,
        total.elapsed().as_secs_f64(),
        failed
    );
    if !failed.is_empty() {
        std::process::exit(1);
    }
}
