//! Runs every experiment binary in sequence (the full paper
//! reproduction), forwarding common flags, and reports wall-clock per
//! experiment. Use `--scale tiny` for a fast smoke pass and
//! `--threads N` to run every experiment's engine sharded over N
//! worker threads (exported as `BLAMEIT_THREADS` to the children).

use std::io::BufRead;
use std::path::Path;
use std::process::{Command, Stdio};
use std::time::Instant;

const EXPERIMENTS: &[&str] = &[
    "pipeline",
    "lint",
    "table1",
    "table2",
    "fig2",
    "fig3",
    "fig4a",
    "fig4b",
    "fig5",
    "fig6",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "insights",
    "confusion",
    "ablations",
    "ablation_priority",
    "ext_reverse",
    "probe_overhead",
    "incidents",
    "chaos",
    "recovery",
];

fn main() {
    let forwarded: Vec<String> = std::env::args().skip(1).collect();
    // `--threads N` also becomes BLAMEIT_THREADS for the children, so
    // experiments that don't parse the flag still run sharded.
    let threads = forwarded
        .windows(2)
        .rev()
        .find(|w| w[0] == "--threads")
        .map(|w| w[1].clone());
    let me = std::env::current_exe().expect("current_exe");
    let dir = me.parent().expect("bin dir");

    // A per-run scratch directory for experiments that persist engine
    // state (exported as BLAMEIT_STATE_DIR), removed at the end so
    // repeated runs never see each other's snapshots.
    let state_dir = std::env::temp_dir().join(format!("blameit-run-all-{}", std::process::id()));
    std::fs::create_dir_all(&state_dir).expect("create run state dir");

    let mut failed = Vec::new();
    let total = Instant::now();
    for exp in EXPERIMENTS {
        let path = dir.join(exp);
        let started = Instant::now();
        println!();
        let mut cmd = Command::new(&path);
        cmd.args(&forwarded);
        cmd.env("BLAMEIT_STATE_DIR", &state_dir);
        if let Some(t) = &threads {
            cmd.env("BLAMEIT_THREADS", t);
        }
        let status = cmd
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", path.display()));
        println!(
            "[run_all] {exp} finished in {:.1}s with {status}",
            started.elapsed().as_secs_f64()
        );
        if !status.success() {
            failed.push(*exp);
        }
    }
    let _ = std::fs::remove_dir_all(&state_dir);

    // The scenario regression library rides along: every named
    // scenario replays against its golden transcript and `[expect]`
    // block at 1 and 4 engine threads via the `blameit` CLI (built
    // into the same target dir).
    let repo_root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate lives two levels under the repo root")
        .to_path_buf();
    for scenario_threads in ["1", "4"] {
        let started = Instant::now();
        println!();
        let status = Command::new(dir.join("blameit"))
            .args([
                "scenario",
                "check",
                "--all",
                "1",
                "--threads",
                scenario_threads,
                "--dir",
            ])
            .arg(repo_root.join("scenarios"))
            .arg("--golden-dir")
            .arg(repo_root.join("tests/golden/scenarios"))
            .arg("--fail-dir")
            .arg(repo_root.join("target/scenario-failures"))
            .status()
            .expect("failed to launch the blameit CLI for scenario check");
        println!(
            "[run_all] scenario check (threads={scenario_threads}) finished in {:.1}s with {status}",
            started.elapsed().as_secs_f64()
        );
        if !status.success() {
            failed.push("scenario-check");
        }
    }

    // The daemon smoke rides along last: boot `blameitd` on ephemeral
    // ports, flood it with a 10x surge through the reference feeder,
    // scrape its HTTP endpoints while it is parked on the watermark,
    // TERM it, then resume once from the state the surge left behind.
    let started = Instant::now();
    println!();
    match daemon_smoke(dir) {
        Ok(summary) => println!(
            "[run_all] daemon-smoke finished in {:.1}s: {summary}",
            started.elapsed().as_secs_f64()
        ),
        Err(e) => {
            println!("[run_all] daemon-smoke FAILED: {e}");
            failed.push("daemon-smoke");
        }
    }

    println!();
    println!(
        "[run_all] {} experiments in {:.1}s; failures: {:?}",
        EXPERIMENTS.len() + 3,
        total.elapsed().as_secs_f64(),
        failed
    );
    if !failed.is_empty() {
        std::process::exit(1);
    }
}

/// World parameters shared by the smoke daemon and its feeder — they
/// must agree or the daemon's routing plane cannot describe the fed
/// clients.
const DAEMON_WORLD: &[&str] = &["--scale", "tiny", "--seed", "2019", "--days", "2"];

/// A spawned `blameitd` with its printed addresses and a handle on the
/// rest of its stdout (the exit summary arrives there after TERM).
struct DaemonProc {
    child: std::process::Child,
    lines: std::io::Lines<std::io::BufReader<std::process::ChildStdout>>,
    ingest: String,
    http: String,
}

impl DaemonProc {
    fn spawn(dir: &Path, state: &str, resume: bool) -> Result<Self, String> {
        let mut cmd = Command::new(dir.join("blameitd"));
        cmd.args(["--state-dir", state])
            .args(DAEMON_WORLD)
            .args(["--ingest-addr", "127.0.0.1:0", "--http-addr", "127.0.0.1:0"])
            .args(["--queue-cap", "160000"])
            .args(["--shed-watermark", "90000", "--per-loc-shed-cap", "30000"])
            .stdout(Stdio::piped());
        if resume {
            cmd.args(["--resume", "1"]);
        }
        let mut child = cmd.spawn().map_err(|e| format!("blameitd: {e}"))?;
        let mut lines = std::io::BufReader::new(child.stdout.take().expect("stdout piped")).lines();
        let (mut ingest, mut http) = (String::new(), String::new());
        for _ in 0..2 {
            let line = lines
                .next()
                .ok_or("blameitd exited before printing its addresses")?
                .map_err(|e| e.to_string())?;
            if let Some(a) = line.strip_prefix("ingest=") {
                ingest = a.to_string();
            }
            if let Some(a) = line.strip_prefix("http=") {
                http = a.to_string();
            }
        }
        if ingest.is_empty() || http.is_empty() {
            return Err("blameitd did not print ingest=/http= addresses".into());
        }
        Ok(DaemonProc {
            child,
            lines,
            ingest,
            http,
        })
    }

    /// Drains stdout to exit and returns the `blameitd exit:` line.
    fn wait_summary(mut self) -> Result<String, String> {
        let mut summary = String::new();
        for line in &mut self.lines {
            let line = line.map_err(|e| e.to_string())?;
            if line.starts_with("blameitd exit:") {
                summary = line;
            }
        }
        let status = self.child.wait().map_err(|e| e.to_string())?;
        if !status.success() {
            return Err(format!("blameitd exited with {status}"));
        }
        if summary.is_empty() {
            return Err("blameitd printed no exit summary".into());
        }
        Ok(summary)
    }
}

fn daemon_smoke(dir: &Path) -> Result<String, String> {
    let state_dir =
        std::env::temp_dir().join(format!("blameit-run-all-daemon-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_dir);
    std::fs::create_dir_all(&state_dir).map_err(|e| format!("state dir: {e}"))?;
    let state = state_dir.to_string_lossy().into_owned();

    let tool = |args: &[&str]| -> Result<String, String> {
        let out = Command::new(dir.join("blameit"))
            .args(args)
            .output()
            .map_err(|e| format!("blameit: {e}"))?;
        if !out.status.success() {
            return Err(format!(
                "blameit {} exited with {}",
                args.join(" "),
                out.status
            ));
        }
        Ok(String::from_utf8_lossy(&out.stdout).into_owned())
    };

    // Surged feed without TERM: the daemon must shed, stay healthy,
    // and keep answering scrapes afterwards.
    let daemon = DaemonProc::spawn(dir, &state, false)?;
    let surge_flags = [
        "--surge-mult",
        "10",
        "--surge-start-hour",
        "26",
        "--surge-hours",
        "1",
        "--max-attempts",
        "3",
        "--max-backoff-ms",
        "50",
        "--no-term",
        "1",
    ];
    let feed: Vec<&str> = [
        &["feed", "--addr", &daemon.ingest][..],
        DAEMON_WORLD,
        &surge_flags,
    ]
    .concat();
    tool(&feed)?;
    for (path, want) in [
        ("/healthz", "ok"),
        ("/metrics", "blameit_ingest_queue_depth_records"),
        ("/metrics", "blameit_shed_quartets_total"),
        ("/alerts", ""),
    ] {
        let body = tool(&["scrape", "--addr", &daemon.http, "--path", path])?;
        if !body.contains(want) {
            return Err(format!("scrape {path}: expected {want:?} in the response"));
        }
    }
    let term: Vec<&str> = [
        &["feed", "--addr", &daemon.ingest][..],
        DAEMON_WORLD,
        &["--term-only", "1"],
    ]
    .concat();
    tool(&term)?;
    let summary = daemon.wait_summary()?;
    if !summary.contains("clean_shutdown=true") {
        return Err(format!("surged run did not shut down clean: {summary}"));
    }
    let shed = summary
        .split("shed_low_impact=")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0);
    if shed == 0 {
        return Err(format!("10x surge shed nothing: {summary}"));
    }

    // Restart from the state the surge left behind, then TERM again.
    let daemon = DaemonProc::spawn(dir, &state, true)?;
    let term: Vec<&str> = [
        &["feed", "--addr", &daemon.ingest][..],
        DAEMON_WORLD,
        &["--term-only", "1"],
    ]
    .concat();
    tool(&term)?;
    let resumed = daemon.wait_summary()?;
    if !resumed.contains("clean_shutdown=true") {
        return Err(format!("resumed run did not shut down clean: {resumed}"));
    }
    let _ = std::fs::remove_dir_all(&state_dir);
    Ok(summary)
}
