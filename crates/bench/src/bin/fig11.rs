//! Figure 11: large-scale corroboration — CDF of per-BGP-path
//! corroboration ratios, BlameIt's BGP-path grouping vs the
//! traditional ⟨AS, Metro⟩ grouping.
//!
//! The paper corroborates BlameIt against continuous traceroutes on
//! 1,000 BGP paths and sees near-perfect ratios for ~88% of paths with
//! BGP-path grouping, and significantly worse ratios with ⟨AS, Metro⟩
//! grouping. Here the simulator's ground truth takes the place of the
//! continuous traceroutes: a diagnosis counts as corroborated when the
//! blamed segment's culprit AS matches the true one.

use blameit::{
    BadnessThresholds, Blame, BlameItConfig, BlameItEngine, MiddleGrouping, WorldBackend,
};
use blameit_bench::{fmt, Args, Scale};
use blameit_simnet::{Segment, SimTime, TimeRange, World};
use blameit_topology::PathId;
use std::collections::HashMap;

fn ratios(world: &World, grouping: MiddleGrouping, warmup_days: u64, days: u64) -> Vec<f64> {
    let thresholds = BadnessThresholds::default_for(world);
    let mut cfg = BlameItConfig::new(thresholds);
    cfg.blame.grouping = grouping;
    let mut engine = BlameItEngine::new(cfg);
    let mut backend = WorldBackend::new(world);
    engine.warmup(
        &backend,
        TimeRange::new(SimTime::ZERO, SimTime::from_days(warmup_days)),
        2,
    );
    let eval = TimeRange::new(SimTime::from_days(warmup_days), SimTime::from_days(days));

    // Per BGP path: (issues, corroborated).
    let mut per_path: HashMap<PathId, (u64, u64)> = HashMap::new();
    for out in engine.run(&mut backend, eval) {
        for b in &out.blames {
            let Some(client) = world.topology().client(b.obs.p24) else {
                continue;
            };
            let gt = world.ground_truth(b.obs.loc, client, b.obs.bucket.mid());
            let Some(culprit) = gt.culprit else {
                continue; // noise-only badness: no adjudicable truth
            };
            let matched = match b.blame {
                Blame::Cloud => culprit.segment == Segment::Cloud,
                Blame::Middle => culprit.segment == Segment::Middle,
                Blame::Client => culprit.segment == Segment::Client && culprit.asn == b.origin,
                // Non-verdicts make no diagnosis to corroborate — the
                // paper scores only BlameIt's actual conclusions.
                Blame::Ambiguous | Blame::Insufficient => continue,
            };
            let e = per_path.entry(b.path).or_default();
            e.0 += 1;
            if matched {
                e.1 += 1;
            }
        }
    }
    let mut ratios: Vec<f64> = per_path
        .values()
        .filter(|(n, _)| *n >= 3)
        .map(|(n, ok)| *ok as f64 / *n as f64)
        .collect();
    ratios.sort_by(|a, b| a.total_cmp(b));
    ratios
}

fn main() {
    let args = Args::parse();
    let seed = args.u64("seed", 2019);
    let days = args.u64("days", 3);
    let warmup_days = args.u64("warmup", 2).min(days.saturating_sub(1));
    let scale = args.scale(Scale::Small);

    fmt::banner(
        "Figure 11",
        "Corroboration ratios: BGP-path grouping vs <AS, Metro> grouping",
    );
    let world = blameit_bench::organic_world(scale, days, seed);

    let path_ratios = ratios(&world, MiddleGrouping::BgpPath, warmup_days, days);
    let asmetro_ratios = ratios(&world, MiddleGrouping::AsMetro, warmup_days, days);

    println!(
        "paths scored: {} (bgp-path), {} (as-metro)",
        path_ratios.len(),
        asmetro_ratios.len()
    );
    fmt::cdf(
        "BlameIt with BGP-path grouping",
        &blameit::stats::ecdf(&path_ratios),
        15,
    );
    fmt::cdf(
        "BlameIt with <AS, Metro> grouping",
        &blameit::stats::ecdf(&asmetro_ratios),
        15,
    );

    let perfect = |rs: &[f64]| blameit::stats::fraction(rs, |r| *r >= 0.999);
    let mean = |rs: &[f64]| blameit::stats::mean(rs).unwrap_or(0.0);
    println!();
    println!(
        "perfect-corroboration paths: bgp-path {} vs as-metro {}  [paper: ~88% vs far fewer]",
        fmt::pct(perfect(&path_ratios)),
        fmt::pct(perfect(&asmetro_ratios))
    );
    println!(
        "mean corroboration: bgp-path {:.3} vs as-metro {:.3} → {}",
        mean(&path_ratios),
        mean(&asmetro_ratios),
        if mean(&path_ratios) > mean(&asmetro_ratios) {
            "HOLDS"
        } else {
            "check grouping ablation"
        }
    );
}
