//! Figure 6: CDF of the number of other IP /24s sharing the same
//! middle segment (within a 5-minute window) under three definitions —
//! BGP prefix, BGP atom, and BGP path.
//!
//! Paper shape: BGP path ≥ BGP atom ≥ BGP prefix in sharing, which is
//! why BlameIt groups by BGP path: more RTT samples per aggregate at
//! no loss of path fidelity.

use blameit::{enrich_bucket, BadnessThresholds, MiddleGrouping, WorldBackend};
use blameit_bench::{fmt, Args, Scale};
use blameit_simnet::TimeBucket;
use std::collections::HashMap;

fn main() {
    let args = Args::parse();
    let seed = args.u64("seed", 2019);
    let scale = args.scale(Scale::Small);
    // A busy mid-week bucket.
    let bucket = TimeBucket(args.u64("bucket", 2 * 288 + 150) as u32);

    fmt::banner(
        "Figure 6",
        "CDF of /24s sharing a middle segment (prefix / atom / path)",
    );
    let world = blameit_bench::organic_world(scale, 3, seed);
    let backend = WorldBackend::new(&world);
    // Classification irrelevant here; use permissive thresholds.
    let quartets = enrich_bucket(&backend, bucket, &BadnessThresholds::uniform(1e9));
    println!("quartets in {bucket}: {}", quartets.len());

    let mut means = Vec::new();
    for grouping in [
        MiddleGrouping::BgpPrefix,
        MiddleGrouping::BgpAtom,
        MiddleGrouping::BgpPath,
    ] {
        let mut sizes: HashMap<_, u64> = HashMap::new();
        for q in &quartets {
            // Count distinct (p24, loc) members per group.
            *sizes.entry((grouping.key(&q.info), q.obs.loc)).or_default() += 1;
        }
        // Per-/24 view: for each quartet, how many *others* share it.
        let sharing: Vec<f64> = quartets
            .iter()
            .map(|q| (sizes[&(grouping.key(&q.info), q.obs.loc)] - 1) as f64)
            .collect();
        let cdf = blameit::stats::ecdf(&sharing);
        fmt::cdf(grouping.label(), &cdf, 15);
        let mean = blameit::stats::mean(&sharing).unwrap_or(0.0);
        println!(
            "    mean co-sharers under {}: {:.1}",
            grouping.label(),
            mean
        );
        means.push(mean);
    }

    println!();
    println!(
        "paper shape: path ≥ atom ≥ prefix in samples per aggregate → {}",
        if means[2] >= means[1] && means[1] >= means[0] {
            "HOLDS"
        } else {
            "check grouping"
        }
    );
}
