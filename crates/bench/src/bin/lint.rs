//! Lint-pipeline benchmark: cold vs warm analysis of the whole tree.
//!
//! The interprocedural upgrade moved `blameit-lint` from a per-file
//! token scan to lex + rules + item parse + call graph + effect
//! propagation over every workspace source. The per-file layer is
//! cached on a content hash, so the steady-state cost a developer pays
//! per run is the *warm* path: read + hash every file, hit the cache,
//! then rebuild the graph and propagate. This bench times both paths
//! with the same min-over-reps estimator as `BENCH_ingest.json` and
//! writes `BENCH_lint.json` for CI to archive; the cache contract
//! (warm ≥ 2x faster than cold) is asserted here, where a regression
//! names the numbers instead of just failing a threshold.

use blameit_bench::{fmt, json::Json, Args};
use blameit_lint::WsOptions;
use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let reps = args.u64("reps", 5).max(1) as usize;
    let root = PathBuf::from(".");

    fmt::banner(
        "lint",
        "Whole-workspace static analysis: cold vs warm cache",
    );

    let cache_file = root.join("target/blameit-lint/bench.cache");
    let cold_opts = WsOptions {
        cache_file: Some(cache_file.clone()),
    };

    // Minimum across reps: the noise-robust estimator for a shared
    // host (see pipeline.rs). Cold deletes the cache first; warm runs
    // immediately after a populating pass.
    let mut cold_secs = f64::INFINITY;
    let mut warm_secs = f64::INFINITY;
    let mut files = 0usize;
    let mut violations = 0usize;
    let mut suppressed = 0usize;
    let mut nodes = 0usize;
    let mut edges = 0usize;
    for _ in 0..reps {
        let _ = std::fs::remove_file(&cache_file);
        let started = Instant::now();
        let ws = blameit_lint::analyze_workspace(&root, &cold_opts).expect("cold analysis");
        let report = ws.report();
        cold_secs = cold_secs.min(started.elapsed().as_secs_f64());
        assert_eq!(ws.cache_stats.0, 0, "cold run must miss everything");
        files = ws.files.len();
        violations = report.diagnostics.len();
        suppressed = report.suppressed.len();
        nodes = ws.graph.nodes.len();
        edges = ws.graph.edges.len();

        let started = Instant::now();
        let ws = blameit_lint::analyze_workspace(&root, &cold_opts).expect("warm analysis");
        let report = ws.report();
        warm_secs = warm_secs.min(started.elapsed().as_secs_f64());
        assert_eq!(ws.cache_stats.1, 0, "warm run must hit everything");
        assert_eq!(
            report.diagnostics.len(),
            violations,
            "cached analysis must reproduce the cold report"
        );
    }
    let _ = std::fs::remove_file(&cache_file);

    let speedup = cold_secs / warm_secs.max(1e-12);
    println!(
        "  files={files} graph: {nodes} fns, {edges} edges; report: {violations} violation(s), {suppressed} suppressed"
    );
    println!(
        "  cold: {:.4}s  ({:.1} files/ms)",
        cold_secs,
        files as f64 / (cold_secs * 1e3)
    );
    println!(
        "  warm: {:.4}s  ({:.1} files/ms)",
        warm_secs,
        files as f64 / (warm_secs * 1e3)
    );
    println!("  speedup: {speedup:.2}x");
    assert!(
        speedup >= 2.0,
        "cache contract broken: warm ({warm_secs:.4}s) must be >= 2x faster than cold ({cold_secs:.4}s)"
    );

    let out = Json::obj()
        .field("experiment", "lint")
        .field("reps", reps)
        .field("files", files)
        .field("graph_nodes", nodes)
        .field("graph_edges", edges)
        .field("violations", violations)
        .field("suppressed", suppressed)
        .field("cold_secs", cold_secs)
        .field("warm_secs", warm_secs)
        .field("cold_files_per_sec", files as f64 / cold_secs.max(1e-12))
        .field("warm_files_per_sec", files as f64 / warm_secs.max(1e-12))
        .field("speedup", speedup);
    let path = "BENCH_lint.json";
    std::fs::write(path, format!("{out}\n")).expect("write BENCH_lint.json");
    println!("  wrote {path}");
}
