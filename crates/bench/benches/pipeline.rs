//! Criterion bench: one end-to-end 15-minute BlameIt analysis tick.

use blameit::{BadnessThresholds, BlameItConfig, BlameItEngine, WorldBackend};
use blameit_simnet::{SimTime, TimeRange, World, WorldConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let world = World::new(WorldConfig::tiny(2, 11));
    let thresholds = BadnessThresholds::default_for(&world);
    let mut engine = BlameItEngine::new(BlameItConfig::new(thresholds));
    let backend_ro = WorldBackend::new(&world);
    engine.warmup(
        &backend_ro,
        TimeRange::new(SimTime::ZERO, SimTime::from_days(1)),
        2,
    );

    let mut g = c.benchmark_group("pipeline");
    g.sample_size(20);
    g.bench_function("engine_tick_15min", |b| {
        b.iter_batched(
            || (engine.clone(), WorldBackend::new(&world)),
            |(mut e, mut backend)| black_box(e.tick(&mut backend, SimTime::from_days(1).bucket())),
            criterion::BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
