//! Criterion bench: topology generation and valley-free path search.

use blameit_topology::{Topology, TopologyConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("routing");
    g.sample_size(10);
    g.bench_function("generate_tiny_topology", |b| {
        b.iter(|| black_box(Topology::generate(TopologyConfig::tiny(3))))
    });

    let topo = Topology::generate(TopologyConfig::tiny(3));
    let src = topo.graph.pops_of(topo.cloud_asn).next().unwrap().id;
    let dst = topo
        .graph
        .pops()
        .iter()
        .rev()
        .find(|p| topo.as_info(p.asn).unwrap().role.is_access())
        .unwrap()
        .id;
    g.bench_function("shortest_path_valley_free", |b| {
        b.iter(|| black_box(topo.graph.shortest_path(src, dst)))
    });
    g.bench_function("diverse_paths_k3", |b| {
        b.iter(|| black_box(topo.graph.diverse_paths(src, dst, 3)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
