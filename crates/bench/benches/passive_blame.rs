//! Criterion bench: Algorithm 1 over a bucket of enriched quartets.

use blameit::{
    assign_blames, enrich_bucket, BadnessThresholds, BlameConfig, ExpectedRttLearner, RttKey,
    WorldBackend,
};
use blameit_simnet::{TimeBucket, World, WorldConfig};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let world = World::new(WorldConfig::tiny(1, 7));
    let thresholds = BadnessThresholds::default_for(&world);
    let backend = WorldBackend::new(&world);
    let quartets = enrich_bucket(&backend, TimeBucket(150), &thresholds);
    // Seed the learner so both aggregate branches execute.
    let mut learner = ExpectedRttLearner::new(1);
    let cfg = BlameConfig::default();
    for q in &quartets {
        learner.observe(RttKey::Cloud(q.obs.loc, q.obs.mobile), 0, 30.0);
        learner.observe(
            RttKey::Middle(cfg.grouping.key(&q.info), q.obs.mobile),
            0,
            30.0,
        );
    }

    let mut g = c.benchmark_group("passive_blame");
    g.throughput(Throughput::Elements(quartets.len() as u64));
    g.bench_function(format!("algorithm1_{}_quartets", quartets.len()), |b| {
        b.iter(|| black_box(assign_blames(&quartets, &learner, &cfg)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
