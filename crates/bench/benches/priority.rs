//! Criterion bench: client-time-product ranking of middle issues.

use blameit::{
    prioritize, select_within_budget, ClientCountHistory, DurationHistory, MiddleIssue, MiddleKey,
};
use blameit_simnet::TimeBucket;
use blameit_topology::rng::DetRng;
use blameit_topology::{CloudLocId, PathId, Prefix24};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

fn synth_issues(n: usize, seed: u64) -> Vec<MiddleIssue> {
    let mut rng = DetRng::new(seed);
    (0..n)
        .map(|i| MiddleIssue {
            loc: CloudLocId(rng.below(30) as u16),
            path: PathId(i as u32),
            middle_key: MiddleKey::Path(PathId(i as u32)),
            bucket: TimeBucket(600),
            elapsed_buckets: 1 + rng.below(40) as u32,
            current_clients: rng.below(100_000),
            affected_p24s: vec![Prefix24::from_block(i as u32)],
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut durations = DurationHistory::new();
    let mut rng = DetRng::new(5);
    for i in 0..500u32 {
        durations.record(PathId(i % 64), 1 + rng.below(60) as u32);
    }
    let clients = ClientCountHistory::new();

    let mut g = c.benchmark_group("priority");
    for n in [100usize, 2_000] {
        let issues = synth_issues(n, 9);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_function(format!("rank_{n}_issues"), |b| {
            b.iter_batched(
                || issues.clone(),
                |is| {
                    let ranked = prioritize(is, &durations, &clients);
                    black_box(select_within_budget(&ranked, 5).len())
                },
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
