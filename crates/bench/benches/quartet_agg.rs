//! Criterion bench: RTT-record → quartet aggregation throughput
//! (the analytics-cluster hot path of §6.1).

use blameit::aggregate_records;
use blameit_simnet::{RttRecord, SimTime};
use blameit_topology::rng::DetRng;
use blameit_topology::{CloudLocId, Prefix24};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

fn synth_records(n: usize, seed: u64) -> Vec<RttRecord> {
    let mut rng = DetRng::new(seed);
    (0..n)
        .map(|_| RttRecord {
            loc: CloudLocId(rng.below(30) as u16),
            p24: Prefix24::from_block(rng.below(5_000) as u32),
            mobile: rng.chance(0.3),
            at: SimTime(rng.below(3_600)),
            rtt_ms: rng.range_f64(5.0, 300.0),
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("quartet_agg");
    for n in [10_000usize, 100_000] {
        let records = synth_records(n, 42);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_function(format!("aggregate_{n}"), |b| {
            b.iter_batched(
                || records.clone(),
                |r| black_box(aggregate_records(&r)),
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
