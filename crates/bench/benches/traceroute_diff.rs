//! Criterion bench: per-AS traceroute diffing and culprit selection.

use blameit::diff_contributions;
use blameit_topology::rng::DetRng;
use blameit_topology::Asn;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn synth_contributions(hops: usize, seed: u64) -> Vec<(Asn, f64)> {
    let mut rng = DetRng::new(seed);
    (0..hops)
        .map(|i| (Asn(100 + i as u32), rng.range_f64(0.5, 20.0)))
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("traceroute_diff");
    for hops in [4usize, 8, 16] {
        let base = synth_contributions(hops, 1);
        let mut cur = synth_contributions(hops, 1);
        cur[hops / 2].1 += 60.0; // the faulty AS
        g.throughput(Throughput::Elements(hops as u64));
        g.bench_function(format!("diff_{hops}_hops"), |b| {
            b.iter(|| black_box(diff_contributions(&base, &cur)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
