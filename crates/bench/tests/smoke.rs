//! Smoke tests: every experiment binary must run to completion at tiny
//! scale and print its identifying banner. Guards the harness against
//! bit-rot without the cost of full-scale runs.

use std::process::Command;

fn run(bin: &str, extra: &[&str]) -> String {
    let mut cmd = Command::new(bin);
    cmd.args(["--scale", "tiny", "--seed", "7"]).args(extra);
    let out = cmd.output().unwrap_or_else(|e| panic!("spawn {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} failed: {}\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 output")
}

#[test]
fn table_binaries() {
    let out = run(env!("CARGO_BIN_EXE_table1"), &[]);
    assert!(out.contains("Impact-prioritized probes"));
    let out = run(env!("CARGO_BIN_EXE_table2"), &[]);
    assert!(out.contains("# RTT measurements"));
}

#[test]
fn measurement_figures() {
    let out = run(env!("CARGO_BIN_EXE_fig2"), &["--days", "1"]);
    assert!(out.contains("non-mobile bad%"));
    let out = run(env!("CARGO_BIN_EXE_fig3"), &["--days", "2"]);
    assert!(out.contains("usa-bad%"));
    let out = run(env!("CARGO_BIN_EXE_fig4a"), &[]);
    assert!(out.contains("incidents observed"));
    let out = run(env!("CARGO_BIN_EXE_fig4b"), &["--days", "1"]);
    assert!(out.contains("tuples needed for 80% impact"));
    let out = run(env!("CARGO_BIN_EXE_fig6"), &[]);
    assert!(out.contains("BGP path"));
}

#[test]
fn engine_figures() {
    let out = run(
        env!("CARGO_BIN_EXE_fig8"),
        &["--days", "4", "--warmup", "1"],
    );
    assert!(out.contains("cloud%"));
    let out = run(
        env!("CARGO_BIN_EXE_fig9"),
        &["--warmup", "1", "--eval", "1"],
    );
    assert!(out.contains("region"));
    let out = run(
        env!("CARGO_BIN_EXE_fig10"),
        &["--days", "3", "--warmup", "1"],
    );
    assert!(out.contains("category middle"));
    let out = run(
        env!("CARGO_BIN_EXE_fig11"),
        &["--days", "2", "--warmup", "1"],
    );
    assert!(out.contains("corroboration"));
    let out = run(
        env!("CARGO_BIN_EXE_fig12"),
        &["--days", "3", "--warmup", "1"],
    );
    assert!(out.contains("top-5% coverage"));
}

#[test]
fn fig13_short() {
    let out = run(
        env!("CARGO_BIN_EXE_fig13"),
        &["--days", "3", "--warmup", "2"],
    );
    assert!(out.contains("12h+churn accuracy"));
}

#[test]
fn validations() {
    let out = run(env!("CARGO_BIN_EXE_insights"), &["--days", "1"]);
    assert!(out.contains("Insight-1"));
    let out = run(
        env!("CARGO_BIN_EXE_confusion"),
        &["--days", "2", "--warmup", "1"],
    );
    assert!(out.contains("decisive accuracy"));
    let out = run(
        env!("CARGO_BIN_EXE_probe_overhead"),
        &["--days", "2", "--warmup", "1"],
    );
    assert!(out.contains("Trinocular"));
    let out = run(env!("CARGO_BIN_EXE_ext_reverse"), &["--trials", "20"]);
    assert!(out.contains("forward + reverse accuracy"));
}

#[test]
fn ablation_binaries() {
    let out = run(env!("CARGO_BIN_EXE_ablations"), &["--warmup", "1"]);
    assert!(out.contains("tau=0.8"));
    let out = run(
        env!("CARGO_BIN_EXE_ablation_priority"),
        &["--days", "3", "--warmup", "1"],
    );
    assert!(out.contains("impact-ranked"));
}

// `incidents` at tiny scale takes minutes (88 serialized incidents);
// exercised by run_all and CI-style full passes instead.
