//! Dependency-free sharded execution for the engine tick.
//!
//! The tick's heavy stages — quartet enrichment, per-location Algorithm-1
//! verdicts, traceroute diffs, background baseline probes — are pure
//! functions of immutable inputs, so they can fan out across a
//! [`std::thread::scope`] worker pool without any new crates. Two rules
//! keep the output byte-identical regardless of thread count:
//!
//! 1. **Deterministic partitioning.** Work is split either by a sorted
//!    round-robin over shard keys ([`ShardPlan::by_key`], keyed on
//!    `CloudLocId` for the passive phase) or into contiguous chunks of an
//!    ordered worklist ([`parallel_map`]). Neither depends on `HashMap`
//!    iteration order or thread scheduling.
//! 2. **Canonical merge.** Shard outputs are joined in shard order and
//!    re-sorted by the item's original input index, so the merged stream
//!    equals what a single thread would have produced.
//!
//! With `parallelism <= 1` (or a single shard) everything runs inline on
//! the calling thread in the same order — the exact legacy code path —
//! which is what the determinism suite compares against.

use crate::fxhash::DetHashMap;
use blameit_obs::span;
use blameit_obs::trace::{local_subscribers, with_subscribers};
use std::hash::Hash;

/// Worker threads available on this machine (at least 1).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The `BLAMEIT_THREADS` environment override, if set to a positive
/// integer.
pub fn env_threads() -> Option<usize> {
    std::env::var("BLAMEIT_THREADS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .filter(|n: &usize| *n > 0)
}

/// Default engine parallelism: `BLAMEIT_THREADS` if set, otherwise all
/// available cores.
pub fn default_parallelism() -> usize {
    env_threads().unwrap_or_else(available_parallelism)
}

/// A deterministic assignment of item indices to shards.
///
/// Distinct shard keys are sorted and dealt round-robin over at most
/// `nshards` shards; every item follows its key, keeping its original
/// input order within the shard. All quartets of one cloud location
/// therefore land on one shard (Algorithm 1's aggregate checks are
/// per-location), and the assignment is independent of `HashMap`
/// iteration order.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    shards: Vec<Vec<usize>>,
}

impl ShardPlan {
    /// Partitions `items` by `key` into at most `nshards` shards.
    pub fn by_key<T, K>(items: &[T], nshards: usize, key: impl Fn(&T) -> K) -> ShardPlan
    where
        K: Ord + Hash + Copy,
    {
        let mut keys: Vec<K> = items.iter().map(&key).collect();
        keys.sort_unstable();
        keys.dedup();
        let nshards = nshards.clamp(1, keys.len().max(1));
        let assignment: DetHashMap<K, usize> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| (*k, i % nshards))
            .collect();
        let mut shards = vec![Vec::new(); nshards];
        for (idx, item) in items.iter().enumerate() {
            shards[assignment[&key(item)]].push(idx);
        }
        ShardPlan { shards }
    }

    /// Number of shards (>= 1, even for empty input).
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True when the plan holds no items at all.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(Vec::is_empty)
    }

    /// The per-shard item-index lists, in shard order.
    pub fn shards(&self) -> &[Vec<usize>] {
        &self.shards
    }
}

/// Runs `task` once per shard of `plan`, returning results in shard
/// order.
///
/// With `parallelism <= 1` or a single shard the tasks run inline on
/// the calling thread, in shard order — the legacy sequential path.
/// Otherwise each shard gets a scoped worker thread that inherits this
/// thread's scoped trace subscribers, so a `with_subscriber` capture on
/// the coordinator still sees the shard-labelled spans.
pub fn run_sharded<R: Send>(
    parallelism: usize,
    plan: &ShardPlan,
    task: impl Fn(usize, &[usize]) -> R + Sync,
) -> Vec<R> {
    if parallelism <= 1 || plan.len() <= 1 {
        return plan
            .shards
            .iter()
            .enumerate()
            .map(|(i, idxs)| {
                let _s = span!("blameit::shard", "shard", shard = i, items = idxs.len());
                task(i, idxs)
            })
            .collect();
    }
    let subs = local_subscribers();
    std::thread::scope(|scope| {
        let task = &task;
        let handles: Vec<_> = plan
            .shards
            .iter()
            .enumerate()
            .map(|(i, idxs)| {
                let subs = subs.clone();
                scope.spawn(move || {
                    with_subscribers(subs, || {
                        let _s = span!("blameit::shard", "shard", shard = i, items = idxs.len());
                        task(i, idxs)
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect()
    })
}

/// Maps `f` over `items` (receiving each item's global index), splitting
/// the slice into at most `parallelism` contiguous chunks. The output
/// order always matches the input order; with `parallelism <= 1` this
/// is a plain sequential map on the calling thread.
pub fn parallel_map<T: Sync, R: Send>(
    parallelism: usize,
    items: &[T],
    f: impl Fn(usize, &T) -> R + Sync,
) -> Vec<R> {
    if parallelism <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk = items.len().div_ceil(parallelism.min(items.len()));
    let subs = local_subscribers();
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(ci, slice)| {
                let subs = subs.clone();
                scope.spawn(move || {
                    with_subscribers(subs, || {
                        let _s = span!("blameit::shard", "chunk", chunk = ci, items = slice.len());
                        slice
                            .iter()
                            .enumerate()
                            .map(|(j, t)| f(ci * chunk + j, t))
                            .collect::<Vec<R>>()
                    })
                })
            })
            .collect();
        let mut out = Vec::with_capacity(items.len());
        for h in handles {
            out.extend(h.join().expect("chunk worker panicked"));
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_groups_all_items_of_a_key_on_one_shard() {
        let items: Vec<u32> = vec![3, 1, 2, 3, 1, 2, 3, 9];
        let plan = ShardPlan::by_key(&items, 3, |x| *x);
        assert_eq!(plan.len(), 3);
        // Every index appears exactly once.
        let mut all: Vec<usize> = plan.shards().iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..items.len()).collect::<Vec<_>>());
        // Items sharing a key share a shard, in input order.
        for shard in plan.shards() {
            assert!(shard.windows(2).all(|w| w[0] < w[1]), "input order kept");
        }
        let shard_of = |v: u32| {
            plan.shards()
                .iter()
                .position(|s| s.iter().any(|&i| items[i] == v))
                .unwrap()
        };
        for v in [1u32, 2, 3] {
            let s = shard_of(v);
            for (i, item) in items.iter().enumerate() {
                if *item == v {
                    assert!(plan.shards()[s].contains(&i));
                }
            }
        }
    }

    #[test]
    fn plan_is_independent_of_requested_width_excess() {
        let items: Vec<u32> = vec![5, 5, 5];
        // One distinct key: never more than one shard.
        let plan = ShardPlan::by_key(&items, 8, |x| *x);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.shards()[0], vec![0, 1, 2]);
        let empty: Vec<u32> = Vec::new();
        let plan = ShardPlan::by_key(&empty, 4, |x| *x);
        assert_eq!(plan.len(), 1);
        assert!(plan.is_empty());
    }

    #[test]
    fn run_sharded_matches_inline_order() {
        let items: Vec<u32> = (0..50).map(|i| i % 7).collect();
        let plan = ShardPlan::by_key(&items, 4, |x| *x);
        let collect = |par: usize| -> Vec<(usize, Vec<usize>)> {
            run_sharded(par, &plan, |shard, idxs| (shard, idxs.to_vec()))
        };
        assert_eq!(collect(1), collect(4));
        assert_eq!(collect(1), collect(16));
    }

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<u64> = (0..101).collect();
        let seq = parallel_map(1, &items, |i, x| (i, x * 2));
        for par in [2, 4, 8] {
            assert_eq!(parallel_map(par, &items, |i, x| (i, x * 2)), seq);
        }
        assert_eq!(seq[100], (100, 200));
    }

    #[test]
    fn env_threads_parses_positive_integers_only() {
        // Cannot set env vars safely in parallel tests; just exercise
        // the default resolution path.
        assert!(available_parallelism() >= 1);
        assert!(default_parallelism() >= 1);
    }
}
