//! Durable engine state: versioned snapshots, a tick journal, and
//! crash recovery.
//!
//! BlameIt's value lives in *learned* state — 14-day expected-RTT
//! medians, per-path baselines, incident-duration histories — and a
//! restart that discards it reverts every verdict to
//! `no_baseline`/`insufficient` for days. This module makes the engine
//! survive crashes mid-tick:
//!
//! * [`codec`] — hand-rolled, versioned, CRC-per-section byte framing.
//!   Any bit flip past the 7-byte preamble fails a CRC; preamble flips
//!   fail a value check. Decoding never panics on garbage.
//! * [`snapshot`] — serializes every field of [`BlameItEngine`] that
//!   influences future ticks (learners, baselines, scheduler clocks,
//!   incident/episode state, RNG positions). Metrics are write-only
//!   and deliberately excluded.
//! * [`journal`] — an append-only, fsync'd record per completed tick
//!   (tick index, start bucket, output digest). Recovery = newest
//!   valid snapshot + deterministic replay of the journaled ticks
//!   through the seeded engine, verifying each digest.
//! * [`store`] — atomic snapshot writes (temp file + rename), last-N
//!   retention, and the `fsck` invariant checker.
//! * [`durable`] — [`DurableEngine`], the tick loop with named kill
//!   points wired to [`blameit_simnet::CrashPlan`] so the crash
//!   harness can abort at exactly the moments a real crash would.
//!
//! The durability contract leans entirely on the engine's
//! byte-determinism: state + seed + backend fully determine every
//! future tick, so a journal replay reproduces the pre-crash run
//! byte-for-byte (`tests/crash_recovery.rs` proves it for every kill
//! point × seeds × thread counts).
//!
//! [`BlameItEngine`]: crate::pipeline::BlameItEngine
//! [`DurableEngine`]: durable::DurableEngine

pub mod codec;
pub mod durable;
pub mod journal;
pub mod snapshot;
pub mod store;

pub use codec::CodecError;
pub use durable::{DurableEngine, PersistMetrics, RecoveryReport, StartMode};
pub use journal::{tick_digest, Journal, JournalRecord};
pub use snapshot::{SnapshotCounters, SnapshotState};
pub use store::{fsck, FsckReport, StateStore};

use blameit_simnet::CrashPoint;

/// Why a persistence operation failed.
#[derive(Debug)]
pub enum PersistError {
    /// The configuration has no `state_dir`.
    NoStateDir,
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// A snapshot or journal failed to decode.
    Codec(CodecError),
    /// The on-disk state was produced under a different identity
    /// (seed / tick width) than the engine trying to load it.
    ConfigMismatch(String),
    /// A replayed tick's digest did not match its journal record —
    /// the backend or engine is not the one that produced the journal.
    ReplayDivergence {
        /// The diverging tick index.
        tick: u64,
        /// Digest the journal recorded.
        expected: u64,
        /// Digest the replay produced.
        got: u64,
    },
    /// A simulated crash fired (kill-point harness only): the tick
    /// aborted with on-disk state exactly as a real crash would leave
    /// it.
    Crashed(CrashPoint),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::NoStateDir => write!(f, "no state_dir configured"),
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::Codec(e) => write!(f, "decode error: {e}"),
            PersistError::ConfigMismatch(what) => write!(f, "config mismatch: {what}"),
            PersistError::ReplayDivergence {
                tick,
                expected,
                got,
            } => write!(
                f,
                "replay diverged at tick {tick}: journal digest {expected:016x}, replay {got:016x}"
            ),
            PersistError::Crashed(p) => write!(f, "simulated crash at {p}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<CodecError> for PersistError {
    fn from(e: CodecError) -> Self {
        PersistError::Codec(e)
    }
}
