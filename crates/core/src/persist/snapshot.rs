//! Snapshot encode/decode for the full [`BlameItEngine`] state.
//!
//! Everything that influences a future tick is serialized: the
//! expected-RTT learner (including its reservoir RNG position), the
//! duration/client-count histories, open incidents, the baseline
//! store, scheduler clocks, probe-target maps, episode windows, and
//! the churn cursor — and the learner's median cache, whose entries
//! freeze the median at first-lookup time within a day and therefore
//! cannot be recomputed from the reservoirs alone. Since v3 the
//! cumulative observability counters (degraded verdicts, chaos
//! injections, ingest sheds/backpressure) are persisted too — they are
//! not decision-path state, but restoring them keeps dashboards
//! monotonic across crash→recover→resume. Histograms and gauges remain
//! excluded (recomputed or refreshed every tick).
//!
//! Encoding is canonical: every hash map is emitted sorted by its
//! encoded key bytes, so two state-equal engines produce identical
//! snapshots regardless of hash-seed iteration order. All floats are
//! stored as IEEE-754 bit patterns (exact round-trip).

use super::codec::{
    read_preamble, read_section, write_preamble, write_section, ByteReader, ByteWriter, CodecError,
    KIND_SNAPSHOT,
};
use super::PersistError;
use crate::active::UnlocalizedReason;
use crate::background::{BackgroundScheduler, BaselineEntry, BaselineStore};
use crate::fxhash::{det_set_with_capacity, DetHashMap, DetHashSet};
use crate::grouping::MiddleKey;
use crate::history::{ClientCountHistory, DurationHistory, ExpectedRttLearner, RttKey};
use crate::incident::{IncidentTracker, OpenIncident};
use crate::pipeline::BlameItEngine;
use blameit_obs::{FlightDumpEvent, FlightFrame, FlightTrigger};
use blameit_simnet::{SimTime, TimeBucket};
use blameit_topology::rng::DetRng;
use blameit_topology::{Asn, CloudLocId, IpPrefix, MetroId, PathId, Prefix24};
use std::collections::{BTreeMap, VecDeque};

// Section ids, in file order.
const SEC_IDENTITY: u8 = 1;
const SEC_EXPECTED: u8 = 2;
const SEC_DURATIONS: u8 = 3;
const SEC_CLIENT_HIST: u8 = 4;
const SEC_INCIDENTS: u8 = 5;
const SEC_BASELINES: u8 = 6;
const SEC_SCHEDULER: u8 = 7;
const SEC_ENGINE: u8 = 8;
const SEC_FLIGHT: u8 = 9;
const SEC_COUNTERS: u8 = 10;

/// A fully decoded snapshot, not yet bound to an engine.
///
/// Holding plain structs (rather than writing straight into an engine)
/// lets `fsck` and the property tests validate a snapshot end-to-end
/// without constructing a pipeline.
pub struct SnapshotState {
    /// Seed the engine ran under (identity — must match on load).
    pub seed: u64,
    /// Buckets per tick (identity — must match on load).
    pub tick_buckets: u32,
    /// Completed ticks at the moment the snapshot was taken; journal
    /// records at or beyond this index replay on top of it.
    pub ticks_done: u64,
    /// The expected-RTT learner, RNG position included.
    pub expected: ExpectedRttLearner,
    /// Per-path incident-duration history.
    pub durations: DurationHistory,
    /// Per-(path, time-of-day) client volumes.
    pub client_hist: ClientCountHistory,
    /// Open incidents at snapshot time.
    pub incidents_open: BTreeMap<(CloudLocId, PathId), OpenIncident>,
    /// Last bucket the incident tracker saw.
    pub incidents_last_bucket: Option<TimeBucket>,
    /// The background-traceroute baseline store.
    pub baselines: BaselineStore,
    /// Background scheduler period.
    pub scheduler_period_secs: u64,
    /// Background scheduler churn triggering.
    pub scheduler_churn_triggered: bool,
    /// Background scheduler last-probed clocks.
    pub scheduler_last: DetHashMap<(CloudLocId, PathId), SimTime>,
    /// Representative probe /24 per (loc, path).
    pub rep_p24: DetHashMap<(CloudLocId, PathId), Prefix24>,
    /// The /24 each stored baseline was measured toward.
    pub baseline_p24: DetHashMap<(CloudLocId, PathId), Prefix24>,
    /// (location, prefix) pairs observed carrying traffic.
    pub monitored_prefixes: DetHashSet<(CloudLocId, IpPrefix)>,
    /// Badness episodes per (loc, path).
    pub episodes: DetHashMap<(CloudLocId, PathId), (TimeBucket, TimeBucket)>,
    /// Background targets already granted their one fast retry.
    pub bg_failed_once: DetHashSet<(CloudLocId, PathId)>,
    /// Where the churn feed was consumed up to.
    pub churn_cursor: SimTime,
    /// Lifetime on-demand probe count.
    pub on_demand_probes_total: u64,
    /// Lifetime background probe count.
    pub background_probes_total: u64,
    /// Flight-recorder frames at snapshot time, oldest first. Persisted
    /// so a post-recovery dump shows the same history an uninterrupted
    /// run would.
    pub flight_frames: Vec<FlightFrame>,
    /// Flight-recorder trigger log at snapshot time.
    pub flight_dumps: Vec<FlightDumpEvent>,
    /// Cumulative observability counters at snapshot time.
    pub counters: SnapshotCounters,
}

/// Cumulative metric counters persisted alongside engine state (v3).
///
/// Not decision-path state — restoring them keeps operator counters
/// monotonic across crash→recover→resume, and journal replay then
/// re-increments them exactly as the uninterrupted run would have.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SnapshotCounters {
    /// `blameit_degraded_verdicts_total{reason}`
    /// (`UnlocalizedReason::ALL` order).
    pub degraded: [u64; 6],
    /// `blameit_chaos_faults_injected_total{kind}`
    /// (`backend::KIND_LABELS` order).
    pub chaos: [u64; 7],
    /// `blameit_shed_quartets_total{reason}`
    /// (`metrics::shed_reason::ALL` order).
    pub shed: [u64; 2],
    /// `blameit_backpressure_replies_total`.
    pub backpressure_replies: u64,
}

impl SnapshotCounters {
    /// Reads the current values off the engine's shared registry.
    /// Chaos counters go through `counter_with`, which registers
    /// zero-valued instruments when no chaos backend ever attached —
    /// capture therefore never misses them.
    // lint:allow(transitive-effect): shed labels are drawn from shed_reason::ALL itself; the lookup expect cannot fire
    fn capture(engine: &BlameItEngine) -> SnapshotCounters {
        let m = &engine.metrics;
        SnapshotCounters {
            degraded: UnlocalizedReason::ALL.map(|r| m.degraded_counter(r).get()),
            chaos: crate::backend::KIND_LABELS.map(|k| {
                m.registry()
                    .counter_with("blameit_chaos_faults_injected_total", &[("kind", k)])
                    .get()
            }),
            shed: crate::metrics::shed_reason::ALL.map(|r| m.shed_counter(r).get()),
            backpressure_replies: m.backpressure_replies.get(),
        }
    }

    /// Seeds the engine's registry counters with the persisted values.
    /// A `ChaosBackend::with_registry` sharing this registry picks the
    /// same `Arc`s up, so its mirrored counters continue from here.
    // lint:allow(transitive-effect): shed labels are drawn from shed_reason::ALL itself; the lookup expect cannot fire
    fn install(&self, engine: &BlameItEngine) {
        let m = &engine.metrics;
        for (r, v) in UnlocalizedReason::ALL.into_iter().zip(self.degraded) {
            m.degraded_counter(r).store(v);
        }
        for (k, v) in crate::backend::KIND_LABELS.into_iter().zip(self.chaos) {
            m.registry()
                .counter_with("blameit_chaos_faults_injected_total", &[("kind", k)])
                .store(v);
        }
        for (r, v) in crate::metrics::shed_reason::ALL.into_iter().zip(self.shed) {
            m.shed_counter(r).store(v);
        }
        m.backpressure_replies.store(self.backpressure_replies);
    }
}

impl SnapshotState {
    /// Installs this state onto `engine`, consuming it. Fails with
    /// [`PersistError::ConfigMismatch`] when the snapshot identity
    /// (seed, tick width) differs from the engine's configuration —
    /// replaying another identity's journal would silently diverge.
    /// Returns the snapshot's `ticks_done`.
    // lint:allow(transitive-effect): flight-recorder lock().expect only propagates a *prior* panic (poisoned mutex); it cannot originate one
    pub fn apply(self, engine: &mut BlameItEngine) -> Result<u64, PersistError> {
        if engine.cfg.seed != self.seed {
            return Err(PersistError::ConfigMismatch(format!(
                "snapshot seed {:#x} != engine seed {:#x}",
                self.seed, engine.cfg.seed
            )));
        }
        if engine.cfg.tick_buckets != self.tick_buckets {
            return Err(PersistError::ConfigMismatch(format!(
                "snapshot tick_buckets {} != engine tick_buckets {}",
                self.tick_buckets, engine.cfg.tick_buckets
            )));
        }
        engine.expected = self.expected;
        engine.durations = self.durations;
        engine.client_hist = self.client_hist;
        engine.incidents = IncidentTracker {
            open: self.incidents_open,
            last_bucket: self.incidents_last_bucket,
        };
        engine.baselines = self.baselines;
        engine.scheduler = BackgroundScheduler {
            period_secs: self.scheduler_period_secs,
            churn_triggered: self.scheduler_churn_triggered,
            last: self.scheduler_last,
        };
        engine.rep_p24 = self.rep_p24;
        engine.baseline_p24 = self.baseline_p24;
        engine.monitored_prefixes = self.monitored_prefixes;
        engine.episodes = self.episodes;
        engine.bg_failed_once = self.bg_failed_once;
        engine.churn_cursor = self.churn_cursor;
        engine.on_demand_probes_total = self.on_demand_probes_total;
        engine.background_probes_total = self.background_probes_total;
        engine.flight.restore(self.flight_frames, self.flight_dumps);
        self.counters.install(engine);
        Ok(self.ticks_done)
    }
}

impl SnapshotState {
    /// Captures (clones) the engine's durable state after `ticks_done`
    /// completed ticks.
    // lint:allow(transitive-effect): flight-recorder lock().expect only propagates a *prior* panic (poisoned mutex); it cannot originate one
    pub(crate) fn capture(engine: &BlameItEngine, ticks_done: u64) -> SnapshotState {
        SnapshotState {
            seed: engine.cfg.seed,
            tick_buckets: engine.cfg.tick_buckets,
            ticks_done,
            expected: engine.expected.clone(),
            durations: engine.durations.clone(),
            client_hist: engine.client_hist.clone(),
            incidents_open: engine.incidents.open.clone(),
            incidents_last_bucket: engine.incidents.last_bucket,
            baselines: engine.baselines.clone(),
            scheduler_period_secs: engine.scheduler.period_secs,
            scheduler_churn_triggered: engine.scheduler.churn_triggered,
            scheduler_last: engine.scheduler.last.clone(),
            rep_p24: engine.rep_p24.clone(),
            baseline_p24: engine.baseline_p24.clone(),
            monitored_prefixes: engine.monitored_prefixes.clone(),
            episodes: engine.episodes.clone(),
            bg_failed_once: engine.bg_failed_once.clone(),
            churn_cursor: engine.churn_cursor,
            on_demand_probes_total: engine.on_demand_probes_total,
            background_probes_total: engine.background_probes_total,
            flight_frames: engine.flight.frames(),
            flight_dumps: engine.flight.dump_events(),
            counters: SnapshotCounters::capture(engine),
        }
    }

    /// Serializes to the canonical snapshot byte format. This is the
    /// *only* writer of the format ([`encode`] routes through it), so
    /// the property tests exercising it from outside the crate cover
    /// the exact bytes the engine persists.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        write_preamble(&mut w, KIND_SNAPSHOT);

        let mut s = ByteWriter::new();
        s.put_u64(self.seed);
        s.put_u32(self.tick_buckets);
        s.put_u64(self.ticks_done);
        write_section(&mut w, SEC_IDENTITY, &s.into_bytes());

        write_section(&mut w, SEC_EXPECTED, &encode_expected(&self.expected));
        write_section(&mut w, SEC_DURATIONS, &encode_durations(&self.durations));
        write_section(
            &mut w,
            SEC_CLIENT_HIST,
            &encode_client_hist(&self.client_hist),
        );
        write_section(
            &mut w,
            SEC_INCIDENTS,
            &encode_incidents(&self.incidents_open, self.incidents_last_bucket),
        );
        write_section(&mut w, SEC_BASELINES, &encode_baselines(&self.baselines));
        write_section(
            &mut w,
            SEC_SCHEDULER,
            &encode_scheduler(
                self.scheduler_period_secs,
                self.scheduler_churn_triggered,
                &self.scheduler_last,
            ),
        );
        write_section(&mut w, SEC_ENGINE, &encode_engine_misc(self));
        write_section(
            &mut w,
            SEC_FLIGHT,
            &encode_flight(&self.flight_frames, &self.flight_dumps),
        );
        write_section(&mut w, SEC_COUNTERS, &encode_counters(&self.counters));
        w.into_bytes()
    }
}

/// Encodes the engine's full durable state after `ticks_done`
/// completed ticks.
pub fn encode(engine: &BlameItEngine, ticks_done: u64) -> Vec<u8> {
    SnapshotState::capture(engine, ticks_done).to_bytes()
}

/// Decodes a snapshot. Errors (never panics) on any corruption:
/// preamble flips hit value checks, everything after hits a section
/// CRC before its payload is even parsed.
// lint:allow(transitive-effect): Prefix24::from_block is fed by get_block, which range-checks to 24 bits first — its assert cannot fire
pub fn decode(bytes: &[u8]) -> Result<SnapshotState, CodecError> {
    let mut r = read_preamble(bytes, KIND_SNAPSHOT)?;
    let expect = [
        SEC_IDENTITY,
        SEC_EXPECTED,
        SEC_DURATIONS,
        SEC_CLIENT_HIST,
        SEC_INCIDENTS,
        SEC_BASELINES,
        SEC_SCHEDULER,
        SEC_ENGINE,
        SEC_FLIGHT,
        SEC_COUNTERS,
    ];
    let mut payloads: Vec<&[u8]> = Vec::with_capacity(expect.len());
    for want in expect {
        let (id, payload) = read_section(&mut r)?;
        if id != want {
            return Err(CodecError::Invalid("sections out of order"));
        }
        payloads.push(payload);
    }
    if r.remaining() != 0 {
        return Err(CodecError::Invalid("trailing bytes after last section"));
    }
    let [p_ident, p_expected, p_durations, p_client, p_incidents, p_baselines, p_scheduler, p_engine, p_flight, p_counters] =
        payloads.as_slice()
    else {
        return Err(CodecError::Invalid("wrong section count"));
    };

    let mut ident = ByteReader::new(p_ident);
    let seed = ident.u64()?;
    let tick_buckets = ident.u32()?;
    let ticks_done = ident.u64()?;

    let expected = decode_expected(p_expected)?;
    let durations = decode_durations(p_durations)?;
    let client_hist = decode_client_hist(p_client)?;
    let (incidents_open, incidents_last_bucket) = decode_incidents(p_incidents)?;
    let baselines = decode_baselines(p_baselines)?;
    let (scheduler_period_secs, scheduler_churn_triggered, scheduler_last) =
        decode_scheduler(p_scheduler)?;

    let mut e = ByteReader::new(p_engine);
    let rep_p24 = get_map(&mut e, 10, get_loc_path, |r| {
        Ok(Prefix24::from_block(get_block(r)?))
    })?;
    let baseline_p24 = get_map(&mut e, 10, get_loc_path, |r| {
        Ok(Prefix24::from_block(get_block(r)?))
    })?;
    let n = e.len(7)?;
    let mut monitored_prefixes = det_set_with_capacity(n);
    for _ in 0..n {
        let loc = CloudLocId(e.u16()?);
        let base = e.u32()?;
        let len = e.u8()?;
        if len > 32 {
            return Err(CodecError::Invalid("prefix length > 32"));
        }
        monitored_prefixes.insert((loc, IpPrefix::new(base, len)));
    }
    let episodes = get_map(&mut e, 14, get_loc_path, |r| {
        Ok((TimeBucket(r.u32()?), TimeBucket(r.u32()?)))
    })?;
    let n = e.len(6)?;
    let mut bg_failed_once = det_set_with_capacity(n);
    for _ in 0..n {
        bg_failed_once.insert(get_loc_path(&mut e)?);
    }
    let churn_cursor = SimTime(e.u64()?);
    let on_demand_probes_total = e.u64()?;
    let background_probes_total = e.u64()?;
    if e.remaining() != 0 {
        return Err(CodecError::Invalid("trailing bytes in engine section"));
    }

    let (flight_frames, flight_dumps) = decode_flight(p_flight)?;
    let counters = decode_counters(p_counters)?;

    Ok(SnapshotState {
        seed,
        tick_buckets,
        ticks_done,
        expected,
        durations,
        client_hist,
        incidents_open,
        incidents_last_bucket,
        baselines,
        scheduler_period_secs,
        scheduler_churn_triggered,
        scheduler_last,
        rep_p24,
        baseline_p24,
        monitored_prefixes,
        episodes,
        bg_failed_once,
        churn_cursor,
        on_demand_probes_total,
        background_probes_total,
        flight_frames,
        flight_dumps,
        counters,
    })
}

// ---- canonical map framing -------------------------------------------------

/// Writes a map as `count · (key · value)…`, sorted by encoded key
/// bytes — canonical regardless of the source container's iteration
/// order (accepts `&HashMap`, `&BTreeMap`, or any `(&K, &V)` iterator).
fn put_map<'a, K: 'a, V: 'a>(
    w: &mut ByteWriter,
    map: impl IntoIterator<Item = (&'a K, &'a V)>,
    mut put_key: impl FnMut(&mut ByteWriter, &K),
    mut put_val: impl FnMut(&mut ByteWriter, &V),
) {
    let mut entries: Vec<(Vec<u8>, Vec<u8>)> = map
        .into_iter()
        .map(|(k, v)| {
            let mut kw = ByteWriter::new();
            put_key(&mut kw, k);
            let mut vw = ByteWriter::new();
            put_val(&mut vw, v);
            (kw.into_bytes(), vw.into_bytes())
        })
        .collect();
    entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    w.put_len(entries.len());
    for (k, v) in entries {
        w.put_bytes(&k);
        w.put_bytes(&v);
    }
}

/// Reads a map written by [`put_map`] into whatever map type the call
/// site needs (`HashMap`, `BTreeMap`, …).
fn get_map<M: FromIterator<(K, V)>, K, V>(
    r: &mut ByteReader<'_>,
    min_entry_bytes: usize,
    mut get_key: impl FnMut(&mut ByteReader<'_>) -> Result<K, CodecError>,
    mut get_val: impl FnMut(&mut ByteReader<'_>) -> Result<V, CodecError>,
) -> Result<M, CodecError> {
    let n = r.len(min_entry_bytes)?;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let k = get_key(r)?;
        let v = get_val(r)?;
        entries.push((k, v));
    }
    Ok(entries.into_iter().collect())
}

// ---- key/leaf encoders -----------------------------------------------------

fn put_loc_path(w: &mut ByteWriter, k: &(CloudLocId, PathId)) {
    w.put_u16(k.0 .0);
    w.put_u32(k.1 .0);
}

fn get_loc_path(r: &mut ByteReader<'_>) -> Result<(CloudLocId, PathId), CodecError> {
    Ok((CloudLocId(r.u16()?), PathId(r.u32()?)))
}

fn get_block(r: &mut ByteReader<'_>) -> Result<u32, CodecError> {
    let block = r.u32()?;
    if block >= 1 << 24 {
        return Err(CodecError::Invalid("/24 block number out of range"));
    }
    Ok(block)
}

fn put_middle_key(w: &mut ByteWriter, k: &MiddleKey) {
    match k {
        MiddleKey::Path(p) => {
            w.put_u8(0);
            w.put_u32(p.0);
        }
        MiddleKey::Atom(p, a) => {
            w.put_u8(1);
            w.put_u32(p.0);
            w.put_u32(a.0);
        }
        MiddleKey::Prefix(p, pre) => {
            w.put_u8(2);
            w.put_u32(p.0);
            w.put_u32(pre.base());
            w.put_u8(pre.len());
        }
        MiddleKey::AsMetro(a, m) => {
            w.put_u8(3);
            w.put_u32(a.0);
            w.put_u16(m.0);
        }
    }
}

// lint:allow(transitive-effect): IpPrefix::new is guarded by the explicit `len > 32` check above the call — its assert cannot fire
fn get_middle_key(r: &mut ByteReader<'_>) -> Result<MiddleKey, CodecError> {
    match r.u8()? {
        0 => Ok(MiddleKey::Path(PathId(r.u32()?))),
        1 => Ok(MiddleKey::Atom(PathId(r.u32()?), Asn(r.u32()?))),
        2 => {
            let p = PathId(r.u32()?);
            let base = r.u32()?;
            let len = r.u8()?;
            if len > 32 {
                return Err(CodecError::Invalid("prefix length > 32"));
            }
            Ok(MiddleKey::Prefix(p, IpPrefix::new(base, len)))
        }
        3 => Ok(MiddleKey::AsMetro(Asn(r.u32()?), MetroId(r.u16()?))),
        _ => Err(CodecError::Invalid("unknown MiddleKey tag")),
    }
}

fn put_rtt_key(w: &mut ByteWriter, k: &RttKey) {
    match k {
        RttKey::Cloud(loc, mobile) => {
            w.put_u8(0);
            w.put_u16(loc.0);
            w.put_bool(*mobile);
        }
        RttKey::Middle(mk, mobile) => {
            w.put_u8(1);
            put_middle_key(w, mk);
            w.put_bool(*mobile);
        }
    }
}

fn get_rtt_key(r: &mut ByteReader<'_>) -> Result<RttKey, CodecError> {
    match r.u8()? {
        0 => Ok(RttKey::Cloud(CloudLocId(r.u16()?), r.bool()?)),
        1 => {
            let mk = get_middle_key(r)?;
            Ok(RttKey::Middle(mk, r.bool()?))
        }
        _ => Err(CodecError::Invalid("unknown RttKey tag")),
    }
}

// ---- sections --------------------------------------------------------------

fn encode_expected(l: &ExpectedRttLearner) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(l.window_days);
    w.put_u64(l.day_cap as u64);
    w.put_u32(l.latest_day);
    let (s, spare) = l.rng.state();
    for word in s {
        w.put_u64(word);
    }
    w.put_opt_f64(spare);
    put_map(&mut w, &l.map, put_rtt_key, |w, series| {
        w.put_len(series.len());
        for (day, values) in series {
            w.put_u32(*day);
            w.put_len(values.len());
            for v in values {
                w.put_f64(*v);
            }
        }
    });
    put_map(&mut w, &l.counts, put_rtt_key, |w, c| w.put_u64(*c));
    // The median cache MUST be persisted: a cached entry freezes the
    // median at whatever observations existed at first lookup that
    // day, while `observe` keeps growing the underlying reservoirs. A
    // recovered engine recomputing the entry from the full map would
    // see a different (later) view of the same day and diverge.
    let cache = l.cache.borrow();
    put_map(&mut w, &*cache, put_rtt_key, |w, (day, value)| {
        w.put_u32(*day);
        w.put_opt_f64(*value);
    });
    w.into_bytes()
}

fn decode_expected(payload: &[u8]) -> Result<ExpectedRttLearner, CodecError> {
    let mut r = ByteReader::new(payload);
    let window_days = r.u32()?;
    if window_days < 1 {
        return Err(CodecError::Invalid("expected-RTT window must be >= 1 day"));
    }
    let day_cap = r.u64()? as usize;
    let latest_day = r.u32()?;
    let mut s = [0u64; 4];
    for word in &mut s {
        *word = r.u64()?;
    }
    let spare = r.opt_f64()?;
    let map = get_map(&mut r, 12, get_rtt_key, |r| {
        let n = r.len(12)?;
        let mut series: VecDeque<(u32, Vec<f64>)> = VecDeque::with_capacity(n);
        for _ in 0..n {
            let day = r.u32()?;
            let m = r.len(8)?;
            let mut values = Vec::with_capacity(m);
            for _ in 0..m {
                values.push(r.f64()?);
            }
            series.push_back((day, values));
        }
        Ok(series)
    })?;
    let counts = get_map(&mut r, 12, get_rtt_key, |r| r.u64())?;
    let cache = get_map(&mut r, 12, get_rtt_key, |r| {
        let day = r.u32()?;
        Ok((day, r.opt_f64()?))
    })?;
    if r.remaining() != 0 {
        return Err(CodecError::Invalid("trailing bytes in expected section"));
    }
    Ok(ExpectedRttLearner {
        window_days,
        day_cap,
        map,
        counts,
        cache: std::cell::RefCell::new(cache),
        rng: DetRng::from_state(s, spare),
        latest_day,
    })
}

fn encode_durations(d: &DurationHistory) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(d.cap as u64);
    put_map(
        &mut w,
        &d.per_path,
        |w, p| w.put_u32(p.0),
        |w, q| {
            w.put_len(q.len());
            for v in q {
                w.put_u32(*v);
            }
        },
    );
    w.put_len(d.global.len());
    for v in &d.global {
        w.put_u32(*v);
    }
    w.into_bytes()
}

fn decode_durations(payload: &[u8]) -> Result<DurationHistory, CodecError> {
    let mut r = ByteReader::new(payload);
    let cap = r.u64()? as usize;
    let per_path = get_map(
        &mut r,
        12,
        |r| Ok(PathId(r.u32()?)),
        |r| {
            let n = r.len(4)?;
            let mut q = VecDeque::with_capacity(n);
            for _ in 0..n {
                q.push_back(r.u32()?);
            }
            Ok(q)
        },
    )?;
    let n = r.len(4)?;
    let mut global = VecDeque::with_capacity(n);
    for _ in 0..n {
        global.push_back(r.u32()?);
    }
    if r.remaining() != 0 {
        return Err(CodecError::Invalid("trailing bytes in durations section"));
    }
    Ok(DurationHistory {
        per_path,
        global,
        cap,
    })
}

fn encode_client_hist(h: &ClientCountHistory) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(h.window_days);
    put_map(
        &mut w,
        &h.map,
        |w, (p, slot)| {
            w.put_u32(p.0);
            w.put_u16(*slot);
        },
        |w, q| {
            w.put_len(q.len());
            for (day, count) in q {
                w.put_u32(*day);
                w.put_u64(*count);
            }
        },
    );
    w.into_bytes()
}

fn decode_client_hist(payload: &[u8]) -> Result<ClientCountHistory, CodecError> {
    let mut r = ByteReader::new(payload);
    let window_days = r.u32()?;
    if window_days < 1 {
        return Err(CodecError::Invalid("client-count window must be >= 1 day"));
    }
    let map = get_map(
        &mut r,
        14,
        |r| Ok((PathId(r.u32()?), r.u16()?)),
        |r| {
            let n = r.len(12)?;
            let mut q = VecDeque::with_capacity(n);
            for _ in 0..n {
                let day = r.u32()?;
                let count = r.u64()?;
                q.push_back((day, count));
            }
            Ok(q)
        },
    )?;
    if r.remaining() != 0 {
        return Err(CodecError::Invalid("trailing bytes in client section"));
    }
    Ok(ClientCountHistory { window_days, map })
}

fn encode_incidents(open: &OpenIncidents, last_bucket: Option<TimeBucket>) -> Vec<u8> {
    let mut w = ByteWriter::new();
    match last_bucket {
        None => w.put_u8(0),
        Some(b) => {
            w.put_u8(1);
            w.put_u32(b.0);
        }
    }
    put_map(&mut w, open, put_loc_path, |w, inc| {
        w.put_u32(inc.start.0);
        w.put_u32(inc.buckets);
        w.put_u64(inc.observations);
    });
    w.into_bytes()
}

type OpenIncidents = BTreeMap<(CloudLocId, PathId), OpenIncident>;

fn decode_incidents(payload: &[u8]) -> Result<(OpenIncidents, Option<TimeBucket>), CodecError> {
    let mut r = ByteReader::new(payload);
    let last_bucket = match r.u8()? {
        0 => None,
        1 => Some(TimeBucket(r.u32()?)),
        _ => return Err(CodecError::Invalid("option byte not 0/1")),
    };
    let open = get_map(&mut r, 14, get_loc_path, |r| {
        Ok(OpenIncident {
            start: TimeBucket(r.u32()?),
            buckets: r.u32()?,
            observations: r.u64()?,
        })
    })?;
    if r.remaining() != 0 {
        return Err(CodecError::Invalid("trailing bytes in incident section"));
    }
    Ok((open, last_bucket))
}

fn encode_flight(frames: &[FlightFrame], dumps: &[FlightDumpEvent]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_len(frames.len());
    for f in frames {
        w.put_u64(f.sim_secs);
        w.put_u32(f.bucket);
        w.put_str(&f.transcript);
        w.put_len(f.stages.len());
        for s in &f.stages {
            w.put_str(s);
        }
        w.put_len(f.deltas.len());
        for (name, v) in &f.deltas {
            w.put_str(name);
            w.put_f64(*v);
        }
    }
    w.put_len(dumps.len());
    for d in dumps {
        w.put_u64(d.sim_secs);
        w.put_str(d.trigger.label());
        w.put_str(&d.detail);
    }
    w.into_bytes()
}

fn decode_flight(payload: &[u8]) -> Result<(Vec<FlightFrame>, Vec<FlightDumpEvent>), CodecError> {
    let mut r = ByteReader::new(payload);
    let n = r.len(20)?;
    let mut frames = Vec::with_capacity(n);
    for _ in 0..n {
        let sim_secs = r.u64()?;
        let bucket = r.u32()?;
        let transcript = r.str()?;
        let n_stages = r.len(8)?;
        let mut stages = Vec::with_capacity(n_stages);
        for _ in 0..n_stages {
            stages.push(r.str()?);
        }
        let n_deltas = r.len(16)?;
        let mut deltas = Vec::with_capacity(n_deltas);
        for _ in 0..n_deltas {
            let name = r.str()?;
            let v = r.f64()?;
            deltas.push((name, v));
        }
        frames.push(FlightFrame {
            sim_secs,
            bucket,
            transcript,
            stages,
            deltas,
        });
    }
    let n = r.len(24)?;
    let mut dumps = Vec::with_capacity(n);
    for _ in 0..n {
        let sim_secs = r.u64()?;
        let label = r.str()?;
        let trigger = FlightTrigger::from_label(&label)
            .ok_or(CodecError::Invalid("unknown flight trigger label"))?;
        let detail = r.str()?;
        dumps.push(FlightDumpEvent {
            sim_secs,
            trigger,
            detail,
        });
    }
    if r.remaining() != 0 {
        return Err(CodecError::Invalid("trailing bytes in flight section"));
    }
    Ok((frames, dumps))
}

fn encode_counters(c: &SnapshotCounters) -> Vec<u8> {
    let mut w = ByteWriter::new();
    for v in c.degraded {
        w.put_u64(v);
    }
    for v in c.chaos {
        w.put_u64(v);
    }
    for v in c.shed {
        w.put_u64(v);
    }
    w.put_u64(c.backpressure_replies);
    w.into_bytes()
}

fn decode_counters(payload: &[u8]) -> Result<SnapshotCounters, CodecError> {
    let mut r = ByteReader::new(payload);
    let mut c = SnapshotCounters::default();
    for v in &mut c.degraded {
        *v = r.u64()?;
    }
    for v in &mut c.chaos {
        *v = r.u64()?;
    }
    for v in &mut c.shed {
        *v = r.u64()?;
    }
    c.backpressure_replies = r.u64()?;
    if r.remaining() != 0 {
        return Err(CodecError::Invalid("trailing bytes in counter section"));
    }
    Ok(c)
}

fn encode_baselines(b: &BaselineStore) -> Vec<u8> {
    let mut w = ByteWriter::new();
    put_map(&mut w, &b.map, put_loc_path, |w, q| {
        w.put_len(q.len());
        for e in q {
            w.put_u64(e.at.secs());
            w.put_len(e.contributions.len());
            for (asn, ms) in &e.contributions {
                w.put_u32(asn.0);
                w.put_f64(*ms);
            }
        }
    });
    w.into_bytes()
}

fn decode_baselines(payload: &[u8]) -> Result<BaselineStore, CodecError> {
    let mut r = ByteReader::new(payload);
    let map = get_map(&mut r, 14, get_loc_path, |r| {
        let n = r.len(16)?;
        let mut q = VecDeque::with_capacity(n);
        for _ in 0..n {
            let at = SimTime(r.u64()?);
            let m = r.len(12)?;
            let mut contributions = Vec::with_capacity(m);
            for _ in 0..m {
                let asn = Asn(r.u32()?);
                contributions.push((asn, r.f64()?));
            }
            q.push_back(BaselineEntry { contributions, at });
        }
        Ok(q)
    })?;
    if r.remaining() != 0 {
        return Err(CodecError::Invalid("trailing bytes in baseline section"));
    }
    Ok(BaselineStore { map })
}

fn encode_scheduler(
    period_secs: u64,
    churn_triggered: bool,
    last: &DetHashMap<(CloudLocId, PathId), SimTime>,
) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(period_secs);
    w.put_bool(churn_triggered);
    put_map(&mut w, last, put_loc_path, |w, t| w.put_u64(t.secs()));
    w.into_bytes()
}

type SchedulerParts = (u64, bool, DetHashMap<(CloudLocId, PathId), SimTime>);

fn decode_scheduler(payload: &[u8]) -> Result<SchedulerParts, CodecError> {
    let mut r = ByteReader::new(payload);
    let period_secs = r.u64()?;
    if period_secs == 0 {
        return Err(CodecError::Invalid("scheduler period must be positive"));
    }
    let churn_triggered = r.bool()?;
    let last = get_map(&mut r, 14, get_loc_path, |r| Ok(SimTime(r.u64()?)))?;
    if r.remaining() != 0 {
        return Err(CodecError::Invalid("trailing bytes in scheduler section"));
    }
    Ok((period_secs, churn_triggered, last))
}

fn encode_engine_misc(s: &SnapshotState) -> Vec<u8> {
    let mut w = ByteWriter::new();
    put_map(&mut w, &s.rep_p24, put_loc_path, |w, p| {
        w.put_u32(p.block())
    });
    put_map(&mut w, &s.baseline_p24, put_loc_path, |w, p| {
        w.put_u32(p.block())
    });
    let mut prefixes: Vec<(CloudLocId, IpPrefix)> = s.monitored_prefixes.iter().copied().collect();
    prefixes.sort_unstable_by_key(|(loc, p)| (loc.0, p.base(), p.len()));
    w.put_len(prefixes.len());
    for (loc, p) in prefixes {
        w.put_u16(loc.0);
        w.put_u32(p.base());
        w.put_u8(p.len());
    }
    put_map(&mut w, &s.episodes, put_loc_path, |w, (start, last)| {
        w.put_u32(start.0);
        w.put_u32(last.0);
    });
    let mut failed: Vec<(CloudLocId, PathId)> = s.bg_failed_once.iter().copied().collect();
    failed.sort_unstable();
    w.put_len(failed.len());
    for k in failed {
        put_loc_path(&mut w, &k);
    }
    w.put_u64(s.churn_cursor.secs());
    w.put_u64(s.on_demand_probes_total);
    w.put_u64(s.background_probes_total);
    w.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::WorldBackend;
    use crate::pipeline::BlameItConfig;
    use crate::thresholds::BadnessThresholds;
    use blameit_simnet::{TimeRange, World, WorldConfig};

    fn small_engine() -> (BlameItEngine, World) {
        let w = World::new(WorldConfig::tiny(2, 42));
        let th = BadnessThresholds::default_for(&w);
        let mut cfg = BlameItConfig::new(th);
        cfg.parallelism = 1;
        let mut engine = BlameItEngine::new(cfg);
        let backend = WorldBackend::new(&w);
        engine.warmup(
            &backend,
            TimeRange::new(SimTime::ZERO, SimTime::from_days(1)),
            4,
        );
        (engine, w)
    }

    #[test]
    fn encode_is_canonical_and_roundtrips() {
        let (mut engine, w) = small_engine();
        let mut backend = WorldBackend::new(&w);
        engine.tick(&mut backend, SimTime::from_days(1).bucket());
        let a = encode(&engine, 1);
        let b = encode(&engine, 1);
        assert_eq!(a, b, "same state must encode identically");

        let state = decode(&a).unwrap();
        assert_eq!(state.ticks_done, 1);
        // Applying onto a config-identical fresh engine and re-encoding
        // reproduces the exact bytes: the snapshot captures everything
        // it claims to.
        let mut fresh = BlameItEngine::new(engine.config().clone());
        state.apply(&mut fresh).unwrap();
        assert_eq!(encode(&fresh, 1), a);
    }

    #[test]
    fn apply_refuses_wrong_identity() {
        let (engine, _w) = small_engine();
        let bytes = encode(&engine, 0);
        let mut cfg = engine.config().clone();
        cfg.seed ^= 1;
        let mut other = BlameItEngine::new(cfg);
        let err = decode(&bytes).unwrap().apply(&mut other).unwrap_err();
        assert!(matches!(err, PersistError::ConfigMismatch(_)), "{err}");

        let mut cfg = engine.config().clone();
        cfg.tick_buckets += 1;
        let mut other = BlameItEngine::new(cfg);
        let err = decode(&bytes).unwrap().apply(&mut other).unwrap_err();
        assert!(matches!(err, PersistError::ConfigMismatch(_)), "{err}");
    }

    #[test]
    fn every_bit_flip_is_rejected() {
        let (engine, _w) = small_engine();
        let bytes = encode(&engine, 3);
        // Flipping any single bit anywhere must make decode error —
        // stride through the file to keep the test fast on big states.
        let stride = (bytes.len() / 257).max(1);
        for i in (0..bytes.len()).step_by(stride) {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[i] ^= 1 << bit;
                assert!(
                    decode(&corrupt).is_err(),
                    "bit {bit} of byte {i} flipped undetected"
                );
            }
        }
    }

    #[test]
    fn truncation_is_rejected() {
        let (engine, _w) = small_engine();
        let bytes = encode(&engine, 0);
        for cut in [0, 1, 6, 7, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // Trailing garbage is also rejected.
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(decode(&extended).is_err());
    }
}
