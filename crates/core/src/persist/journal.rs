//! The append-only tick journal.
//!
//! One fixed-size record per completed tick: `tick index · start
//! bucket · output digest · crc32`. Appends are fsync'd before the
//! tick's output is considered durable, so after any crash the journal
//! names exactly the ticks whose effects must be replayed on top of
//! the last snapshot. A torn final record (crash mid-append) is
//! detected by its CRC/size and truncated away on recovery — the tick
//! it described simply re-runs.
//!
//! Layout:
//!
//! ```text
//! header   MAGIC(4) · version(2) · kind=2(1) · seed(8)          15 B
//! record   tick(8) · bucket(4) · digest(8) · crc32(4)           24 B
//! ```
//!
//! Record `i` always carries tick index `i` (the journal is reset
//! together with the post-warmup snapshot), which `scan` verifies —
//! trust in the journal ends at the first record that fails its CRC
//! or breaks the sequence.

use super::codec::{crc32, ByteReader, ByteWriter, CodecError, KIND_JOURNAL, MAGIC};
use super::PersistError;
use crate::pipeline::TickOutput;
use crate::report::render_tick_transcript;
use blameit_simnet::TimeBucket;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Journal file name inside a state directory.
pub const JOURNAL_FILE: &str = "journal.blj";

/// Header bytes: 7-byte preamble + 8-byte seed.
pub const HEADER_BYTES: u64 = 15;

/// Fixed record size.
pub const RECORD_BYTES: u64 = 24;

/// One journal record: a completed tick.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JournalRecord {
    /// Zero-based tick index since the post-warmup checkpoint.
    pub tick: u64,
    /// The tick's start bucket — replay calls `tick(backend, bucket)`.
    pub bucket: TimeBucket,
    /// FNV-1a 64 digest of the tick's rendered transcript.
    pub digest: u64,
}

/// FNV-1a 64-bit hash.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// The digest journaled for a tick: a hash of its canonical transcript
/// rendering, so replay verification checks the *entire* observable
/// output, not a summary of it.
// lint:allow(transitive-effect): transcript rendering unwraps fmt::Write into a String, which is infallible
pub fn tick_digest(out: &TickOutput) -> u64 {
    fnv1a64(render_tick_transcript(std::slice::from_ref(out)).as_bytes())
}

fn encode_record(rec: &JournalRecord) -> [u8; RECORD_BYTES as usize] {
    let mut w = ByteWriter::new();
    w.put_u64(rec.tick);
    w.put_u32(rec.bucket.0);
    w.put_u64(rec.digest);
    let body = w.into_bytes();
    let crc = crc32(&body);
    let mut out = [0u8; RECORD_BYTES as usize];
    // lint:allow(panic-in-decode): encode path — body is exactly 20 bytes by construction (u64+u32+u64), no external input
    out[..20].copy_from_slice(&body);
    // lint:allow(panic-in-decode): encode path — fixed 24-byte record leaves exactly 4 CRC bytes
    out[20..].copy_from_slice(&crc.to_le_bytes());
    out
}

fn decode_record(bytes: &[u8]) -> Result<JournalRecord, CodecError> {
    let mut r = ByteReader::new(bytes);
    let tick = r.u64()?;
    let bucket = TimeBucket(r.u32()?);
    let digest = r.u64()?;
    let stored = r.u32()?;
    let Some(body) = bytes.get(..20) else {
        return Err(CodecError::Truncated { at: 0, wanted: 20 });
    };
    if crc32(body) != stored {
        return Err(CodecError::BadCrc { section: 0 });
    }
    Ok(JournalRecord {
        tick,
        bucket,
        digest,
    })
}

fn encode_header(seed: u64) -> [u8; HEADER_BYTES as usize] {
    let mut w = ByteWriter::new();
    w.put_bytes(&MAGIC);
    w.put_u16(super::codec::FORMAT_VERSION);
    w.put_u8(KIND_JOURNAL);
    w.put_u64(seed);
    let bytes = w.into_bytes();
    let mut out = [0u8; HEADER_BYTES as usize];
    out.copy_from_slice(&bytes);
    out
}

/// The journal's path inside `dir`.
pub fn journal_path(dir: &Path) -> PathBuf {
    dir.join(JOURNAL_FILE)
}

/// Result of scanning a journal file.
#[derive(Debug)]
pub struct JournalScan {
    /// Seed from the header.
    pub seed: u64,
    /// Every valid record, in order (record `i` has tick `i`).
    pub records: Vec<JournalRecord>,
    /// File length covered by the header plus valid records.
    pub valid_len: u64,
    /// Bytes past `valid_len` — a torn final record (crash residue) or
    /// deeper corruption; zero for a clean journal.
    pub trailing_bytes: u64,
}

/// Scans the journal in `dir`. Returns `Ok(None)` when no journal file
/// exists; errors only on an unreadable/invalid *header* (a file that
/// is not a journal at all). Record-level damage is reported via
/// `trailing_bytes`, never an error — the valid prefix is still
/// useful.
pub fn scan(dir: &Path) -> Result<Option<JournalScan>, PersistError> {
    let path = journal_path(dir);
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let mut r = ByteReader::new(&bytes);
    if r.take(4).map_err(PersistError::Codec)? != MAGIC {
        return Err(CodecError::BadMagic.into());
    }
    let version = r.u16().map_err(PersistError::Codec)?;
    if version != super::codec::FORMAT_VERSION {
        return Err(CodecError::UnsupportedVersion(version).into());
    }
    let kind = r.u8().map_err(PersistError::Codec)?;
    if kind != KIND_JOURNAL {
        return Err(CodecError::BadKind(kind).into());
    }
    let seed = r.u64().map_err(PersistError::Codec)?;

    let mut records = Vec::new();
    let mut valid_len = HEADER_BYTES;
    // A failing take (fewer than RECORD_BYTES left) ends the scan: what
    // remains is a torn final record, reported via `trailing_bytes`.
    while let Ok(chunk) = r.take(RECORD_BYTES as usize) {
        match decode_record(chunk) {
            Ok(rec) if rec.tick == records.len() as u64 => {
                records.push(rec);
                valid_len += RECORD_BYTES;
            }
            // Bad CRC or out-of-sequence tick: trust ends here.
            _ => break,
        }
    }
    let trailing_bytes = bytes.len() as u64 - valid_len;
    Ok(Some(JournalScan {
        seed,
        records,
        valid_len,
        trailing_bytes,
    }))
}

/// Truncates the journal to its valid prefix (drops a torn tail).
pub fn truncate_torn(dir: &Path, valid_len: u64) -> std::io::Result<()> {
    let f = OpenOptions::new().write(true).open(journal_path(dir))?;
    f.set_len(valid_len)?;
    f.sync_data()
}

/// An open journal, appending fsync'd records.
#[derive(Debug)]
pub struct Journal {
    file: File,
}

impl Journal {
    /// Opens the journal in `dir`, creating it (header only) if absent
    /// or empty. An existing journal must carry the same seed —
    /// replaying another seed's records would silently diverge.
    pub fn open_or_create(dir: &Path, seed: u64) -> Result<Journal, PersistError> {
        let path = journal_path(dir);
        let mut file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(&path)?;
        let len = file.metadata()?.len();
        if len == 0 {
            file.write_all(&encode_header(seed))?;
            file.sync_data()?;
        } else {
            let mut header = [0u8; HEADER_BYTES as usize];
            file.read_exact(&mut header).map_err(|_| {
                PersistError::Codec(CodecError::Truncated {
                    at: 0,
                    wanted: HEADER_BYTES as usize,
                })
            })?;
            let expected = encode_header(seed);
            // lint:allow(panic-in-decode): both sides are fixed [u8; HEADER_BYTES] arrays (15 bytes); 7-byte prefix slices cannot fail
            if header[..7] != expected[..7] {
                return Err(CodecError::BadMagic.into());
            }
            if header != expected {
                // lint:allow(panic-in-decode): header is a fixed 15-byte array, bytes 7.. are exactly the 8-byte seed
                let found = u64::from_le_bytes(header[7..].try_into().unwrap());
                return Err(PersistError::ConfigMismatch(format!(
                    "journal seed {found:#x} != engine seed {seed:#x}"
                )));
            }
        }
        Ok(Journal { file })
    }

    /// Truncates and re-headers the journal (called with the
    /// post-warmup checkpoint: tick indices restart at zero).
    pub fn reset(dir: &Path, seed: u64) -> Result<Journal, PersistError> {
        let path = journal_path(dir);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        file.write_all(&encode_header(seed))?;
        file.sync_data()?;
        drop(file);
        Journal::open_or_create(dir, seed)
    }

    /// Appends one record and fsyncs — on return the tick is durable.
    pub fn append(&mut self, rec: &JournalRecord) -> std::io::Result<()> {
        self.file.write_all(&encode_record(rec))?;
        self.file.sync_data()
    }

    /// Appends only a prefix of the record — the kill-point harness's
    /// torn write. `fraction` of the record's bytes reach the file
    /// (clamped to at least 1, at most all-but-the-CRC), and no fsync
    /// happens, exactly as a crash mid-append would leave it.
    pub fn append_torn(&mut self, rec: &JournalRecord, fraction: f64) -> std::io::Result<()> {
        let bytes = encode_record(rec);
        let n = ((RECORD_BYTES as f64 * fraction) as usize).clamp(1, RECORD_BYTES as usize - 2);
        // lint:allow(panic-in-decode): write path — n is clamped to at most RECORD_BYTES - 2, within the fixed record array
        self.file.write_all(&bytes[..n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("blameit-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn rec(tick: u64) -> JournalRecord {
        JournalRecord {
            tick,
            bucket: TimeBucket(100 + tick as u32 * 3),
            digest: 0xD15C_0000 + tick,
        }
    }

    #[test]
    fn append_scan_roundtrip() {
        let dir = tmp_dir("roundtrip");
        let mut j = Journal::open_or_create(&dir, 7).unwrap();
        for t in 0..5 {
            j.append(&rec(t)).unwrap();
        }
        let scan = scan(&dir).unwrap().unwrap();
        assert_eq!(scan.seed, 7);
        assert_eq!(scan.records.len(), 5);
        assert_eq!(scan.records[3], rec(3));
        assert_eq!(scan.trailing_bytes, 0);
        // Reopen and keep appending.
        drop(j);
        let mut j = Journal::open_or_create(&dir, 7).unwrap();
        j.append(&rec(5)).unwrap();
        assert_eq!(super::scan(&dir).unwrap().unwrap().records.len(), 6);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_detected_and_truncated() {
        let dir = tmp_dir("torn");
        let mut j = Journal::open_or_create(&dir, 7).unwrap();
        j.append(&rec(0)).unwrap();
        j.append(&rec(1)).unwrap();
        j.append_torn(&rec(2), 0.5).unwrap();
        drop(j);
        let s = scan(&dir).unwrap().unwrap();
        assert_eq!(s.records.len(), 2, "torn record must not count");
        assert!(s.trailing_bytes > 0);
        truncate_torn(&dir, s.valid_len).unwrap();
        let s = scan(&dir).unwrap().unwrap();
        assert_eq!(s.records.len(), 2);
        assert_eq!(s.trailing_bytes, 0);
        // Appending after truncation continues the sequence.
        let mut j = Journal::open_or_create(&dir, 7).unwrap();
        j.append(&rec(2)).unwrap();
        assert_eq!(scan(&dir).unwrap().unwrap().records.len(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_record_ends_trust() {
        let dir = tmp_dir("corrupt");
        let mut j = Journal::open_or_create(&dir, 7).unwrap();
        for t in 0..4 {
            j.append(&rec(t)).unwrap();
        }
        drop(j);
        let path = journal_path(&dir);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a bit in record 2.
        let off = (HEADER_BYTES + 2 * RECORD_BYTES + 5) as usize;
        bytes[off] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let s = scan(&dir).unwrap().unwrap();
        assert_eq!(s.records.len(), 2, "trust ends at the flipped record");
        assert_eq!(s.trailing_bytes, 2 * RECORD_BYTES);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn seed_mismatch_refused() {
        let dir = tmp_dir("seed");
        Journal::open_or_create(&dir, 7).unwrap();
        let err = Journal::open_or_create(&dir, 8).unwrap_err();
        assert!(matches!(err, PersistError::ConfigMismatch(_)), "{err}");
        // Reset replaces the seed.
        Journal::reset(&dir, 8).unwrap();
        assert_eq!(scan(&dir).unwrap().unwrap().seed, 8);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_journal_is_none() {
        let dir = tmp_dir("missing");
        assert!(scan(&dir).unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
