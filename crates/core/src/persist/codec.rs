//! Hand-rolled byte codec for snapshots and journals.
//!
//! Dependency-free, little-endian, bounds-checked. The framing is
//! deliberately simple: a 7-byte preamble (magic, format version, file
//! kind) whose every bit-flip lands on a value check, followed by
//! sections of `id · length · payload · crc32(id ‖ length ‖ payload)` —
//! so any corruption past the preamble fails the CRC rather than
//! misparsing. Decoding arbitrary bytes must *error*, never panic:
//! every read is bounds-checked and every length is validated against
//! the remaining input before allocation.

/// File magic: every persisted file starts with these four bytes.
pub const MAGIC: [u8; 4] = *b"BLIT";

/// Snapshot/journal format version. Bump on any layout change; loaders
/// refuse other versions rather than guessing. v2: open incidents carry
/// an observation count (verdict provenance). v3: snapshots persist the
/// cumulative observability counters (degraded / chaos / shed).
pub const FORMAT_VERSION: u16 = 3;

/// File kinds (byte 7 of the preamble).
pub const KIND_SNAPSHOT: u8 = 1;
/// Journal file kind.
pub const KIND_JOURNAL: u8 = 2;

/// A decode failure. Carries enough context for `fsck` to report where
/// a file went bad; never panics on malformed input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before a read of `wanted` bytes at `at`.
    Truncated {
        /// Offset of the failed read.
        at: usize,
        /// Bytes the read needed.
        wanted: usize,
    },
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The format version is not [`FORMAT_VERSION`].
    UnsupportedVersion(u16),
    /// The file kind byte matches neither snapshot nor journal.
    BadKind(u8),
    /// A section's CRC32 does not match its contents.
    BadCrc {
        /// The section's id byte.
        section: u8,
    },
    /// Structurally invalid content (bad enum tag, impossible length).
    Invalid(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated { at, wanted } => {
                write!(f, "truncated: needed {wanted} byte(s) at offset {at}")
            }
            CodecError::BadMagic => write!(f, "bad magic (not a blameit state file)"),
            CodecError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported format version {v} (expected {FORMAT_VERSION})"
                )
            }
            CodecError::BadKind(k) => write!(f, "unknown file kind {k}"),
            CodecError::BadCrc { section } => write!(f, "CRC mismatch in section {section}"),
            CodecError::Invalid(what) => write!(f, "invalid content: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// CRC32 (IEEE, reflected) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0u32;
    while i < 256 {
        let mut c = i;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        // lint:allow(panic-in-decode): const-eval table build, i ranges over 0..256 by construction — cannot see runtime input
        table[i as usize] = c;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        // lint:allow(panic-in-decode): index is masked to 0..=255 and CRC_TABLE has 256 entries — infallible for any input byte
        // lint:allow(as-cast-truncation): b is a u8; u8 → u32 widens, nothing to truncate
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Little-endian byte writer.
#[derive(Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far (borrowed).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends raw bytes.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian u16.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an f64 as its IEEE-754 bit pattern (exact round-trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a bool as one byte.
    pub fn put_bool(&mut self, v: bool) {
        // lint:allow(as-cast-truncation): bool is 0 or 1; no wider value exists to lose
        self.put_u8(v as u8);
    }

    /// Appends an `Option<f64>` as a presence byte plus bits.
    pub fn put_opt_f64(&mut self, v: Option<f64>) {
        match v {
            None => self.put_u8(0),
            Some(x) => {
                self.put_u8(1);
                self.put_f64(x);
            }
        }
    }

    /// Appends a collection length as u64.
    pub fn put_len(&mut self, n: usize) {
        self.put_u64(n as u64);
    }

    /// Appends a UTF-8 string as length + bytes.
    pub fn put_str(&mut self, s: &str) {
        self.put_len(s.len());
        self.put_bytes(s.as_bytes());
    }
}

/// Bounds-checked little-endian reader over a byte slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Current offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated {
                at: self.pos,
                wanted: n,
            });
        }
        // lint:allow(panic-in-decode): range is in bounds — the remaining() guard above returned Truncated otherwise
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Takes exactly `N` bytes as a fixed-size array.
    fn array<const N: usize>(&mut self) -> Result<[u8; N], CodecError> {
        let bytes = self.take(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(bytes);
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u16.
    pub fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.array()?))
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    /// Reads an f64 from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a bool byte (must be 0 or 1).
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Invalid("bool byte not 0/1")),
        }
    }

    /// Reads an `Option<f64>`.
    pub fn opt_f64(&mut self) -> Result<Option<f64>, CodecError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.f64()?)),
            _ => Err(CodecError::Invalid("option byte not 0/1")),
        }
    }

    /// Reads a string written by [`ByteWriter::put_str`]. The length is
    /// validated against the remaining input before the bytes are
    /// touched, and the content must be valid UTF-8.
    pub fn str(&mut self) -> Result<String, CodecError> {
        let n = self.len(1)?;
        let bytes = self.take(n)?;
        match std::str::from_utf8(bytes) {
            Ok(s) => Ok(s.to_string()),
            Err(_) => Err(CodecError::Invalid("string is not valid UTF-8")),
        }
    }

    /// Reads a collection length and validates it against the bytes
    /// remaining (each element needs at least `min_elem_bytes`), so a
    /// corrupted length can never trigger a huge allocation.
    pub fn len(&mut self, min_elem_bytes: usize) -> Result<usize, CodecError> {
        let n = self.u64()?;
        let budget = (self.remaining() / min_elem_bytes.max(1)) as u64;
        if n > budget {
            return Err(CodecError::Invalid("length exceeds remaining input"));
        }
        Ok(n as usize)
    }
}

/// Writes the 7-byte file preamble.
pub fn write_preamble(w: &mut ByteWriter, kind: u8) {
    w.put_bytes(&MAGIC);
    w.put_u16(FORMAT_VERSION);
    w.put_u8(kind);
}

/// Validates the 7-byte preamble and returns the reader positioned
/// after it.
pub fn read_preamble<'a>(bytes: &'a [u8], want_kind: u8) -> Result<ByteReader<'a>, CodecError> {
    let mut r = ByteReader::new(bytes);
    if r.take(4)? != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = r.u16()?;
    if version != FORMAT_VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let kind = r.u8()?;
    if kind != want_kind {
        if kind != KIND_SNAPSHOT && kind != KIND_JOURNAL {
            return Err(CodecError::BadKind(kind));
        }
        return Err(CodecError::Invalid("wrong file kind for this loader"));
    }
    Ok(r)
}

/// Appends one framed section: `id · len · payload · crc32(id‖len‖payload)`.
pub fn write_section(w: &mut ByteWriter, id: u8, payload: &[u8]) {
    w.put_u8(id);
    w.put_u64(payload.len() as u64);
    let mut crc_input = Vec::with_capacity(9 + payload.len());
    crc_input.push(id);
    crc_input.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    crc_input.extend_from_slice(payload);
    w.put_bytes(payload);
    w.put_u32(crc32(&crc_input));
}

/// Reads one framed section, validating its CRC. Returns `(id, payload)`.
pub fn read_section<'a>(r: &mut ByteReader<'a>) -> Result<(u8, &'a [u8]), CodecError> {
    let id = r.u8()?;
    let len = r.u64()?;
    if len > r.remaining() as u64 {
        return Err(CodecError::Truncated {
            at: r.pos(),
            wanted: len as usize,
        });
    }
    let payload = r.take(len as usize)?;
    let stored = r.u32()?;
    let mut crc_input = Vec::with_capacity(9 + payload.len());
    crc_input.push(id);
    crc_input.extend_from_slice(&len.to_le_bytes());
    crc_input.extend_from_slice(payload);
    if crc32(&crc_input) != stored {
        return Err(CodecError::BadCrc { section: id });
    }
    Ok((id, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vector() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn primitives_roundtrip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u16(513);
        w.put_u32(70_000);
        w.put_u64(1 << 40);
        w.put_f64(-0.125);
        w.put_bool(true);
        w.put_opt_f64(None);
        w.put_opt_f64(Some(f64::NAN));
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 513);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), 1 << 40);
        assert_eq!(r.f64().unwrap(), -0.125);
        assert!(r.bool().unwrap());
        assert_eq!(r.opt_f64().unwrap(), None);
        assert!(r.opt_f64().unwrap().unwrap().is_nan());
        assert_eq!(r.remaining(), 0);
        assert!(matches!(r.u8(), Err(CodecError::Truncated { .. })));
    }

    #[test]
    fn section_roundtrip_and_crc() {
        let mut w = ByteWriter::new();
        write_preamble(&mut w, KIND_SNAPSHOT);
        write_section(&mut w, 3, b"hello");
        let mut bytes = w.into_bytes();
        let mut r = read_preamble(&bytes, KIND_SNAPSHOT).unwrap();
        let (id, payload) = read_section(&mut r).unwrap();
        assert_eq!((id, payload), (3, b"hello".as_slice()));

        // Any single-byte corruption past the preamble fails the CRC
        // (or a value check) — including the id and length bytes.
        for i in 7..bytes.len() {
            bytes[i] ^= 0x10;
            let res = read_preamble(&bytes, KIND_SNAPSHOT)
                .and_then(|mut r| read_section(&mut r).map(|_| ()));
            assert!(res.is_err(), "flip at {i} went undetected");
            bytes[i] ^= 0x10;
        }
    }

    #[test]
    fn preamble_rejects_garbage() {
        assert_eq!(
            read_preamble(b"no", KIND_SNAPSHOT).unwrap_err(),
            CodecError::Truncated { at: 0, wanted: 4 }
        );
        assert_eq!(
            read_preamble(b"nope", KIND_SNAPSHOT).unwrap_err(),
            CodecError::BadMagic
        );
        assert_eq!(
            read_preamble(b"XXXXxxxxx", KIND_SNAPSHOT).unwrap_err(),
            CodecError::BadMagic
        );
        let mut w = ByteWriter::new();
        w.put_bytes(&MAGIC);
        w.put_u16(99);
        w.put_u8(KIND_SNAPSHOT);
        assert_eq!(
            read_preamble(&w.into_bytes(), KIND_SNAPSHOT).unwrap_err(),
            CodecError::UnsupportedVersion(99)
        );
        let mut w = ByteWriter::new();
        write_preamble(&mut w, 9);
        assert_eq!(
            read_preamble(&w.into_bytes(), KIND_SNAPSHOT).unwrap_err(),
            CodecError::BadKind(9)
        );
        let mut w = ByteWriter::new();
        write_preamble(&mut w, KIND_JOURNAL);
        assert!(read_preamble(&w.into_bytes(), KIND_SNAPSHOT).is_err());
    }

    #[test]
    fn length_validation_blocks_huge_allocs() {
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX); // absurd length
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(r.len(1).is_err());
    }
}
