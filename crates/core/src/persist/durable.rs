//! [`DurableEngine`]: the crash-safe tick loop.
//!
//! Wraps a [`BlameItEngine`] with the durable-tick protocol. Within
//! one tick, the named kill points sit exactly where a real crash
//! could interleave (protocol order):
//!
//! ```text
//! engine.tick ─► [mid-journal] ─► journal append+fsync ─► [post-journal]
//!   ─► (snapshot due?) ─► [pre-snapshot] ─► encode
//!   ─► [mid-snapshot-write] ─► temp+fsync+rename ─► prune
//! ```
//!
//! A [`CrashPlan`] (from `blameit-simnet`) aborts the tick at a kill
//! point, leaving the disk exactly as a real crash would: a torn
//! journal record at `mid-journal`, a half-written temp file at
//! `mid-snapshot-write`. Recovery ([`DurableEngine::open`]) loads the
//! newest snapshot that passes its CRCs (falling back and counting
//! rejects), truncates any torn journal tail, and deterministically
//! replays the journaled ticks — verifying each tick's digest — so
//! the resumed run is byte-identical to one that never crashed.

use super::journal::{self, tick_digest, Journal, JournalRecord};
use super::snapshot;
use super::store::StateStore;
use super::PersistError;
use crate::backend::Backend;
use crate::pipeline::{BlameItConfig, BlameItEngine, TickOutput};
use blameit_obs::{Counter, Gauge, Histogram, MetricsRegistry};
use blameit_simnet::{CrashPlan, CrashPoint, TimeBucket, TimeRange};
use std::sync::Arc;

/// Metric handles for the persistence layer.
#[derive(Clone, Debug)]
pub struct PersistMetrics {
    /// `blameit_snapshots_written_total`.
    pub snapshots_written: Arc<Counter>,
    /// `blameit_snapshots_rejected_total` — snapshots refused at load
    /// (CRC/version/structure failure).
    pub snapshots_rejected: Arc<Counter>,
    /// `blameit_snapshot_bytes` — encoded snapshot sizes.
    pub snapshot_bytes: Arc<Histogram>,
    /// `blameit_snapshot_write_us` — wall time to encode + write +
    /// rename one snapshot.
    pub snapshot_write_us: Arc<Histogram>,
    /// `blameit_journal_lag_ticks` — journaled ticks not yet covered
    /// by a snapshot (replay cost of a crash right now).
    pub journal_lag_ticks: Arc<Gauge>,
    /// `blameit_recoveries_total{outcome="recovered"}` — clean
    /// recoveries from the newest snapshot.
    pub recoveries_recovered: Arc<Counter>,
    /// `blameit_recoveries_total{outcome="fallback"}` — recoveries
    /// that had to fall back past at least one rejected snapshot.
    pub recoveries_fallback: Arc<Counter>,
    /// `blameit_engine_starts_total{mode="cold"}` — starts with no
    /// usable snapshot (the silent `no_baseline` wave is now visible).
    pub starts_cold: Arc<Counter>,
    /// `blameit_engine_starts_total{mode="recovered"}`.
    pub starts_recovered: Arc<Counter>,
    /// `blameit_replayed_ticks_total` — journaled ticks re-executed
    /// during recoveries.
    pub replayed_ticks: Arc<Counter>,
}

impl PersistMetrics {
    /// Registers the persistence metrics on `registry`.
    pub fn new(registry: &MetricsRegistry) -> Self {
        PersistMetrics {
            snapshots_written: registry.counter("blameit_snapshots_written_total"),
            snapshots_rejected: registry.counter("blameit_snapshots_rejected_total"),
            snapshot_bytes: registry.histogram("blameit_snapshot_bytes"),
            snapshot_write_us: registry.histogram("blameit_snapshot_write_us"),
            journal_lag_ticks: registry.gauge("blameit_journal_lag_ticks"),
            recoveries_recovered: registry
                .counter_with("blameit_recoveries_total", &[("outcome", "recovered")]),
            recoveries_fallback: registry
                .counter_with("blameit_recoveries_total", &[("outcome", "fallback")]),
            starts_cold: registry.counter_with("blameit_engine_starts_total", &[("mode", "cold")]),
            starts_recovered: registry
                .counter_with("blameit_engine_starts_total", &[("mode", "recovered")]),
            replayed_ticks: registry.counter("blameit_replayed_ticks_total"),
        }
    }
}

/// How the engine came up.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StartMode {
    /// No usable snapshot: fresh state, caller must warm up.
    Cold,
    /// Recovered from the newest snapshot.
    Recovered,
    /// Recovered, but only after rejecting at least one corrupt
    /// snapshot and falling back to an older retained one.
    RecoveredFallback,
}

/// What [`DurableEngine::open`] found and did.
pub struct RecoveryReport {
    /// Start mode.
    pub mode: StartMode,
    /// `ticks_done` of the snapshot loaded (0 when cold).
    pub snapshot_ticks_done: u64,
    /// Snapshots rejected (CRC/version/structure) before one loaded.
    pub snapshots_rejected: usize,
    /// Journaled ticks replayed on top of the snapshot.
    pub ticks_replayed: u64,
    /// A torn journal tail was found and truncated.
    pub journal_torn: bool,
    /// Outputs of the replayed ticks (tick indices
    /// `snapshot_ticks_done ..`), in order. A downstream consumer that
    /// lost the originals re-reads them from here.
    pub replayed: Vec<TickOutput>,
}

impl RecoveryReport {
    /// The startup log line (satellite: cold vs recovered starts must
    /// be attributable, not silent).
    pub fn describe(&self) -> String {
        match self.mode {
            StartMode::Cold => format!(
                "engine start: cold (no usable snapshot{}); expected-RTT/baseline state empty until warmup",
                if self.snapshots_rejected > 0 {
                    format!(", {} rejected", self.snapshots_rejected)
                } else {
                    String::new()
                }
            ),
            StartMode::Recovered | StartMode::RecoveredFallback => format!(
                "engine start: recovered from snapshot @ tick {} ({} journaled tick(s) replayed{}{})",
                self.snapshot_ticks_done,
                self.ticks_replayed,
                if self.snapshots_rejected > 0 {
                    format!(", {} corrupt snapshot(s) rejected", self.snapshots_rejected)
                } else {
                    String::new()
                },
                if self.journal_torn {
                    ", torn journal tail truncated"
                } else {
                    ""
                },
            ),
        }
    }
}

/// A [`BlameItEngine`] wrapped in the durable-tick protocol.
pub struct DurableEngine {
    engine: BlameItEngine,
    store: StateStore,
    journal: Journal,
    metrics: PersistMetrics,
    crash: Option<CrashPlan>,
    ticks_done: u64,
    last_snapshot_tick: u64,
    snapshot_every: u64,
}

impl DurableEngine {
    /// Opens (or creates) the state directory in `cfg.state_dir`,
    /// recovers state if any exists, and returns the engine plus a
    /// [`RecoveryReport`]. `backend` is needed because recovery
    /// *replays* journaled ticks through the real pipeline — that is
    /// what guarantees the resumed run is byte-identical.
    pub fn open<B: Backend>(
        cfg: BlameItConfig,
        registry: Arc<MetricsRegistry>,
        backend: &mut B,
    ) -> Result<(DurableEngine, RecoveryReport), PersistError> {
        let dir = cfg.state_dir.clone().ok_or(PersistError::NoStateDir)?;
        let store = StateStore::create(&dir)?;
        let metrics = PersistMetrics::new(&registry);
        let snapshot_every = cfg.snapshot_every_ticks.max(1) as u64;
        let seed = cfg.seed;
        let mut engine = BlameItEngine::with_metrics(cfg, registry);

        // Newest snapshot that decodes and matches our identity wins;
        // corrupt ones are rejected and counted, falling back.
        let mut rejected = 0usize;
        let mut loaded: Option<u64> = None;
        for (_, path) in store.list_snapshots()?.iter().rev() {
            let outcome = std::fs::read(path)
                .map_err(PersistError::from)
                .and_then(|bytes| snapshot::decode(&bytes).map_err(PersistError::from))
                .and_then(|state| state.apply(&mut engine));
            match outcome {
                Ok(ticks_done) => {
                    loaded = Some(ticks_done);
                    break;
                }
                // Another identity's state dir is an operator error,
                // not corruption — surface it instead of silently
                // starting cold over foreign files.
                Err(e @ PersistError::ConfigMismatch(_)) => return Err(e),
                Err(_) => {
                    rejected += 1;
                    metrics.snapshots_rejected.inc();
                }
            }
        }

        // Journal: truncate a torn tail, then replay everything the
        // snapshot does not already cover, verifying digests.
        let mut replayed: Vec<TickOutput> = Vec::new();
        let mut journal_torn = false;
        let mut ticks_done = loaded.unwrap_or(0);
        if let Some(snap_ticks) = loaded {
            if let Some(scan) = journal::scan(&dir)? {
                if scan.seed != seed {
                    return Err(PersistError::ConfigMismatch(format!(
                        "journal seed {:#x} != engine seed {seed:#x}",
                        scan.seed
                    )));
                }
                if scan.trailing_bytes > 0 {
                    journal::truncate_torn(&dir, scan.valid_len)?;
                    journal_torn = true;
                }
                for rec in scan.records.iter().filter(|r| r.tick >= snap_ticks) {
                    let out = engine.tick(backend, rec.bucket);
                    let got = tick_digest(&out);
                    if got != rec.digest {
                        return Err(PersistError::ReplayDivergence {
                            tick: rec.tick,
                            expected: rec.digest,
                            got,
                        });
                    }
                    replayed.push(out);
                }
                ticks_done = snap_ticks.max(scan.records.len() as u64);
            }
        }

        let mode = match (loaded.is_some(), rejected) {
            (false, _) => StartMode::Cold,
            (true, 0) => StartMode::Recovered,
            (true, _) => StartMode::RecoveredFallback,
        };
        match mode {
            StartMode::Cold => metrics.starts_cold.inc(),
            StartMode::Recovered => {
                metrics.starts_recovered.inc();
                metrics.recoveries_recovered.inc();
            }
            StartMode::RecoveredFallback => {
                metrics.starts_recovered.inc();
                metrics.recoveries_fallback.inc();
                // A fallback recovery means at least one snapshot was
                // corrupt — exactly the anomaly the flight recorder
                // exists to capture, so log (and possibly dump) it.
                engine.fire_flight_trigger(
                    engine.churn_cursor.secs(),
                    blameit_obs::FlightTrigger::RecoveryFallback,
                    format!("recovered after rejecting {rejected} snapshot(s)"),
                );
            }
        }
        metrics.replayed_ticks.add(replayed.len() as u64);

        let journal = Journal::open_or_create(&dir, seed)?;
        let report = RecoveryReport {
            mode,
            snapshot_ticks_done: loaded.unwrap_or(0),
            snapshots_rejected: rejected,
            ticks_replayed: replayed.len() as u64,
            journal_torn,
            replayed,
        };
        let last_snapshot_tick = loaded.unwrap_or(0);
        metrics
            .journal_lag_ticks
            .set((ticks_done - last_snapshot_tick) as f64);
        Ok((
            DurableEngine {
                engine,
                store,
                journal,
                metrics,
                crash: None,
                ticks_done,
                last_snapshot_tick,
                snapshot_every,
            },
            report,
        ))
    }

    /// Installs (or clears) a kill-point plan — crash-harness only.
    pub fn set_crash_plan(&mut self, plan: Option<CrashPlan>) {
        self.crash = plan;
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &BlameItEngine {
        &self.engine
    }

    /// Completed ticks since the post-warmup checkpoint.
    pub fn ticks_done(&self) -> u64 {
        self.ticks_done
    }

    /// The persistence metric handles.
    pub fn metrics(&self) -> &PersistMetrics {
        &self.metrics
    }

    /// Warms the engine up and writes the tick-0 checkpoint, resetting
    /// the journal. This is the cold-start path: recovery from any
    /// later crash loads this (or a newer) snapshot and never has to
    /// repeat the warmup.
    pub fn warmup_and_checkpoint<B: Backend>(
        &mut self,
        backend: &B,
        range: TimeRange,
        sample_every: u32,
    ) -> Result<(), PersistError> {
        self.engine.warmup(backend, range, sample_every);
        self.journal = Journal::reset(self.store.dir(), self.engine.config().seed)?;
        self.ticks_done = 0;
        self.last_snapshot_tick = 0;
        self.checkpoint_now()?;
        Ok(())
    }

    /// Writes a snapshot immediately (no kill points — this is the
    /// deliberate checkpoint path, not the in-tick protocol).
    pub fn checkpoint_now(&mut self) -> Result<(), PersistError> {
        // lint:allow(wall-clock): times the snapshot write for the snapshot_write_us metric only; never reaches engine state
        let t0 = std::time::Instant::now();
        let bytes = snapshot::encode(&self.engine, self.ticks_done);
        self.store.write_snapshot(self.ticks_done, &bytes)?;
        self.note_snapshot(bytes.len(), t0);
        Ok(())
    }

    fn note_snapshot(&mut self, bytes: usize, t0: std::time::Instant) {
        self.metrics.snapshots_written.inc();
        self.metrics.snapshot_bytes.observe(bytes as f64);
        self.metrics
            .snapshot_write_us
            // lint:allow(wall-clock): metrics-only duration of the snapshot write; write-only observability
            .observe(t0.elapsed().as_micros() as f64);
        self.last_snapshot_tick = self.ticks_done;
        self.metrics.journal_lag_ticks.set(0.0);
    }

    fn crash_fires(&self, tick: u64, point: CrashPoint) -> Option<f64> {
        let plan = self.crash.as_ref()?;
        if plan.fires(tick, point) {
            Some(plan.tear_fraction(tick, point))
        } else {
            None
        }
    }

    /// One durable tick: run the engine, journal the output (fsync),
    /// snapshot when due. On a simulated crash the tick's output is
    /// *not* returned — exactly like a real crash, the caller never
    /// sees it and recovery must re-derive it.
    pub fn tick<B: Backend>(
        &mut self,
        backend: &mut B,
        start: TimeBucket,
    ) -> Result<TickOutput, PersistError> {
        let idx = self.ticks_done;
        let out = self.engine.tick(backend, start);
        let rec = JournalRecord {
            tick: idx,
            bucket: start,
            digest: tick_digest(&out),
        };
        if let Some(tear) = self.crash_fires(idx, CrashPoint::MidJournal) {
            self.journal.append_torn(&rec, tear)?;
            return Err(PersistError::Crashed(CrashPoint::MidJournal));
        }
        self.journal.append(&rec)?;
        if self.crash_fires(idx, CrashPoint::PostJournal).is_some() {
            return Err(PersistError::Crashed(CrashPoint::PostJournal));
        }
        self.ticks_done += 1;
        self.metrics
            .journal_lag_ticks
            .set((self.ticks_done - self.last_snapshot_tick) as f64);

        if self.ticks_done - self.last_snapshot_tick >= self.snapshot_every {
            if self.crash_fires(idx, CrashPoint::PreSnapshot).is_some() {
                return Err(PersistError::Crashed(CrashPoint::PreSnapshot));
            }
            // lint:allow(wall-clock): times the snapshot write for the snapshot_write_us metric only; never reaches engine state
            let t0 = std::time::Instant::now();
            let bytes = snapshot::encode(&self.engine, self.ticks_done);
            if let Some(tear) = self.crash_fires(idx, CrashPoint::MidSnapshotWrite) {
                self.store
                    .write_snapshot_torn(self.ticks_done, &bytes, tear)?;
                return Err(PersistError::Crashed(CrashPoint::MidSnapshotWrite));
            }
            self.store.write_snapshot(self.ticks_done, &bytes)?;
            self.note_snapshot(bytes.len(), t0);
        }
        Ok(out)
    }

    /// Runs durable ticks across `range`, skipping the first
    /// `ticks_done()` tick starts (already journaled/replayed — the
    /// resume path after a recovery). Returns the outputs of the ticks
    /// it actually ran.
    pub fn run<B: Backend>(
        &mut self,
        backend: &mut B,
        range: TimeRange,
    ) -> Result<Vec<TickOutput>, PersistError> {
        let tick_buckets = self.engine.config().tick_buckets as usize;
        let buckets: Vec<TimeBucket> = range.buckets().collect();
        let mut outs = Vec::new();
        let mut i = 0usize;
        let mut tick_no = 0u64;
        while i + tick_buckets <= buckets.len() {
            if tick_no >= self.ticks_done {
                outs.push(self.tick(backend, buckets[i])?);
            }
            i += tick_buckets;
            tick_no += 1;
        }
        Ok(outs)
    }
}
