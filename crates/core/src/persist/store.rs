//! Snapshot files on disk: atomic writes, retention, and `fsck`.
//!
//! Snapshots are named `snapshot-<ticks_done, zero-padded>.snap` and
//! written atomically: encode to `.snapshot-<n>.tmp`, fsync, rename
//! over, fsync the directory. A crash mid-write leaves only a `.tmp`
//! file that loaders never look at. The last
//! [`StateStore::DEFAULT_RETAIN`] snapshots are kept so a corrupted
//! newest file falls back to an older one (the journal is never
//! truncated, so older snapshots can always replay forward).

use super::{journal, snapshot};
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

const SNAP_PREFIX: &str = "snapshot-";
const SNAP_SUFFIX: &str = ".snap";
const TMP_SUFFIX: &str = ".tmp";

/// A state directory holding snapshots (and the journal).
#[derive(Clone, Debug)]
pub struct StateStore {
    dir: PathBuf,
    retain: usize,
}

impl StateStore {
    /// Snapshots kept on disk (newest N).
    pub const DEFAULT_RETAIN: usize = 3;

    /// Opens (creating if needed) the state directory.
    pub fn create(dir: impl Into<PathBuf>) -> std::io::Result<StateStore> {
        Self::with_retain(dir, Self::DEFAULT_RETAIN)
    }

    /// Opens with a custom retention count (≥ 1).
    pub fn with_retain(dir: impl Into<PathBuf>, retain: usize) -> std::io::Result<StateStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(StateStore {
            dir,
            retain: retain.max(1),
        })
    }

    /// The directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The final path of the snapshot taken after `ticks_done` ticks.
    pub fn snapshot_path(&self, ticks_done: u64) -> PathBuf {
        self.dir
            .join(format!("{SNAP_PREFIX}{ticks_done:010}{SNAP_SUFFIX}"))
    }

    /// Every snapshot on disk as `(ticks_done, path)`, ascending.
    pub fn list_snapshots(&self) -> std::io::Result<Vec<(u64, PathBuf)>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(tick) = parse_snapshot_name(name) {
                out.push((tick, entry.path()));
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// Leftover `.tmp` files (crash residue; harmless but reportable).
    pub fn list_tmp_files(&self) -> std::io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.ends_with(TMP_SUFFIX) && name.starts_with('.') {
                out.push(entry.path());
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// Writes a snapshot atomically (temp + fsync + rename + dir
    /// fsync) and prunes beyond the retention count.
    pub fn write_snapshot(&self, ticks_done: u64, bytes: &[u8]) -> std::io::Result<PathBuf> {
        let tmp = self.tmp_path(ticks_done);
        {
            let mut f = File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        let path = self.snapshot_path(ticks_done);
        fs::rename(&tmp, &path)?;
        // Persist the rename itself: fsync the directory (a no-op on
        // platforms where directories cannot be opened).
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        self.prune()?;
        Ok(path)
    }

    /// Writes only a prefix of the snapshot's temp file and *never*
    /// renames — the kill-point harness's half-written snapshot. The
    /// previous snapshot remains the newest valid one.
    pub fn write_snapshot_torn(
        &self,
        ticks_done: u64,
        bytes: &[u8],
        fraction: f64,
    ) -> std::io::Result<PathBuf> {
        let tmp = self.tmp_path(ticks_done);
        let n = ((bytes.len() as f64 * fraction) as usize).clamp(1, bytes.len().saturating_sub(1));
        let mut f = File::create(&tmp)?;
        f.write_all(&bytes[..n])?;
        Ok(tmp)
    }

    /// Removes every blameit-owned file in the directory — snapshots,
    /// leftover temp files, the journal — so a fresh (non-resume) run
    /// can reuse it without tripping over another run's identity.
    /// Foreign files are left alone. Returns the number removed.
    pub fn wipe(&self) -> std::io::Result<usize> {
        let mut removed = 0usize;
        for (_, path) in self.list_snapshots()? {
            fs::remove_file(path)?;
            removed += 1;
        }
        for path in self.list_tmp_files()? {
            fs::remove_file(path)?;
            removed += 1;
        }
        let journal = journal::journal_path(&self.dir);
        if journal.exists() {
            fs::remove_file(journal)?;
            removed += 1;
        }
        Ok(removed)
    }

    fn tmp_path(&self, ticks_done: u64) -> PathBuf {
        self.dir
            .join(format!(".{SNAP_PREFIX}{ticks_done:010}{TMP_SUFFIX}"))
    }

    fn prune(&self) -> std::io::Result<()> {
        let snaps = self.list_snapshots()?;
        if snaps.len() > self.retain {
            for (_, path) in &snaps[..snaps.len() - self.retain] {
                fs::remove_file(path)?;
            }
        }
        Ok(())
    }
}

fn parse_snapshot_name(name: &str) -> Option<u64> {
    name.strip_prefix(SNAP_PREFIX)?
        .strip_suffix(SNAP_SUFFIX)?
        .parse()
        .ok()
}

/// One fsck finding.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum FsckSeverity {
    /// Informational (healthy file).
    Ok,
    /// Survivable oddity (crash residue recovery handles).
    Warning,
    /// Corruption or an invariant violation.
    Error,
}

/// Human-readable integrity report for a state directory.
#[derive(Debug)]
pub struct FsckReport {
    /// The directory checked.
    pub dir: PathBuf,
    /// One `(severity, message)` per finding, in check order.
    pub findings: Vec<(FsckSeverity, String)>,
    /// Snapshot files examined.
    pub snapshots_checked: usize,
    /// Valid journal records found.
    pub journal_records: u64,
}

impl FsckReport {
    /// True when no finding is an error (warnings allowed — recovery
    /// handles crash residue by design).
    pub fn ok(&self) -> bool {
        self.errors() == 0
    }

    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.findings
            .iter()
            .filter(|(s, _)| *s == FsckSeverity::Error)
            .count()
    }

    fn push(&mut self, sev: FsckSeverity, msg: impl Into<String>) {
        self.findings.push((sev, msg.into()));
    }

    /// The full report as display text.
    pub fn render(&self) -> String {
        let mut out = format!("fsck {}\n", self.dir.display());
        for (sev, msg) in &self.findings {
            let tag = match sev {
                FsckSeverity::Ok => "ok   ",
                FsckSeverity::Warning => "warn ",
                FsckSeverity::Error => "ERROR",
            };
            out.push_str(&format!("  {tag} {msg}\n"));
        }
        let errors = self.errors();
        out.push_str(&format!(
            "{} snapshot(s), {} journal record(s), {} error(s): {}\n",
            self.snapshots_checked,
            self.journal_records,
            errors,
            if errors == 0 { "CLEAN" } else { "CORRUPT" }
        ));
        out
    }
}

/// Validates every snapshot/journal invariant in `dir`:
///
/// * each `snapshot-*.snap` decodes fully (magic, version, every
///   section CRC, structural parse) and its filename matches the
///   `ticks_done` inside;
/// * all snapshots and the journal agree on one seed;
/// * journal records have valid CRCs and sequential tick indices, and
///   any trailing bytes are at most one torn record (crash residue —
///   warning), not a deeper unparseable region (error);
/// * the journal reaches at least as far as every snapshot, so replay
///   has the records it needs;
/// * leftover `.tmp` files are reported (warning).
pub fn fsck(dir: &Path) -> FsckReport {
    let mut report = FsckReport {
        dir: dir.to_path_buf(),
        findings: Vec::new(),
        snapshots_checked: 0,
        journal_records: 0,
    };
    if !dir.is_dir() {
        report.push(FsckSeverity::Error, "state directory does not exist");
        return report;
    }
    let store = match StateStore::create(dir) {
        Ok(s) => s,
        Err(e) => {
            report.push(FsckSeverity::Error, format!("cannot open directory: {e}"));
            return report;
        }
    };

    let mut seeds: Vec<(String, u64)> = Vec::new();
    let mut max_snapshot_ticks = 0u64;
    let snaps = store.list_snapshots().unwrap_or_default();
    for (tick, path) in &snaps {
        report.snapshots_checked += 1;
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let bytes = match fs::read(path) {
            Ok(b) => b,
            Err(e) => {
                report.push(FsckSeverity::Error, format!("{name}: unreadable: {e}"));
                continue;
            }
        };
        match snapshot::decode(&bytes) {
            Ok(state) => {
                if state.ticks_done != *tick {
                    report.push(
                        FsckSeverity::Error,
                        format!(
                            "{name}: filename says tick {tick} but contents say {}",
                            state.ticks_done
                        ),
                    );
                } else {
                    report.push(
                        FsckSeverity::Ok,
                        format!(
                            "{name}: valid ({} bytes, seed {:#x}, tick {})",
                            bytes.len(),
                            state.seed,
                            state.ticks_done
                        ),
                    );
                }
                max_snapshot_ticks = max_snapshot_ticks.max(state.ticks_done);
                seeds.push((name, state.seed));
            }
            Err(e) => {
                report.push(FsckSeverity::Error, format!("{name}: corrupt: {e}"));
            }
        }
    }
    if snaps.is_empty() {
        report.push(FsckSeverity::Warning, "no snapshots found");
    }

    match journal::scan(dir) {
        Ok(None) => report.push(FsckSeverity::Warning, "no journal found"),
        Ok(Some(scan)) => {
            report.journal_records = scan.records.len() as u64;
            seeds.push((journal::JOURNAL_FILE.to_string(), scan.seed));
            if scan.trailing_bytes == 0 {
                report.push(
                    FsckSeverity::Ok,
                    format!(
                        "{}: {} record(s), clean tail",
                        journal::JOURNAL_FILE,
                        scan.records.len()
                    ),
                );
            } else if scan.trailing_bytes <= journal::RECORD_BYTES {
                report.push(
                    FsckSeverity::Warning,
                    format!(
                        "{}: torn tail ({} byte(s) of crash residue after record {}; recovery truncates it)",
                        journal::JOURNAL_FILE,
                        scan.trailing_bytes,
                        scan.records.len()
                    ),
                );
            } else {
                report.push(
                    FsckSeverity::Error,
                    format!(
                        "{}: {} unparseable byte(s) after record {} — more than one torn record",
                        journal::JOURNAL_FILE,
                        scan.trailing_bytes,
                        scan.records.len()
                    ),
                );
            }
            if (scan.records.len() as u64) < max_snapshot_ticks {
                report.push(
                    FsckSeverity::Error,
                    format!(
                        "journal has {} record(s) but a snapshot claims {} completed tick(s)",
                        scan.records.len(),
                        max_snapshot_ticks
                    ),
                );
            }
        }
        Err(e) => report.push(
            FsckSeverity::Error,
            format!("{}: invalid header: {e}", journal::JOURNAL_FILE),
        ),
    }

    if seeds.len() > 1 {
        let first = seeds[0].1;
        for (name, seed) in &seeds[1..] {
            if *seed != first {
                report.push(
                    FsckSeverity::Error,
                    format!(
                        "seed mismatch: {} has {:#x}, {} has {:#x}",
                        seeds[0].0, first, name, seed
                    ),
                );
            }
        }
    }

    for tmp in store.list_tmp_files().unwrap_or_default() {
        report.push(
            FsckSeverity::Warning,
            format!(
                "leftover temp file {} (crash residue; never loaded)",
                tmp.file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default()
            ),
        );
    }
    report
}

/// Atomic-write helper used by callers outside the snapshot flow
/// (kept here so every durable file in the state dir goes through the
/// same temp-fsync-rename discipline).
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp-write");
    {
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        if let Ok(d) = File::open(parent) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("blameit-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn retention_prunes_oldest() {
        let dir = tmp_dir("retain");
        let store = StateStore::with_retain(&dir, 2).unwrap();
        for t in [4u64, 8, 12] {
            store.write_snapshot(t, b"not-a-real-snapshot").unwrap();
        }
        let ticks: Vec<u64> = store
            .list_snapshots()
            .unwrap()
            .into_iter()
            .map(|(t, _)| t)
            .collect();
        assert_eq!(ticks, vec![8, 12]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_write_leaves_only_tmp() {
        let dir = tmp_dir("torn");
        let store = StateStore::create(&dir).unwrap();
        store.write_snapshot_torn(4, &[1u8; 100], 0.5).unwrap();
        assert!(store.list_snapshots().unwrap().is_empty());
        let tmps = store.list_tmp_files().unwrap();
        assert_eq!(tmps.len(), 1);
        assert_eq!(std::fs::metadata(&tmps[0]).unwrap().len(), 50);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsck_missing_dir_is_error() {
        let report = fsck(Path::new("/nonexistent/blameit-state"));
        assert!(!report.ok());
        assert!(report.render().contains("does not exist"));
    }

    #[test]
    fn wipe_removes_only_blameit_files() {
        let dir = tmp_dir("wipe");
        let store = StateStore::create(&dir).unwrap();
        store.write_snapshot(4, b"x").unwrap();
        store.write_snapshot_torn(8, &[0u8; 16], 0.5).unwrap();
        std::fs::write(journal::journal_path(&dir), b"j").unwrap();
        std::fs::write(dir.join("keep.txt"), b"mine").unwrap();
        assert_eq!(store.wipe().unwrap(), 3);
        assert!(store.list_snapshots().unwrap().is_empty());
        assert!(!journal::journal_path(&dir).exists());
        assert!(dir.join("keep.txt").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsck_flags_garbage_snapshot() {
        let dir = tmp_dir("fsck");
        let store = StateStore::create(&dir).unwrap();
        store.write_snapshot(4, b"garbage-bytes").unwrap();
        let report = fsck(&dir);
        assert!(!report.ok());
        assert!(report.render().contains("corrupt"), "{}", report.render());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
