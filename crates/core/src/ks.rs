//! Two-sample Kolmogorov–Smirnov test.
//!
//! The paper validates its quartet granularity by randomly splitting a
//! quartet's RTT samples in two and checking that a KS test cannot
//! distinguish the halves (§2.1) — i.e. a quartet is statistically
//! homogeneous. This module provides that test.

/// Result of a two-sample KS test.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KsResult {
    /// The KS statistic: the supremum distance between the two
    /// empirical CDFs.
    pub statistic: f64,
    /// Asymptotic p-value (Kolmogorov distribution approximation).
    pub p_value: f64,
}

impl KsResult {
    /// True if the samples are distinguishable at significance `alpha`.
    pub fn rejects_same_distribution(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Two-sample KS test. Returns `None` if either sample is empty.
///
/// ```
/// use blameit::ks_two_sample;
/// let a: Vec<f64> = (0..100).map(f64::from).collect();
/// let b: Vec<f64> = (0..100).map(|i| f64::from(i) + 80.0).collect();
/// assert!(ks_two_sample(&a, &b).unwrap().rejects_same_distribution(0.01));
/// assert!(!ks_two_sample(&a, &a).unwrap().rejects_same_distribution(0.05));
/// ```
pub fn ks_two_sample(a: &[f64], b: &[f64]) -> Option<KsResult> {
    if a.is_empty() || b.is_empty() {
        return None;
    }
    let mut sa: Vec<f64> = a.to_vec();
    let mut sb: Vec<f64> = b.to_vec();
    sa.sort_by(|x, y| x.total_cmp(y));
    sb.sort_by(|x, y| x.total_cmp(y));

    let (na, nb) = (sa.len(), sb.len());
    let (mut ia, mut ib) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while ia < na && ib < nb {
        let xa = sa[ia];
        let xb = sb[ib];
        let x = xa.min(xb);
        while ia < na && sa[ia] <= x {
            ia += 1;
        }
        while ib < nb && sb[ib] <= x {
            ib += 1;
        }
        let fa = ia as f64 / na as f64;
        let fb = ib as f64 / nb as f64;
        d = d.max((fa - fb).abs());
    }

    let n_eff = (na as f64 * nb as f64) / (na + nb) as f64;
    let lambda = (n_eff.sqrt() + 0.12 + 0.11 / n_eff.sqrt()) * d;
    Some(KsResult {
        statistic: d,
        p_value: kolmogorov_sf(lambda),
    })
}

/// Survival function of the Kolmogorov distribution,
/// `Q(λ) = 2 Σ_{j≥1} (−1)^{j−1} exp(−2 j² λ²)` (Numerical Recipes).
fn kolmogorov_sf(lambda: f64) -> f64 {
    if lambda < 1e-3 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for j in 1..=100 {
        let term = (-2.0 * (j as f64) * (j as f64) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use blameit_topology::rng::DetRng;

    #[test]
    fn empty_input_is_none() {
        assert!(ks_two_sample(&[], &[1.0]).is_none());
        assert!(ks_two_sample(&[1.0], &[]).is_none());
    }

    #[test]
    fn identical_samples_not_rejected() {
        let a: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let r = ks_two_sample(&a, &a).unwrap();
        assert!(r.statistic < 1e-9);
        assert!(r.p_value > 0.99);
        assert!(!r.rejects_same_distribution(0.05));
    }

    #[test]
    fn same_distribution_usually_passes() {
        let mut rng = DetRng::new(5);
        let mut rejections = 0;
        let trials = 100;
        for _ in 0..trials {
            let a: Vec<f64> = (0..80).map(|_| rng.normal()).collect();
            let b: Vec<f64> = (0..80).map(|_| rng.normal()).collect();
            if ks_two_sample(&a, &b)
                .unwrap()
                .rejects_same_distribution(0.05)
            {
                rejections += 1;
            }
        }
        // Type-I error should be near 5%.
        assert!(rejections <= 12, "{rejections}/{trials} rejections");
    }

    #[test]
    fn shifted_distribution_rejected() {
        let mut rng = DetRng::new(6);
        let a: Vec<f64> = (0..200).map(|_| rng.normal()).collect();
        let b: Vec<f64> = (0..200).map(|_| rng.normal() + 1.0).collect();
        let r = ks_two_sample(&a, &b).unwrap();
        assert!(r.rejects_same_distribution(0.01), "p={}", r.p_value);
        assert!(r.statistic > 0.3);
    }

    #[test]
    fn statistic_bounds() {
        let r = ks_two_sample(&[1.0, 2.0], &[10.0, 20.0]).unwrap();
        assert!(
            (r.statistic - 1.0).abs() < 1e-9,
            "disjoint supports → D = 1"
        );
        assert!(r.p_value < 0.5);
    }

    #[test]
    fn sf_monotone() {
        let mut prev = 1.0;
        for i in 1..40 {
            let l = i as f64 * 0.1;
            let v = kolmogorov_sf(l);
            assert!(v <= prev + 1e-12, "sf must be non-increasing");
            assert!((0.0..=1.0).contains(&v));
            prev = v;
        }
    }
}
