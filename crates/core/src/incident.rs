//! Incident tracking: merging consecutive bad buckets.
//!
//! The paper measures incident *persistence* as the number of
//! consecutive 5-minute buckets a key stays bad (§2.3, Fig. 4a;
//! Fig. 10 splits durations by blame category). [`IncidentTracker`]
//! maintains open incidents per key, closes them when the key turns
//! good (or stops reporting), and hands completed durations to the
//! duration history that powers probe prioritization (§5.3).

use blameit_simnet::TimeBucket;
use std::collections::BTreeMap;

/// A completed run of consecutive bad buckets for one key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Incident<K> {
    /// The key (e.g. ⟨/24, location, device⟩ or ⟨location, path⟩).
    pub key: K,
    /// First bad bucket.
    pub start: TimeBucket,
    /// Number of consecutive bad buckets (≥ 1).
    pub buckets: u32,
}

impl<K> Incident<K> {
    /// Exclusive end bucket.
    pub fn end(&self) -> TimeBucket {
        self.start.plus(self.buckets)
    }
}

/// An incident still open at the current bucket.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpenIncident {
    /// First bad bucket.
    pub start: TimeBucket,
    /// Consecutive bad buckets so far (≥ 1).
    pub buckets: u32,
    /// Bad observations folded in so far (one per fed key instance —
    /// repeats within a bucket count). Provenance evidence: how much
    /// passive signal this incident rests on.
    pub observations: u64,
}

impl OpenIncident {
    /// Buckets elapsed so far — the `t` of the paper's `P(T | t)`.
    pub fn elapsed(&self) -> u32 {
        self.buckets
    }
}

/// Tracks runs of consecutive bad buckets per key.
///
/// Open incidents live in a `BTreeMap` so that the order in which
/// incidents *close* (and therefore the order their durations reach the
/// duration history, the snapshot, and any transcript line) is a pure
/// function of the keys — never of a hasher seed. This is part of the
/// determinism contract enforced by `blameit-lint`'s
/// `unordered-iteration` rule.
///
/// ```
/// use blameit::IncidentTracker;
/// use blameit_simnet::TimeBucket;
/// let mut t: IncidentTracker<&str> = IncidentTracker::new();
/// t.observe(TimeBucket(0), ["path7"]);
/// t.observe(TimeBucket(1), ["path7"]);
/// let closed = t.observe(TimeBucket(2), []);
/// assert_eq!(closed[0].buckets, 2);
/// ```
#[derive(Clone, Debug)]
pub struct IncidentTracker<K: Ord + Clone> {
    pub(crate) open: BTreeMap<K, OpenIncident>,
    pub(crate) last_bucket: Option<TimeBucket>,
}

impl<K: Ord + Clone> Default for IncidentTracker<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Clone> IncidentTracker<K> {
    /// An empty tracker.
    pub fn new() -> Self {
        IncidentTracker {
            open: BTreeMap::new(),
            last_bucket: None,
        }
    }

    /// Feeds one bucket's set of bad keys; buckets must be fed in
    /// strictly increasing order. Returns the incidents that *closed*
    /// (keys bad last bucket but not this one, or keys whose badness
    /// was non-contiguous).
    ///
    /// # Panics
    /// Panics if `bucket` is not after the previously fed bucket.
    pub fn observe(
        &mut self,
        bucket: TimeBucket,
        bad_keys: impl IntoIterator<Item = K>,
    ) -> Vec<Incident<K>> {
        if let Some(last) = self.last_bucket {
            assert!(bucket > last, "buckets must be fed in increasing order");
        }
        let contiguous = self.last_bucket.is_some_and(|l| l.plus(1) == bucket);
        self.last_bucket = Some(bucket);

        let mut closed = Vec::new();
        let mut still_bad: BTreeMap<K, OpenIncident> = BTreeMap::new();
        for key in bad_keys {
            // Callers feed one entry per bad quartet; a key repeats for
            // every quartet sharing the segment. Only the first sighting
            // in a bucket may advance (or open) the incident — a repeat
            // must not reset the accumulated run, but it does count as
            // evidence.
            if let Some(inc) = still_bad.get_mut(&key) {
                inc.observations += 1;
                continue;
            }
            match self.open.remove(&key) {
                Some(mut inc) if contiguous => {
                    inc.buckets += 1;
                    inc.observations += 1;
                    still_bad.insert(key, inc);
                }
                Some(inc) => {
                    // Gap in the feed: the old run is over.
                    closed.push(Incident {
                        key: key.clone(),
                        start: inc.start,
                        buckets: inc.buckets,
                    });
                    still_bad.insert(
                        key,
                        OpenIncident {
                            start: bucket,
                            buckets: 1,
                            observations: 1,
                        },
                    );
                }
                None => {
                    still_bad.insert(
                        key,
                        OpenIncident {
                            start: bucket,
                            buckets: 1,
                            observations: 1,
                        },
                    );
                }
            }
        }
        // Whatever remains in `open` turned good: close it, in key
        // order (BTreeMap iteration), after the gap-closes above (which
        // follow the caller's feed order).
        for (key, inc) in std::mem::take(&mut self.open) {
            closed.push(Incident {
                key,
                start: inc.start,
                buckets: inc.buckets,
            });
        }
        self.open = still_bad;
        closed
    }

    /// Closes everything (end of run). Returns the final incidents,
    /// ordered by start bucket (ties broken by key: the sort is stable
    /// and the drain below yields key order).
    pub fn finish(&mut self) -> Vec<Incident<K>> {
        let mut closed: Vec<Incident<K>> = std::mem::take(&mut self.open)
            .into_iter()
            .map(|(key, inc)| Incident {
                key,
                start: inc.start,
                buckets: inc.buckets,
            })
            .collect();
        closed.sort_by_key(|i| i.start);
        closed
    }

    /// The open incident for a key, if any.
    pub fn open_incident(&self, key: &K) -> Option<&OpenIncident> {
        self.open.get(key)
    }

    /// Number of currently open incidents.
    pub fn num_open(&self) -> usize {
        self.open.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_run_closes_when_good() {
        let mut t: IncidentTracker<u32> = IncidentTracker::new();
        assert!(t.observe(TimeBucket(0), [1]).is_empty());
        assert!(t.observe(TimeBucket(1), [1]).is_empty());
        assert_eq!(t.open_incident(&1).unwrap().elapsed(), 2);
        let closed = t.observe(TimeBucket(2), []);
        assert_eq!(closed.len(), 1);
        assert_eq!(
            closed[0],
            Incident {
                key: 1,
                start: TimeBucket(0),
                buckets: 2
            }
        );
        assert_eq!(closed[0].end(), TimeBucket(2));
        assert_eq!(t.num_open(), 0);
    }

    #[test]
    fn interleaved_keys() {
        let mut t: IncidentTracker<u32> = IncidentTracker::new();
        t.observe(TimeBucket(0), [1, 2]);
        let closed = t.observe(TimeBucket(1), [2]);
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].key, 1);
        let closed = t.observe(TimeBucket(2), [1]);
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].key, 2);
        assert_eq!(closed[0].buckets, 2);
    }

    #[test]
    fn gap_in_feed_splits_runs() {
        let mut t: IncidentTracker<u32> = IncidentTracker::new();
        t.observe(TimeBucket(0), [1]);
        // Bucket 1 was never fed — the run cannot be contiguous.
        let closed = t.observe(TimeBucket(2), [1]);
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].buckets, 1);
        assert_eq!(t.open_incident(&1).unwrap().start, TimeBucket(2));
    }

    #[test]
    fn finish_flushes_open() {
        let mut t: IncidentTracker<&str> = IncidentTracker::new();
        t.observe(TimeBucket(5), ["a", "b"]);
        t.observe(TimeBucket(6), ["a", "b"]);
        let mut closed = t.finish();
        closed.sort_by_key(|i| i.key);
        assert_eq!(closed.len(), 2);
        assert!(closed
            .iter()
            .all(|i| i.buckets == 2 && i.start == TimeBucket(5)));
        assert_eq!(t.num_open(), 0);
    }

    #[test]
    #[should_panic(expected = "increasing order")]
    fn rejects_time_travel() {
        let mut t: IncidentTracker<u32> = IncidentTracker::new();
        t.observe(TimeBucket(5), [1]);
        t.observe(TimeBucket(5), [1]);
    }

    #[test]
    fn duplicate_keys_in_one_bucket_are_one_incident() {
        let mut t: IncidentTracker<u32> = IncidentTracker::new();
        t.observe(TimeBucket(0), [1, 1, 1]);
        assert_eq!(t.num_open(), 1);
        let closed = t.observe(TimeBucket(1), []);
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].buckets, 1);
    }

    #[test]
    fn duplicate_keys_do_not_reset_elapsed() {
        // Regression: a key appearing once per bad quartet must still
        // accumulate consecutive buckets.
        let mut t: IncidentTracker<u32> = IncidentTracker::new();
        for b in 0..10 {
            t.observe(TimeBucket(b), [1, 1, 1, 1]);
        }
        assert_eq!(t.open_incident(&1).unwrap().elapsed(), 10);
        let closed = t.observe(TimeBucket(10), []);
        assert_eq!(closed[0].buckets, 10);
    }

    #[test]
    fn observations_count_every_sighting() {
        // 4 sightings per bucket × 3 buckets = 12 observations, while
        // elapsed stays 3 — the provenance distinction between "how
        // long" and "how much evidence".
        let mut t: IncidentTracker<u32> = IncidentTracker::new();
        for b in 0..3 {
            t.observe(TimeBucket(b), [1, 1, 1, 1]);
        }
        let inc = t.open_incident(&1).unwrap();
        assert_eq!(inc.elapsed(), 3);
        assert_eq!(inc.observations, 12);
        // A gap resets the count along with the run.
        t.observe(TimeBucket(5), [1, 1]);
        assert_eq!(t.open_incident(&1).unwrap().observations, 2);
    }
}
