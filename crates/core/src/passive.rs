//! Algorithm 1: coarse-grained fault localization from passive data.
//!
//! For every bad quartet (mean RTT above the region/device badness
//! threshold), blame is assigned by hierarchical elimination, exactly
//! following the paper's Algorithm 1:
//!
//! 1. **Cloud** — if the cloud location has > 5 quartets this bucket
//!    and ≥ τ of them exceed the location's *learned* expected RTT
//!    (14-day median, §4.3). Starting from the cloud exploits
//!    Insight-2: simultaneous badness across hundreds of /24s is far
//!    more likely one cloud fault than many client faults.
//! 2. **Middle** — else, if the quartet's middle segment (BGP path by
//!    default) has > 5 quartets and ≥ τ of them exceed the segment's
//!    learned expected RTT.
//! 3. **Ambiguous** — else, if the same /24 saw *good* RTT to another
//!    cloud location in the same bucket (no conclusive blame).
//! 4. **Client** — otherwise.
//!
//! With too few quartets at step 1 or 2 the verdict is
//! **Insufficient**. Bad fractions are *unweighted* by sample counts:
//! a handful of chatty good /24s must not mask many quiet bad ones
//! (§4.2).

use crate::fxhash::{DetHashMap, DetHashSet};
use crate::grouping::{MiddleGrouping, MiddleKey};
use crate::history::{ExpectedRttLearner, RttKey};
use crate::provenance::PassiveEvidence;
use crate::quartet::EnrichedQuartet;
use blameit_simnet::QuartetObs;
use blameit_topology::{Asn, CloudLocId, PathId, Region};
use std::fmt;

/// Coarse blame verdict for a bad quartet.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Blame {
    /// The cloud's own network/servers.
    Cloud,
    /// The middle segment (localize further with the active phase).
    Middle,
    /// The client's ISP / last mile.
    Client,
    /// The /24 saw good RTT to another location at the same time.
    Ambiguous,
    /// Too few quartets in the relevant aggregate to decide.
    Insufficient,
}

impl Blame {
    /// All verdicts, in report order.
    pub const ALL: [Blame; 5] = [
        Blame::Cloud,
        Blame::Middle,
        Blame::Client,
        Blame::Ambiguous,
        Blame::Insufficient,
    ];
}

impl fmt::Display for Blame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Blame::Cloud => "cloud",
            Blame::Middle => "middle",
            Blame::Client => "client",
            Blame::Ambiguous => "ambiguous",
            Blame::Insufficient => "insufficient",
        })
    }
}

/// Algorithm 1 parameters.
#[derive(Clone, Copy, Debug)]
pub struct BlameConfig {
    /// Bad-fraction threshold τ (paper: 0.8).
    pub tau: f64,
    /// Aggregates with at most this many quartets are "insufficient"
    /// (paper: 5).
    pub min_aggregate_quartets: usize,
    /// Middle-segment grouping strategy.
    pub grouping: MiddleGrouping,
    /// A quartet counts toward an aggregate's bad fraction when its
    /// mean exceeds `expected × expected_margin`. At Azure's aggregate
    /// sizes (hundreds of thousands of /24s per location) comparing
    /// strictly against the median is safe; at simulation scale the
    /// small margin keeps the ~50% of quartets that naturally sit just
    /// above their median from tripping τ through noise.
    pub expected_margin: f64,
}

impl Default for BlameConfig {
    fn default() -> Self {
        BlameConfig {
            tau: 0.8,
            min_aggregate_quartets: 5,
            grouping: MiddleGrouping::BgpPath,
            expected_margin: 1.1,
        }
    }
}

/// One bad quartet's verdict, with the keys needed downstream.
#[derive(Clone, Debug)]
pub struct BlameResult {
    /// The quartet observation.
    pub obs: QuartetObs,
    /// Its middle path.
    pub path: PathId,
    /// Its middle-segment group key under the configured grouping.
    pub middle_key: MiddleKey,
    /// Client AS.
    pub origin: Asn,
    /// Client region.
    pub region: Region,
    /// The verdict.
    pub blame: Blame,
    /// Why: the Algorithm-1 evidence the verdict rests on.
    pub passive: PassiveEvidence,
}

/// Per-aggregate statistics computed during blame assignment, exposed
/// for reporting and confidence calculations (§6.3 case 5 reports the
/// "proportion of quartets blamed in each category").
#[derive(Clone, Debug, Default)]
pub struct AggregateStats {
    /// Quartet count and above-expected count per cloud location.
    pub cloud: DetHashMap<CloudLocId, (usize, usize)>,
    /// Quartet count and above-expected count per middle key.
    pub middle: DetHashMap<MiddleKey, (usize, usize)>,
}

impl AggregateStats {
    /// Bad fraction for a location (0 with no quartets).
    pub fn cloud_bad_fraction(&self, loc: CloudLocId) -> f64 {
        match self.cloud.get(&loc) {
            Some((n, bad)) if *n > 0 => *bad as f64 / *n as f64,
            _ => 0.0,
        }
    }

    /// Bad fraction for a middle key (0 with no quartets).
    pub fn middle_bad_fraction(&self, key: MiddleKey) -> f64 {
        match self.middle.get(&key) {
            Some((n, bad)) if *n > 0 => *bad as f64 / *n as f64,
            _ => 0.0,
        }
    }
}

/// The read-only product of the sequential aggregate pass: everything a
/// per-quartet verdict needs. Immutable once built, so shard workers
/// can evaluate [`PassiveAggregates::verdict`] concurrently.
#[derive(Clone, Debug)]
pub struct PassiveAggregates {
    /// Per-location / per-middle-key counts for reporting.
    pub stats: AggregateStats,
    /// (p24 block, mobile, loc) triples that saw good RTT this bucket.
    good_elsewhere: DetHashSet<(u32, bool, CloudLocId)>,
}

/// The sequential aggregate pass over one bucket's enriched quartets:
/// counts quartets and above-expected quartets per cloud location and
/// per middle key, and records which (/24, mobile) pairs saw good RTT
/// somewhere. A quartet with no learned expectation yet counts toward
/// the total but not the bad count (conservative: unlearned keys can't
/// produce cloud/middle blame).
///
/// This stays on one thread because it reads the [`ExpectedRttLearner`]
/// (whose lookup cache is not thread-safe); the per-quartet verdicts it
/// enables are pure and shard freely.
///
/// Columnar since the quartet-path rebuild: instead of two map upserts
/// and two learner lookups per quartet, the pass sorts a compact index
/// list per grouping and walks equal-key runs — one
/// [`ExpectedRttLearner::expected`] lookup per distinct (key, device)
/// run and one map insert per aggregate. The counts are integer sums,
/// so the run order cannot change any value, and the learner's lookup
/// cache ends the pass with exactly the same entries (same distinct
/// key set), keeping snapshots byte-identical with the legacy pass.
pub fn aggregate_pass(
    quartets: &[EnrichedQuartet],
    expected: &ExpectedRttLearner,
    cfg: &BlameConfig,
) -> PassiveAggregates {
    let mut stats = AggregateStats::default();

    // Cloud aggregates: runs of (loc, mobile), folded per loc.
    let mut idx: Vec<u32> = (0..quartets.len() as u32).collect();
    idx.sort_unstable_by_key(|&i| {
        let q = &quartets[i as usize];
        (q.obs.loc, q.obs.mobile)
    });
    let mut i = 0;
    while i < idx.len() {
        let loc = quartets[idx[i] as usize].obs.loc;
        let (mut n, mut bad) = (0usize, 0usize);
        while i < idx.len() {
            let q = &quartets[idx[i] as usize];
            if q.obs.loc != loc {
                break;
            }
            let mobile = q.obs.mobile;
            let exp = expected.expected(RttKey::Cloud(loc, mobile));
            while i < idx.len() {
                let q = &quartets[idx[i] as usize];
                if q.obs.loc != loc || q.obs.mobile != mobile {
                    break;
                }
                n += 1;
                bad +=
                    usize::from(exp.is_some_and(|e| q.obs.mean_rtt_ms > e * cfg.expected_margin));
                i += 1;
            }
        }
        stats.cloud.insert(loc, (n, bad));
    }

    // Middle aggregates: runs of (middle key, mobile), folded per key.
    idx.sort_unstable_by_key(|&i| {
        let q = &quartets[i as usize];
        (cfg.grouping.key(&q.info), q.obs.mobile)
    });
    let mut i = 0;
    while i < idx.len() {
        let key = cfg.grouping.key(&quartets[idx[i] as usize].info);
        let (mut n, mut bad) = (0usize, 0usize);
        while i < idx.len() {
            let q = &quartets[idx[i] as usize];
            if cfg.grouping.key(&q.info) != key {
                break;
            }
            let mobile = q.obs.mobile;
            let exp = expected.expected(RttKey::Middle(key, mobile));
            while i < idx.len() {
                let q = &quartets[idx[i] as usize];
                if cfg.grouping.key(&q.info) != key || q.obs.mobile != mobile {
                    break;
                }
                n += 1;
                bad +=
                    usize::from(exp.is_some_and(|e| q.obs.mean_rtt_ms > e * cfg.expected_margin));
                i += 1;
            }
        }
        stats.middle.insert(key, (n, bad));
    }

    let good_elsewhere: DetHashSet<(u32, bool, CloudLocId)> = quartets
        .iter()
        .filter(|q| !q.bad)
        .map(|q| (q.obs.p24.block(), q.obs.mobile, q.obs.loc))
        .collect();
    PassiveAggregates {
        stats,
        good_elsewhere,
    }
}

impl PassiveAggregates {
    /// Algorithm 1's hierarchical elimination for one quartet: `None`
    /// for good quartets, otherwise the verdict. Pure — depends only on
    /// the quartet and the precomputed aggregates.
    pub fn verdict(&self, q: &EnrichedQuartet, cfg: &BlameConfig) -> Option<BlameResult> {
        if !q.bad {
            return None;
        }
        let min_q = cfg.min_aggregate_quartets;
        let key = cfg.grouping.key(&q.info);
        let (cloud_n, cloud_bad) = self.stats.cloud[&q.obs.loc];
        let (mid_n, mid_bad) = self.stats.middle[&key];
        let good_elsewhere = self.has_good_to_other_loc(q);
        let blame = if cloud_n <= min_q {
            Blame::Insufficient
        } else if cloud_bad as f64 / cloud_n as f64 >= cfg.tau {
            Blame::Cloud
        } else if mid_n <= min_q {
            Blame::Insufficient
        } else if mid_bad as f64 / mid_n as f64 >= cfg.tau {
            Blame::Middle
        } else if good_elsewhere {
            Blame::Ambiguous
        } else {
            Blame::Client
        };
        Some(BlameResult {
            obs: q.obs,
            path: q.info.path,
            middle_key: key,
            origin: q.info.origin,
            region: q.info.region,
            blame,
            passive: PassiveEvidence {
                branch: blame,
                tau: cfg.tau,
                min_aggregate: min_q,
                cloud_n,
                cloud_bad,
                middle_n: mid_n,
                middle_bad: mid_bad,
                good_elsewhere,
            },
        })
    }

    fn has_good_to_other_loc(&self, q: &EnrichedQuartet) -> bool {
        self.good_elsewhere.iter().any(|(blk, mob, loc)| {
            *blk == q.obs.p24.block() && *mob == q.obs.mobile && *loc != q.obs.loc
        })
    }
}

/// Runs Algorithm 1 over one bucket's enriched quartets. Returns a
/// verdict for every **bad** quartet plus the aggregate statistics.
///
/// `expected` must have been fed prior history (the learner is *not*
/// updated here; the pipeline owns that, and updates it only after
/// blame assignment so the current bucket never sees its own data).
pub fn assign_blames(
    quartets: &[EnrichedQuartet],
    expected: &ExpectedRttLearner,
    cfg: &BlameConfig,
) -> (Vec<BlameResult>, AggregateStats) {
    let mut span = blameit_obs::span!(
        "blameit::passive",
        "assign_blames",
        quartets = quartets.len()
    );
    let agg = aggregate_pass(quartets, expected, cfg);
    let out: Vec<BlameResult> = quartets
        .iter()
        .filter_map(|q| agg.verdict(q, cfg))
        .collect();
    span.record("verdicts", out.len());
    (out, agg.stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::RouteInfo;
    use blameit_simnet::TimeBucket;
    use blameit_topology::{IpPrefix, MetroId, Prefix24};

    /// Builds an enriched quartet by hand.
    fn q(loc: u16, block: u32, path: u32, origin: u32, mean: f64, bad: bool) -> EnrichedQuartet {
        EnrichedQuartet {
            obs: QuartetObs {
                loc: CloudLocId(loc),
                p24: Prefix24::from_block(block),
                mobile: false,
                bucket: TimeBucket(0),
                n: 30,
                mean_rtt_ms: mean,
            },
            info: RouteInfo {
                path: PathId(path),
                middle: vec![Asn(1000 + path)],
                origin: Asn(origin),
                metro: MetroId(0),
                region: Region::Europe,
                prefix: IpPrefix::new(block << 8, 20),
            },
            bad,
        }
    }

    /// Learner with expected 40 ms for every key that appears.
    fn learner_with_40(quartets: &[EnrichedQuartet], cfg: &BlameConfig) -> ExpectedRttLearner {
        let mut l = ExpectedRttLearner::new(1);
        for qq in quartets {
            l.observe(RttKey::Cloud(qq.obs.loc, qq.obs.mobile), 0, 40.0);
            l.observe(
                RttKey::Middle(cfg.grouping.key(&qq.info), qq.obs.mobile),
                0,
                40.0,
            );
        }
        l
    }

    #[test]
    fn cloud_blame_when_whole_location_shifts() {
        let cfg = BlameConfig::default();
        // 10 quartets to loc 0, all above the 40 ms expectation; one is
        // formally "bad" (above its threshold).
        let mut quartets: Vec<EnrichedQuartet> =
            (0..9).map(|i| q(0, i, i, 100 + i, 55.0, false)).collect();
        quartets.push(q(0, 9, 9, 109, 80.0, true));
        let l = learner_with_40(&quartets, &cfg);
        let (res, stats) = assign_blames(&quartets, &l, &cfg);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].blame, Blame::Cloud);
        assert!((stats.cloud_bad_fraction(CloudLocId(0)) - 1.0).abs() < 1e-9);
        // The verdict carries its own evidence: branch, counts, τ.
        let ev = &res[0].passive;
        assert_eq!(ev.branch, Blame::Cloud);
        assert_eq!((ev.cloud_n, ev.cloud_bad), (10, 10));
        assert!((ev.tau - cfg.tau).abs() < 1e-12);
        assert_eq!(ev.min_aggregate, cfg.min_aggregate_quartets);
        assert!(!ev.good_elsewhere);
    }

    #[test]
    fn middle_blame_when_only_path_shifts() {
        let cfg = BlameConfig::default();
        let mut quartets = Vec::new();
        // Path 1: 8 quartets, all elevated; two formally bad.
        for i in 0..8 {
            quartets.push(q(0, i, 1, 100, 70.0, i < 2));
        }
        // Other paths to the same loc: healthy (so cloud fraction low).
        for i in 8..40 {
            quartets.push(q(0, i, 2 + i, 200 + i, 30.0, false));
        }
        let l = learner_with_40(&quartets, &cfg);
        let (res, _) = assign_blames(&quartets, &l, &cfg);
        assert_eq!(res.len(), 2);
        for r in &res {
            assert_eq!(r.blame, Blame::Middle, "{:?}", r);
            assert_eq!(r.path, PathId(1));
        }
    }

    #[test]
    fn client_blame_when_isolated() {
        let cfg = BlameConfig::default();
        let mut quartets = Vec::new();
        // One bad quartet on a path shared with healthy peers.
        quartets.push(q(0, 0, 1, 100, 90.0, true));
        for i in 1..10 {
            quartets.push(q(0, i, 1, 100 + i, 30.0, false));
        }
        for i in 10..40 {
            quartets.push(q(0, i, 2, 200, 30.0, false));
        }
        let l = learner_with_40(&quartets, &cfg);
        let (res, _) = assign_blames(&quartets, &l, &cfg);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].blame, Blame::Client);
    }

    #[test]
    fn ambiguous_when_good_elsewhere() {
        let cfg = BlameConfig::default();
        let mut quartets = Vec::new();
        // Bad to loc 0 …
        quartets.push(q(0, 0, 1, 100, 90.0, true));
        // … but the same /24 is good to loc 1 at the same time.
        quartets.push(q(1, 0, 5, 100, 20.0, false));
        for i in 1..10 {
            quartets.push(q(0, i, 1, 100 + i, 30.0, false));
        }
        for i in 10..30 {
            quartets.push(q(1, i, 5, 300, 20.0, false));
        }
        let l = learner_with_40(&quartets, &cfg);
        let (res, _) = assign_blames(&quartets, &l, &cfg);
        let mine = res
            .iter()
            .find(|r| r.obs.loc == CloudLocId(0) && r.obs.p24 == Prefix24::from_block(0))
            .unwrap();
        assert_eq!(mine.blame, Blame::Ambiguous);
        assert!(mine.passive.good_elsewhere);
    }

    #[test]
    fn insufficient_when_aggregate_too_small() {
        let cfg = BlameConfig::default();
        // Only 3 quartets at the location: below the >5 requirement.
        let quartets = vec![
            q(0, 0, 1, 100, 90.0, true),
            q(0, 1, 1, 101, 30.0, false),
            q(0, 2, 1, 102, 30.0, false),
        ];
        let l = learner_with_40(&quartets, &cfg);
        let (res, _) = assign_blames(&quartets, &l, &cfg);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].blame, Blame::Insufficient);
    }

    #[test]
    fn insufficient_when_path_aggregate_small() {
        let cfg = BlameConfig::default();
        let mut quartets = Vec::new();
        // Location has plenty of healthy quartets on other paths.
        for i in 0..20 {
            quartets.push(q(0, i, 2, 200, 30.0, false));
        }
        // The bad quartet's own path has only 2 quartets.
        quartets.push(q(0, 100, 1, 100, 90.0, true));
        quartets.push(q(0, 101, 1, 100, 30.0, false));
        let l = learner_with_40(&quartets, &cfg);
        let (res, _) = assign_blames(&quartets, &l, &cfg);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].blame, Blame::Insufficient);
    }

    #[test]
    fn paper_4_3_example_expected_rtt_disambiguates() {
        // §4.3: threshold 50 ms; historical RTTs uniform [35, 45] →
        // expected ≈ 40 ms. After a cloud fault RTTs become uniform
        // [40, 70]: only 1/3 exceed the 50 ms *threshold*, but all
        // exceed the 40 ms *expected* value → blame lands on cloud.
        let cfg = BlameConfig::default();
        let mut l = ExpectedRttLearner::new(7);
        let n = 30;
        for i in 0..n {
            let rtt = 35.0 + 10.0 * (i as f64 / (n - 1) as f64);
            l.observe(RttKey::Cloud(CloudLocId(0), false), 0, rtt);
        }
        // Post-fault quartets: uniform [40, 70]; bad = above 50 ms.
        let mut quartets = Vec::new();
        for i in 0..n {
            let rtt = 40.0 + 30.0 * (i as f64 / (n - 1) as f64);
            let bad = rtt > 50.0;
            quartets.push(q(0, i as u32, i as u32, 100 + i as u32, rtt, bad));
            l.observe(
                RttKey::Middle(cfg.grouping.key(&quartets[i].info), false),
                0,
                39.0,
            );
        }
        let (res, stats) = assign_blames(&quartets, &l, &cfg);
        assert!(!res.is_empty());
        assert!(
            stats.cloud_bad_fraction(CloudLocId(0)) >= cfg.tau,
            "all post-fault RTTs exceed the learned 40 ms"
        );
        for r in &res {
            assert_eq!(r.blame, Blame::Cloud);
        }
        // Counter-check: using the raw 50 ms threshold as the
        // comparison value (the naive design) would NOT cross τ.
        let above_threshold = quartets
            .iter()
            .filter(|qq| qq.obs.mean_rtt_ms > 50.0)
            .count() as f64
            / n as f64;
        assert!(above_threshold < cfg.tau);
    }

    #[test]
    fn good_quartets_get_no_verdict() {
        let cfg = BlameConfig::default();
        let quartets: Vec<_> = (0..10).map(|i| q(0, i, 1, 100, 30.0, false)).collect();
        let l = learner_with_40(&quartets, &cfg);
        let (res, _) = assign_blames(&quartets, &l, &cfg);
        assert!(res.is_empty());
    }

    #[test]
    fn unlearned_keys_cannot_blame_cloud_or_middle() {
        let cfg = BlameConfig::default();
        let quartets: Vec<_> = (0..10).map(|i| q(0, i, 1, 100, 90.0, true)).collect();
        let l = ExpectedRttLearner::new(1); // empty
        let (res, _) = assign_blames(&quartets, &l, &cfg);
        // With no expectations, the bad fractions stay 0 → falls to
        // client (no good-elsewhere evidence).
        for r in &res {
            assert_eq!(r.blame, Blame::Client);
        }
    }

    #[test]
    fn cloud_checked_before_middle() {
        // When both the location AND the path are fully shifted, blame
        // must land on the cloud (hierarchical elimination order) —
        // this is what kept the Australia overload (§6.3 case 3) from
        // being misblamed on the shared BGP paths.
        let cfg = BlameConfig::default();
        let quartets: Vec<_> = (0..10).map(|i| q(0, i, 1, 100, 90.0, true)).collect();
        let l = learner_with_40(&quartets, &cfg);
        let (res, _) = assign_blames(&quartets, &l, &cfg);
        for r in &res {
            assert_eq!(r.blame, Blame::Cloud);
        }
    }

    #[test]
    fn tau_boundary_is_inclusive() {
        let cfg = BlameConfig::default();
        // Exactly 8 of 10 above expected → fraction 0.8 ≥ τ → cloud.
        let mut quartets = Vec::new();
        for i in 0..8 {
            quartets.push(q(0, i, i, 100, 55.0, i == 0));
        }
        quartets.push(q(0, 8, 8, 108, 30.0, false));
        quartets.push(q(0, 9, 9, 109, 30.0, false));
        let l = learner_with_40(&quartets, &cfg);
        let (res, stats) = assign_blames(&quartets, &l, &cfg);
        assert!((stats.cloud_bad_fraction(CloudLocId(0)) - 0.8).abs() < 1e-9);
        assert_eq!(res[0].blame, Blame::Cloud);
    }
}
