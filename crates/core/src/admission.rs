//! Bounded-ingest admission control and impact-aware overload
//! shedding for the daemon's ingest path.
//!
//! The daemon buffers incoming [`RecordBatch`]es in a bounded queue.
//! Two watermarks govern what happens as the queue fills:
//!
//! * past the **shed watermark**, the controller sheds quartet groups
//!   by *ascending client-time product* — the §5.3 ranking factors,
//!   inverted: the groups predicted to matter least (short expected
//!   remaining duration × few observed records) go first, so the heavy
//!   skew of Fig. 4b means shedding costs minimal localization
//!   coverage. A per-location fairness cap keeps one location's flood
//!   from consuming another location's queue share.
//! * at the **queue cap**, whole batches are refused outright and the
//!   caller replies `SLOW_DOWN` with a retry-after hint — the queue
//!   never buffers past its cap, bounding daemon memory.
//!
//! Shedding never touches the **top impact decile** of an offer: the
//! top ⌈n/10⌉ groups by client-time product survive both passes, even
//! when that leaves the watermark missed (the hard cap still bounds
//! memory — a batch that cannot fit is refused whole). This makes the
//! coverage claim structural — localization coverage of the
//! highest-impact clients is unaffected by shedding, by construction —
//! and doubles as the forward-progress guard: the daemon's tick
//! scheduling is data-driven (a window fires when a later bucket
//! arrives), so a full-shed under sustained overload would stall the
//! feed cursor and the queue could never drain.
//!
//! Everything here is pure and deterministic: decisions depend only on
//! the controller's own history and the offered batch, never on wall
//! clocks, thread identity, or map iteration order. The caller is
//! responsible for surfacing the returned counts in metrics
//! ([`crate::metrics::shed_reason`]).

use crate::columnar::RecordBatch;
use crate::fxhash::{DetHashMap, DetHashSet};
use crate::history::DurationHistory;
use blameit_topology::{CloudLocId, PathId};

/// Admission-control knobs, all in *records* (one record = one RTT
/// sample; quartet groups are shed whole).
#[derive(Clone, Debug)]
pub struct AdmissionConfig {
    /// Hard queue bound: an offer that would push the queue past this
    /// is refused wholesale (`SLOW_DOWN`).
    pub queue_cap_records: usize,
    /// Shedding starts when queue depth + offered records exceed this.
    pub shed_watermark_records: usize,
    /// Fairness threshold: once a location has shed this many records
    /// in one offer it becomes ineligible for further shedding (the
    /// group that crosses the threshold may overshoot), so one
    /// location's flood cannot absorb the whole shed pass.
    pub per_loc_shed_cap: usize,
    /// The retry-after hint attached to `SLOW_DOWN` replies, seconds.
    pub retry_after_secs: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            queue_cap_records: 50_000,
            shed_watermark_records: 40_000,
            per_loc_shed_cap: 1_000,
            retry_after_secs: 30,
        }
    }
}

/// One quartet group's impact score inside an offered batch.
#[derive(Clone, Debug)]
pub struct GroupScore {
    /// The packed `(loc, p24, mobile)` subkey ([`crate::pack_subkey`]).
    pub subkey: u64,
    /// The group's cloud location (for the fairness cap).
    pub loc: CloudLocId,
    /// Records the group contributes to the batch (the observable
    /// client-volume proxy at admission time).
    pub records: u32,
    /// Mean residual life of the group's badness streak, buckets
    /// ([`DurationHistory::expected_remaining`]).
    pub expected_remaining_buckets: f64,
    /// The shed-ordering score: expected remaining × records.
    pub client_time_product: f64,
}

/// What the controller decided about one offered batch.
#[derive(Clone, Debug)]
pub enum AdmissionDecision {
    /// Admit `batch` (sorted by key, possibly reduced); `shed` lists
    /// the groups removed, in shed order.
    Admit {
        /// The admitted, key-sorted remainder of the offer.
        batch: RecordBatch,
        /// Groups shed ascending by `(client_time_product, subkey)`.
        shed: Vec<GroupScore>,
    },
    /// The whole batch was refused at the queue cap; the caller should
    /// reply `SLOW_DOWN` carrying this hint.
    Reject {
        /// Seconds the sender should wait before retrying.
        retry_after_secs: u64,
        /// Records refused (the whole offer).
        records: u64,
    },
}

/// The overload-shedding admission controller. Owns the per-group
/// streak bookkeeping and the [`DurationHistory`] that turns streak
/// lengths into expected-remaining predictions.
#[derive(Clone, Debug, Default)]
pub struct AdmissionController {
    cfg: AdmissionConfig,
    durations: DurationHistory,
    /// Per-subkey badness streak: (last bucket seen, streak length).
    streaks: DetHashMap<u64, (u32, u32)>,
}

impl AdmissionController {
    /// A controller with the given knobs and empty history.
    pub fn new(cfg: AdmissionConfig) -> Self {
        AdmissionController {
            cfg,
            durations: DurationHistory::new(),
            streaks: DetHashMap::default(),
        }
    }

    /// The configured knobs.
    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    /// Scores every quartet group in `batch` (assumed key-sorted),
    /// returned ascending by `(client_time_product, subkey)` — shed
    /// order.
    pub fn score_batch(&self, batch: &RecordBatch) -> Vec<GroupScore> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < batch.keys.len() {
            let subkey = batch.keys[i];
            let mut j = i + 1;
            while j < batch.keys.len() && batch.keys[j] == subkey {
                j += 1;
            }
            let records = (j - i) as u32;
            let elapsed = self.streaks.get(&subkey).map(|&(_, len)| len).unwrap_or(0);
            let remaining = self
                .durations
                .expected_remaining(path_proxy(subkey), elapsed);
            out.push(GroupScore {
                subkey,
                loc: CloudLocId(((subkey >> 25) & 0xFFFF) as u16),
                records,
                expected_remaining_buckets: remaining,
                client_time_product: remaining * records as f64,
            });
            i = j;
        }
        out.sort_by(|a, b| {
            a.client_time_product
                .total_cmp(&b.client_time_product)
                .then_with(|| a.subkey.cmp(&b.subkey))
        });
        out
    }

    /// Decides about one offered batch given the current queue depth
    /// (records). The batch is sorted in place first (no-op when the
    /// sender pre-sorted), so the decision is independent of how the
    /// sender split or ordered the stream.
    pub fn offer(&mut self, mut batch: RecordBatch, queue_depth: usize) -> AdmissionDecision {
        let offered = batch.keys.len();
        if offered == 0 {
            return AdmissionDecision::Admit {
                batch,
                shed: Vec::new(),
            };
        }
        if queue_depth + offered > self.cfg.queue_cap_records {
            return AdmissionDecision::Reject {
                retry_after_secs: self.cfg.retry_after_secs,
                records: offered as u64,
            };
        }
        batch.sort_by_key();
        let scored = self.score_batch(&batch);
        let need = (queue_depth + offered).saturating_sub(self.cfg.shed_watermark_records);
        let mut shed: Vec<GroupScore> = Vec::new();
        if need > 0 {
            // The top impact decile (≥ 1 group) is off limits to both
            // passes: `scored` is ascending, so the protected set is
            // exactly its tail and shedding only walks the prefix.
            let sheddable = scored.len() - scored.len().div_ceil(10);
            // Pass 1: ascending impact, honoring the per-location cap.
            let mut shed_records = 0usize;
            let mut by_loc: DetHashMap<CloudLocId, usize> = DetHashMap::default();
            let mut taken: DetHashSet<u64> = DetHashSet::default();
            for g in &scored[..sheddable] {
                if shed_records >= need {
                    break;
                }
                let used = by_loc.entry(g.loc).or_insert(0);
                if *used >= self.cfg.per_loc_shed_cap {
                    continue;
                }
                *used += g.records as usize;
                shed_records += g.records as usize;
                taken.insert(g.subkey);
                shed.push(g.clone());
            }
            // Pass 2: the watermark wins over fairness — if capped
            // locations left us short, keep shedding ascending (still
            // never past the protected decile).
            if shed_records < need {
                for g in &scored[..sheddable] {
                    if shed_records >= need {
                        break;
                    }
                    if taken.contains(&g.subkey) {
                        continue;
                    }
                    shed_records += g.records as usize;
                    taken.insert(g.subkey);
                    shed.push(g.clone());
                }
            }
            if !taken.is_empty() {
                let keep: Vec<usize> = (0..batch.keys.len())
                    .filter(|&i| !taken.contains(&batch.keys[i]))
                    .collect();
                batch.keys = keep.iter().map(|&i| batch.keys[i]).collect();
                batch.rtt = keep.iter().map(|&i| batch.rtt[i]).collect();
            }
        }
        self.update_streaks(&batch);
        AdmissionDecision::Admit { batch, shed }
    }

    /// Advances per-group streaks with the admitted groups of `batch`
    /// and folds completed streaks into the duration history.
    fn update_streaks(&mut self, batch: &RecordBatch) {
        let b = batch.bucket.0;
        let mut i = 0;
        while i < batch.keys.len() {
            let subkey = batch.keys[i];
            while i < batch.keys.len() && batch.keys[i] == subkey {
                i += 1;
            }
            match self.streaks.get_mut(&subkey) {
                Some((last, len)) if *last + 1 == b => {
                    *last = b;
                    *len += 1;
                }
                Some((last, _)) if *last == b => {}
                Some((last, len)) => {
                    // Streak broke: its length is a completed duration.
                    self.durations.record(path_proxy(subkey), *len);
                    *last = b;
                    *len = 1;
                }
                None => {
                    self.streaks.insert(subkey, (b, 1));
                }
            }
        }
    }
}

/// The duration-history key for a subkey: its bucket-invariant low 25
/// bits (`p24` block + mobile flag), which fit `PathId`'s `u32`. A
/// proxy — admission runs before routing enrichment, so the real path
/// is unknown — but stable per client group, which is all the residual
/// life estimator needs.
fn path_proxy(subkey: u64) -> PathId {
    PathId((subkey & 0x01FF_FFFF) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::columnar::pack_subkey;
    use blameit_simnet::TimeBucket;
    use blameit_topology::Prefix24;

    fn batch(bucket: u32, groups: &[(u16, u32, u32)]) -> RecordBatch {
        // groups: (loc, block, records)
        let mut keys = Vec::new();
        let mut rtt = Vec::new();
        for &(loc, block, n) in groups {
            let k = pack_subkey(CloudLocId(loc), Prefix24::from_block(block), false);
            for s in 0..n {
                keys.push(k);
                rtt.push(40.0 + s as f64);
            }
        }
        RecordBatch {
            bucket: TimeBucket(bucket),
            keys,
            rtt,
        }
    }

    fn cfg(cap: usize, shed: usize, per_loc: usize) -> AdmissionConfig {
        AdmissionConfig {
            queue_cap_records: cap,
            shed_watermark_records: shed,
            per_loc_shed_cap: per_loc,
            retry_after_secs: 7,
        }
    }

    #[test]
    fn under_watermark_admits_everything() {
        let mut c = AdmissionController::new(cfg(100, 50, 100));
        let d = c.offer(batch(0, &[(0, 1, 10), (1, 2, 10)]), 0);
        match d {
            AdmissionDecision::Admit { batch, shed } => {
                assert_eq!(batch.keys.len(), 20);
                assert!(shed.is_empty());
            }
            other => panic!("expected admit, got {other:?}"),
        }
    }

    #[test]
    fn over_cap_rejects_with_hint() {
        let mut c = AdmissionController::new(cfg(30, 20, 100));
        let d = c.offer(batch(0, &[(0, 1, 20)]), 15);
        match d {
            AdmissionDecision::Reject {
                retry_after_secs,
                records,
            } => {
                assert_eq!(retry_after_secs, 7);
                assert_eq!(records, 20);
            }
            other => panic!("expected reject, got {other:?}"),
        }
    }

    #[test]
    fn sheds_lowest_impact_first() {
        let mut c = AdmissionController::new(cfg(1000, 25, 1000));
        // Group (0,1) has 20 records (high impact), (0,2) has 5, (1,3)
        // has 8. Watermark 25 with 33 offered → shed ≥ 8 records:
        // ascending impact sheds the 5-record group, then the 8-record
        // group, and leaves the 20-record group untouched.
        let d = c.offer(batch(0, &[(0, 1, 20), (0, 2, 5), (1, 3, 8)]), 0);
        match d {
            AdmissionDecision::Admit { batch, shed } => {
                assert_eq!(shed.len(), 2);
                assert_eq!(shed[0].records, 5, "lowest product first");
                assert_eq!(shed[1].records, 8);
                assert_eq!(batch.keys.len(), 20);
                assert!(shed[0].client_time_product <= shed[1].client_time_product);
            }
            other => panic!("expected admit, got {other:?}"),
        }
    }

    #[test]
    fn per_location_cap_spreads_shedding() {
        let mut c = AdmissionController::new(cfg(1000, 17, 6));
        // Location 0 offers three small groups, location 1 a mid and a
        // big one (the big one is the protected top). Need = 29 - 17 =
        // 12; the per-loc cap (6) stops loc 0 after two 3-record groups
        // and forces loc 1's mid group to contribute.
        let d = c.offer(
            batch(0, &[(0, 1, 3), (0, 2, 3), (0, 3, 3), (1, 4, 7), (1, 5, 13)]),
            0,
        );
        match d {
            AdmissionDecision::Admit { shed, .. } => {
                let loc0: u32 = shed
                    .iter()
                    .filter(|g| g.loc == CloudLocId(0))
                    .map(|g| g.records)
                    .sum();
                assert!(loc0 <= 6, "fairness cap respected, shed {loc0} from loc 0");
                assert!(
                    shed.iter().any(|g| g.loc == CloudLocId(1)),
                    "other locations contribute"
                );
            }
            other => panic!("expected admit, got {other:?}"),
        }
    }

    #[test]
    fn watermark_wins_over_fairness() {
        // Only one location exists, with a tiny per-loc cap: pass 2
        // must still shed down to the watermark.
        let mut c = AdmissionController::new(cfg(1000, 5, 1));
        let d = c.offer(batch(0, &[(0, 1, 4), (0, 2, 4), (0, 3, 4)]), 0);
        match d {
            AdmissionDecision::Admit { batch, shed } => {
                let shed_n: u32 = shed.iter().map(|g| g.records).sum();
                assert!(shed_n >= 7, "shed {shed_n}, need ≥ 7");
                assert!(batch.keys.len() <= 5);
            }
            other => panic!("expected admit, got {other:?}"),
        }
    }

    #[test]
    fn highest_impact_group_is_never_shed() {
        // Queue already parked at the watermark: need equals the whole
        // offer, but the top group must survive so the feed cursor
        // (and with it the data-driven tick) keeps advancing.
        let mut c = AdmissionController::new(cfg(10_000, 40, 10_000));
        let d = c.offer(batch(0, &[(0, 1, 9), (0, 2, 2), (1, 3, 5)]), 40);
        match d {
            AdmissionDecision::Admit { batch, shed } => {
                assert_eq!(batch.keys.len(), 9, "top group admitted whole");
                let shed_n: u32 = shed.iter().map(|g| g.records).sum();
                assert_eq!(shed_n, 7, "everything else shed");
            }
            other => panic!("expected admit, got {other:?}"),
        }
    }

    #[test]
    fn top_decile_survives_total_overload() {
        // Twenty groups with ascending record counts and a need larger
        // than the whole offer: shedding must stop at the top ⌈20/10⌉
        // = 2 groups, which survive intact.
        let mut c = AdmissionController::new(cfg(100_000, 10, 100_000));
        let groups: Vec<(u16, u32, u32)> = (0..20u32).map(|i| (0u16, i + 1, i + 1)).collect();
        let d = c.offer(batch(0, &groups), 10);
        match d {
            AdmissionDecision::Admit { batch, shed } => {
                assert_eq!(shed.len(), 18, "all sheddable groups shed");
                // The two biggest groups (19 + 20 records) remain.
                assert_eq!(batch.keys.len(), 39, "top decile admitted whole");
            }
            other => panic!("expected admit, got {other:?}"),
        }
    }

    #[test]
    fn streak_history_informs_scores() {
        let mut c = AdmissionController::new(cfg(10_000, 10_000, 10_000));
        // Feed group (0,1) for many consecutive buckets so its streak
        // grows; group (0,2) appears fresh. With identical record
        // counts, the longer-lived group scores at least as high once
        // the history has data.
        for b in 0..30 {
            c.offer(batch(b, &[(0, 1, 4)]), 0);
        }
        let scores = c.score_batch(&batch(30, &[(0, 1, 4), (0, 2, 4)]));
        assert_eq!(scores.len(), 2);
        let by_key: DetHashMap<u64, f64> = scores
            .iter()
            .map(|g| (g.subkey, g.client_time_product))
            .collect();
        let k1 = pack_subkey(CloudLocId(0), Prefix24::from_block(1), false);
        let k2 = pack_subkey(CloudLocId(0), Prefix24::from_block(2), false);
        assert!(by_key[&k1] >= by_key[&k2]);
    }

    #[test]
    fn decisions_are_deterministic_across_input_order() {
        let make = || AdmissionController::new(cfg(1000, 12, 8));
        let groups = [(3, 9, 6), (0, 1, 7), (1, 4, 5), (2, 2, 9)];
        let mut rev = groups;
        rev.reverse();
        let d1 = make().offer(batch(5, &groups), 0);
        let d2 = make().offer(batch(5, &rev), 0);
        let (b1, s1) = match d1 {
            AdmissionDecision::Admit { batch, shed } => (batch, shed),
            other => panic!("{other:?}"),
        };
        let (b2, s2) = match d2 {
            AdmissionDecision::Admit { batch, shed } => (batch, shed),
            other => panic!("{other:?}"),
        };
        assert_eq!(b1, b2, "admitted batch independent of stream order");
        let k1: Vec<u64> = s1.iter().map(|g| g.subkey).collect();
        let k2: Vec<u64> = s2.iter().map(|g| g.subkey).collect();
        assert_eq!(k1, k2, "shed order independent of stream order");
    }
}
