//! Reporting: blame fractions and breakdowns.
//!
//! §6.2's production views: blame-category fractions over time
//! (Fig. 8), per-region breakdowns (Fig. 9), and per-category duration
//! distributions (Fig. 10). These aggregations are pure functions over
//! [`BlameResult`]s so the experiment harness and operators' reports
//! share one implementation.

use crate::active::{LocalizationVerdict, TracrouteDiffResult};
use crate::passive::{Blame, BlameResult};
use crate::pipeline::{Alert, MiddleLocalization, TickOutput};
use blameit_topology::Region;
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

/// Counts per blame category.
///
/// ```
/// use blameit::{Blame, BlameCounts};
/// let mut c = BlameCounts::new();
/// c.add(Blame::Middle);
/// c.add(Blame::Middle);
/// c.add(Blame::Client);
/// assert!((c.fraction(Blame::Middle) - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BlameCounts {
    counts: [u64; Blame::ALL.len()],
}

impl BlameCounts {
    /// An empty tally.
    pub fn new() -> Self {
        BlameCounts::default()
    }

    /// Adds one verdict.
    pub fn add(&mut self, blame: Blame) {
        let i = Blame::ALL.iter().position(|b| *b == blame).unwrap();
        self.counts[i] += 1;
    }

    /// Count for one category.
    pub fn count(&self, blame: Blame) -> u64 {
        let i = Blame::ALL.iter().position(|b| *b == blame).unwrap();
        self.counts[i]
    }

    /// Total verdicts tallied.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction for one category (0 when empty).
    pub fn fraction(&self, blame: Blame) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.count(blame) as f64 / t as f64
        }
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &BlameCounts) {
        for i in 0..self.counts.len() {
            self.counts[i] += other.counts[i];
        }
    }
}

impl fmt::Display for BlameCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, b) in Blame::ALL.iter().enumerate() {
            if i > 0 {
                f.write_str("  ")?;
            }
            write!(f, "{b}={:.1}%", 100.0 * self.fraction(*b))?;
        }
        Ok(())
    }
}

/// Tallies blame results overall.
pub fn tally(results: &[BlameResult]) -> BlameCounts {
    let mut c = BlameCounts::new();
    for r in results {
        c.add(r.blame);
    }
    c
}

/// Tallies per region (Fig. 9's view). Ordered map, so report loops
/// iterate regions canonically rather than in hash order.
pub fn tally_by_region(results: &[BlameResult]) -> BTreeMap<Region, BlameCounts> {
    let mut out: BTreeMap<Region, BlameCounts> = BTreeMap::new();
    for r in results {
        out.entry(r.region).or_default().add(r.blame);
    }
    out
}

/// Tallies per day (Fig. 8's view). Ordered map, so report loops
/// iterate days canonically rather than in hash order.
pub fn tally_by_day(results: &[BlameResult]) -> BTreeMap<u32, BlameCounts> {
    let mut out: BTreeMap<u32, BlameCounts> = BTreeMap::new();
    for r in results {
        out.entry(r.obs.bucket.day()).or_default().add(r.blame);
    }
    out
}

/// Serializes tick outputs into a canonical, line-oriented transcript
/// covering everything that must be invariant across thread counts:
/// blames, ranked issues, probe decisions, localizations, alerts, probe
/// counts, and the stage-timing *keys* (durations are wall-clock, so
/// only the key set and order are canonical). Floats print with their
/// shortest round-trip representation, so equal transcripts mean
/// bit-equal outputs. Shared by the golden regression snapshot and the
/// parallel-determinism suite.
pub fn render_tick_transcript(outs: &[TickOutput]) -> String {
    let mut s = String::new();
    for (i, out) in outs.iter().enumerate() {
        writeln!(
            s,
            "tick {i} on_demand={} background={}",
            out.on_demand_probes, out.background_probes
        )
        .unwrap();
        for b in &out.blames {
            writeln!(
                s,
                "  blame loc={} p24={} mobile={} bucket={} n={} mean={:?} \
                 path={} key={:?} origin={} region={:?} verdict={} prov=[{}]",
                b.obs.loc,
                b.obs.p24,
                b.obs.mobile,
                b.obs.bucket.0,
                b.obs.n,
                b.obs.mean_rtt_ms,
                b.path,
                b.middle_key,
                b.origin,
                b.region,
                b.blame,
                b.passive.render_compact()
            )
            .unwrap();
        }
        for r in &out.ranked_issues {
            let p24s: Vec<String> = r
                .issue
                .affected_p24s
                .iter()
                .map(|p| p.to_string())
                .collect();
            writeln!(
                s,
                "  issue loc={} path={} key={:?} bucket={} elapsed={} clients={} \
                 p24s=[{}] remaining={:?} predicted={:?} product={:?}",
                r.issue.loc,
                r.issue.path,
                r.issue.middle_key,
                r.issue.bucket.0,
                r.issue.elapsed_buckets,
                r.issue.current_clients,
                p24s.join(","),
                r.expected_remaining_buckets,
                r.predicted_clients,
                r.client_time_product
            )
            .unwrap();
        }
        for l in &out.localizations {
            let diff = match &l.diff {
                None => "none".to_string(),
                Some(d) => {
                    let rows: Vec<String> = d
                        .rows
                        .iter()
                        .map(|r| format!("{}:{:?}->{:?}", r.asn, r.baseline_ms, r.current_ms))
                        .collect();
                    format!("[{}]", rows.join(","))
                }
            };
            writeln!(
                s,
                "  localization loc={} path={} at={} p24={} attempts={} verdict={} culprit={:?} diff={} prov=[{}]",
                l.issue.issue.loc,
                l.issue.issue.path,
                l.probed_at,
                l.probed_p24,
                l.attempts,
                l.verdict,
                l.culprit,
                diff,
                l.provenance.render_compact()
            )
            .unwrap();
        }
        for a in &out.alerts {
            writeln!(
                s,
                "  alert bucket={} blame={} loc={} path={:?} client_as={:?} culprit={:?} \
                 connections={} p24s={} confidence={:?}",
                a.bucket.0,
                a.blame,
                a.loc,
                a.path,
                a.client_as,
                a.culprit,
                a.impacted_connections,
                a.impacted_p24s,
                a.confidence
            )
            .unwrap();
        }
        let stages: Vec<&str> = out.stage_timings.iter().map(|(n, _)| n).collect();
        writeln!(s, "  stages [{}]", stages.join(",")).unwrap();
    }
    s
}

/// Renders the provenance tree behind one passive verdict — the
/// `blameit explain quartet:…` view. Pure text over deterministic
/// evidence, so the output is stable enough for golden tests.
pub fn render_blame_explain(b: &BlameResult) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "quartet loc={} p24={} mobile={} bucket={}",
        b.obs.loc, b.obs.p24, b.obs.mobile, b.obs.bucket.0
    )
    .unwrap();
    writeln!(
        out,
        "├─ observed: n={} mean_rtt_ms={:?} path={} key={:?} origin={} region={:?}",
        b.obs.n, b.obs.mean_rtt_ms, b.path, b.middle_key, b.origin, b.region
    )
    .unwrap();
    writeln!(out, "├─ verdict: {}", b.blame).unwrap();
    writeln!(out, "└─ algorithm-1: {}", b.passive.describe_branch()).unwrap();
    writeln!(out, "   └─ evidence: {}", b.passive.render_compact()).unwrap();
    out
}

/// Renders the provenance tree behind one active localization — the
/// `blameit explain incident:…` view: incident context, priority and
/// budget position, probe attempts, baseline age, and the per-AS
/// traceroute delta table.
pub fn render_localization_explain(l: &MiddleLocalization) -> String {
    let mut out = String::new();
    let p = &l.provenance;
    writeln!(
        out,
        "incident loc={} path={} key={:?}",
        l.issue.issue.loc, l.issue.issue.path, l.issue.issue.middle_key
    )
    .unwrap();
    writeln!(
        out,
        "├─ incident: opened at bucket {}, {} bucket(s) elapsed, {} bad observation(s), \
         {} client(s) across {} /24(s)",
        p.incident.start_bucket.0,
        p.incident.elapsed_buckets,
        p.incident.observations,
        p.incident.current_clients,
        p.incident.affected_p24s
    )
    .unwrap();
    writeln!(
        out,
        "├─ priority: client-time product {:?} (predicted {:?} clients × {:?} remaining \
         buckets), rank {} of {} selected from {} candidate(s)",
        p.priority.client_time_product,
        p.priority.predicted_clients,
        p.priority.expected_remaining_buckets,
        p.priority.budget_rank,
        p.priority.selected,
        p.priority.candidates
    )
    .unwrap();
    writeln!(
        out,
        "├─ probe: target {} at {}, {} attempt(s), {} lost, backoff {}s{}{}",
        l.probed_p24,
        l.probed_at,
        p.probe.attempts,
        p.probe.lost_attempts,
        p.probe.backoff_secs,
        if p.probe.truncated { ", truncated" } else { "" },
        if p.probe.deadline_dropped {
            ", dropped at deadline"
        } else {
            ""
        }
    )
    .unwrap();
    writeln!(out, "├─ baseline: {}", p.baseline.render_compact()).unwrap();
    writeln!(out, "└─ verdict: {}", l.verdict).unwrap();
    match &l.diff {
        Some(d) => {
            writeln!(out, "   └─ per-AS delta:").unwrap();
            for r in &d.rows {
                writeln!(
                    out,
                    "      {} baseline={:?}ms now={:?}ms delta={:?}ms",
                    r.asn,
                    r.baseline_ms,
                    r.current_ms,
                    r.delta_ms()
                )
                .unwrap();
            }
        }
        None => writeln!(out, "   └─ per-AS delta: none (no usable probe/baseline)").unwrap(),
    }
    out
}

/// Renders one operator ticket for an alert — the auto-filed
/// investigation ticket of §6.1 ("the detailed outputs of BlameIt are
/// auto-included in these tickets for ease of investigation"), as
/// Markdown. `localization` carries the active-phase diff when the
/// alert's middle issue was probed.
pub fn render_ticket(alert: &Alert, localization: Option<&MiddleLocalization>) -> String {
    let mut out = String::new();
    let severity = match alert.blame {
        Blame::Cloud => "P1 (cloud-internal)",
        Blame::Middle => "P2 (peering/transit)",
        Blame::Client => "P3 (client ISP — informational)",
        Blame::Ambiguous | Blame::Insufficient => "P4 (monitor)",
    };
    writeln!(out, "## [{}] {} latency issue", severity, alert.blame).unwrap();
    writeln!(out).unwrap();
    writeln!(out, "* first observed: {}", alert.bucket).unwrap();
    writeln!(out, "* cloud location: {}", alert.loc).unwrap();
    if let Some(p) = alert.path {
        writeln!(out, "* middle BGP path: {p}").unwrap();
    }
    if let Some(a) = alert.client_as {
        writeln!(out, "* client AS: {a}").unwrap();
    }
    writeln!(
        out,
        "* impact: {} connections across {} client /24s",
        alert.impacted_connections, alert.impacted_p24s
    )
    .unwrap();
    writeln!(
        out,
        "* confidence: {:.0}% of the aggregate's quartets agree",
        100.0 * alert.confidence
    )
    .unwrap();
    match alert.culprit {
        Some(c) => writeln!(out, "* **culprit AS: {c}**").unwrap(),
        None => writeln!(out, "* culprit AS: not yet localized").unwrap(),
    }
    if let Some(l) = localization {
        writeln!(out).unwrap();
        writeln!(
            out,
            "### Active localization (probe at {}, target {}, {} attempt{})",
            l.probed_at,
            l.probed_p24,
            l.attempts,
            if l.attempts == 1 { "" } else { "s" }
        )
        .unwrap();
        if let LocalizationVerdict::MiddleUnlocalized { reason } = l.verdict {
            writeln!(
                out,
                "
**degraded verdict**: middle segment confirmed but no culprit AS \
could honestly be named ({reason})"
            )
            .unwrap();
        }
        match &l.diff {
            Some(d) => {
                writeln!(out).unwrap();
                write_diff_table(&mut out, d);
            }
            None => writeln!(
                out,
                "
no usable probe/baseline evidence was available"
            )
            .unwrap(),
        }
    }
    writeln!(out).unwrap();
    writeln!(
        out,
        "routing: {}",
        match alert.blame {
            Blame::Cloud => "cloud networking / server on-call",
            Blame::Middle => "peering & transit team",
            Blame::Client => "no internal action; notify account/partner team if recurring",
            _ => "hold — insufficient evidence",
        }
    )
    .unwrap();
    out
}

/// Renders a per-AS contribution diff as a Markdown table.
fn write_diff_table(out: &mut String, d: &TracrouteDiffResult) {
    writeln!(out, "| AS | baseline (ms) | now (ms) | Δ (ms) |").unwrap();
    writeln!(out, "|---|---|---|---|").unwrap();
    for r in &d.rows {
        writeln!(
            out,
            "| {} | {:.1} | {:.1} | {:+.1} |",
            r.asn,
            r.baseline_ms,
            r.current_ms,
            r.delta_ms()
        )
        .unwrap();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grouping::MiddleKey;
    use crate::pipeline::Alert;
    use blameit_simnet::{QuartetObs, TimeBucket};
    use blameit_topology::{Asn, CloudLocId, PathId, Prefix24};

    fn result(blame: Blame, region: Region, day: u32) -> BlameResult {
        BlameResult {
            obs: QuartetObs {
                loc: CloudLocId(0),
                p24: Prefix24::from_block(1),
                mobile: false,
                bucket: TimeBucket(day * blameit_simnet::BUCKETS_PER_DAY),
                n: 10,
                mean_rtt_ms: 100.0,
            },
            path: PathId(0),
            middle_key: MiddleKey::Path(PathId(0)),
            origin: Asn(1),
            region,
            blame,
            passive: crate::provenance::PassiveEvidence {
                branch: blame,
                tau: 0.8,
                min_aggregate: 5,
                cloud_n: 12,
                cloud_bad: 2,
                middle_n: 12,
                middle_bad: 11,
                good_elsewhere: false,
            },
        }
    }

    #[test]
    fn counts_and_fractions() {
        let mut c = BlameCounts::new();
        for _ in 0..3 {
            c.add(Blame::Middle);
        }
        c.add(Blame::Cloud);
        assert_eq!(c.total(), 4);
        assert_eq!(c.count(Blame::Middle), 3);
        assert!((c.fraction(Blame::Middle) - 0.75).abs() < 1e-12);
        assert_eq!(c.fraction(Blame::Client), 0.0);
        assert_eq!(BlameCounts::new().fraction(Blame::Cloud), 0.0);
    }

    #[test]
    fn merge_adds() {
        let mut a = BlameCounts::new();
        a.add(Blame::Cloud);
        let mut b = BlameCounts::new();
        b.add(Blame::Cloud);
        b.add(Blame::Client);
        a.merge(&b);
        assert_eq!(a.count(Blame::Cloud), 2);
        assert_eq!(a.total(), 3);
    }

    #[test]
    fn region_and_day_tallies() {
        let results = vec![
            result(Blame::Middle, Region::India, 0),
            result(Blame::Middle, Region::India, 0),
            result(Blame::Client, Region::UnitedStates, 1),
        ];
        let by_region = tally_by_region(&results);
        assert_eq!(by_region[&Region::India].count(Blame::Middle), 2);
        assert_eq!(by_region[&Region::UnitedStates].count(Blame::Client), 1);
        let by_day = tally_by_day(&results);
        assert_eq!(by_day[&0].total(), 2);
        assert_eq!(by_day[&1].total(), 1);
        let all = tally(&results);
        assert_eq!(all.total(), 3);
    }

    #[test]
    fn tallies_iterate_in_canonical_order() {
        // Insertion order is adversarial; iteration must still be
        // sorted (this is what kept hash-order out of the reports).
        let results = vec![
            result(Blame::Client, Region::UnitedStates, 5),
            result(Blame::Middle, Region::India, 0),
            result(Blame::Cloud, Region::Europe, 3),
            result(Blame::Middle, Region::India, 3),
        ];
        let days: Vec<u32> = tally_by_day(&results).keys().copied().collect();
        assert_eq!(days, vec![0, 3, 5]);
        let regions: Vec<Region> = tally_by_region(&results).keys().copied().collect();
        let mut sorted = regions.clone();
        sorted.sort();
        assert_eq!(regions, sorted);
        assert_eq!(regions.len(), 3);
    }

    #[test]
    fn transcript_covers_every_section() {
        let out = TickOutput {
            blames: vec![result(Blame::Middle, Region::India, 0)],
            on_demand_probes: 2,
            background_probes: 7,
            ..TickOutput::default()
        };
        let t = render_tick_transcript(&[out]);
        assert!(t.starts_with("tick 0 on_demand=2 background=7\n"), "{t}");
        assert!(t.contains("verdict=middle"), "{t}");
        assert!(t.contains("stages []"), "{t}");
    }

    #[test]
    fn ticket_renders_all_sections() {
        use crate::active::diff_contributions;
        use crate::grouping::MiddleKey;
        use crate::pipeline::MiddleLocalization;
        use crate::priority::{MiddleIssue, PrioritizedIssue};
        use blameit_simnet::SimTime;
        use blameit_topology::{CloudLocId, PathId, Prefix24};

        let alert = Alert {
            bucket: TimeBucket(12),
            blame: Blame::Middle,
            loc: CloudLocId(3),
            path: Some(PathId(7)),
            client_as: None,
            culprit: Some(Asn(112)),
            impacted_connections: 4200,
            impacted_p24s: 17,
            confidence: 0.93,
        };
        let diff = diff_contributions(
            &[(Asn(100), 4.0), (Asn(112), 2.0), (Asn(200), 1.0)],
            &[(Asn(100), 4.0), (Asn(112), 58.0), (Asn(200), 1.0)],
        );
        let localization = MiddleLocalization {
            issue: PrioritizedIssue {
                issue: MiddleIssue {
                    loc: CloudLocId(3),
                    path: PathId(7),
                    middle_key: MiddleKey::Path(PathId(7)),
                    bucket: TimeBucket(12),
                    elapsed_buckets: 4,
                    current_clients: 4200,
                    affected_p24s: vec![Prefix24::from_block(9)],
                },
                expected_remaining_buckets: 6.0,
                predicted_clients: 4100.0,
                client_time_product: 24_600.0,
            },
            probed_at: SimTime(3_750),
            probed_p24: Prefix24::from_block(9),
            attempts: 1,
            diff: Some(diff),
            verdict: LocalizationVerdict::Culprit(Asn(112)),
            culprit: Some(Asn(112)),
            provenance: crate::provenance::Provenance {
                incident: crate::provenance::IncidentEvidence {
                    start_bucket: TimeBucket(12),
                    elapsed_buckets: 4,
                    observations: 17,
                    current_clients: 4200,
                    affected_p24s: 1,
                },
                priority: crate::provenance::PriorityEvidence {
                    client_time_product: 24_600.0,
                    predicted_clients: 4100.0,
                    expected_remaining_buckets: 6.0,
                    budget_rank: 0,
                    selected: 1,
                    candidates: 1,
                },
                probe: crate::provenance::ProbeEvidence {
                    attempts: 1,
                    lost_attempts: 0,
                    truncated: false,
                    deadline_dropped: false,
                    backoff_secs: 0,
                },
                baseline: crate::provenance::BaselineEvidence::Fresh {
                    at_secs: 600,
                    age_secs: 3_150,
                },
            },
        };
        let t = render_ticket(&alert, Some(&localization));
        assert!(t.contains("P2 (peering/transit)"), "{t}");
        assert!(t.contains("culprit AS: AS112"));
        assert!(t.contains("| AS112 | 2.0 | 58.0 | +56.0 |"), "{t}");
        assert!(t.contains("peering & transit team"));
        assert!(t.contains("1 attempt)"), "{t}");
        assert!(!t.contains("degraded verdict"), "{t}");

        // Degraded-verdict ticket: retries exhausted, no diff.
        let degraded = MiddleLocalization {
            attempts: 3,
            diff: None,
            verdict: LocalizationVerdict::MiddleUnlocalized {
                reason: crate::active::UnlocalizedReason::ProbeTimeout,
            },
            culprit: None,
            ..localization.clone()
        };
        let t = render_ticket(&alert, Some(&degraded));
        assert!(t.contains("3 attempts)"), "{t}");
        assert!(t.contains("**degraded verdict**"), "{t}");
        assert!(t.contains("(probe_timeout)"), "{t}");
        assert!(t.contains("no usable probe/baseline evidence"), "{t}");

        // Client ticket without localization.
        let client_alert = Alert {
            blame: Blame::Client,
            path: None,
            client_as: Some(Asn(150)),
            culprit: Some(Asn(150)),
            ..alert
        };
        let t2 = render_ticket(&client_alert, None);
        assert!(t2.contains("P3"));
        assert!(t2.contains("client AS: AS150"));
        assert!(t2.contains("no internal action"));
    }

    #[test]
    fn blame_explain_tree_shows_branch_and_evidence() {
        let t = render_blame_explain(&result(Blame::Middle, Region::Europe, 1));
        assert!(t.starts_with("quartet loc=cloud0 p24="), "{t}");
        assert!(t.contains("├─ observed: n=10"), "{t}");
        assert!(t.contains("├─ verdict: middle"), "{t}");
        assert!(t.contains("└─ algorithm-1: "), "{t}");
        assert!(
            t.contains("└─ evidence: cloud=2/12 middle=11/12 tau=0.8"),
            "{t}"
        );
    }

    #[test]
    fn localization_explain_tree_shows_full_chain() {
        use crate::active::diff_contributions;
        use crate::pipeline::MiddleLocalization;
        use crate::priority::{MiddleIssue, PrioritizedIssue};
        use blameit_simnet::SimTime;
        use blameit_topology::{CloudLocId, PathId, Prefix24};

        let diff = diff_contributions(
            &[(Asn(100), 4.0), (Asn(112), 2.0)],
            &[(Asn(100), 4.0), (Asn(112), 58.0)],
        );
        let l = MiddleLocalization {
            issue: PrioritizedIssue {
                issue: MiddleIssue {
                    loc: CloudLocId(3),
                    path: PathId(7),
                    middle_key: MiddleKey::Path(PathId(7)),
                    bucket: TimeBucket(12),
                    elapsed_buckets: 4,
                    current_clients: 4200,
                    affected_p24s: vec![Prefix24::from_block(9)],
                },
                expected_remaining_buckets: 6.0,
                predicted_clients: 4100.0,
                client_time_product: 24_600.0,
            },
            probed_at: SimTime(3_750),
            probed_p24: Prefix24::from_block(9),
            attempts: 2,
            diff: Some(diff),
            verdict: LocalizationVerdict::Culprit(Asn(112)),
            culprit: Some(Asn(112)),
            provenance: crate::provenance::Provenance {
                incident: crate::provenance::IncidentEvidence {
                    start_bucket: TimeBucket(12),
                    elapsed_buckets: 4,
                    observations: 17,
                    current_clients: 4200,
                    affected_p24s: 1,
                },
                priority: crate::provenance::PriorityEvidence {
                    client_time_product: 24_600.0,
                    predicted_clients: 4100.0,
                    expected_remaining_buckets: 6.0,
                    budget_rank: 0,
                    selected: 1,
                    candidates: 3,
                },
                probe: crate::provenance::ProbeEvidence {
                    attempts: 2,
                    lost_attempts: 1,
                    truncated: false,
                    deadline_dropped: false,
                    backoff_secs: 2,
                },
                baseline: crate::provenance::BaselineEvidence::Fresh {
                    at_secs: 600,
                    age_secs: 3_150,
                },
            },
        };
        let t = render_localization_explain(&l);
        assert!(t.starts_with("incident loc=cloud3 path=path7"), "{t}");
        assert!(
            t.contains("opened at bucket 12, 4 bucket(s) elapsed"),
            "{t}"
        );
        assert!(t.contains("17 bad observation(s)"), "{t}");
        assert!(
            t.contains("client-time product 24600.0 (predicted 4100.0 clients × 6.0"),
            "{t}"
        );
        assert!(
            t.contains("rank 0 of 1 selected from 3 candidate(s)"),
            "{t}"
        );
        assert!(t.contains("2 attempt(s), 1 lost, backoff 2s"), "{t}");
        assert!(t.contains("├─ baseline: fresh@600 age=3150"), "{t}");
        assert!(t.contains("└─ verdict: culprit(AS112)"), "{t}");
        assert!(
            t.contains("AS112 baseline=2.0ms now=58.0ms delta=56.0ms"),
            "{t}"
        );

        // Degraded path: no diff table, reason in the verdict line.
        let degraded = MiddleLocalization {
            diff: None,
            verdict: LocalizationVerdict::MiddleUnlocalized {
                reason: crate::active::UnlocalizedReason::ProbeTimeout,
            },
            culprit: None,
            ..l
        };
        let t = render_localization_explain(&degraded);
        assert!(t.contains("└─ verdict: unlocalized(probe_timeout)"), "{t}");
        assert!(
            t.contains("└─ per-AS delta: none (no usable probe/baseline)"),
            "{t}"
        );
    }

    #[test]
    fn display_formats_percentages() {
        let mut c = BlameCounts::new();
        c.add(Blame::Cloud);
        let s = c.to_string();
        assert!(s.contains("cloud=100.0%"), "{s}");
    }
}
