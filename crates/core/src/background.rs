//! Background traceroutes: the baseline the active phase diffs against.
//!
//! §5.4: background traceroutes are issued (a) periodically but
//! infrequently — twice a day per (location, BGP path) at the paper's
//! "sweet spot" — and (b) immediately when the IBGP listener reports a
//! path change or withdrawal for a prefix. Fig. 13 sweeps the period
//! and shows 12 h + churn triggers retains 93% accuracy at 72× fewer
//! probes than 10-minute continuous coverage.

use crate::fxhash::DetHashMap;
use blameit_simnet::{SimTime, Traceroute};
use blameit_topology::{Asn, CloudLocId, PathId, Prefix24};

/// A background/on-demand probe target.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ProbeTarget {
    /// Probing location.
    pub loc: CloudLocId,
    /// The middle path being baselined.
    pub path: PathId,
    /// Representative client /24 to probe toward.
    pub p24: Prefix24,
}

/// The per-(location, path) history of background traceroutes.
///
/// Keeps a short ring of past measurements rather than only the
/// latest: the active phase must diff against "the picture **prior to
/// the fault**" (§5.2), so it asks for the newest baseline *older than
/// the incident's start* — a baseline measured mid-incident already
/// contains the inflation and would diff to nothing.
#[derive(Clone, Debug, Default)]
pub struct BaselineStore {
    pub(crate) map: DetHashMap<(CloudLocId, PathId), std::collections::VecDeque<BaselineEntry>>,
}

/// One stored baseline.
#[derive(Clone, Debug)]
pub struct BaselineEntry {
    /// Per-AS contributions from the background traceroute.
    pub contributions: Vec<(Asn, f64)>,
    /// When the baseline was measured.
    pub at: SimTime,
}

impl BaselineStore {
    /// An empty store.
    pub fn new() -> Self {
        BaselineStore::default()
    }

    /// Records a completed background traceroute for (loc, path).
    ///
    /// Retention is age-spaced, not a plain ring: after inserting, one
    /// entry per exponential age class (~10 min, 20, 40, … ≈ 2 days) is
    /// kept. A plain ring at a 10-minute probing period only spans
    /// ~1 hour, so a fault detected late (e.g. overnight onset) would
    /// have no clean pre-onset baseline left; age spacing keeps fresh
    /// *and* old pictures at every probing frequency.
    pub fn update(&mut self, loc: CloudLocId, path: PathId, tr: &Traceroute) {
        let q = self.map.entry((loc, path)).or_default();
        q.push_back(BaselineEntry {
            contributions: tr.as_contributions(),
            at: tr.at,
        });
        let newest = tr.at;
        // Keep the *oldest* entry of each class so survivors age into
        // the next class instead of being displaced by younger arrivals
        // (keeping the newest would cap the whole history at roughly
        // one class-width), plus always the most recent measurement.
        let mut kept: std::collections::VecDeque<BaselineEntry> = std::collections::VecDeque::new();
        let mut classes_seen = 0u32;
        for e in q.iter() {
            let age = newest.secs().saturating_sub(e.at.secs());
            // class 0: < 10 min, then doubling: < 20 min, < 40 min, …
            let class = (age / 600 + 1).ilog2();
            let bit = 1u32 << class.min(31);
            if classes_seen & bit == 0 {
                classes_seen |= bit;
                kept.push_back(e.clone());
            }
        }
        if kept.back().map(|e| e.at) != Some(newest) {
            kept.push_back(q.back().expect("just pushed").clone());
        }
        *q = kept;
    }

    /// The most recent baseline, if any.
    pub fn get(&self, loc: CloudLocId, path: PathId) -> Option<&BaselineEntry> {
        self.map.get(&(loc, path)).and_then(|q| q.back())
    }

    /// The newest baseline strictly older than `before` — the
    /// pre-incident picture. `None` when every retained baseline was
    /// taken during (or after) the incident.
    pub fn get_before(
        &self,
        loc: CloudLocId,
        path: PathId,
        before: SimTime,
    ) -> Option<&BaselineEntry> {
        self.map
            .get(&(loc, path))?
            .iter()
            .rev()
            .find(|e| e.at < before)
    }

    /// The oldest retained baseline — the fallback when nothing
    /// predates an episode (an in-episode baseline diffs to "no
    /// culprit" rather than a wrong one).
    pub fn oldest(&self, loc: CloudLocId, path: PathId) -> Option<&BaselineEntry> {
        self.map.get(&(loc, path)).and_then(|q| q.front())
    }

    /// Age of the most recent baseline at `now` (seconds); `None` if
    /// absent.
    pub fn age_secs(&self, loc: CloudLocId, path: PathId, now: SimTime) -> Option<u64> {
        self.get(loc, path)
            .map(|e| now.secs().saturating_sub(e.at.secs()))
    }

    /// The newest entry of every (location, path) pair — what the
    /// staleness gauges summarize.
    ///
    /// Iteration order is the hash map's: the only consumer reduces to
    /// max/sum/count gauges, which are order-insensitive. Anything that
    /// emits per-entry output must sort first.
    pub fn iter_newest(&self) -> impl Iterator<Item = ((CloudLocId, PathId), &BaselineEntry)> {
        self.map
            // lint:allow(unordered-iteration): sole consumer folds into max/sum/count staleness gauges; no per-entry output escapes
            .iter()
            .filter_map(|(k, q)| q.back().map(|e| (*k, e)))
    }

    /// Number of (location, path) keys with at least one baseline.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Decides which background probes are due.
#[derive(Clone, Debug)]
pub struct BackgroundScheduler {
    pub(crate) period_secs: u64,
    pub(crate) churn_triggered: bool,
    pub(crate) last: DetHashMap<(CloudLocId, PathId), SimTime>,
}

impl BackgroundScheduler {
    /// Scheduler with the paper's default: twice a day (43200 s) plus
    /// churn triggers.
    pub fn paper_default() -> Self {
        Self::new(43_200, true)
    }

    /// Custom period/trigger configuration (Fig. 13's sweep).
    pub fn new(period_secs: u64, churn_triggered: bool) -> Self {
        assert!(period_secs > 0, "period must be positive");
        BackgroundScheduler {
            period_secs,
            churn_triggered,
            last: DetHashMap::default(),
        }
    }

    /// The configured period.
    pub fn period_secs(&self) -> u64 {
        self.period_secs
    }

    /// Forgets the last-probed time for `(loc, path)`, making the
    /// target due again on the next tick. The engine calls this when a
    /// background refresh fails (e.g. the traceroute timed out under a
    /// chaos plan) so one lost probe doesn't leave a baseline stale for
    /// a whole period.
    pub fn retry_soon(&mut self, loc: CloudLocId, path: PathId) {
        self.last.remove(&(loc, path));
    }

    /// Computes the probes due at `now`:
    ///
    /// * every periodic target whose last probe is older than the
    ///   period (or never probed),
    /// * plus every churn target (if churn triggering is enabled),
    ///
    /// deduplicated, and marks them probed. The caller issues the
    /// traceroutes and feeds results into the [`BaselineStore`].
    pub fn due(
        &mut self,
        now: SimTime,
        periodic_targets: &[ProbeTarget],
        churn_targets: &[ProbeTarget],
    ) -> Vec<ProbeTarget> {
        let mut span = blameit_obs::span!(
            "blameit::background",
            "scheduler_due",
            periodic = periodic_targets.len(),
            churn = churn_targets.len(),
        );
        let mut out: Vec<ProbeTarget> = Vec::new();
        for t in periodic_targets {
            let key = (t.loc, t.path);
            let due = match self.last.get(&key) {
                None => true,
                Some(last) => now.secs().saturating_sub(last.secs()) >= self.period_secs,
            };
            if due {
                out.push(*t);
            }
        }
        if self.churn_triggered {
            for t in churn_targets {
                out.push(*t);
            }
        }
        out.sort();
        out.dedup_by_key(|t| (t.loc, t.path));
        for t in &out {
            self.last.insert((t.loc, t.path), now);
        }
        span.record("due", out.len());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(loc: u16, path: u32) -> ProbeTarget {
        ProbeTarget {
            loc: CloudLocId(loc),
            path: PathId(path),
            p24: Prefix24::from_block(path),
        }
    }

    #[test]
    fn periodic_respects_period() {
        let mut s = BackgroundScheduler::new(1000, false);
        let targets = [target(0, 1), target(0, 2)];
        let first = s.due(SimTime(0), &targets, &[]);
        assert_eq!(first.len(), 2, "never probed → due");
        let soon = s.due(SimTime(500), &targets, &[]);
        assert!(soon.is_empty(), "inside the period");
        let later = s.due(SimTime(1000), &targets, &[]);
        assert_eq!(later.len(), 2);
    }

    #[test]
    fn churn_triggers_immediately() {
        let mut s = BackgroundScheduler::new(1_000_000, true);
        let targets = [target(0, 1)];
        s.due(SimTime(0), &targets, &[]);
        // Long before the period elapses, churn forces a probe.
        let due = s.due(SimTime(100), &[], &[target(0, 1)]);
        assert_eq!(due.len(), 1);
        // And it resets the periodic clock.
        let due2 = s.due(SimTime(200), &targets, &[]);
        assert!(due2.is_empty());
    }

    #[test]
    fn retry_soon_makes_a_target_due_again() {
        let mut s = BackgroundScheduler::new(1000, false);
        let targets = [target(0, 1), target(0, 2)];
        s.due(SimTime(0), &targets, &[]);
        assert!(s.due(SimTime(300), &targets, &[]).is_empty());
        s.retry_soon(CloudLocId(0), PathId(2));
        let due = s.due(SimTime(600), &targets, &[]);
        assert_eq!(due, vec![target(0, 2)]);
        // The retried probe resets its clock like any other.
        assert!(s.due(SimTime(900), &targets, &[]).is_empty());
    }

    #[test]
    fn churn_disabled_is_ignored() {
        let mut s = BackgroundScheduler::new(1000, false);
        let due = s.due(SimTime(0), &[], &[target(0, 1)]);
        assert!(due.is_empty());
    }

    #[test]
    fn dedup_periodic_and_churn() {
        let mut s = BackgroundScheduler::new(1000, true);
        let due = s.due(SimTime(0), &[target(0, 1)], &[target(0, 1)]);
        assert_eq!(due.len(), 1);
    }

    #[test]
    fn baseline_store_roundtrip() {
        use blameit_simnet::{Segment, TracerouteHop};
        use blameit_topology::MetroId;
        let mut store = BaselineStore::new();
        assert!(store.is_empty());
        let tr = Traceroute {
            loc: CloudLocId(0),
            p24: Prefix24::from_block(1),
            at: SimTime(500),
            hops: vec![
                TracerouteHop {
                    asn: Asn(10),
                    metro: MetroId(0),
                    rtt_ms: 4.0,
                    responded: true,
                    segment: Segment::Cloud,
                },
                TracerouteHop {
                    asn: Asn(20),
                    metro: MetroId(0),
                    rtt_ms: 9.0,
                    responded: true,
                    segment: Segment::Client,
                },
            ],
        };
        store.update(CloudLocId(0), PathId(7), &tr);
        let e = store.get(CloudLocId(0), PathId(7)).unwrap();
        assert_eq!(e.contributions, vec![(Asn(10), 4.0), (Asn(20), 5.0)]);
        assert_eq!(
            store.age_secs(CloudLocId(0), PathId(7), SimTime(1500)),
            Some(1000)
        );
        assert!(store.get(CloudLocId(1), PathId(7)).is_none());
        assert_eq!(store.len(), 1);

        // A later (mid-incident) probe becomes `get`, but `get_before`
        // still returns the pre-incident picture.
        let mut tr2 = tr.clone();
        tr2.at = SimTime(2_000);
        tr2.hops[1].rtt_ms = 80.0;
        store.update(CloudLocId(0), PathId(7), &tr2);
        assert_eq!(
            store.get(CloudLocId(0), PathId(7)).unwrap().at,
            SimTime(2_000)
        );
        let pre = store
            .get_before(CloudLocId(0), PathId(7), SimTime(1_800))
            .unwrap();
        assert_eq!(pre.at, SimTime(500));
        assert!(store
            .get_before(CloudLocId(0), PathId(7), SimTime(400))
            .is_none());
    }
}
