//! Quartets: enrichment, aggregation, and validity checks.
//!
//! The quartet — ⟨client /24, cloud location, device class, 5-minute
//! bucket⟩ — is BlameIt's unit of analysis (§2.1). This module turns
//! raw telemetry into the enriched quartets Algorithm 1 consumes:
//! joined with routing metadata, classified good/bad against the
//! region-specific threshold, and filtered to the paper's minimum of
//! 10 RTT samples.

use crate::backend::{Backend, RouteInfo};
use crate::ks::{ks_two_sample, KsResult};
use crate::thresholds::BadnessThresholds;
use blameit_simnet::{QuartetObs, RttRecord, TimeBucket};
use blameit_topology::rng::DetRng;
use std::collections::HashMap;

/// Minimum RTT samples for a quartet to be trusted (§2.1).
pub const MIN_SAMPLES: u32 = 10;

/// A quartet observation joined with routing metadata and classified
/// against its badness threshold.
#[derive(Clone, Debug)]
pub struct EnrichedQuartet {
    /// The underlying observation.
    pub obs: QuartetObs,
    /// Routing metadata at the quartet's bucket.
    pub info: RouteInfo,
    /// True if `obs.mean_rtt_ms` breaches the region/device threshold.
    pub bad: bool,
}

impl EnrichedQuartet {
    /// The badness threshold that applied.
    pub fn threshold(&self, thresholds: &BadnessThresholds) -> f64 {
        thresholds.get(self.info.region, self.obs.mobile)
    }
}

/// Enriches all quartets of a bucket: joins routing metadata, drops
/// quartets below [`MIN_SAMPLES`], classifies good/bad.
pub fn enrich_bucket<B: Backend>(
    backend: &B,
    bucket: TimeBucket,
    thresholds: &BadnessThresholds,
) -> Vec<EnrichedQuartet> {
    enrich_bucket_min_samples(backend, bucket, thresholds, MIN_SAMPLES)
}

/// [`enrich_bucket`] with an explicit sample floor (for ablations).
pub fn enrich_bucket_min_samples<B: Backend>(
    backend: &B,
    bucket: TimeBucket,
    thresholds: &BadnessThresholds,
    min_samples: u32,
) -> Vec<EnrichedQuartet> {
    enrich_obs(
        backend,
        backend.quartets_in(bucket),
        bucket,
        thresholds,
        min_samples,
    )
}

/// Enrichment over already-fetched observations. Splitting the backend
/// fetch from the join/classify step lets the engine charge them to
/// separate profile stages (ingest vs. quartet aggregation).
pub fn enrich_obs<B: Backend>(
    backend: &B,
    obs: Vec<QuartetObs>,
    bucket: TimeBucket,
    thresholds: &BadnessThresholds,
    min_samples: u32,
) -> Vec<EnrichedQuartet> {
    enrich_obs_sharded(backend, obs, bucket, thresholds, min_samples, 1)
}

/// [`enrich_obs`] fanned out over `parallelism` worker threads: the
/// routing join is a pure per-quartet lookup, so the observation list
/// splits into contiguous chunks and the enriched output keeps the
/// input order exactly (`parallelism <= 1` is a plain sequential map).
pub fn enrich_obs_sharded<B: Backend>(
    backend: &B,
    obs: Vec<QuartetObs>,
    bucket: TimeBucket,
    thresholds: &BadnessThresholds,
    min_samples: u32,
    parallelism: usize,
) -> Vec<EnrichedQuartet> {
    let kept: Vec<QuartetObs> = obs.into_iter().filter(|q| q.n >= min_samples).collect();
    crate::shard::parallel_map(parallelism, &kept, |_, obs| {
        let info = backend.route_info(obs.loc, obs.p24, bucket.mid())?;
        let bad = obs.mean_rtt_ms > thresholds.get(info.region, obs.mobile);
        Some(EnrichedQuartet {
            obs: *obs,
            info,
            bad,
        })
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Groups raw RTT records into quartet observations (the aggregation
/// the analytics cluster performs on the collector stream, §6.1).
pub fn aggregate_records(records: &[RttRecord]) -> Vec<QuartetObs> {
    #[derive(Default)]
    struct Acc {
        n: u32,
        sum: f64,
    }
    let mut map: HashMap<_, Acc> = HashMap::new();
    for r in records {
        let key = (r.loc, r.p24, r.mobile, r.at.bucket());
        let a = map.entry(key).or_default();
        a.n += 1;
        a.sum += r.rtt_ms;
    }
    let mut out: Vec<QuartetObs> = map
        .into_iter()
        .map(|((loc, p24, mobile, bucket), a)| QuartetObs {
            loc,
            p24,
            mobile,
            bucket,
            n: a.n,
            mean_rtt_ms: a.sum / a.n as f64,
        })
        .collect();
    out.sort_by_key(|q| (q.bucket, q.loc, q.p24, q.mobile));
    out
}

/// The paper's §2.1 homogeneity check: randomly split one quartet's RTT
/// samples into two halves and KS-test them. Returns `None` when there
/// are fewer than 2·[`MIN_SAMPLES`] samples (split halves too small to
/// test meaningfully).
pub fn split_half_ks(rtts: &[f64], seed: u64) -> Option<KsResult> {
    if rtts.len() < 2 * MIN_SAMPLES as usize {
        return None;
    }
    let mut idx: Vec<usize> = (0..rtts.len()).collect();
    let mut rng = DetRng::from_keys(seed, &[0x59117]);
    rng.shuffle(&mut idx);
    let half = rtts.len() / 2;
    let a: Vec<f64> = idx[..half].iter().map(|i| rtts[*i]).collect();
    let b: Vec<f64> = idx[half..].iter().map(|i| rtts[*i]).collect();
    ks_two_sample(&a, &b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::WorldBackend;
    use blameit_simnet::{SimTime, World, WorldConfig};
    use blameit_topology::{CloudLocId, Prefix24};

    fn world() -> World {
        World::new(WorldConfig::tiny(1, 41))
    }

    #[test]
    fn enrich_applies_sample_floor() {
        let w = world();
        let b = WorldBackend::new(&w);
        let th = BadnessThresholds::uniform(1e9); // nothing is bad
        let bucket = TimeBucket(140);
        let enriched = enrich_bucket(&b, bucket, &th);
        assert!(!enriched.is_empty());
        for q in &enriched {
            assert!(q.obs.n >= MIN_SAMPLES);
            assert!(!q.bad);
        }
        // The floor actually drops something.
        let raw = b.quartets_in(bucket);
        let small = raw.iter().filter(|q| q.n < MIN_SAMPLES).count();
        assert!(small > 0, "tiny world should have small quartets");
        assert_eq!(enriched.len(), raw.len() - small);
    }

    #[test]
    fn enrich_classifies_badness() {
        let w = world();
        let b = WorldBackend::new(&w);
        let all_bad = enrich_bucket(&b, TimeBucket(140), &BadnessThresholds::uniform(0.0));
        assert!(all_bad.iter().all(|q| q.bad));
        let none_bad = enrich_bucket(&b, TimeBucket(140), &BadnessThresholds::uniform(1e9));
        assert!(none_bad.iter().all(|q| !q.bad));
    }

    #[test]
    fn aggregate_records_groups_by_key() {
        let mk = |loc: u16, block: u32, secs: u64, rtt: f64| RttRecord {
            loc: CloudLocId(loc),
            p24: Prefix24::from_block(block),
            mobile: false,
            at: SimTime(secs),
            rtt_ms: rtt,
        };
        let recs = vec![
            mk(0, 1, 10, 10.0),
            mk(0, 1, 20, 20.0),
            mk(0, 1, 400, 40.0), // next bucket
            mk(1, 1, 10, 99.0),  // different loc
            mk(0, 2, 10, 7.0),   // different /24
        ];
        let qs = aggregate_records(&recs);
        assert_eq!(qs.len(), 4);
        let q0 = qs
            .iter()
            .find(|q| {
                q.loc == CloudLocId(0)
                    && q.p24 == Prefix24::from_block(1)
                    && q.bucket == TimeBucket(0)
            })
            .unwrap();
        assert_eq!(q0.n, 2);
        assert!((q0.mean_rtt_ms - 15.0).abs() < 1e-12);
    }

    #[test]
    fn aggregate_matches_simulator_quartets() {
        let w = world();
        let bucket = TimeBucket(150);
        for c in w.topology().clients.iter().take(30) {
            let recs = w.rtt_records(c.primary_loc, c, bucket);
            if recs.is_empty() {
                continue;
            }
            let qs = aggregate_records(&recs);
            assert_eq!(qs.len(), 1);
            assert_eq!(qs[0].n as usize, recs.len());
        }
    }

    #[test]
    fn split_half_ks_on_real_quartet() {
        let w = world();
        let bucket = TimeBucket(150);
        // Find a populous quartet; its split halves should be
        // indistinguishable (the §2.1 validation).
        let mut tested = 0;
        for c in &w.topology().clients {
            let recs = w.rtt_records(c.primary_loc, c, bucket);
            if recs.len() < 40 {
                continue;
            }
            let rtts: Vec<f64> = recs.iter().map(|r| r.rtt_ms).collect();
            let ks = split_half_ks(&rtts, 1).unwrap();
            assert!(
                !ks.rejects_same_distribution(0.01),
                "quartet halves differ: p={}",
                ks.p_value
            );
            tested += 1;
            if tested >= 5 {
                break;
            }
        }
        assert!(tested > 0, "no populous quartet found");
    }

    #[test]
    fn split_half_ks_needs_enough_samples() {
        assert!(split_half_ks(&[1.0; 19], 1).is_none());
        assert!(split_half_ks(&[1.0; 20], 1).is_some());
    }
}
