//! Quartets: enrichment, aggregation, and validity checks.
//!
//! The quartet — ⟨client /24, cloud location, device class, 5-minute
//! bucket⟩ — is BlameIt's unit of analysis (§2.1). This module turns
//! raw telemetry into the enriched quartets Algorithm 1 consumes:
//! joined with routing metadata, classified good/bad against the
//! region-specific threshold, and filtered to the paper's minimum of
//! 10 RTT samples.

use crate::backend::{Backend, RouteInfo};
use crate::columnar::{aggregate_records_into, IngestArena};
use crate::ks::{ks_two_sample, KsResult};
use crate::thresholds::BadnessThresholds;
use blameit_simnet::{QuartetObs, RttRecord, TimeBucket};
use blameit_topology::rng::DetRng;
// lint:allow(sip-hasher): the legacy reference aggregator below keeps the original std hasher on purpose
use std::collections::HashMap;

/// Minimum RTT samples for a quartet to be trusted (§2.1).
pub const MIN_SAMPLES: u32 = 10;

/// A quartet observation joined with routing metadata and classified
/// against its badness threshold.
#[derive(Clone, Debug)]
pub struct EnrichedQuartet {
    /// The underlying observation.
    pub obs: QuartetObs,
    /// Routing metadata at the quartet's bucket.
    pub info: RouteInfo,
    /// True if `obs.mean_rtt_ms` breaches the region/device threshold.
    pub bad: bool,
}

impl EnrichedQuartet {
    /// The badness threshold that applied.
    pub fn threshold(&self, thresholds: &BadnessThresholds) -> f64 {
        thresholds.get(self.info.region, self.obs.mobile)
    }
}

/// Enriches all quartets of a bucket: joins routing metadata, drops
/// quartets below [`MIN_SAMPLES`], classifies good/bad.
pub fn enrich_bucket<B: Backend>(
    backend: &B,
    bucket: TimeBucket,
    thresholds: &BadnessThresholds,
) -> Vec<EnrichedQuartet> {
    enrich_bucket_min_samples(backend, bucket, thresholds, MIN_SAMPLES)
}

/// [`enrich_bucket`] with an explicit sample floor (for ablations).
pub fn enrich_bucket_min_samples<B: Backend>(
    backend: &B,
    bucket: TimeBucket,
    thresholds: &BadnessThresholds,
    min_samples: u32,
) -> Vec<EnrichedQuartet> {
    enrich_obs(
        backend,
        backend.quartets_in(bucket),
        bucket,
        thresholds,
        min_samples,
    )
}

/// Enrichment over already-fetched observations. Splitting the backend
/// fetch from the join/classify step lets the engine charge them to
/// separate profile stages (ingest vs. quartet aggregation).
pub fn enrich_obs<B: Backend>(
    backend: &B,
    obs: Vec<QuartetObs>,
    bucket: TimeBucket,
    thresholds: &BadnessThresholds,
    min_samples: u32,
) -> Vec<EnrichedQuartet> {
    enrich_obs_sharded(backend, obs, bucket, thresholds, min_samples, 1)
}

/// [`enrich_obs`] fanned out over `parallelism` worker threads: the
/// routing join is a pure per-quartet lookup, so the observation list
/// splits into contiguous chunks and the enriched output keeps the
/// input order exactly (`parallelism <= 1` is a plain sequential map).
pub fn enrich_obs_sharded<B: Backend>(
    backend: &B,
    obs: Vec<QuartetObs>,
    bucket: TimeBucket,
    thresholds: &BadnessThresholds,
    min_samples: u32,
    parallelism: usize,
) -> Vec<EnrichedQuartet> {
    let kept: Vec<QuartetObs> = obs.into_iter().filter(|q| q.n >= min_samples).collect();
    crate::shard::parallel_map(parallelism, &kept, |_, obs| {
        let info = backend.route_info(obs.loc, obs.p24, bucket.mid())?;
        let bad = obs.mean_rtt_ms > thresholds.get(info.region, obs.mobile);
        Some(EnrichedQuartet {
            obs: *obs,
            info,
            bad,
        })
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Groups raw RTT records into quartet observations (the aggregation
/// the analytics cluster performs on the collector stream, §6.1).
///
/// Since the columnar rebuild this is a thin wrapper over
/// [`crate::columnar::aggregate_records_into`]; output (order *and*
/// every mean's bits) is identical to the legacy per-record upsert
/// path, now kept as [`aggregate_records_reference`] for the
/// differential harness and the ingest bench. Callers on a hot loop
/// should hold their own [`IngestArena`] and call the columnar API
/// directly to skip the per-call scratch allocation.
pub fn aggregate_records(records: &[RttRecord]) -> Vec<QuartetObs> {
    aggregate_records_into(records, &mut IngestArena::new()).to_obs()
}

/// The pre-columnar aggregation path: one hash upsert per record into
/// a SipHash map, then a sort of the distinct quartets. Kept verbatim
/// as the reference implementation the differential harness
/// (`tests/columnar_equivalence.rs`) and the `pipeline` bench's
/// before/after ingest measurement compare against. Not for production
/// use — [`aggregate_records`] is ~an order of magnitude faster on
/// collector-shaped streams.
pub fn aggregate_records_reference(records: &[RttRecord]) -> Vec<QuartetObs> {
    #[derive(Default)]
    struct Acc {
        n: u32,
        sum: f64,
    }
    // lint:allow(sip-hasher): reference baseline must keep the original std SipHash map it is benchmarked against
    let mut map: HashMap<_, Acc> = HashMap::new();
    for r in records {
        let key = (r.loc, r.p24, r.mobile, r.at.bucket());
        let a = map.entry(key).or_default();
        a.n += 1;
        a.sum += r.rtt_ms;
    }
    let mut out: Vec<QuartetObs> = map
        .into_iter()
        .map(|((loc, p24, mobile, bucket), a)| QuartetObs {
            loc,
            p24,
            mobile,
            bucket,
            n: a.n,
            mean_rtt_ms: a.sum / a.n as f64,
        })
        .collect();
    out.sort_by_key(|q| (q.bucket, q.loc, q.p24, q.mobile));
    out
}

/// The paper's §2.1 homogeneity check: randomly split one quartet's RTT
/// samples into two halves and KS-test them. Returns `None` when there
/// are fewer than 2·[`MIN_SAMPLES`] samples (split halves too small to
/// test meaningfully).
pub fn split_half_ks(rtts: &[f64], seed: u64) -> Option<KsResult> {
    if rtts.len() < 2 * MIN_SAMPLES as usize {
        return None;
    }
    let mut idx: Vec<usize> = (0..rtts.len()).collect();
    let mut rng = DetRng::from_keys(seed, &[0x59117]);
    rng.shuffle(&mut idx);
    let half = rtts.len() / 2;
    let a: Vec<f64> = idx[..half].iter().map(|i| rtts[*i]).collect();
    let b: Vec<f64> = idx[half..].iter().map(|i| rtts[*i]).collect();
    ks_two_sample(&a, &b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::WorldBackend;
    use blameit_simnet::{SimTime, World, WorldConfig};
    use blameit_topology::{CloudLocId, Prefix24};

    fn world() -> World {
        World::new(WorldConfig::tiny(1, 41))
    }

    #[test]
    fn enrich_applies_sample_floor() {
        let w = world();
        let b = WorldBackend::new(&w);
        let th = BadnessThresholds::uniform(1e9); // nothing is bad
        let bucket = TimeBucket(140);
        let enriched = enrich_bucket(&b, bucket, &th);
        assert!(!enriched.is_empty());
        for q in &enriched {
            assert!(q.obs.n >= MIN_SAMPLES);
            assert!(!q.bad);
        }
        // The floor actually drops something.
        let raw = b.quartets_in(bucket);
        let small = raw.iter().filter(|q| q.n < MIN_SAMPLES).count();
        assert!(small > 0, "tiny world should have small quartets");
        assert_eq!(enriched.len(), raw.len() - small);
    }

    #[test]
    fn enrich_classifies_badness() {
        let w = world();
        let b = WorldBackend::new(&w);
        let all_bad = enrich_bucket(&b, TimeBucket(140), &BadnessThresholds::uniform(0.0));
        assert!(all_bad.iter().all(|q| q.bad));
        let none_bad = enrich_bucket(&b, TimeBucket(140), &BadnessThresholds::uniform(1e9));
        assert!(none_bad.iter().all(|q| !q.bad));
    }

    #[test]
    fn aggregate_records_groups_by_key() {
        let mk = |loc: u16, block: u32, secs: u64, rtt: f64| RttRecord {
            loc: CloudLocId(loc),
            p24: Prefix24::from_block(block),
            mobile: false,
            at: SimTime(secs),
            rtt_ms: rtt,
        };
        let recs = vec![
            mk(0, 1, 10, 10.0),
            mk(0, 1, 20, 20.0),
            mk(0, 1, 400, 40.0), // next bucket
            mk(1, 1, 10, 99.0),  // different loc
            mk(0, 2, 10, 7.0),   // different /24
        ];
        let qs = aggregate_records(&recs);
        assert_eq!(qs.len(), 4);
        let q0 = qs
            .iter()
            .find(|q| {
                q.loc == CloudLocId(0)
                    && q.p24 == Prefix24::from_block(1)
                    && q.bucket == TimeBucket(0)
            })
            .unwrap();
        assert_eq!(q0.n, 2);
        assert!((q0.mean_rtt_ms - 15.0).abs() < 1e-12);
    }

    #[test]
    fn aggregate_matches_simulator_quartets() {
        let w = world();
        let bucket = TimeBucket(150);
        for c in w.topology().clients.iter().take(30) {
            let recs = w.rtt_records(c.primary_loc, c, bucket);
            if recs.is_empty() {
                continue;
            }
            let qs = aggregate_records(&recs);
            assert_eq!(qs.len(), 1);
            assert_eq!(qs[0].n as usize, recs.len());
        }
    }

    #[test]
    fn columnar_matches_reference_bit_for_bit() {
        use blameit_topology::testkit;
        // Random record streams, including duplicate keys scattered
        // across the batch (forcing the pair-sort fallback): the
        // columnar path must reproduce the legacy path's output
        // exactly, means compared by bits.
        testkit::check("quartet::columnar_vs_reference", 64, |rng| {
            let nrecs = rng.below(400) as usize;
            let recs: Vec<RttRecord> = (0..nrecs)
                .map(|_| RttRecord {
                    loc: CloudLocId(rng.below(4) as u16),
                    p24: Prefix24::from_block(rng.below(6) as u32),
                    mobile: rng.chance(0.3),
                    at: SimTime(rng.below(3 * 300)),
                    rtt_ms: 10.0 + rng.f64() * 200.0,
                })
                .collect();
            let fast = aggregate_records(&recs);
            let slow = aggregate_records_reference(&recs);
            assert_eq!(fast.len(), slow.len());
            for (f, s) in fast.iter().zip(&slow) {
                assert_eq!(
                    (f.loc, f.p24, f.mobile, f.bucket),
                    (s.loc, s.p24, s.mobile, s.bucket)
                );
                assert_eq!(f.n, s.n);
                assert_eq!(
                    f.mean_rtt_ms.to_bits(),
                    s.mean_rtt_ms.to_bits(),
                    "mean bits diverged for {:?}",
                    (f.loc, f.p24, f.mobile, f.bucket)
                );
            }
        });
    }

    #[test]
    fn batch_ingest_is_run_order_independent() {
        use blameit_topology::testkit;
        // Collector streams concatenate per-client record groups; the
        // concatenation order is an accident of collector scheduling.
        // Permuting whole groups (keeping each key's internal sample
        // order) must leave the aggregate bit-identical — the sort
        // that orders runs is keyed on (key, first-index), so run
        // order cannot leak into the output.
        testkit::check("quartet::run_order_independence", 32, |rng| {
            let ngroups = 2 + rng.below(12) as usize;
            let mut groups: Vec<Vec<RttRecord>> = (0..ngroups)
                .map(|g| {
                    let n = 1 + rng.below(20) as usize;
                    (0..n)
                        .map(|_| RttRecord {
                            loc: CloudLocId((g % 3) as u16),
                            p24: Prefix24::from_block(g as u32),
                            mobile: false,
                            at: SimTime(rng.below(300)),
                            rtt_ms: 10.0 + rng.f64() * 200.0,
                        })
                        .collect()
                })
                .collect();
            let flat = |gs: &[Vec<RttRecord>]| gs.concat();
            let before = aggregate_records(&flat(&groups));
            rng.shuffle(&mut groups);
            let after = aggregate_records(&flat(&groups));
            assert_eq!(before.len(), after.len());
            for (b, a) in before.iter().zip(&after) {
                assert_eq!(b.n, a.n);
                assert_eq!(b.mean_rtt_ms.to_bits(), a.mean_rtt_ms.to_bits());
            }
        });
    }

    #[test]
    fn split_half_ks_on_real_quartet() {
        let w = world();
        let bucket = TimeBucket(150);
        // Find a populous quartet; its split halves should be
        // indistinguishable (the §2.1 validation).
        let mut tested = 0;
        for c in &w.topology().clients {
            let recs = w.rtt_records(c.primary_loc, c, bucket);
            if recs.len() < 40 {
                continue;
            }
            let rtts: Vec<f64> = recs.iter().map(|r| r.rtt_ms).collect();
            let ks = split_half_ks(&rtts, 1).unwrap();
            assert!(
                !ks.rejects_same_distribution(0.01),
                "quartet halves differ: p={}",
                ks.p_value
            );
            tested += 1;
            if tested >= 5 {
                break;
            }
        }
        assert!(tested > 0, "no populous quartet found");
    }

    #[test]
    fn split_half_ks_needs_enough_samples() {
        assert!(split_half_ks(&[1.0; 19], 1).is_none());
        assert!(split_half_ks(&[1.0; 20], 1).is_some());
    }
}
