//! Columnar quartet ingest: sort-by-key batches over a
//! struct-of-arrays store.
//!
//! The paper's analytics cluster aggregates hundreds of millions of
//! RTT records per day per location into quartets (§6.1). The legacy
//! path did that with one `HashMap` upsert per record — a SipHash of a
//! 4-field key plus a probe per sample, which the PR-1 stage profile
//! showed dominating the tick. The columnar path instead:
//!
//! 1. packs each record's quartet key into one `u128` whose integer
//!    order equals the canonical `(bucket, loc, p24, mobile)` output
//!    order ([`pack_key`]);
//! 2. collapses *consecutive equal-key runs* in a single sequential
//!    pass — collector streams are concatenations of per-client record
//!    vectors, so a key's samples arrive contiguously and the common
//!    case never hashes or sorts individual records;
//! 3. sorts only the collapsed run entries (thousands, not millions)
//!    when the stream was not already key-ordered; and
//! 4. falls back to a whole-batch `(key, index)` sort in the rare case
//!    a key's samples were split across non-adjacent runs — merging
//!    partial sums would re-associate `f64` additions, and the
//!    equivalence contract is *bit-identical* means, not approximately
//!    equal ones.
//!
//! Every path accumulates each key's RTT sum element-by-element in
//! stream order, exactly like the legacy `HashMap` entry did, so
//! `sum / n` reproduces the legacy mean to the last bit. The
//! differential harness (`tests/columnar_equivalence.rs`) holds the two
//! paths against each other across seeds, thread counts, and chaos
//! plans.
//!
//! Scratch lives in an [`IngestArena`] owned by the caller and reused
//! across batches/ticks, so steady-state ingest performs no
//! allocations beyond store growth.

use crate::shard::{run_sharded, ShardPlan};
use blameit_simnet::{QuartetObs, RttRecord, TimeBucket};
use blameit_topology::{CloudLocId, Prefix24};

/// Packs a quartet key into a `u128` whose integer order equals the
/// canonical quartet sort order `(bucket, loc, p24, mobile)`:
/// bits `[73..41]` bucket, `[41..25]` loc, `[25..1]` /24 block,
/// bit 0 mobile.
#[inline]
pub fn pack_key(loc: CloudLocId, p24: Prefix24, mobile: bool, bucket: TimeBucket) -> u128 {
    ((bucket.0 as u128) << 41)
        | ((loc.0 as u128) << 25)
        | ((p24.block() as u128) << 1)
        | (mobile as u128)
}

/// Inverse of [`pack_key`].
#[inline]
pub fn unpack_key(key: u128) -> (CloudLocId, Prefix24, bool, TimeBucket) {
    (
        CloudLocId(((key >> 25) & 0xFFFF) as u16),
        Prefix24::from_block(((key >> 1) & 0x00FF_FFFF) as u32),
        (key & 1) == 1,
        TimeBucket((key >> 41) as u32),
    )
}

/// Packs the bucket-invariant part of a quartet key into a `u64`:
/// bits `[41..25]` loc, `[25..1]` /24 block, bit 0 mobile. Within one
/// bucket, `u64` order equals the canonical `(loc, p24, mobile)`
/// order; [`pack_key`] is `(bucket << 41) | subkey`.
#[inline]
pub fn pack_subkey(loc: CloudLocId, p24: Prefix24, mobile: bool) -> u64 {
    ((loc.0 as u64) << 25) | ((p24.block() as u64) << 1) | (mobile as u64)
}

/// A columnar (struct-of-arrays) batch of RTT records for one time
/// bucket: pre-packed `u64` subkeys and the RTT column, in stream
/// order. This is the form the collector hands the ingest stage — the
/// aggregation kernel streams 16 bytes per record instead of striding
/// over 24-byte `RttRecord` structs, and the key is packed once at
/// batch build time instead of once per aggregation pass.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RecordBatch {
    /// The bucket every record in this batch belongs to.
    pub bucket: TimeBucket,
    /// Packed `(loc, p24, mobile)` subkeys ([`pack_subkey`]), stream
    /// order.
    pub keys: Vec<u64>,
    /// RTT samples in milliseconds, parallel to `keys`.
    pub rtt: Vec<f64>,
}

impl RecordBatch {
    /// Columnarizes a record slice known to belong to `bucket`.
    ///
    /// # Panics
    /// Debug-asserts every record's timestamp really falls in
    /// `bucket`; release builds trust the collector's contract.
    pub fn from_records(bucket: TimeBucket, records: &[RttRecord]) -> RecordBatch {
        debug_assert!(
            records.iter().all(|r| r.at.bucket() == bucket),
            "record outside the batch bucket"
        );
        RecordBatch {
            bucket,
            keys: records
                .iter()
                .map(|r| pack_subkey(r.loc, r.p24, r.mobile))
                .collect(),
            rtt: records.iter().map(|r| r.rtt_ms).collect(),
        }
    }

    /// Number of records in the batch.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when the batch holds no records.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Stable-sorts the batch by subkey, keeping each key's samples in
    /// stream order (so downstream accumulation stays bit-identical to
    /// the unsorted stream). This is the collector-side shuffle of the
    /// sort-by-key ingest design: batches arrive at the aggregation
    /// kernel already key-ordered, and the kernel's run collapse never
    /// needs its sort tiers. No-op on already-sorted batches.
    pub fn sort_by_key(&mut self) {
        if self.keys.windows(2).all(|w| w[0] <= w[1]) {
            return;
        }
        let mut perm: Vec<(u64, u32)> = self
            .keys
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, i as u32))
            .collect();
        // Unstable sort on (key, stream index) pairs is stable in
        // effect: indices are distinct, so equal keys keep stream
        // order.
        perm.sort_unstable();
        self.keys = perm.iter().map(|&(k, _)| k).collect();
        let rtt = &self.rtt;
        self.rtt = perm.iter().map(|&(_, i)| rtt[i as usize]).collect();
    }
}

/// One collapsed run of equal-key records.
#[derive(Clone, Copy, Debug)]
struct RunEntry {
    key: u128,
    n: u32,
    /// Stream-order partial sum of the run's RTTs.
    sum: f64,
    /// Index of the run's first record in the input batch (sort
    /// tie-break: keeps runs of one key in stream order).
    first: u32,
}

/// One collapsed run of equal-subkey records in a single-bucket batch.
/// No `first` field: runs leave tier 1 in stream order, so a run's
/// first record index is the prefix sum of the `n`s before it —
/// reconstructed only on the rare unsorted path.
#[derive(Clone, Copy, Debug)]
struct Run64 {
    key: u64,
    n: u32,
    sum: f64,
}

/// Reusable per-batch scratch for [`aggregate_records_into`] and
/// [`aggregate_batch_reuse`]. Owned by the caller (engine, bench, or
/// collector loop) and reused across ticks so the hot path allocates
/// nothing in steady state.
#[derive(Debug, Default)]
pub struct IngestArena {
    runs: Vec<RunEntry>,
    /// `(key, index)` pairs for the duplicate-key fallback sort.
    pairs: Vec<(u128, u32)>,
    /// Run scratch for the single-bucket `u64`-subkey kernel.
    runs64: Vec<Run64>,
    /// Fallback pair scratch for the single-bucket kernel.
    pairs64: Vec<(u64, u32)>,
    /// Batches aggregated through this arena (fast + fallback).
    pub batches: u64,
    /// Batches that needed the whole-batch pair-sort fallback.
    pub sort_fallbacks: u64,
}

impl IngestArena {
    /// A fresh arena.
    pub fn new() -> IngestArena {
        IngestArena::default()
    }
}

/// Struct-of-arrays quartet store: parallel columns sorted by packed
/// key. The layout keeps the aggregation loop's working set to the
/// columns it touches (keys during grouping, sums during the mean
/// division) instead of striding over interleaved `QuartetObs` fields.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QuartetStore {
    keys: Vec<u128>,
    n: Vec<u32>,
    sum: Vec<f64>,
}

impl QuartetStore {
    /// An empty store.
    pub fn new() -> QuartetStore {
        QuartetStore::default()
    }

    /// Number of distinct quartets held.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when no quartets are held.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Drops all quartets, keeping the column capacity.
    pub fn clear(&mut self) {
        self.keys.clear();
        self.n.clear();
        self.sum.clear();
    }

    /// Sample count and RTT sum for one quartet key, if present
    /// (binary search over the sorted key column).
    pub fn get(&self, key: u128) -> Option<(u32, f64)> {
        let i = self.keys.binary_search(&key).ok()?;
        Some((self.n[i], self.sum[i]))
    }

    /// The observation at row `i`, in key order.
    pub fn obs_at(&self, i: usize) -> QuartetObs {
        let (loc, p24, mobile, bucket) = unpack_key(self.keys[i]);
        QuartetObs {
            loc,
            p24,
            mobile,
            bucket,
            n: self.n[i],
            mean_rtt_ms: self.sum[i] / self.n[i] as f64,
        }
    }

    /// Iterates the observations in canonical key order.
    pub fn iter(&self) -> impl Iterator<Item = QuartetObs> + '_ {
        (0..self.len()).map(|i| self.obs_at(i))
    }

    /// Materializes the canonical `Vec<QuartetObs>` (key order — the
    /// same `(bucket, loc, p24, mobile)` order the legacy path sorted
    /// into).
    pub fn to_obs(&self) -> Vec<QuartetObs> {
        self.iter().collect()
    }

    /// K-way merge of per-shard stores in key order. Keys present in
    /// more than one store combine in ascending store order; the
    /// bit-exactness contract with the unsharded path therefore only
    /// holds when shards partition the key space (which
    /// [`ShardPlan::by_key`] on the location guarantees: a location's
    /// quartets never split across shards).
    pub fn merge(stores: &[QuartetStore]) -> QuartetStore {
        if stores.len() == 1 {
            return stores[0].clone();
        }
        let total: usize = stores.iter().map(QuartetStore::len).sum();
        let mut out = QuartetStore {
            keys: Vec::with_capacity(total),
            n: Vec::with_capacity(total),
            sum: Vec::with_capacity(total),
        };
        let mut cursor = vec![0usize; stores.len()];
        loop {
            // Smallest head key across stores; ties resolve in store
            // order (ascending index), deterministically.
            let mut best: Option<(u128, usize)> = None;
            for (s, store) in stores.iter().enumerate() {
                if let Some(&k) = store.keys.get(cursor[s]) {
                    if best.is_none_or(|(bk, _)| k < bk) {
                        best = Some((k, s));
                    }
                }
            }
            let Some((key, s)) = best else { break };
            let i = cursor[s];
            cursor[s] += 1;
            debug_assert!(
                out.keys.last().is_none_or(|&last| last <= key),
                "merge emitted keys out of order"
            );
            if out.keys.last() == Some(&key) {
                let last = out.len() - 1;
                out.n[last] += stores[s].n[i];
                out.sum[last] += stores[s].sum[i];
            } else {
                out.keys.push(key);
                out.n.push(stores[s].n[i]);
                out.sum.push(stores[s].sum[i]);
            }
        }
        out
    }
}

/// Aggregates one batch of RTT records into `store` (cleared first),
/// using `arena` for scratch. See the module docs for the three-tier
/// strategy; on every tier, each key's sum accumulates element-by-
/// element in stream order — bit-identical to the legacy per-record
/// `HashMap` path.
pub fn aggregate_records_into(records: &[RttRecord], arena: &mut IngestArena) -> QuartetStore {
    let mut store = QuartetStore::new();
    aggregate_records_reuse(records, arena, &mut store);
    store
}

/// [`aggregate_records_into`] writing into a caller-owned store, for
/// loops that also want to reuse the output columns.
pub fn aggregate_records_reuse(
    records: &[RttRecord],
    arena: &mut IngestArena,
    store: &mut QuartetStore,
) {
    store.clear();
    arena.runs.clear();
    arena.batches += 1;

    // Tier 1: collapse consecutive equal-key runs in one pass. The
    // open run accumulates in locals (registers), not through
    // `runs.last_mut()` — the per-record Vec deref and bounds check
    // were the dominant cost of the previous formulation.
    let mut key_sorted = true;
    let mut iter = records.iter().enumerate();
    if let Some((_, r0)) = iter.next() {
        let mut cur = RunEntry {
            key: pack_key(r0.loc, r0.p24, r0.mobile, r0.at.bucket()),
            n: 1,
            sum: r0.rtt_ms,
            first: 0,
        };
        for (i, r) in iter {
            let key = pack_key(r.loc, r.p24, r.mobile, r.at.bucket());
            if key == cur.key {
                cur.n += 1;
                cur.sum += r.rtt_ms;
            } else {
                key_sorted &= key > cur.key;
                arena.runs.push(cur);
                cur = RunEntry {
                    key,
                    n: 1,
                    sum: r.rtt_ms,
                    first: i as u32,
                };
            }
        }
        arena.runs.push(cur);
    }

    // Tier 2: order the collapsed runs (already ordered for key-sorted
    // streams). The `first` tie-break keeps same-key runs in stream
    // order for the duplicate check below.
    if !key_sorted {
        arena.runs.sort_unstable_by_key(|r| (r.key, r.first));
    }

    // Tier 3: if any key spans several runs, adding the runs' partial
    // sums would re-associate the f64 additions ((a+b)+(c+d) is not
    // (((a+b)+c)+d)). Redo the batch as a stable (key, index) pair
    // sort, which restores exact stream order within every key.
    if arena.runs.windows(2).any(|w| w[0].key == w[1].key) {
        arena.sort_fallbacks += 1;
        arena.pairs.clear();
        arena.pairs.extend(
            records
                .iter()
                .enumerate()
                .map(|(i, r)| (pack_key(r.loc, r.p24, r.mobile, r.at.bucket()), i as u32)),
        );
        arena.pairs.sort_unstable();
        arena.runs.clear();
        for &(key, idx) in &arena.pairs {
            let rtt = records[idx as usize].rtt_ms;
            match arena.runs.last_mut() {
                Some(run) if run.key == key => {
                    run.n += 1;
                    run.sum += rtt;
                }
                _ => arena.runs.push(RunEntry {
                    key,
                    n: 1,
                    sum: rtt,
                    first: idx,
                }),
            }
        }
    }

    store.keys.extend(arena.runs.iter().map(|r| r.key));
    store.n.extend(arena.runs.iter().map(|r| r.n));
    store.sum.extend(arena.runs.iter().map(|r| r.sum));
}

/// Aggregates one columnar [`RecordBatch`] into `store` (cleared
/// first). Same three-tier strategy and bit-identity contract as
/// [`aggregate_records_reuse`], but over pre-packed `u64` subkeys and
/// the RTT column — 16 streamed bytes per record, no key packing and
/// no bucket division on the hot path.
#[inline]
pub fn aggregate_batch_reuse(
    batch: &RecordBatch,
    arena: &mut IngestArena,
    store: &mut QuartetStore,
) {
    store.clear();
    arena.runs64.clear();
    arena.batches += 1;

    // Tier 1: collapse consecutive equal-key runs. The open run lives
    // in locals (registers); the run length is derived from indices at
    // the boundary instead of counted per record, so the steady-state
    // iteration is two streaming loads, one compare, and the one f64
    // add the bit-identity contract requires. Sortedness is *not*
    // tracked here — a post-scan over the collapsed runs (thousands,
    // not millions) recovers it below.
    let n = batch.keys.len();
    if n > 0 {
        let keys = &batch.keys[..n];
        let rtt = &batch.rtt[..n];
        let mut cur_key = keys[0];
        let mut cur_sum = rtt[0];
        let mut first = 0usize;
        for i in 1..n {
            let key = keys[i];
            let v = rtt[i];
            if key == cur_key {
                cur_sum += v;
            } else {
                arena.runs64.push(Run64 {
                    key: cur_key,
                    n: (i - first) as u32,
                    sum: cur_sum,
                });
                cur_key = key;
                cur_sum = v;
                first = i;
            }
        }
        arena.runs64.push(Run64 {
            key: cur_key,
            n: (n - first) as u32,
            sum: cur_sum,
        });
    }

    // One scan recovers what tier 1 didn't track: whether the runs
    // left the stream key-sorted, and whether any key repeats.
    let mut key_sorted = true;
    let mut has_dup = false;
    for w in arena.runs64.windows(2) {
        key_sorted &= w[0].key < w[1].key;
        has_dup |= w[0].key == w[1].key;
    }

    // Tier 2: order the collapsed runs. Ties between same-key runs
    // resolve by stream position, reconstructed as the prefix sum of
    // run lengths.
    if !key_sorted {
        let mut keyed: Vec<(u64, u32, Run64)> = Vec::with_capacity(arena.runs64.len());
        let mut first = 0u32;
        for &run in &arena.runs64 {
            keyed.push((run.key, first, run));
            first += run.n;
        }
        keyed.sort_unstable_by_key(|&(key, first, _)| (key, first));
        arena.runs64.clear();
        arena.runs64.extend(keyed.iter().map(|&(_, _, run)| run));
        has_dup = arena.runs64.windows(2).any(|w| w[0].key == w[1].key);
    }

    // Tier 3: a key split across non-adjacent runs means merging
    // partial sums would re-associate the f64 additions; redo the
    // batch as a (key, index) sort that restores stream order within
    // every key.
    if has_dup {
        arena.sort_fallbacks += 1;
        arena.pairs64.clear();
        arena
            .pairs64
            .extend(batch.keys.iter().enumerate().map(|(i, &k)| (k, i as u32)));
        arena.pairs64.sort_unstable();
        arena.runs64.clear();
        for &(key, idx) in &arena.pairs64 {
            let rtt = batch.rtt[idx as usize];
            match arena.runs64.last_mut() {
                Some(run) if run.key == key => {
                    run.n += 1;
                    run.sum += rtt;
                }
                _ => arena.runs64.push(Run64 {
                    key,
                    n: 1,
                    sum: rtt,
                }),
            }
        }
    }

    let base = (batch.bucket.0 as u128) << 41;
    store
        .keys
        .extend(arena.runs64.iter().map(|r| base | r.key as u128));
    store.n.extend(arena.runs64.iter().map(|r| r.n));
    store.sum.extend(arena.runs64.iter().map(|r| r.sum));
}

/// Sharded batch ingest: records partition by location
/// ([`ShardPlan::by_key`], so shards own disjoint key ranges), each
/// shard aggregates its records columnar-style with its own arena, and
/// the per-shard stores merge in key order — byte-identical to the
/// single-shard aggregation of the whole batch.
pub fn aggregate_records_sharded(records: &[RttRecord], parallelism: usize) -> QuartetStore {
    let nthreads = parallelism.max(1);
    if nthreads == 1 {
        return aggregate_records_into(records, &mut IngestArena::new());
    }
    let plan = ShardPlan::by_key(records, nthreads, |r| r.loc);
    let stores = run_sharded(nthreads, &plan, |_, idxs| {
        let shard_records: Vec<RttRecord> = idxs.iter().map(|&i| records[i]).collect();
        aggregate_records_into(&shard_records, &mut IngestArena::new())
    });
    QuartetStore::merge(&stores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use blameit_simnet::SimTime;

    fn rec(loc: u16, block: u32, mobile: bool, secs: u64, rtt: f64) -> RttRecord {
        RttRecord {
            loc: CloudLocId(loc),
            p24: Prefix24::from_block(block),
            mobile,
            at: SimTime(secs),
            rtt_ms: rtt,
        }
    }

    #[test]
    fn key_order_matches_quartet_sort_order() {
        // Packed integer order must equal (bucket, loc, p24, mobile)
        // tuple order for every pairing of these corner values.
        let locs = [0u16, 1, u16::MAX];
        let blocks = [0u32, 5, (1 << 24) - 1];
        let buckets = [0u32, 7, u32::MAX];
        let mut keys = Vec::new();
        for &b in &buckets {
            for &l in &locs {
                for &p in &blocks {
                    for m in [false, true] {
                        keys.push((
                            pack_key(CloudLocId(l), Prefix24::from_block(p), m, TimeBucket(b)),
                            (b, l, p, m),
                        ));
                    }
                }
            }
        }
        let mut by_packed = keys.clone();
        by_packed.sort_unstable_by_key(|(k, _)| *k);
        let mut by_tuple = keys.clone();
        by_tuple.sort_unstable_by_key(|(_, t)| *t);
        assert_eq!(by_packed, by_tuple);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        for (l, p, m, b) in [
            (0u16, 0u32, false, 0u32),
            (42, 12345, true, 99999),
            (u16::MAX, (1 << 24) - 1, true, u32::MAX),
        ] {
            let key = pack_key(CloudLocId(l), Prefix24::from_block(p), m, TimeBucket(b));
            assert_eq!(
                unpack_key(key),
                (CloudLocId(l), Prefix24::from_block(p), m, TimeBucket(b))
            );
        }
    }

    #[test]
    fn run_collapse_handles_client_grouped_streams() {
        // Per-client runs, keys not globally sorted: tier 2, no
        // fallback.
        let records = vec![
            rec(1, 9, false, 10, 30.0),
            rec(1, 9, false, 20, 40.0),
            rec(0, 3, true, 15, 50.0),
            rec(0, 3, true, 25, 60.0),
            rec(2, 1, false, 5, 10.0),
        ];
        let mut arena = IngestArena::new();
        let store = aggregate_records_into(&records, &mut arena);
        assert_eq!(arena.sort_fallbacks, 0);
        assert_eq!(store.len(), 3);
        let obs = store.to_obs();
        assert_eq!(obs[0].loc, CloudLocId(0));
        assert_eq!((obs[0].n, obs[0].mean_rtt_ms), (2, 55.0));
        assert_eq!((obs[1].n, obs[1].mean_rtt_ms), (2, 35.0));
        assert_eq!(obs[2].loc, CloudLocId(2));
    }

    #[test]
    fn interleaved_keys_take_the_fallback_and_stay_exact() {
        // Key A split across two non-adjacent multi-record runs: the
        // partial-sum merge would be (a1+a2)+(a3+a4); the fallback
        // must restore ((a1+a2)+a3)+a4. Values chosen so the two
        // associations differ in the last bit.
        // 1e16 has ulp 2, so +1.0 rounds away sequentially but the
        // pre-added (1.0 + 1.0) survives: the two associations differ.
        let vals: [f64; 4] = [1e16, 1.0, 1.0, 1.0];
        let split = (vals[0] + vals[1]) + (vals[2] + vals[3]);
        let seq = ((vals[0] + vals[1]) + vals[2]) + vals[3];
        assert_ne!(split.to_bits(), seq.to_bits(), "values must discriminate");
        let records = vec![
            rec(0, 1, false, 10, vals[0]),
            rec(0, 1, false, 11, vals[1]),
            rec(0, 2, false, 12, 5.0),
            rec(0, 1, false, 13, vals[2]),
            rec(0, 1, false, 14, vals[3]),
        ];
        let mut arena = IngestArena::new();
        let store = aggregate_records_into(&records, &mut arena);
        assert_eq!(arena.sort_fallbacks, 1);
        let key = pack_key(CloudLocId(0), Prefix24::from_block(1), false, TimeBucket(0));
        let (n, sum) = store.get(key).unwrap();
        assert_eq!(n, 4);
        assert_eq!(sum.to_bits(), seq.to_bits(), "stream-order accumulation");
    }

    #[test]
    fn batch_kernel_matches_generic_kernel_bit_for_bit() {
        // Same single-bucket stream through the u64-subkey batch
        // kernel and the generic u128 record kernel, including a
        // duplicate-key interleaving that forces both fallbacks.
        let records = vec![
            rec(1, 9, false, 10, 1e16),
            rec(1, 9, false, 20, 1.0),
            rec(0, 3, true, 15, 50.0),
            rec(1, 9, false, 25, 1.0),
            rec(1, 9, false, 30, 1.0),
            rec(2, 1, false, 5, 10.0),
        ];
        let mut arena = IngestArena::new();
        let want = aggregate_records_into(&records, &mut arena);
        assert_eq!(arena.sort_fallbacks, 1);

        let batch = RecordBatch::from_records(TimeBucket(0), &records);
        assert_eq!(batch.len(), records.len());
        let mut store = QuartetStore::new();
        aggregate_batch_reuse(&batch, &mut arena, &mut store);
        assert_eq!(arena.sort_fallbacks, 2, "batch kernel hit its fallback too");
        assert_eq!(store, want);
        for (g, w) in store.to_obs().iter().zip(want.to_obs()) {
            assert_eq!(g.mean_rtt_ms.to_bits(), w.mean_rtt_ms.to_bits());
        }
    }

    #[test]
    fn collector_sort_preserves_within_key_order() {
        // Key A's samples interleave with key B; sort_by_key groups
        // them while keeping A's samples in stream order, so the
        // kernel's single-pass collapse reproduces the sequential
        // ((a1+a2)+a3)+a4 bits without any fallback.
        let vals: [f64; 4] = [1e16, 1.0, 1.0, 1.0];
        let seq = ((vals[0] + vals[1]) + vals[2]) + vals[3];
        let records = vec![
            rec(1, 1, false, 10, vals[0]),
            rec(1, 1, false, 11, vals[1]),
            rec(0, 2, false, 12, 5.0),
            rec(1, 1, false, 13, vals[2]),
            rec(1, 1, false, 14, vals[3]),
        ];
        let mut batch = RecordBatch::from_records(TimeBucket(0), &records);
        batch.sort_by_key();
        assert!(batch.keys.windows(2).all(|w| w[0] <= w[1]));
        let mut arena = IngestArena::new();
        let mut store = QuartetStore::new();
        aggregate_batch_reuse(&batch, &mut arena, &mut store);
        assert_eq!(arena.sort_fallbacks, 0, "sorted batches skip the fallback");
        let key = pack_key(CloudLocId(1), Prefix24::from_block(1), false, TimeBucket(0));
        let (n, sum) = store.get(key).unwrap();
        assert_eq!(n, 4);
        assert_eq!(
            sum.to_bits(),
            seq.to_bits(),
            "stream order within key survived the sort"
        );
    }

    #[test]
    fn subkey_and_full_key_agree() {
        for (l, p, m, b) in [
            (0u16, 0u32, false, 0u32),
            (42, 12345, true, 99999),
            (u16::MAX, (1 << 24) - 1, true, u32::MAX),
        ] {
            let full = pack_key(CloudLocId(l), Prefix24::from_block(p), m, TimeBucket(b));
            let sub = pack_subkey(CloudLocId(l), Prefix24::from_block(p), m);
            assert_eq!(((b as u128) << 41) | sub as u128, full);
        }
    }

    #[test]
    fn arena_reuse_is_clean_across_batches() {
        let mut arena = IngestArena::new();
        let a = aggregate_records_into(&[rec(0, 1, false, 10, 10.0)], &mut arena);
        let b = aggregate_records_into(&[rec(1, 2, true, 20, 20.0)], &mut arena);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        assert_eq!(b.to_obs()[0].loc, CloudLocId(1));
        assert_eq!(arena.batches, 2);
        let empty = aggregate_records_into(&[], &mut arena);
        assert!(empty.is_empty());
    }

    #[test]
    fn merge_interleaves_disjoint_stores_in_key_order() {
        let mut arena = IngestArena::new();
        // Shard by loc, but keys sort bucket-first, so the merged
        // sequence interleaves the two stores.
        let s0 = aggregate_records_into(
            &[rec(0, 1, false, 10, 10.0), rec(0, 1, false, 400, 20.0)],
            &mut arena,
        );
        let s1 = aggregate_records_into(
            &[rec(1, 1, false, 10, 30.0), rec(1, 1, false, 400, 40.0)],
            &mut arena,
        );
        let merged = QuartetStore::merge(&[s0.clone(), s1.clone()]);
        assert_eq!(merged.len(), 4);
        let whole = aggregate_records_into(
            &[
                rec(0, 1, false, 10, 10.0),
                rec(0, 1, false, 400, 20.0),
                rec(1, 1, false, 10, 30.0),
                rec(1, 1, false, 400, 40.0),
            ],
            &mut arena,
        );
        assert_eq!(merged, whole);
        // Single-store merge is the store itself.
        assert_eq!(QuartetStore::merge(std::slice::from_ref(&s0)), s0);
    }

    #[test]
    fn sharded_aggregation_equals_single_shard() {
        let mut records = Vec::new();
        for client in 0..40u32 {
            for s in 0..6u64 {
                records.push(rec(
                    (client % 5) as u16,
                    100 + client,
                    client % 3 == 0,
                    10 + s * 40,
                    20.0 + client as f64 + s as f64 * 0.125,
                ));
            }
        }
        let single = aggregate_records_sharded(&records, 1);
        for par in [2, 4, 8] {
            assert_eq!(aggregate_records_sharded(&records, par), single);
        }
    }
}
