//! Verdict provenance: the *argument* behind every blame.
//!
//! BlameIt's operator value is not the label but the evidence chain —
//! which Algorithm-1 branch fired, against which measured fractions vs.
//! τ, which baseline (and how old) anchored the traceroute diff, how
//! many probe attempts the chaos layer absorbed, and where the issue
//! ranked in the client-time-product budget (§4–§5). This module holds
//! the structured evidence records; they are captured where the
//! decisions happen ([`crate::passive`], [`crate::priority`], the probe
//! loop in [`crate::pipeline`]) and attached to [`crate::BlameResult`]
//! and [`crate::MiddleLocalization`].
//!
//! Everything here is plain deterministic data: no wall clock, no
//! thread identity, floats rendered with `{:?}` so transcripts round
//! trip bit-exactly. The compact renders below are part of the
//! canonical tick transcript (see [`crate::report`]) and therefore part
//! of the determinism contract.

use crate::passive::Blame;
use blameit_simnet::TimeBucket;
use std::fmt;

/// Algorithm-1 evidence for one bad quartet: the measured aggregate
/// fractions the hierarchical elimination compared against τ, and which
/// branch fired as a result.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PassiveEvidence {
    /// The branch taken (duplicates `BlameResult::blame` so the record
    /// is self-contained once detached from its verdict).
    pub branch: Blame,
    /// τ at decision time.
    pub tau: f64,
    /// Aggregates at or below this count are insufficient.
    pub min_aggregate: usize,
    /// Quartets observed at the cloud location this bucket.
    pub cloud_n: usize,
    /// Of those, how many exceeded the learned expected RTT × margin.
    pub cloud_bad: usize,
    /// Quartets observed on the middle segment this bucket.
    pub middle_n: usize,
    /// Of those, how many exceeded the learned expected RTT × margin.
    pub middle_bad: usize,
    /// The same /24 saw good RTT to another location this bucket (the
    /// Ambiguous-branch evidence).
    pub good_elsewhere: bool,
}

impl PassiveEvidence {
    /// Measured cloud bad fraction (0 with no quartets).
    pub fn cloud_fraction(&self) -> f64 {
        if self.cloud_n == 0 {
            0.0
        } else {
            self.cloud_bad as f64 / self.cloud_n as f64
        }
    }

    /// Measured middle bad fraction (0 with no quartets).
    pub fn middle_fraction(&self) -> f64 {
        if self.middle_n == 0 {
            0.0
        } else {
            self.middle_bad as f64 / self.middle_n as f64
        }
    }

    /// Canonical single-line render used in the tick transcript.
    pub fn render_compact(&self) -> String {
        format!(
            "cloud={}/{} middle={}/{} tau={:?} min={} good_elsewhere={}",
            self.cloud_bad,
            self.cloud_n,
            self.middle_bad,
            self.middle_n,
            self.tau,
            self.min_aggregate,
            self.good_elsewhere
        )
    }

    /// The human sentence for the branch taken, with the comparison
    /// that decided it spelled out.
    pub fn describe_branch(&self) -> String {
        match self.branch {
            Blame::Insufficient if self.cloud_n <= self.min_aggregate => format!(
                "insufficient: cloud aggregate has {} quartet(s), need > {}",
                self.cloud_n, self.min_aggregate
            ),
            Blame::Insufficient => format!(
                "insufficient: middle aggregate has {} quartet(s), need > {}",
                self.middle_n, self.min_aggregate
            ),
            Blame::Cloud => format!(
                "cloud: {}/{} location quartets above expected ({:?} >= tau {:?})",
                self.cloud_bad,
                self.cloud_n,
                self.cloud_fraction(),
                self.tau
            ),
            Blame::Middle => format!(
                "middle: {}/{} segment quartets above expected ({:?} >= tau {:?}); cloud cleared at {:?}",
                self.middle_bad,
                self.middle_n,
                self.middle_fraction(),
                self.tau,
                self.cloud_fraction()
            ),
            Blame::Ambiguous => format!(
                "ambiguous: /24 saw good RTT to another location this bucket; cloud {:?} and middle {:?} both below tau {:?}",
                self.cloud_fraction(),
                self.middle_fraction(),
                self.tau
            ),
            Blame::Client => format!(
                "client: cloud {:?} and middle {:?} below tau {:?}, no good RTT elsewhere",
                self.cloud_fraction(),
                self.middle_fraction(),
                self.tau
            ),
        }
    }
}

/// The middle-incident context a localization ran under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IncidentEvidence {
    /// Bucket the incident opened at.
    pub start_bucket: TimeBucket,
    /// Buckets elapsed since the incident opened.
    pub elapsed_buckets: u32,
    /// Bad-quartet observations folded into the incident so far.
    pub observations: u64,
    /// Clients currently affected (this bucket).
    pub current_clients: u64,
    /// Distinct affected /24s (this bucket).
    pub affected_p24s: usize,
}

impl IncidentEvidence {
    /// Canonical single-line render.
    pub fn render_compact(&self) -> String {
        format!(
            "start={} elapsed={} obs={} clients={} p24s={}",
            self.start_bucket.0,
            self.elapsed_buckets,
            self.observations,
            self.current_clients,
            self.affected_p24s
        )
    }
}

/// Where the issue landed in the client-time-product prioritization
/// (§5.3) and the probe budgets.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PriorityEvidence {
    /// The score: predicted clients × expected remaining duration.
    pub client_time_product: f64,
    /// Predicted client count for the rest of the incident.
    pub predicted_clients: f64,
    /// Expected remaining duration (buckets).
    pub expected_remaining_buckets: f64,
    /// 0-based rank among the issues *selected* for probing this tick.
    pub budget_rank: usize,
    /// Issues selected this tick (the budget actually spent).
    pub selected: usize,
    /// Issues that competed this tick before budgeting.
    pub candidates: usize,
}

impl PriorityEvidence {
    /// Canonical single-line render.
    pub fn render_compact(&self) -> String {
        format!(
            "rank={}/{} of {} product={:?} predicted={:?} remaining={:?}",
            self.budget_rank,
            self.selected,
            self.candidates,
            self.client_time_product,
            self.predicted_clients,
            self.expected_remaining_buckets
        )
    }
}

/// What the on-demand probe loop went through: retries, chaos
/// absorptions, and deadline pressure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProbeEvidence {
    /// Attempts issued (1 = first try succeeded).
    pub attempts: u32,
    /// Attempts absorbed as lost/late (the chaos layer's doing, or a
    /// genuinely unresponsive path — the engine cannot tell).
    pub lost_attempts: u32,
    /// The answer that arrived was truncated.
    pub truncated: bool,
    /// The issue ran out of per-tick probe deadline budget.
    pub deadline_dropped: bool,
    /// Total backoff waited across retries (seconds).
    pub backoff_secs: u64,
}

impl ProbeEvidence {
    /// Canonical single-line render.
    pub fn render_compact(&self) -> String {
        format!(
            "attempts={} lost={} truncated={} deadline_dropped={} backoff_secs={}",
            self.attempts,
            self.lost_attempts,
            self.truncated,
            self.deadline_dropped,
            self.backoff_secs
        )
    }
}

/// The historical traceroute baseline the diff ran against — or why
/// there was none.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BaselineEvidence {
    /// No baseline existed for (loc, path).
    Missing,
    /// A baseline existed but exceeded the max age and was quarantined.
    Stale {
        /// Sim time the baseline was taken (seconds).
        at_secs: u64,
        /// Its age at probe time (seconds).
        age_secs: u64,
        /// The configured quarantine threshold (seconds).
        max_age_secs: u64,
    },
    /// A usable baseline anchored the diff.
    Fresh {
        /// Sim time the baseline was taken (seconds).
        at_secs: u64,
        /// Its age at probe time (seconds).
        age_secs: u64,
    },
}

impl BaselineEvidence {
    /// Age of the baseline consulted, if any.
    pub fn age_secs(&self) -> Option<u64> {
        match self {
            BaselineEvidence::Missing => None,
            BaselineEvidence::Stale { age_secs, .. } | BaselineEvidence::Fresh { age_secs, .. } => {
                Some(*age_secs)
            }
        }
    }

    /// Canonical single-line render.
    pub fn render_compact(&self) -> String {
        match self {
            BaselineEvidence::Missing => "missing".to_string(),
            BaselineEvidence::Stale {
                at_secs,
                age_secs,
                max_age_secs,
            } => format!("stale@{at_secs} age={age_secs} max={max_age_secs}"),
            BaselineEvidence::Fresh { at_secs, age_secs } => {
                format!("fresh@{at_secs} age={age_secs}")
            }
        }
    }
}

impl fmt::Display for BaselineEvidence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_compact())
    }
}

/// The full evidence chain behind one middle localization attempt:
/// incident context → priority/budget position → probe attempts →
/// baseline → (diff table lives on the localization itself).
#[derive(Clone, Debug, PartialEq)]
pub struct Provenance {
    /// The incident that triggered the probe.
    pub incident: IncidentEvidence,
    /// Priority score and budget position.
    pub priority: PriorityEvidence,
    /// Probe attempts/retries/absorptions.
    pub probe: ProbeEvidence,
    /// Baseline value and age (or why none).
    pub baseline: BaselineEvidence,
}

impl Provenance {
    /// Canonical single-line render used in the tick transcript.
    pub fn render_compact(&self) -> String {
        format!(
            "incident[{}] priority[{}] probe[{}] baseline[{}]",
            self.incident.render_compact(),
            self.priority.render_compact(),
            self.probe.render_compact(),
            self.baseline.render_compact()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn passive(branch: Blame) -> PassiveEvidence {
        PassiveEvidence {
            branch,
            tau: 0.8,
            min_aggregate: 5,
            cloud_n: 60,
            cloud_bad: 54,
            middle_n: 40,
            middle_bad: 12,
            good_elsewhere: false,
        }
    }

    #[test]
    fn fractions_divide_safely() {
        let mut e = passive(Blame::Cloud);
        assert!((e.cloud_fraction() - 0.9).abs() < 1e-12);
        assert!((e.middle_fraction() - 0.3).abs() < 1e-12);
        e.cloud_n = 0;
        e.middle_n = 0;
        assert_eq!(e.cloud_fraction(), 0.0);
        assert_eq!(e.middle_fraction(), 0.0);
    }

    #[test]
    fn compact_render_is_debug_formatted() {
        // `{:?}` float formatting is what makes transcripts bit-exact;
        // a `{}`-formatted 0.8 would also print "0.8", so pin a value
        // whose Display and Debug renders differ in precision habits.
        let mut e = passive(Blame::Cloud);
        e.tau = 0.8;
        assert_eq!(
            e.render_compact(),
            "cloud=54/60 middle=12/40 tau=0.8 min=5 good_elsewhere=false"
        );
    }

    #[test]
    fn describe_branch_names_the_comparison() {
        assert!(passive(Blame::Cloud).describe_branch().contains(">= tau"));
        let mut e = passive(Blame::Insufficient);
        e.cloud_n = 3;
        assert!(e.describe_branch().contains("cloud aggregate"));
        e.cloud_n = 60;
        e.middle_n = 2;
        assert!(e.describe_branch().contains("middle aggregate"));
        assert!(passive(Blame::Client).describe_branch().contains("client"));
        assert!(passive(Blame::Ambiguous)
            .describe_branch()
            .contains("good RTT"));
    }

    #[test]
    fn baseline_render_variants() {
        assert_eq!(BaselineEvidence::Missing.render_compact(), "missing");
        assert_eq!(
            BaselineEvidence::Stale {
                at_secs: 100,
                age_secs: 400_000,
                max_age_secs: 345_600,
            }
            .render_compact(),
            "stale@100 age=400000 max=345600"
        );
        assert_eq!(
            BaselineEvidence::Fresh {
                at_secs: 86_400,
                age_secs: 3_600,
            }
            .render_compact(),
            "fresh@86400 age=3600"
        );
        assert_eq!(BaselineEvidence::Missing.age_secs(), None);
    }

    #[test]
    fn provenance_compact_chains_all_sections() {
        let p = Provenance {
            incident: IncidentEvidence {
                start_bucket: TimeBucket(300),
                elapsed_buckets: 4,
                observations: 9,
                current_clients: 52,
                affected_p24s: 3,
            },
            priority: PriorityEvidence {
                client_time_product: 123.5,
                predicted_clients: 52.0,
                expected_remaining_buckets: 2.375,
                budget_rank: 0,
                selected: 3,
                candidates: 7,
            },
            probe: ProbeEvidence {
                attempts: 2,
                lost_attempts: 1,
                truncated: false,
                deadline_dropped: false,
                backoff_secs: 30,
            },
            baseline: BaselineEvidence::Fresh {
                at_secs: 86_400,
                age_secs: 3_600,
            },
        };
        let line = p.render_compact();
        assert_eq!(
            line,
            "incident[start=300 elapsed=4 obs=9 clients=52 p24s=3] \
             priority[rank=0/3 of 7 product=123.5 predicted=52.0 remaining=2.375] \
             probe[attempts=2 lost=1 truncated=false deadline_dropped=false backoff_secs=30] \
             baseline[fresh@86400 age=3600]"
        );
    }
}
