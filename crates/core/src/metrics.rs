//! Engine metrics: named handles into a [`MetricsRegistry`].
//!
//! [`EngineMetrics`] looks every metric up once at engine construction
//! and records through cached `Arc` handles afterwards, so the hot tick
//! path never touches the registry lock. Each engine gets its own
//! registry (shareable via [`BlameItEngine::metrics`]); the CLI and
//! examples render it after a run.
//!
//! [`BlameItEngine::metrics`]: crate::pipeline::BlameItEngine::metrics

use crate::active::UnlocalizedReason;
use crate::passive::Blame;
use blameit_obs::{Counter, Gauge, Histogram, MetricsRegistry};
use std::sync::Arc;
use std::time::Duration;

/// Canonical stage names, in pipeline order. These appear as the
/// `stage` label on `blameit_stage_duration_us` and as the keys of
/// `TickOutput::stage_timings`.
pub mod stage {
    /// Pulling raw quartet observations from the backend.
    pub const INGEST: &str = "ingest";
    /// Joining routing metadata, the ≥10-sample floor, badness
    /// classification.
    pub const AGGREGATION: &str = "quartet_aggregation";
    /// Algorithm 1 (plus incident/episode bookkeeping and learning).
    pub const PASSIVE: &str = "passive_blame";
    /// Client-time-product ranking and budget selection.
    pub const PRIORITY: &str = "priority_ranking";
    /// On-demand traceroutes and baseline diffing.
    pub const ACTIVE: &str = "active_localization";
    /// Periodic + churn-triggered background probes and baseline
    /// staleness accounting.
    pub const BASELINE: &str = "baseline_refresh";

    /// All stages, pipeline order.
    pub const ALL: [&str; 6] = [INGEST, AGGREGATION, PASSIVE, PRIORITY, ACTIVE, BASELINE];
}

/// The `reason` labels on `blameit_shed_quartets_total`, canonical
/// order. These are the only two ways the daemon's bounded ingest path
/// drops data — and both are counted, never silent.
pub mod shed_reason {
    /// Shed by the admission controller: past the shed watermark, the
    /// lowest client-time-product records go first.
    pub const LOW_IMPACT: &str = "low_impact";
    /// A whole batch refused at the queue cap with a `SLOW_DOWN` reply.
    pub const BACKPRESSURE: &str = "backpressure";

    /// All shed reasons.
    pub const ALL: [&str; 2] = [LOW_IMPACT, BACKPRESSURE];
}

/// Cached handles for every metric the engine emits.
///
/// Cloning shares the underlying registry and instruments (handles are
/// `Arc`s), which is what a cloned engine wants: one set of totals.
#[derive(Clone, Debug)]
pub struct EngineMetrics {
    registry: Arc<MetricsRegistry>,
    /// Engine ticks completed.
    pub ticks: Arc<Counter>,
    /// Raw quartet observations pulled from the backend at ingest,
    /// before the ≥10-sample floor (the columnar path's input volume).
    pub ingest_quartets: Arc<Counter>,
    /// SLO: last tick's ingest throughput, raw quartet observations
    /// per second of ingest-stage wall time. The live counterpart of
    /// the `BENCH_ingest.json` quartets/sec figure.
    pub ingest_quartets_per_sec: Arc<Gauge>,
    /// Enriched quartets processed by Algorithm 1.
    pub quartets_processed: Arc<Counter>,
    /// Blame verdicts by segment (`Blame::ALL` order).
    blames: [Arc<Counter>; 5],
    /// On-demand traceroutes issued.
    pub on_demand_probes: Arc<Counter>,
    /// Background traceroutes issued.
    pub background_probes: Arc<Counter>,
    /// Ranked middle issues dropped by the per-location probe budget.
    pub probes_suppressed_budget: Arc<Counter>,
    /// Background probes skipped because the path was inside a badness
    /// episode.
    pub probes_suppressed_episode: Arc<Counter>,
    /// Issues left unprobed because the per-tick probe deadline budget
    /// ran out.
    pub probes_suppressed_deadline: Arc<Counter>,
    /// On-demand traceroute retries after a lost or truncated attempt.
    pub probe_retries: Arc<Counter>,
    /// On-demand traceroute attempts that timed out or missed the
    /// per-probe deadline.
    pub probe_attempts_lost: Arc<Counter>,
    /// On-demand traceroute attempts that came back truncated.
    pub probe_attempts_truncated: Arc<Counter>,
    /// Diffs refused because the only available baseline exceeded the
    /// quarantine age.
    pub baseline_quarantines: Arc<Counter>,
    /// Background baseline refreshes whose traceroute failed.
    pub background_probe_failures: Arc<Counter>,
    /// Failed background refreshes rescheduled for the next tick.
    pub background_retries: Arc<Counter>,
    /// Degraded `MiddleUnlocalized` verdicts by reason
    /// (`UnlocalizedReason::ALL` order).
    degraded: [Arc<Counter>; 6],
    /// Operator alerts emitted.
    pub alerts: Arc<Counter>,
    /// Whole-tick wall time, microseconds.
    pub tick_duration_us: Arc<Histogram>,
    /// Per-stage wall time, microseconds (`stage::ALL` order).
    stage_us: [Arc<Histogram>; 6],
    /// Mean RTT of processed quartets, milliseconds.
    pub quartet_rtt_ms: Arc<Histogram>,
    /// (location, path) pairs with at least one stored baseline.
    pub baselines_stored: Arc<Gauge>,
    /// Age of the *freshest* baseline of the stalest pair, seconds.
    pub baseline_staleness_max_secs: Arc<Gauge>,
    /// Mean over pairs of the freshest baseline's age, seconds.
    pub baseline_staleness_mean_secs: Arc<Gauge>,
    /// Middle localizations attempted (every probed or deadline-dropped
    /// issue; the denominator of the coverage SLO).
    pub middle_localizations: Arc<Counter>,
    /// Middle localizations that named a culprit AS (the numerator).
    pub middle_culprits_found: Arc<Counter>,
    /// SLO: fraction of middle localizations that named a culprit —
    /// the Fig. 12/13 coverage axis, live.
    pub middle_localization_coverage: Arc<Gauge>,
    /// SLO: fraction of the per-tick probe deadline budget consumed
    /// last tick (1.0 = the budget bit).
    pub probe_budget_utilization: Arc<Gauge>,
    /// SLO: cumulative seconds of baseline age consumed by diffs — the
    /// staleness "burn" that, unchecked, ends in quarantines.
    pub baseline_staleness_burn_secs: Arc<Counter>,
    /// Flight-recorder dump triggers fired.
    pub flight_triggers: Arc<Counter>,
    /// Quartet records shed on the ingest path, by reason
    /// (`shed_reason::ALL` order).
    shed: [Arc<Counter>; 2],
    /// `SLOW_DOWN` backpressure replies issued by the ingest socket.
    pub backpressure_replies: Arc<Counter>,
    /// SLO: records currently held in the bounded ingest queue.
    pub ingest_queue_depth: Arc<Gauge>,
    /// SLO: fraction of offered records admitted since startup —
    /// 1.0 means no coverage lost; shedding under overload drags it
    /// below 1 (the degraded-coverage signal).
    pub ingest_coverage: Arc<Gauge>,
}

impl EngineMetrics {
    /// Registers (or re-attaches to) the engine metrics in `registry`.
    pub fn new(registry: Arc<MetricsRegistry>) -> EngineMetrics {
        let blames = Blame::ALL
            .map(|b| registry.counter_with("blameit_blames_total", &[("segment", &b.to_string())]));
        let stage_us = stage::ALL
            .map(|s| registry.histogram_with("blameit_stage_duration_us", &[("stage", s)]));
        EngineMetrics {
            ticks: registry.counter("blameit_ticks_total"),
            ingest_quartets: registry.counter("blameit_ingest_quartets_total"),
            ingest_quartets_per_sec: registry.gauge("blameit_ingest_quartets_per_sec"),
            quartets_processed: registry.counter("blameit_quartets_processed_total"),
            blames,
            on_demand_probes: registry.counter("blameit_probes_on_demand_total"),
            background_probes: registry.counter("blameit_probes_background_total"),
            probes_suppressed_budget: registry
                .counter_with("blameit_probes_suppressed_total", &[("reason", "budget")]),
            probes_suppressed_episode: registry
                .counter_with("blameit_probes_suppressed_total", &[("reason", "episode")]),
            probes_suppressed_deadline: registry
                .counter_with("blameit_probes_suppressed_total", &[("reason", "deadline")]),
            probe_retries: registry.counter("blameit_probe_retries_total"),
            probe_attempts_lost: registry.counter("blameit_probe_attempts_lost_total"),
            probe_attempts_truncated: registry.counter("blameit_probe_attempts_truncated_total"),
            baseline_quarantines: registry.counter("blameit_baseline_quarantines_total"),
            background_probe_failures: registry.counter("blameit_background_probe_failures_total"),
            background_retries: registry.counter("blameit_background_retries_total"),
            degraded: UnlocalizedReason::ALL.map(|r| {
                registry.counter_with("blameit_degraded_verdicts_total", &[("reason", r.label())])
            }),
            alerts: registry.counter("blameit_alerts_total"),
            tick_duration_us: registry.histogram("blameit_tick_duration_us"),
            stage_us,
            quartet_rtt_ms: registry.histogram("blameit_quartet_rtt_ms"),
            baselines_stored: registry.gauge("blameit_baselines_stored"),
            baseline_staleness_max_secs: registry.gauge("blameit_baseline_staleness_max_secs"),
            baseline_staleness_mean_secs: registry.gauge("blameit_baseline_staleness_mean_secs"),
            middle_localizations: registry.counter("blameit_middle_localizations_total"),
            middle_culprits_found: registry.counter("blameit_middle_culprits_found_total"),
            middle_localization_coverage: registry.gauge("blameit_middle_localization_coverage"),
            probe_budget_utilization: registry.gauge("blameit_probe_budget_utilization"),
            baseline_staleness_burn_secs: registry
                .counter("blameit_baseline_staleness_burn_secs_total"),
            flight_triggers: registry.counter("blameit_flight_triggers_total"),
            shed: shed_reason::ALL
                .map(|r| registry.counter_with("blameit_shed_quartets_total", &[("reason", r)])),
            backpressure_replies: registry.counter("blameit_backpressure_replies_total"),
            ingest_queue_depth: registry.gauge("blameit_ingest_queue_depth_records"),
            ingest_coverage: registry.gauge("blameit_ingest_coverage"),
            registry,
        }
    }

    /// The shed counter for one reason label.
    pub fn shed_counter(&self, reason: &str) -> &Arc<Counter> {
        let idx = shed_reason::ALL
            .iter()
            .position(|r| *r == reason)
            .expect("shed_reason::ALL covers every label");
        &self.shed[idx]
    }

    /// Total records shed across all reasons.
    pub fn shed_total(&self) -> u64 {
        self.shed.iter().map(|c| c.get()).sum()
    }

    /// The registry behind the handles.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The degraded-verdict counter for one reason.
    pub fn degraded_counter(&self, reason: UnlocalizedReason) -> &Arc<Counter> {
        let idx = UnlocalizedReason::ALL
            .iter()
            .position(|r| *r == reason)
            .expect("UnlocalizedReason::ALL covers every variant");
        &self.degraded[idx]
    }

    /// Total degraded verdicts across all reasons.
    pub fn degraded_total(&self) -> u64 {
        self.degraded.iter().map(|c| c.get()).sum()
    }

    /// The blame counter for one segment.
    pub fn blame_counter(&self, blame: Blame) -> &Arc<Counter> {
        let idx = Blame::ALL
            .iter()
            .position(|b| *b == blame)
            .expect("Blame::ALL covers every variant");
        &self.blames[idx]
    }

    /// Records a finished tick's stage profile into the duration
    /// histograms.
    pub fn observe_stage_timings(&self, timings: &blameit_obs::StageTimings) {
        self.tick_duration_us.observe(as_us(timings.total()));
        for (name, d) in timings.iter() {
            if let Some(idx) = stage::ALL.iter().position(|s| *s == name) {
                self.stage_us[idx].observe(as_us(d));
            }
        }
    }

    /// Records one tick's raw ingest volume and refreshes the
    /// throughput gauge from the tick's ingest-stage wall time. With a
    /// zero duration (sub-resolution ingest on an idle world) the
    /// gauge keeps its previous value rather than spiking to infinity.
    pub fn observe_ingest(&self, raw_quartets: u64, ingest_wall: Duration) {
        self.ingest_quartets.add(raw_quartets);
        let secs = ingest_wall.as_secs_f64();
        if secs > 0.0 && raw_quartets > 0 {
            self.ingest_quartets_per_sec.set(raw_quartets as f64 / secs);
        }
    }

    /// Folds one shard's scratch metrics into the shared instruments.
    /// Counters add and the RTT histogram merges bucket-wise
    /// ([`Histogram::merge_from`]), both order-independent — absorbing
    /// shards in any order yields the same rendered exposition as the
    /// sequential path.
    pub fn absorb_shard(&self, shard: &ShardMetrics) {
        self.quartets_processed.add(shard.quartets);
        for (i, n) in shard.blames.iter().enumerate() {
            if *n > 0 {
                self.blames[i].add(*n);
            }
        }
        self.quartet_rtt_ms.merge_from(&shard.rtt_ms);
    }
}

/// Per-shard metric scratch: a worker thread records locally (no
/// contention on the shared registry instruments) and the coordinator
/// absorbs the scratch after the join via
/// [`EngineMetrics::absorb_shard`].
#[derive(Debug, Default)]
pub struct ShardMetrics {
    /// Enriched quartets this shard processed.
    quartets: u64,
    /// Blame verdicts by segment (`Blame::ALL` order).
    blames: [u64; 5],
    /// Mean RTT of processed quartets, milliseconds.
    rtt_ms: Histogram,
}

impl ShardMetrics {
    /// Fresh, empty scratch.
    pub fn new() -> ShardMetrics {
        ShardMetrics::default()
    }

    /// Records one processed quartet and its mean RTT.
    pub fn observe_quartet(&mut self, mean_rtt_ms: f64) {
        self.quartets += 1;
        self.rtt_ms.observe(mean_rtt_ms);
    }

    /// Records one blame verdict.
    pub fn record_blame(&mut self, blame: Blame) {
        let idx = Blame::ALL
            .iter()
            .position(|b| *b == blame)
            .expect("Blame::ALL covers every variant");
        self.blames[idx] += 1;
    }
}

fn as_us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blame_counters_cover_every_variant() {
        let m = EngineMetrics::new(Arc::new(MetricsRegistry::new()));
        for b in Blame::ALL {
            m.blame_counter(b).inc();
        }
        for b in Blame::ALL {
            assert_eq!(m.blame_counter(b).get(), 1, "{b}");
        }
    }

    #[test]
    fn stage_timings_land_in_labeled_histograms() {
        let reg = Arc::new(MetricsRegistry::new());
        let m = EngineMetrics::new(reg.clone());
        let mut t = blameit_obs::StageTimings::new();
        t.add(stage::INGEST, Duration::from_micros(100));
        t.add(stage::PASSIVE, Duration::from_micros(300));
        t.add("not-a-stage", Duration::from_micros(999));
        t.set_total(Duration::from_micros(500));
        m.observe_stage_timings(&t);
        assert_eq!(m.tick_duration_us.count(), 1);
        let ingest = reg.histogram_with("blameit_stage_duration_us", &[("stage", stage::INGEST)]);
        assert_eq!(ingest.count(), 1);
        assert!((ingest.sum() - 100.0).abs() < 1.0);
        let passive = reg.histogram_with("blameit_stage_duration_us", &[("stage", stage::PASSIVE)]);
        assert_eq!(passive.count(), 1);
        // Unknown stage names are ignored, not registered.
        let active = reg.histogram_with("blameit_stage_duration_us", &[("stage", stage::ACTIVE)]);
        assert_eq!(active.count(), 0);
    }

    #[test]
    fn shard_scratch_absorbs_like_direct_recording() {
        let direct = EngineMetrics::new(Arc::new(MetricsRegistry::new()));
        let sharded = EngineMetrics::new(Arc::new(MetricsRegistry::new()));
        let samples = [
            (12.5, Blame::Cloud),
            (80.0, Blame::Middle),
            (33.0, Blame::Middle),
        ];
        // Legacy path: straight into the shared instruments.
        for (rtt, blame) in samples {
            direct.quartets_processed.add(1);
            direct.quartet_rtt_ms.observe(rtt);
            direct.blame_counter(blame).inc();
        }
        // Sharded path: two scratches, absorbed in arbitrary order.
        let mut a = ShardMetrics::new();
        a.observe_quartet(80.0);
        a.record_blame(Blame::Middle);
        let mut b = ShardMetrics::new();
        b.observe_quartet(12.5);
        b.record_blame(Blame::Cloud);
        b.observe_quartet(33.0);
        b.record_blame(Blame::Middle);
        sharded.absorb_shard(&b);
        sharded.absorb_shard(&a);
        assert_eq!(
            direct.registry().render_prometheus(),
            sharded.registry().render_prometheus()
        );
    }

    #[test]
    fn degraded_counters_cover_every_reason() {
        let m = EngineMetrics::new(Arc::new(MetricsRegistry::new()));
        assert_eq!(m.degraded_total(), 0);
        for r in UnlocalizedReason::ALL {
            m.degraded_counter(r).inc();
        }
        for r in UnlocalizedReason::ALL {
            assert_eq!(m.degraded_counter(r).get(), 1, "{r}");
        }
        assert_eq!(m.degraded_total(), UnlocalizedReason::ALL.len() as u64);
    }

    #[test]
    fn slo_instruments_render_under_stable_names() {
        let reg = Arc::new(MetricsRegistry::new());
        let m = EngineMetrics::new(reg.clone());
        m.middle_localizations.add(4);
        m.middle_culprits_found.add(3);
        m.middle_localization_coverage.set(0.75);
        m.probe_budget_utilization.set(0.2);
        m.baseline_staleness_burn_secs.add(3_600);
        let text = reg.render_prometheus();
        for name in [
            "blameit_middle_localizations_total 4",
            "blameit_middle_culprits_found_total 3",
            "blameit_middle_localization_coverage 0.75",
            "blameit_probe_budget_utilization 0.2",
            "blameit_baseline_staleness_burn_secs_total 3600",
        ] {
            assert!(text.contains(name), "{name} missing from:\n{text}");
        }
    }

    #[test]
    fn ingest_instruments_track_volume_and_rate() {
        let reg = Arc::new(MetricsRegistry::new());
        let m = EngineMetrics::new(reg.clone());
        m.observe_ingest(500, Duration::from_millis(10));
        assert_eq!(m.ingest_quartets.get(), 500);
        assert!((m.ingest_quartets_per_sec.get() - 50_000.0).abs() < 1.0);
        // Zero-duration ingest keeps the last rate instead of inf.
        m.observe_ingest(7, Duration::ZERO);
        assert_eq!(m.ingest_quartets.get(), 507);
        assert!((m.ingest_quartets_per_sec.get() - 50_000.0).abs() < 1.0);
        let text = reg.render_prometheus();
        assert!(text.contains("blameit_ingest_quartets_total 507"), "{text}");
    }

    #[test]
    fn shed_instruments_render_under_stable_names() {
        let reg = Arc::new(MetricsRegistry::new());
        let m = EngineMetrics::new(reg.clone());
        m.shed_counter(shed_reason::LOW_IMPACT).add(7);
        m.shed_counter(shed_reason::BACKPRESSURE).add(2);
        m.backpressure_replies.inc();
        m.ingest_queue_depth.set(41.0);
        m.ingest_coverage.set(0.9);
        assert_eq!(m.shed_total(), 9);
        let text = reg.render_prometheus();
        assert!(
            text.contains("blameit_shed_quartets_total{reason=\"low_impact\"} 7"),
            "{text}"
        );
        assert!(
            text.contains("blameit_shed_quartets_total{reason=\"backpressure\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("blameit_backpressure_replies_total 1"),
            "{text}"
        );
        assert!(
            text.contains("blameit_ingest_queue_depth_records 41"),
            "{text}"
        );
        assert!(text.contains("blameit_ingest_coverage 0.9"), "{text}");
    }

    #[test]
    fn same_registry_shares_instruments() {
        let reg = Arc::new(MetricsRegistry::new());
        let a = EngineMetrics::new(reg.clone());
        let b = EngineMetrics::new(reg);
        a.ticks.inc();
        assert_eq!(b.ticks.get(), 1);
    }
}
