//! Impact-proportional probe prioritization.
//!
//! §5.3: on-demand traceroutes are budgeted, so middle-segment issues
//! are ranked by their **client-time product** — (predicted remaining
//! duration) × (predicted impacted clients) — and probed best-first.
//! Duration is predicted from per-path incident history (mean residual
//! life given the issue has lasted `t` buckets); client volume from
//! the same 5-minute slot over the past 3 days. §2.4 shows this
//! space×time ranking concentrates impact ~3× better than counting
//! affected prefixes.

use crate::fxhash::DetHashMap;
use crate::grouping::MiddleKey;
use crate::history::{ClientCountHistory, DurationHistory};
use crate::provenance::PriorityEvidence;
use blameit_simnet::TimeBucket;
use blameit_topology::{CloudLocId, PathId, Prefix24};

/// An ongoing middle-segment issue eligible for on-demand probing.
#[derive(Clone, Debug)]
pub struct MiddleIssue {
    /// Cloud location observing the issue.
    pub loc: CloudLocId,
    /// The blamed middle path.
    pub path: PathId,
    /// Its group key (matches the configured grouping).
    pub middle_key: MiddleKey,
    /// The bucket the issue was observed in.
    pub bucket: TimeBucket,
    /// Consecutive bad buckets so far (the `t` of `P(T|t)`).
    pub elapsed_buckets: u32,
    /// Client volume observed on the path this bucket (connection
    /// count — the observable proxy for active clients).
    pub current_clients: u64,
    /// Affected /24s (probe target candidates), deduplicated.
    pub affected_p24s: Vec<Prefix24>,
}

/// A [`MiddleIssue`] with its predicted impact.
#[derive(Clone, Debug)]
pub struct PrioritizedIssue {
    /// The issue.
    pub issue: MiddleIssue,
    /// Predicted additional duration (buckets).
    pub expected_remaining_buckets: f64,
    /// Predicted impacted clients while it lasts.
    pub predicted_clients: f64,
    /// The ranking score: duration × clients.
    pub client_time_product: f64,
}

impl PrioritizedIssue {
    /// The provenance record of this issue's ranking: its score and
    /// where it landed in the budgeted selection (`budget_rank` of
    /// `selected` issues chosen out of `candidates` competing).
    pub fn evidence(
        &self,
        budget_rank: usize,
        selected: usize,
        candidates: usize,
    ) -> PriorityEvidence {
        PriorityEvidence {
            client_time_product: self.client_time_product,
            predicted_clients: self.predicted_clients,
            expected_remaining_buckets: self.expected_remaining_buckets,
            budget_rank,
            selected,
            candidates,
        }
    }
}

/// Scores and ranks middle issues by client-time product, descending.
/// Ties break deterministically by (location, path).
pub fn prioritize(
    issues: Vec<MiddleIssue>,
    durations: &DurationHistory,
    clients: &ClientCountHistory,
) -> Vec<PrioritizedIssue> {
    let _span = blameit_obs::span!("blameit::priority", "prioritize", issues = issues.len());
    let mut out: Vec<PrioritizedIssue> = issues
        .into_iter()
        .map(|issue| {
            let remaining = durations.expected_remaining(issue.path, issue.elapsed_buckets);
            // Client prediction: same-slot history, falling back to
            // what we can see right now.
            let predicted = clients
                .predict(issue.path, issue.bucket)
                .unwrap_or(issue.current_clients as f64);
            PrioritizedIssue {
                client_time_product: remaining * predicted,
                expected_remaining_buckets: remaining,
                predicted_clients: predicted,
                issue,
            }
        })
        .collect();
    out.sort_by(|a, b| {
        b.client_time_product
            .total_cmp(&a.client_time_product)
            .then_with(|| (a.issue.loc, a.issue.path).cmp(&(b.issue.loc, b.issue.path)))
    });
    out
}

/// Applies a per-location probe budget (the paper budgets per cloud
/// location rather than per AS, §5.3): keeps at most `per_loc` issues
/// for each location, preserving rank order.
pub fn select_within_budget(ranked: &[PrioritizedIssue], per_loc: usize) -> Vec<&PrioritizedIssue> {
    select_within_budgets(ranked, per_loc, usize::MAX)
}

/// [`select_within_budget`] with an additional global cap: at most
/// `max_total` issues overall, rank order first. The global cap is the
/// coarse safety valve for chaos runs — the fine-grained limit is the
/// engine's per-tick probe *deadline* budget, which accounts for time
/// actually spent retrying.
pub fn select_within_budgets(
    ranked: &[PrioritizedIssue],
    per_loc: usize,
    max_total: usize,
) -> Vec<&PrioritizedIssue> {
    let mut used: DetHashMap<CloudLocId, usize> = DetHashMap::default();
    let mut out = Vec::new();
    for p in ranked {
        if out.len() >= max_total {
            break;
        }
        let u = used.entry(p.issue.loc).or_insert(0);
        if *u < per_loc {
            *u += 1;
            out.push(p);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn issue(loc: u16, path: u32, elapsed: u32, clients: u64) -> MiddleIssue {
        MiddleIssue {
            loc: CloudLocId(loc),
            path: PathId(path),
            middle_key: MiddleKey::Path(PathId(path)),
            bucket: TimeBucket(10),
            elapsed_buckets: elapsed,
            current_clients: clients,
            affected_p24s: vec![Prefix24::from_block(path)],
        }
    }

    #[test]
    fn ranks_by_product() {
        let mut durations = DurationHistory::new();
        // Path 1: short history (2 buckets); path 2: long (20 buckets).
        for _ in 0..20 {
            durations.record(PathId(1), 2);
            durations.record(PathId(2), 20);
        }
        let clients = ClientCountHistory::new();
        let ranked = prioritize(
            vec![issue(0, 1, 1, 1000), issue(0, 2, 1, 1000)],
            &durations,
            &clients,
        );
        // Same clients; path 2 expected to last far longer → first.
        assert_eq!(ranked[0].issue.path, PathId(2));
        assert!(ranked[0].client_time_product > ranked[1].client_time_product);
    }

    #[test]
    fn many_clients_beat_few() {
        let durations = DurationHistory::new();
        let clients = ClientCountHistory::new();
        let ranked = prioritize(
            vec![issue(0, 1, 1, 10), issue(0, 2, 1, 4_000_000)],
            &durations,
            &clients,
        );
        assert_eq!(ranked[0].issue.path, PathId(2));
    }

    #[test]
    fn history_overrides_current_count() {
        let durations = DurationHistory::new();
        let mut clients = ClientCountHistory::new();
        // Path 1 historically carries huge volume at this slot.
        for day in 7..10 {
            let b = TimeBucket(day * blameit_simnet::BUCKETS_PER_DAY + 10);
            clients.record(PathId(1), b, 1_000_000);
        }
        let mut i1 = issue(0, 1, 1, 5);
        i1.bucket = TimeBucket(10 * blameit_simnet::BUCKETS_PER_DAY + 10);
        let mut i2 = issue(0, 2, 1, 500);
        i2.bucket = i1.bucket;
        let ranked = prioritize(vec![i2, i1], &durations, &clients);
        assert_eq!(ranked[0].issue.path, PathId(1));
        assert!((ranked[0].predicted_clients - 1_000_000.0).abs() < 1e-6);
    }

    #[test]
    fn paper_fig5_ordering() {
        // Fig. 5: tuple #1 has 3 problematic prefixes but impact 350;
        // tuple #2 has 1 prefix but impact 2000. Client-time ranking
        // must put #2 first even though prefix-count ranking says #1.
        let mut durations = DurationHistory::new();
        for _ in 0..20 {
            durations.record(PathId(1), 4); // ~20 min issues
            durations.record(PathId(2), 6); // ~30 min issues
        }
        let clients = ClientCountHistory::new();
        let mut i1 = issue(0, 1, 1, 30); // 3 prefixes × 10 users
        i1.affected_p24s = vec![
            Prefix24::from_block(1),
            Prefix24::from_block(2),
            Prefix24::from_block(3),
        ];
        let i2 = issue(0, 2, 1, 200); // 1 prefix × 100 users, ongoing
        let ranked = prioritize(vec![i1, i2], &durations, &clients);
        assert_eq!(ranked[0].issue.path, PathId(2));
        assert_eq!(ranked[1].issue.affected_p24s.len(), 3);
    }

    #[test]
    fn budget_caps_per_location() {
        let durations = DurationHistory::new();
        let clients = ClientCountHistory::new();
        let issues = vec![
            issue(0, 1, 1, 400),
            issue(0, 2, 1, 300),
            issue(0, 3, 1, 200),
            issue(1, 4, 1, 100),
        ];
        let ranked = prioritize(issues, &durations, &clients);
        let picked = select_within_budget(&ranked, 2);
        assert_eq!(picked.len(), 3);
        let loc0 = picked
            .iter()
            .filter(|p| p.issue.loc == CloudLocId(0))
            .count();
        assert_eq!(loc0, 2, "location budget respected");
        // Highest-impact issues survive the cut.
        assert_eq!(picked[0].issue.path, PathId(1));
        assert_eq!(picked[1].issue.path, PathId(2));
    }

    #[test]
    fn global_cap_trims_after_rank() {
        let durations = DurationHistory::new();
        let clients = ClientCountHistory::new();
        let issues = vec![
            issue(0, 1, 1, 400),
            issue(1, 2, 1, 300),
            issue(2, 3, 1, 200),
            issue(3, 4, 1, 100),
        ];
        let ranked = prioritize(issues, &durations, &clients);
        let picked = select_within_budgets(&ranked, 5, 2);
        assert_eq!(picked.len(), 2);
        assert_eq!(picked[0].issue.path, PathId(1));
        assert_eq!(picked[1].issue.path, PathId(2));
        // usize::MAX cap reduces to the per-location rule.
        assert_eq!(
            select_within_budgets(&ranked, 5, usize::MAX).len(),
            select_within_budget(&ranked, 5).len()
        );
    }

    #[test]
    fn evidence_captures_score_and_budget_position() {
        let durations = DurationHistory::new();
        let clients = ClientCountHistory::new();
        let ranked = prioritize(vec![issue(0, 1, 1, 400)], &durations, &clients);
        let ev = ranked[0].evidence(0, 1, 3);
        assert_eq!((ev.budget_rank, ev.selected, ev.candidates), (0, 1, 3));
        assert!((ev.client_time_product - ranked[0].client_time_product).abs() < 1e-12);
        assert!((ev.predicted_clients - 400.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_tie_break() {
        let durations = DurationHistory::new();
        let clients = ClientCountHistory::new();
        let ranked = prioritize(
            vec![issue(0, 2, 1, 100), issue(0, 1, 1, 100)],
            &durations,
            &clients,
        );
        assert_eq!(ranked[0].issue.path, PathId(1), "ties break by id");
    }
}
