//! Active phase: localize a middle-segment blame to one culprit AS.
//!
//! §5.2: compare an on-demand traceroute (taken during the incident)
//! against the background baseline for the same (location, path). Each
//! AS's *contribution* is the difference between consecutive per-AS
//! cumulative RTTs; the AS whose contribution rose the most is the
//! culprit. The paper's example: hops at 4/6/8/9 ms become
//! 4/60/62/64 ms → m1's contribution went from 2 ms to 56 ms.

use blameit_simnet::Traceroute;
use blameit_topology::Asn;

/// Per-AS comparison row of a traceroute diff.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AsDelta {
    /// The AS.
    pub asn: Asn,
    /// Baseline contribution (ms); 0 when the AS was absent from the
    /// baseline (path change).
    pub baseline_ms: f64,
    /// Current contribution (ms); 0 when absent now.
    pub current_ms: f64,
}

impl AsDelta {
    /// Contribution increase.
    pub fn delta_ms(&self) -> f64 {
        self.current_ms - self.baseline_ms
    }
}

/// Result of diffing a live traceroute against its baseline.
#[derive(Clone, Debug)]
pub struct TracrouteDiffResult {
    /// Per-AS rows, in current-path order (baseline-only ASes appended).
    pub rows: Vec<AsDelta>,
    /// The AS with the largest material increase, if any.
    pub culprit: Option<Asn>,
}

/// Minimum contribution increase (ms) to name a culprit. Smaller
/// deltas are measurement noise.
pub const MIN_CULPRIT_DELTA_MS: f64 = 5.0;

/// Diffs per-AS contribution lists (as produced by
/// [`Traceroute::as_contributions`]).
///
/// The paper's India example (§5.2): hops at 4/6/8/9 ms become
/// 4/60/62/64 ms, so `m1`'s contribution rose from 2 ms to 56 ms:
///
/// ```
/// use blameit::diff_contributions;
/// use blameit_topology::Asn;
/// let base = [(Asn(8075), 4.0), (Asn(1), 2.0), (Asn(2), 2.0), (Asn(30), 1.0)];
/// let cur  = [(Asn(8075), 4.0), (Asn(1), 56.0), (Asn(2), 2.0), (Asn(30), 2.0)];
/// assert_eq!(diff_contributions(&base, &cur).culprit, Some(Asn(1)));
/// ```
pub fn diff_contributions(baseline: &[(Asn, f64)], current: &[(Asn, f64)]) -> TracrouteDiffResult {
    diff_contributions_with_floor(baseline, current, |_| MIN_CULPRIT_DELTA_MS)
}

/// Like [`diff_contributions`], with a per-AS minimum delta. The
/// engine raises the floor on the *client* AS when the on-demand probe
/// targets a different /24 than the baseline probe: their last miles
/// differ, and that difference lands entirely in the client hop's
/// contribution.
pub fn diff_contributions_with_floor(
    baseline: &[(Asn, f64)],
    current: &[(Asn, f64)],
    floor_ms: impl Fn(Asn) -> f64,
) -> TracrouteDiffResult {
    let _span = blameit_obs::span!(
        "blameit::active",
        "diff_contributions",
        baseline_ases = baseline.len(),
        current_ases = current.len(),
    );
    // Sum repeated AS appearances (path may visit an AS once, but be
    // robust to folding from unresponsive hops).
    let fold = |xs: &[(Asn, f64)]| -> Vec<(Asn, f64)> {
        let mut out: Vec<(Asn, f64)> = Vec::new();
        for (a, ms) in xs {
            match out.iter_mut().find(|(b, _)| b == a) {
                Some((_, acc)) => *acc += ms,
                None => out.push((*a, *ms)),
            }
        }
        out
    };
    let base = fold(baseline);
    let cur = fold(current);

    let mut rows: Vec<AsDelta> = Vec::new();
    for (a, ms) in &cur {
        let b = base.iter().find(|(x, _)| x == a).map_or(0.0, |(_, v)| *v);
        rows.push(AsDelta {
            asn: *a,
            baseline_ms: b,
            current_ms: *ms,
        });
    }
    for (a, ms) in &base {
        if !cur.iter().any(|(x, _)| x == a) {
            rows.push(AsDelta {
                asn: *a,
                baseline_ms: *ms,
                current_ms: 0.0,
            });
        }
    }

    let culprit = rows
        .iter()
        .filter(|r| r.delta_ms() >= floor_ms(r.asn))
        .max_by(|a, b| a.delta_ms().total_cmp(&b.delta_ms()))
        .map(|r| r.asn);

    TracrouteDiffResult { rows, culprit }
}

/// Diffs two traceroutes directly.
pub fn diff_traceroutes(baseline: &Traceroute, current: &Traceroute) -> TracrouteDiffResult {
    diff_contributions(&baseline.as_contributions(), &current.as_contributions())
}

/// Combines a forward diff with a (client-coordinated) reverse diff —
/// the §5.1 extension. Routing asymmetry means a reverse-path fault is
/// invisible to the forward probe's per-hop structure (it shows up as
/// a uniform shift, which diffs onto the first hop); the reverse probe
/// sees it at the right AS. The culprit is the largest per-AS increase
/// across both directions.
pub fn combine_directional_diffs(
    forward: &TracrouteDiffResult,
    reverse: &TracrouteDiffResult,
) -> Option<Asn> {
    let best = |d: &TracrouteDiffResult| {
        d.rows
            .iter()
            .filter(|r| r.delta_ms() >= MIN_CULPRIT_DELTA_MS)
            .max_by(|a, b| a.delta_ms().total_cmp(&b.delta_ms()))
            .map(|r| (r.asn, r.delta_ms()))
    };
    match (best(forward), best(reverse)) {
        (Some((fa, fd)), Some((ra, rd))) => Some(if fd >= rd { fa } else { ra }),
        (Some((fa, _)), None) => Some(fa),
        (None, Some((ra, _))) => Some(ra),
        (None, None) => None,
    }
}

/// Why a middle-segment blame could not be pinned on a culprit AS.
///
/// The engine never silently misattributes: when localization evidence
/// is incomplete it records exactly which link of the evidence chain
/// broke, and the reason flows into transcripts, tickets, and the
/// `blameit_degraded_verdicts_total{reason=…}` counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnlocalizedReason {
    /// Every traceroute attempt timed out (retries exhausted).
    ProbeTimeout,
    /// The best evidence was a truncated traceroute whose surviving
    /// prefix showed no material delta.
    TruncatedProbe,
    /// No background baseline exists for the (location, path).
    NoBaseline,
    /// The only available baseline is older than the quarantine age.
    StaleBaseline,
    /// A full diff ran but no AS rose above the material-delta floor.
    NoMaterialDelta,
    /// The per-tick probe deadline budget was exhausted before this
    /// issue could be probed.
    DeadlineBudget,
}

impl UnlocalizedReason {
    /// Every reason, in display order.
    pub const ALL: [UnlocalizedReason; 6] = [
        UnlocalizedReason::ProbeTimeout,
        UnlocalizedReason::TruncatedProbe,
        UnlocalizedReason::NoBaseline,
        UnlocalizedReason::StaleBaseline,
        UnlocalizedReason::NoMaterialDelta,
        UnlocalizedReason::DeadlineBudget,
    ];

    /// Stable snake_case label (metric label value).
    pub fn label(&self) -> &'static str {
        match self {
            UnlocalizedReason::ProbeTimeout => "probe_timeout",
            UnlocalizedReason::TruncatedProbe => "truncated_probe",
            UnlocalizedReason::NoBaseline => "no_baseline",
            UnlocalizedReason::StaleBaseline => "stale_baseline",
            UnlocalizedReason::NoMaterialDelta => "no_material_delta",
            UnlocalizedReason::DeadlineBudget => "deadline_budget",
        }
    }
}

impl std::fmt::Display for UnlocalizedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Outcome of one active-phase localization attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LocalizationVerdict {
    /// The diff named a culprit AS.
    Culprit(Asn),
    /// Degraded verdict: the middle segment stays blamed but no AS can
    /// honestly be named, for the recorded reason.
    MiddleUnlocalized {
        /// Which link of the evidence chain broke.
        reason: UnlocalizedReason,
    },
}

impl LocalizationVerdict {
    /// The culprit, when localized.
    pub fn culprit(&self) -> Option<Asn> {
        match self {
            LocalizationVerdict::Culprit(asn) => Some(*asn),
            LocalizationVerdict::MiddleUnlocalized { .. } => None,
        }
    }
}

impl std::fmt::Display for LocalizationVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LocalizationVerdict::Culprit(asn) => write!(f, "culprit({asn:?})"),
            LocalizationVerdict::MiddleUnlocalized { reason } => {
                write!(f, "unlocalized({reason})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn contributions(pairs: &[(u32, f64)]) -> Vec<(Asn, f64)> {
        pairs.iter().map(|(a, ms)| (Asn(*a), *ms)).collect()
    }

    #[test]
    fn paper_india_example() {
        // Path X - m1 - m2 - c; background hops 4, 6, 8, 9 ms →
        // contributions 4, 2, 2, 1. During the incident: 4, 60, 62,
        // 64 ms → contributions 4, 56, 2, 2.
        let base = contributions(&[(10, 4.0), (1, 2.0), (2, 2.0), (30, 1.0)]);
        let cur = contributions(&[(10, 4.0), (1, 56.0), (2, 2.0), (30, 2.0)]);
        let d = diff_contributions(&base, &cur);
        assert_eq!(d.culprit, Some(Asn(1)));
        let m1 = d.rows.iter().find(|r| r.asn == Asn(1)).unwrap();
        assert!((m1.delta_ms() - 54.0).abs() < 1e-9);
    }

    #[test]
    fn no_culprit_below_noise_floor() {
        let base = contributions(&[(10, 4.0), (1, 2.0)]);
        let cur = contributions(&[(10, 5.0), (1, 4.0)]);
        let d = diff_contributions(&base, &cur);
        assert_eq!(d.culprit, None, "2 ms wiggle is not a fault");
    }

    #[test]
    fn new_as_after_path_change_gets_full_contribution() {
        // Path changed: AS2 replaced by AS3 with a large contribution —
        // the traffic-shift case (§6.3 case 4) shows up as a new AS
        // carrying the inflation.
        let base = contributions(&[(10, 4.0), (2, 3.0), (30, 1.0)]);
        let cur = contributions(&[(10, 4.0), (3, 80.0), (30, 1.0)]);
        let d = diff_contributions(&base, &cur);
        assert_eq!(d.culprit, Some(Asn(3)));
        // The vanished AS is present with current 0.
        let gone = d.rows.iter().find(|r| r.asn == Asn(2)).unwrap();
        assert_eq!(gone.current_ms, 0.0);
        assert_eq!(gone.baseline_ms, 3.0);
    }

    #[test]
    fn repeated_as_contributions_fold() {
        let base = contributions(&[(10, 4.0), (1, 2.0), (10, 1.0)]);
        let cur = contributions(&[(10, 4.0), (1, 30.0), (10, 1.0)]);
        let d = diff_contributions(&base, &cur);
        assert_eq!(d.culprit, Some(Asn(1)));
        let ten = d.rows.iter().find(|r| r.asn == Asn(10)).unwrap();
        assert!((ten.baseline_ms - 5.0).abs() < 1e-9);
        assert!((ten.current_ms - 5.0).abs() < 1e-9);
    }

    #[test]
    fn empty_inputs() {
        let d = diff_contributions(&[], &[]);
        assert!(d.rows.is_empty());
        assert_eq!(d.culprit, None);
        // Only current: whole path is "new".
        let d2 = diff_contributions(&[], &contributions(&[(1, 50.0)]));
        assert_eq!(d2.culprit, Some(Asn(1)));
    }

    #[test]
    fn combined_diff_prefers_the_larger_direction() {
        let fwd = diff_contributions(
            &contributions(&[(10, 4.0), (1, 2.0)]),
            &contributions(&[(10, 4.0), (1, 12.0)]), // +10 at AS1
        );
        let rev = diff_contributions(
            &contributions(&[(30, 3.0), (2, 2.0)]),
            &contributions(&[(30, 3.0), (2, 72.0)]), // +70 at AS2
        );
        assert_eq!(combine_directional_diffs(&fwd, &rev), Some(Asn(2)));
        assert_eq!(combine_directional_diffs(&rev, &fwd), Some(Asn(2)));
        let clean = diff_contributions(&contributions(&[(10, 4.0)]), &contributions(&[(10, 4.0)]));
        assert_eq!(combine_directional_diffs(&fwd, &clean), Some(Asn(1)));
        assert_eq!(combine_directional_diffs(&clean, &clean), None);
    }

    #[test]
    fn culprit_is_largest_increase_not_largest_value() {
        // AS10 is always slow (100 ms) but unchanged; AS2 rose by 20 ms.
        let base = contributions(&[(10, 100.0), (2, 2.0)]);
        let cur = contributions(&[(10, 100.0), (2, 22.0)]);
        let d = diff_contributions(&base, &cur);
        assert_eq!(d.culprit, Some(Asn(2)));
    }
}
