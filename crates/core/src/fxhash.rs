//! Deterministic hashing for the hot path.
//!
//! `std`'s default `RandomState` seeds SipHash from OS entropy, which
//! is both slow for the small fixed-width keys the engine hashes
//! (quartet keys, location ids, path ids) and a latent determinism
//! hazard: iteration order differs per process, so any map that leaks
//! iteration order into output does so differently on every run. The
//! workspace answer is [`DetHashMap`]/[`DetHashSet`]: `std` containers
//! over [`FxHasher`], the multiply-rotate hash used by rustc — seedless,
//! platform-stable, and several times faster than SipHash on short
//! keys.
//!
//! Determinism caveat: a fixed hasher makes iteration order *stable
//! across runs on one build*, not canonical. The `unordered-iteration`
//! lint still applies — anything leaving a map for a transcript,
//! snapshot, or alert must pass through a sort. What the fixed hasher
//! buys is (a) SipHash off the per-record profile and (b) one fewer
//! source of run-to-run variance while debugging. The companion
//! `sip-hasher` lint rule makes these aliases mandatory in
//! `crates/core`: bare `HashMap`/`HashSet` construction does not pass
//! review without an annotated reason.

// lint:allow(sip-hasher): this module defines the deterministic aliases; the underlying std containers appear only here
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The rustc/Firefox "Fx" multiply-rotate hash, written against
/// `u64` words so results do not depend on pointer width.
///
/// Not cryptographic and not DoS-resistant — fine here, because every
/// key the engine hashes is derived from simulator state, not from
/// untrusted network input.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

/// Knuth's 2^64 / φ multiplicative constant.
const K: u64 = 0x517c_c1b7_2722_0a95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(word));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            // Fold the tail length in so "ab" and "ab\0" differ.
            self.add_to_hash(u64::from_le_bytes(word) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// The deterministic build-hasher state (zero-sized; `Default` yields
/// an identical hasher every time, on every platform).
pub type DetState = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with the deterministic Fx hasher. Construct with
/// `DetHashMap::default()` (the alias has no `new()`; that constructor
/// is specific to `RandomState`) or [`det_map_with_capacity`].
// lint:allow(sip-hasher): alias definition — every other core module builds maps through this
pub type DetHashMap<K, V> = HashMap<K, V, DetState>;

/// Drop-in `HashSet` with the deterministic Fx hasher. Construct with
/// `DetHashSet::default()` or [`det_set_with_capacity`].
// lint:allow(sip-hasher): alias definition — every other core module builds sets through this
pub type DetHashSet<T> = HashSet<T, DetState>;

/// `DetHashMap` pre-sized for `n` entries (`with_capacity` lives on the
/// `RandomState` impl, so the alias needs this helper).
pub fn det_map_with_capacity<K, V>(n: usize) -> DetHashMap<K, V> {
    DetHashMap::with_capacity_and_hasher(n, DetState::default())
}

/// `DetHashSet` pre-sized for `n` entries.
pub fn det_set_with_capacity<T>(n: usize) -> DetHashSet<T> {
    DetHashSet::with_capacity_and_hasher(n, DetState::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: T) -> u64 {
        DetState::default().hash_one(v)
    }

    #[test]
    fn hashes_are_platform_stable_constants() {
        // Pinned values: if these change, every DetHashMap's internal
        // layout changes too. That is allowed (layout is not part of
        // any transcript), but it should never happen by accident.
        assert_eq!(hash_of(0u64), 0);
        assert_eq!(hash_of(1u64), K);
        assert_eq!(hash_of(0x1234_5678u32), 0x1234_5678u64.wrapping_mul(K));
        assert_eq!(hash_of("quartet"), hash_of("quartet"));
    }

    #[test]
    fn identical_across_instances() {
        for v in [0u64, 1, 42, u64::MAX, 0xDEAD_BEEF] {
            assert_eq!(hash_of(v), hash_of(v));
        }
        assert_ne!(hash_of(1u64), hash_of(2u64));
    }

    #[test]
    fn byte_stream_tail_disambiguated() {
        let h = |bytes: &[u8]| {
            let mut f = FxHasher::default();
            f.write(bytes);
            f.finish()
        };
        assert_ne!(h(b"ab"), h(b"ab\0"));
        assert_ne!(h(b"abcdefgh"), h(b"abcdefg"));
        assert_eq!(h(b"abcdefghij"), h(b"abcdefghij"));
    }

    #[test]
    fn det_containers_behave_like_std() {
        let mut m: DetHashMap<u32, u32> = DetHashMap::default();
        for i in 0..100 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(&7), Some(&14));
        let mut s: DetHashSet<(u16, bool)> = det_set_with_capacity(4);
        assert!(s.insert((3, true)));
        assert!(!s.insert((3, true)));
        let m2 = det_map_with_capacity::<u32, u32>(64);
        assert!(m2.capacity() >= 64);
    }

    #[test]
    fn iteration_order_stable_within_build() {
        // Two identically-filled maps iterate identically — the
        // property RandomState deliberately breaks.
        let fill = || {
            let mut m: DetHashMap<u64, u64> = DetHashMap::default();
            for i in 0..500u64 {
                m.insert(i.wrapping_mul(0x9E37_79B9), i);
            }
            m.into_iter().collect::<Vec<_>>()
        };
        assert_eq!(fill(), fill());
    }
}
