//! Middle-segment grouping granularities.
//!
//! §4.2 of the paper weighs four ways to group the RTT samples that
//! share a bad quartet's middle segment:
//!
//! * **BGP path** (BlameIt's choice) — all clients whose middle ASes
//!   are identical, regardless of client AS or prefix. Most samples.
//! * **BGP atom** — same middle ASes *and* same client AS. Coarser
//!   than prefix, finer than path.
//! * **BGP prefix** — same middle ASes and same announced prefix.
//!   Fine-grained; fewest samples.
//! * **⟨AS, Metro⟩** — the traditional client grouping of prior work
//!   [Lee & Spring, IMC'16], which ignores the path entirely; the
//!   paper found only 47% of ⟨AS, Metro⟩ groups see a single
//!   consistent path even within 5 minutes, and Fig. 11 shows this
//!   grouping significantly hurts corroboration.
//!
//! Fig. 6 plots how many /24s share a group under the first three
//! definitions; the `fig6` bench regenerates it from these keys.

use crate::backend::RouteInfo;
use blameit_topology::{Asn, IpPrefix, MetroId, PathId};
use std::fmt;

/// Strategy for grouping quartets into middle segments.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum MiddleGrouping {
    /// Group by the middle-AS path only (BlameIt's default).
    #[default]
    BgpPath,
    /// Group by (middle path, client AS).
    BgpAtom,
    /// Group by (middle path, announced prefix).
    BgpPrefix,
    /// Group by (client AS, client metro) — ignores the path.
    AsMetro,
}

/// A middle-segment group key under some [`MiddleGrouping`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum MiddleKey {
    /// BGP-path key.
    Path(PathId),
    /// BGP-atom key.
    Atom(PathId, Asn),
    /// BGP-prefix key.
    Prefix(PathId, IpPrefix),
    /// ⟨AS, Metro⟩ key.
    AsMetro(Asn, MetroId),
}

impl fmt::Display for MiddleKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MiddleKey::Path(p) => write!(f, "{p}"),
            MiddleKey::Atom(p, a) => write!(f, "{p}@{a}"),
            MiddleKey::Prefix(p, pre) => write!(f, "{p}@{pre}"),
            MiddleKey::AsMetro(a, m) => write!(f, "{a}@{m}"),
        }
    }
}

impl MiddleGrouping {
    /// The group key of a quartet's route under this strategy.
    pub fn key(self, info: &RouteInfo) -> MiddleKey {
        match self {
            MiddleGrouping::BgpPath => MiddleKey::Path(info.path),
            MiddleGrouping::BgpAtom => MiddleKey::Atom(info.path, info.origin),
            MiddleGrouping::BgpPrefix => MiddleKey::Prefix(info.path, info.prefix),
            MiddleGrouping::AsMetro => MiddleKey::AsMetro(info.origin, info.metro),
        }
    }

    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            MiddleGrouping::BgpPath => "BGP path",
            MiddleGrouping::BgpAtom => "BGP atom",
            MiddleGrouping::BgpPrefix => "BGP prefix",
            MiddleGrouping::AsMetro => "<AS, Metro>",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blameit_topology::Region;

    fn info(path: u32, origin: u32, metro: u16, prefix: &str) -> RouteInfo {
        RouteInfo {
            path: PathId(path),
            middle: vec![],
            origin: Asn(origin),
            metro: MetroId(metro),
            region: Region::Europe,
            prefix: prefix.parse().unwrap(),
        }
    }

    #[test]
    fn path_grouping_merges_across_origins() {
        let a = info(1, 100, 0, "10.0.0.0/20");
        let b = info(1, 200, 5, "10.16.0.0/20");
        assert_eq!(
            MiddleGrouping::BgpPath.key(&a),
            MiddleGrouping::BgpPath.key(&b)
        );
        assert_ne!(
            MiddleGrouping::BgpAtom.key(&a),
            MiddleGrouping::BgpAtom.key(&b)
        );
    }

    #[test]
    fn atom_merges_prefixes_of_same_origin() {
        let a = info(1, 100, 0, "10.0.0.0/20");
        let b = info(1, 100, 0, "10.16.0.0/20");
        assert_eq!(
            MiddleGrouping::BgpAtom.key(&a),
            MiddleGrouping::BgpAtom.key(&b)
        );
        assert_ne!(
            MiddleGrouping::BgpPrefix.key(&a),
            MiddleGrouping::BgpPrefix.key(&b)
        );
    }

    #[test]
    fn as_metro_ignores_path() {
        let a = info(1, 100, 3, "10.0.0.0/20");
        let b = info(2, 100, 3, "10.0.0.0/20");
        assert_eq!(
            MiddleGrouping::AsMetro.key(&a),
            MiddleGrouping::AsMetro.key(&b)
        );
        assert_ne!(
            MiddleGrouping::BgpPath.key(&a),
            MiddleGrouping::BgpPath.key(&b)
        );
    }

    #[test]
    fn granularity_ordering_holds() {
        // Path ⊇ Atom ⊇ Prefix: equal finer keys imply equal coarser keys.
        let a = info(4, 7, 1, "10.0.0.0/20");
        let b = info(4, 7, 1, "10.0.0.0/20");
        assert_eq!(
            MiddleGrouping::BgpPrefix.key(&a),
            MiddleGrouping::BgpPrefix.key(&b)
        );
        assert_eq!(
            MiddleGrouping::BgpAtom.key(&a),
            MiddleGrouping::BgpAtom.key(&b)
        );
        assert_eq!(
            MiddleGrouping::BgpPath.key(&a),
            MiddleGrouping::BgpPath.key(&b)
        );
    }

    #[test]
    fn labels_distinct() {
        let labels: Vec<_> = [
            MiddleGrouping::BgpPath,
            MiddleGrouping::BgpAtom,
            MiddleGrouping::BgpPrefix,
            MiddleGrouping::AsMetro,
        ]
        .iter()
        .map(|g| g.label())
        .collect();
        let mut d = labels.clone();
        d.sort();
        d.dedup();
        assert_eq!(d.len(), labels.len());
    }
}
