//! Small statistics helpers used across BlameIt.
//!
//! The quantile family is layered for the columnar hot path: callers
//! that hold sorted data (the expected-RTT learner's window, threshold
//! calibration's per-group samples, the columnar store's runs) go
//! straight to [`quantile_sorted`]/[`median_sorted`], which are
//! branch-free kernels over the sorted run — no per-call copy, no
//! re-sort. [`quantile`] remains the convenience wrapper that sorts a
//! copy once and delegates. In debug builds [`quantile_sorted`]
//! asserts its input really is sorted, so a caller that skips the sort
//! fails loudly in tests instead of silently reporting a garbage
//! quantile.

/// Mean of a slice; `None` for empty input.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(mean_run(xs))
    }
}

/// Mean kernel over a non-empty run: one sequential pass, no
/// branches. The accumulation order is slice order, which is what
/// makes it bit-compatible with the legacy per-record upsert (both
/// fold the stream left-to-right).
///
/// # Panics
/// Debug-asserts the run is non-empty (release: returns NaN on empty
/// input rather than branching).
pub fn mean_run(run: &[f64]) -> f64 {
    debug_assert!(!run.is_empty(), "mean of empty run");
    run.iter().sum::<f64>() / run.len() as f64
}

/// Median of a slice (average of middle pair for even lengths);
/// `None` for empty input. Does not require sorted input.
pub fn median(xs: &[f64]) -> Option<f64> {
    quantile(xs, 0.5)
}

/// Median kernel over an already-sorted run.
///
/// # Panics
/// Panics if the slice is empty; debug-asserts sortedness.
pub fn median_sorted(sorted: &[f64]) -> f64 {
    quantile_sorted(sorted, 0.5)
}

/// Quantile via linear interpolation on a sorted copy; `q` in
/// `[0, 1]`. `None` for empty input.
///
/// Callers that already hold sorted data (or can sort in place once
/// and query many quantiles) should use [`quantile_sorted`] directly —
/// this wrapper pays a copy and a sort on every call.
///
/// # Panics
/// Panics if `q` is outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
    if xs.is_empty() {
        return None;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    Some(quantile_sorted(&v, q))
}

/// Quantile kernel over an already-sorted run (linear interpolation).
///
/// Branch-free on the hot path: the interpolation index pair is
/// computed arithmetically (`hi = lo + (frac > 0)`), with no
/// length-one special case and no `ceil` call — bit-identical to the
/// branching formulation for every input, including single-element
/// and all-equal runs (when `frac == 0` the formula reduces to
/// `x·1.0 + x·0.0`, which is exactly `x` for every finite `x`
/// including `-0.0`).
///
/// # Panics
/// Panics if `q` is outside `[0, 1]` or the slice is empty.
/// Debug-asserts the input is sorted — the guard that catches callers
/// routing unsorted data here to dodge [`quantile`]'s sort.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
    assert!(!sorted.is_empty(), "quantile of empty slice");
    debug_assert!(
        sorted.windows(2).all(|w| w[0].total_cmp(&w[1]).is_le()),
        "quantile_sorted called with unsorted input"
    );
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let frac = pos - lo as f64;
    let hi = lo + usize::from(frac > 0.0);
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Sample variance (n − 1 denominator); `None` for fewer than 2 points.
pub fn variance(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64)
}

/// Evaluation points of an empirical CDF: returns `(x, F(x))` pairs at
/// each distinct sorted sample, suitable for printing figure series.
pub fn ecdf(xs: &[f64]) -> Vec<(f64, f64)> {
    if xs.is_empty() {
        return Vec::new();
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let n = v.len() as f64;
    let mut out: Vec<(f64, f64)> = Vec::new();
    for (i, x) in v.iter().enumerate() {
        let f = (i + 1) as f64 / n;
        match out.last_mut() {
            Some((lx, lf)) if *lx == *x => *lf = f,
            _ => out.push((*x, f)),
        }
    }
    out
}

/// Fraction of samples satisfying a predicate.
pub fn fraction<T>(xs: &[T], pred: impl Fn(&T) -> bool) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().filter(|x| pred(x)).count() as f64 / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_median_basic() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
        assert_eq!(median(&[]), None);
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
    }

    #[test]
    fn quantiles() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(5.0));
        assert_eq!(quantile(&xs, 0.5), Some(3.0));
        assert!((quantile(&xs, 0.25).unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(quantile(&[7.0], 0.3), Some(7.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn quantile_rejects_bad_q() {
        quantile(&[1.0], 1.5);
    }

    #[test]
    #[should_panic(expected = "unsorted input")]
    fn quantile_sorted_flags_unsorted_input_in_debug() {
        // The satellite fix: callers routing unsorted data through the
        // sorted kernel must fail loudly under debug assertions.
        quantile_sorted(&[3.0, 1.0, 2.0], 0.5);
    }

    /// The pre-columnar branching formulation, kept as the oracle the
    /// branch-free kernel is tested against.
    fn quantile_sorted_branching(sorted: &[f64], q: f64) -> f64 {
        if sorted.len() == 1 {
            return sorted[0];
        }
        let pos = q * (sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }

    #[test]
    fn branch_free_quantile_matches_reference_on_adversarial_inputs() {
        let adversarial: &[&[f64]] = &[
            &[0.0],
            &[-0.0],
            &[7.0],
            &[5.0, 5.0, 5.0, 5.0],
            &[-0.0, 0.0],
            // NaN-free float-bit extremes: subnormals, min/max
            // magnitudes, signed zeros, infinities excluded (kernel
            // contract is finite samples, matching RTT data).
            &[
                f64::MIN,
                -1.0,
                -f64::MIN_POSITIVE,
                -0.0,
                0.0,
                5e-324,
                f64::MIN_POSITIVE,
                1.0,
                f64::MAX,
            ],
            &[1e16, 1e16 + 2.0, 1e16 + 4.0],
            &[-300.0, -7.5, 0.25, 19.0, 21.0, 1e9],
        ];
        for xs in adversarial {
            for i in 0..=100u32 {
                let q = f64::from(i) / 100.0;
                let fast = quantile_sorted(xs, q);
                let slow = quantile_sorted_branching(xs, q);
                assert_eq!(
                    fast.to_bits(),
                    slow.to_bits(),
                    "q={q} xs={xs:?}: {fast} vs {slow}"
                );
            }
        }
    }

    #[test]
    fn branch_free_quantile_matches_reference_on_random_runs() {
        use blameit_topology::testkit;
        testkit::check("stats::quantile_branch_free", 128, |rng| {
            let n = 1 + rng.below(200) as usize;
            let mut xs: Vec<f64> = (0..n).map(|_| rng.range_f64(-1e6, 1e6)).collect();
            xs.sort_by(|a, b| a.total_cmp(b));
            let q = rng.f64();
            assert_eq!(
                quantile_sorted(&xs, q).to_bits(),
                quantile_sorted_branching(&xs, q).to_bits()
            );
        });
    }

    #[test]
    fn quantile_on_unsorted_duplicates_equals_sorted_kernel() {
        // `quantile` must behave exactly as sort-then-kernel, even
        // with heavy duplication.
        let xs: [f64; 7] = [4.0, 1.0, 4.0, 4.0, 2.0, 1.0, 4.0];
        let mut sorted = xs;
        sorted.sort_by(|a, b| a.total_cmp(b));
        for i in 0..=10u32 {
            let q = f64::from(i) / 10.0;
            assert_eq!(
                quantile(&xs, q).unwrap().to_bits(),
                quantile_sorted(&sorted, q).to_bits()
            );
        }
    }

    #[test]
    fn mean_run_matches_mean() {
        assert_eq!(mean_run(&[2.0, 4.0]), 3.0);
        assert_eq!(mean(&[1e16, 1.0, 1.0]), Some(mean_run(&[1e16, 1.0, 1.0])));
        assert_eq!(median_sorted(&[1.0, 2.0, 3.0, 4.0]), 2.5);
    }

    #[test]
    fn variance_basic() {
        assert_eq!(variance(&[1.0]), None);
        let v = variance(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((v - 4.571428).abs() < 1e-4);
    }

    #[test]
    fn ecdf_steps() {
        let pts = ecdf(&[3.0, 1.0, 2.0, 2.0]);
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0], (1.0, 0.25));
        assert_eq!(pts[1], (2.0, 0.75));
        assert_eq!(pts[2], (3.0, 1.0));
        assert!(ecdf(&[]).is_empty());
    }

    #[test]
    fn fraction_basic() {
        assert_eq!(fraction(&[1, 2, 3, 4], |x| *x % 2 == 0), 0.5);
        assert_eq!(fraction::<i32>(&[], |_| true), 0.0);
    }
}
