//! Small statistics helpers used across BlameIt.

/// Mean of a slice; `None` for empty input.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Median of a slice (average of middle pair for even lengths);
/// `None` for empty input. Does not require sorted input.
pub fn median(xs: &[f64]) -> Option<f64> {
    quantile(xs, 0.5)
}

/// Quantile via linear interpolation on the sorted copy; `q` in
/// `[0, 1]`. `None` for empty input.
///
/// # Panics
/// Panics if `q` is outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
    if xs.is_empty() {
        return None;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    Some(quantile_sorted(&v, q))
}

/// Quantile of an already-sorted slice (linear interpolation).
///
/// # Panics
/// Panics if `q` is outside `[0, 1]` or the slice is empty.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
    assert!(!sorted.is_empty(), "quantile of empty slice");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Sample variance (n − 1 denominator); `None` for fewer than 2 points.
pub fn variance(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64)
}

/// Evaluation points of an empirical CDF: returns `(x, F(x))` pairs at
/// each distinct sorted sample, suitable for printing figure series.
pub fn ecdf(xs: &[f64]) -> Vec<(f64, f64)> {
    if xs.is_empty() {
        return Vec::new();
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let n = v.len() as f64;
    let mut out: Vec<(f64, f64)> = Vec::new();
    for (i, x) in v.iter().enumerate() {
        let f = (i + 1) as f64 / n;
        match out.last_mut() {
            Some((lx, lf)) if *lx == *x => *lf = f,
            _ => out.push((*x, f)),
        }
    }
    out
}

/// Fraction of samples satisfying a predicate.
pub fn fraction<T>(xs: &[T], pred: impl Fn(&T) -> bool) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().filter(|x| pred(x)).count() as f64 / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_median_basic() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
        assert_eq!(median(&[]), None);
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
    }

    #[test]
    fn quantiles() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(5.0));
        assert_eq!(quantile(&xs, 0.5), Some(3.0));
        assert!((quantile(&xs, 0.25).unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(quantile(&[7.0], 0.3), Some(7.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn quantile_rejects_bad_q() {
        quantile(&[1.0], 1.5);
    }

    #[test]
    fn variance_basic() {
        assert_eq!(variance(&[1.0]), None);
        let v = variance(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((v - 4.571428).abs() < 1e-4);
    }

    #[test]
    fn ecdf_steps() {
        let pts = ecdf(&[3.0, 1.0, 2.0, 2.0]);
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0], (1.0, 0.25));
        assert_eq!(pts[1], (2.0, 0.75));
        assert_eq!(pts[2], (3.0, 1.0));
        assert!(ecdf(&[]).is_empty());
    }

    #[test]
    fn fraction_basic() {
        assert_eq!(fraction(&[1, 2, 3, 4], |x| *x % 2 == 0), 0.5);
        assert_eq!(fraction::<i32>(&[], |_| true), 0.0);
    }
}
