//! Historical learning: expected RTTs, incident durations, client counts.
//!
//! Three learners feed BlameIt's decisions:
//!
//! * [`ExpectedRttLearner`] — §4.3: the *expected* RTT of each cloud
//!   location and each middle segment, learned as the median of the
//!   last 14 days of quartet means, split by device class. Algorithm 1
//!   compares against these (not the badness thresholds!) so that a
//!   left-shifted distribution is caught even when only part of it
//!   crosses the threshold (the paper's 40 ms vs 50 ms example).
//! * [`DurationHistory`] — §5.3(a): per-BGP-path empirical incident
//!   durations, from which the expected *remaining* duration
//!   `E[T | lasted t]` is computed (mean residual life).
//! * [`ClientCountHistory`] — §5.3(b): per-(path, time-of-day) client
//!   volume over the past 3 days, the predictor of how many clients an
//!   ongoing issue will impact.

use crate::fxhash::DetHashMap;
use crate::grouping::MiddleKey;
use blameit_simnet::TimeBucket;
use blameit_topology::rng::DetRng;
use blameit_topology::{CloudLocId, PathId};
use std::collections::VecDeque;

/// Key of an expected-RTT series.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RttKey {
    /// A cloud location (`c.expected-RTT`), per device class.
    Cloud(CloudLocId, bool),
    /// A middle segment (`b.expected-RTT`), per device class.
    Middle(MiddleKey, bool),
}

/// Rolling per-day reservoirs with a windowed median, one per key.
#[derive(Clone, Debug)]
pub struct ExpectedRttLearner {
    pub(crate) window_days: u32,
    pub(crate) day_cap: usize,
    pub(crate) map: DetHashMap<RttKey, VecDeque<(u32, Vec<f64>)>>,
    /// Per-(key, day) observation counts, for reservoir replacement.
    pub(crate) counts: DetHashMap<RttKey, u64>,
    /// Median cache, refreshed once per key per day: recomputing the
    /// window median on every lookup is an O(window · log) sort per
    /// quartet and dominates month-long runs; the paper's expected
    /// values are day-granular anyway (the median of the last 14
    /// *days*). An entry freezes the median at whatever observations
    /// existed at first lookup that day, so it is part of durable
    /// state: snapshots persist it verbatim (recomputing it later in
    /// the day would see more data and diverge).
    pub(crate) cache: std::cell::RefCell<DetHashMap<RttKey, (u32, Option<f64>)>>,
    pub(crate) rng: DetRng,
    pub(crate) latest_day: u32,
}

impl ExpectedRttLearner {
    /// A learner with the paper's 14-day window.
    pub fn new(seed: u64) -> Self {
        Self::with_window(14, seed)
    }

    /// A learner with a custom window (days) — for ablations.
    pub fn with_window(window_days: u32, seed: u64) -> Self {
        assert!(window_days >= 1, "window must be at least one day");
        ExpectedRttLearner {
            window_days,
            day_cap: 64,
            map: DetHashMap::default(),
            counts: DetHashMap::default(),
            cache: std::cell::RefCell::new(DetHashMap::default()),
            rng: DetRng::from_keys(seed, &[0xE59E]),
            latest_day: 0,
        }
    }

    /// Records one quartet-mean RTT for a key on a day. Days must be
    /// fed in non-decreasing order (the pipeline runs forward in time).
    pub fn observe(&mut self, key: RttKey, day: u32, rtt_ms: f64) {
        self.latest_day = self.latest_day.max(day);
        let series = self.map.entry(key).or_default();
        match series.back_mut() {
            Some((d, values)) if *d == day => {
                let seen = self.counts.entry(key).or_insert(0);
                *seen += 1;
                if values.len() < self.day_cap {
                    values.push(rtt_ms);
                } else {
                    // Reservoir replacement keeps the day's sample
                    // uniform without unbounded memory.
                    let j = self.rng.below(*seen);
                    if (j as usize) < self.day_cap {
                        values[j as usize] = rtt_ms;
                    }
                }
            }
            _ => {
                debug_assert!(series.back().is_none_or(|(d, _)| *d < day));
                series.push_back((day, vec![rtt_ms]));
                self.counts.insert(key, 1);
                // Evict days that fell out of the window.
                while series
                    .front()
                    .is_some_and(|(d, _)| *d + self.window_days <= day)
                {
                    series.pop_front();
                }
            }
        }
    }

    /// The learned expected RTT: the median of all retained values
    /// within the window ending at the latest observed day. `None` if
    /// the key has never been observed in the window.
    ///
    /// The value is cached per (key, day): within a day, additional
    /// observations do not move the reported median (matching the
    /// day-granular "median of the last 14 days" of §4.3, and keeping
    /// lookups O(1) on the hot path).
    pub fn expected(&self, key: RttKey) -> Option<f64> {
        if let Some((day, cached)) = self.cache.borrow().get(&key) {
            if *day == self.latest_day {
                return *cached;
            }
        }
        let value = self.compute_expected(key);
        self.cache
            .borrow_mut()
            .insert(key, (self.latest_day, value));
        value
    }

    fn compute_expected(&self, key: RttKey) -> Option<f64> {
        let series = self.map.get(&key)?;
        let cutoff = self.latest_day.saturating_sub(self.window_days - 1);
        let mut all: Vec<f64> = series
            .iter()
            .filter(|(d, _)| *d >= cutoff)
            .flat_map(|(_, v)| v.iter().copied())
            .collect();
        if all.is_empty() {
            return None;
        }
        all.sort_by(|a, b| a.total_cmp(b));
        Some(crate::stats::median_sorted(&all))
    }

    /// Number of keys being tracked.
    pub fn num_keys(&self) -> usize {
        self.map.len()
    }
}

/// Empirical incident durations per BGP path, with a global fallback.
#[derive(Clone, Debug, Default)]
pub struct DurationHistory {
    pub(crate) per_path: DetHashMap<PathId, VecDeque<u32>>,
    pub(crate) global: VecDeque<u32>,
    pub(crate) cap: usize,
}

impl DurationHistory {
    /// History retaining up to 512 incidents per path (and globally
    /// 8192).
    pub fn new() -> Self {
        DurationHistory {
            per_path: DetHashMap::default(),
            global: VecDeque::new(),
            cap: 512,
        }
    }

    /// Records a *completed* incident's duration in 5-minute buckets.
    pub fn record(&mut self, path: PathId, duration_buckets: u32) {
        let q = self.per_path.entry(path).or_default();
        if q.len() == self.cap {
            q.pop_front();
        }
        q.push_back(duration_buckets);
        if self.global.len() == self.cap * 16 {
            self.global.pop_front();
        }
        self.global.push_back(duration_buckets);
    }

    /// Expected *additional* buckets given the issue has already lasted
    /// `elapsed` buckets: the mean residual life over the path's
    /// history (global history if the path has fewer than 10 samples or
    /// nothing in its history survives past `elapsed`). Returns 1.0
    /// when no history is informative — the conservative "it might end
    /// next bucket" guess.
    pub fn expected_remaining(&self, path: PathId, elapsed: u32) -> f64 {
        let residual = |ds: &VecDeque<u32>| -> Option<f64> {
            let survivors: Vec<u32> = ds.iter().copied().filter(|d| *d > elapsed).collect();
            if survivors.is_empty() {
                None
            } else {
                Some(
                    survivors.iter().map(|d| (d - elapsed) as f64).sum::<f64>()
                        / survivors.len() as f64,
                )
            }
        };
        let per_path = self
            .per_path
            .get(&path)
            .filter(|ds| ds.len() >= 10)
            .and_then(residual);
        per_path.or_else(|| residual(&self.global)).unwrap_or(1.0)
    }

    /// Total incidents recorded (globally).
    pub fn total_recorded(&self) -> usize {
        self.global.len()
    }
}

/// Per-(path, time-of-day) client-volume history over a few days.
#[derive(Clone, Debug)]
pub struct ClientCountHistory {
    pub(crate) window_days: u32,
    pub(crate) map: DetHashMap<(PathId, u16), VecDeque<(u32, u64)>>,
}

impl ClientCountHistory {
    /// The paper's 3-day window.
    pub fn new() -> Self {
        Self::with_window(3)
    }

    /// Custom window (days).
    pub fn with_window(window_days: u32) -> Self {
        assert!(window_days >= 1);
        ClientCountHistory {
            window_days,
            map: DetHashMap::default(),
        }
    }

    /// Records the client volume seen on a path in a bucket.
    pub fn record(&mut self, path: PathId, bucket: TimeBucket, clients: u64) {
        let key = (path, bucket.slot_in_day() as u16);
        let day = bucket.day();
        let q = self.map.entry(key).or_default();
        match q.back_mut() {
            Some((d, c)) if *d == day => *c += clients,
            _ => q.push_back((day, clients)),
        }
        while q.front().is_some_and(|(d, _)| *d + self.window_days < day) {
            q.pop_front();
        }
    }

    /// Predicts the client volume for a path in a bucket: the mean of
    /// the same time-of-day slot over the past `window_days` days
    /// (strictly before the bucket's own day). `None` with no history.
    pub fn predict(&self, path: PathId, bucket: TimeBucket) -> Option<f64> {
        let key = (path, bucket.slot_in_day() as u16);
        let day = bucket.day();
        let q = self.map.get(&key)?;
        let lo = day.saturating_sub(self.window_days);
        let vals: Vec<u64> = q
            .iter()
            .filter(|(d, _)| *d >= lo && *d < day)
            .map(|(_, c)| *c)
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<u64>() as f64 / vals.len() as f64)
        }
    }
}

impl Default for ClientCountHistory {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud_key() -> RttKey {
        RttKey::Cloud(CloudLocId(1), false)
    }

    #[test]
    fn expected_rtt_median_of_window() {
        let mut l = ExpectedRttLearner::new(1);
        for day in 0..5 {
            for v in [10.0, 20.0, 30.0] {
                l.observe(cloud_key(), day, v);
            }
        }
        assert_eq!(l.expected(cloud_key()), Some(20.0));
        assert_eq!(l.expected(RttKey::Cloud(CloudLocId(9), false)), None);
    }

    #[test]
    fn expected_rtt_window_evicts_old_days() {
        let mut l = ExpectedRttLearner::with_window(3, 1);
        l.observe(cloud_key(), 0, 100.0);
        l.observe(cloud_key(), 10, 10.0);
        l.observe(cloud_key(), 11, 20.0);
        // Day 0 fell out of the 3-day window ending at day 11.
        assert_eq!(l.expected(cloud_key()), Some(15.0));
    }

    #[test]
    fn expected_rtt_tracks_shift() {
        // §4.3's example: history says ~40 ms; after a fault RTTs rise.
        // The learned value must reflect the historical median.
        let mut l = ExpectedRttLearner::new(2);
        for day in 0..14 {
            for i in 0..20 {
                l.observe(cloud_key(), day, 35.0 + (i as f64) * 0.5); // 35–45 ms
            }
        }
        let e = l.expected(cloud_key()).unwrap();
        assert!((38.0..42.0).contains(&e), "expected ≈40, got {e}");
    }

    #[test]
    fn reservoir_caps_memory_but_stays_representative() {
        let mut l = ExpectedRttLearner::new(3);
        // 10_000 observations on one day, uniform 0..100.
        for i in 0..10_000 {
            l.observe(cloud_key(), 0, (i % 100) as f64);
        }
        let e = l.expected(cloud_key()).unwrap();
        assert!((30.0..70.0).contains(&e), "median of uniform ≈50, got {e}");
    }

    #[test]
    fn mobile_and_nonmobile_learned_separately() {
        let mut l = ExpectedRttLearner::new(4);
        l.observe(RttKey::Cloud(CloudLocId(0), false), 0, 20.0);
        l.observe(RttKey::Cloud(CloudLocId(0), true), 0, 60.0);
        assert_eq!(l.expected(RttKey::Cloud(CloudLocId(0), false)), Some(20.0));
        assert_eq!(l.expected(RttKey::Cloud(CloudLocId(0), true)), Some(60.0));
        assert_eq!(l.num_keys(), 2);
    }

    #[test]
    fn duration_mean_residual_life() {
        let mut h = DurationHistory::new();
        let path = PathId(1);
        for d in [1u32, 1, 1, 1, 1, 1, 1, 2, 10, 20] {
            h.record(path, d);
        }
        // At elapsed 0: mean of durations = (7+2+10+20)/10 = 3.9.
        let e0 = h.expected_remaining(path, 0);
        assert!((e0 - 3.9).abs() < 1e-9, "{e0}");
        // At elapsed 2: survivors {10, 20} → mean residual (8+18)/2 = 13.
        let e2 = h.expected_remaining(path, 2);
        assert!((e2 - 13.0).abs() < 1e-9, "{e2}");
        // Long-lived issues are expected to continue longer — the
        // long-tail property BlameIt exploits (§5.3).
        assert!(e2 > e0);
    }

    #[test]
    fn duration_falls_back_to_global() {
        let mut h = DurationHistory::new();
        // Path 1 has few samples; global gets them all plus more.
        for d in [5u32, 5, 5] {
            h.record(PathId(1), d);
        }
        for d in [2u32; 20] {
            h.record(PathId(2), d);
        }
        // Path 3 unknown → global history (mixture of 5s and 2s).
        let e = h.expected_remaining(PathId(3), 0);
        assert!((2.0..5.0).contains(&e), "{e}");
        // Path 1 has <10 samples → also global.
        let e1 = h.expected_remaining(PathId(1), 0);
        assert_eq!(e, e1);
        // No survivors anywhere → conservative 1.0.
        assert_eq!(h.expected_remaining(PathId(1), 100), 1.0);
        // Empty history entirely.
        assert_eq!(DurationHistory::new().expected_remaining(PathId(9), 3), 1.0);
    }

    #[test]
    fn client_count_same_slot_prev_days() {
        let mut h = ClientCountHistory::new();
        let path = PathId(7);
        let slot = 100u32;
        for day in 0..3 {
            let b = TimeBucket(day * blameit_simnet::BUCKETS_PER_DAY + slot);
            h.record(path, b, 100 + day as u64 * 20); // 100, 120, 140
        }
        let target = TimeBucket(3 * blameit_simnet::BUCKETS_PER_DAY + slot);
        let p = h.predict(path, target).unwrap();
        assert!((p - 120.0).abs() < 1e-9, "{p}");
        // A different slot has no history.
        let other = TimeBucket(3 * blameit_simnet::BUCKETS_PER_DAY + slot + 1);
        assert_eq!(h.predict(path, other), None);
    }

    #[test]
    fn client_count_excludes_same_day() {
        let mut h = ClientCountHistory::new();
        let path = PathId(7);
        let b = TimeBucket(5 * blameit_simnet::BUCKETS_PER_DAY + 10);
        h.record(path, b, 999);
        // Same-day observation must not feed the prediction for itself.
        assert_eq!(h.predict(path, b), None);
        let next_day = TimeBucket(6 * blameit_simnet::BUCKETS_PER_DAY + 10);
        assert_eq!(h.predict(path, next_day), Some(999.0));
    }

    #[test]
    fn client_count_accumulates_within_day() {
        let mut h = ClientCountHistory::new();
        let path = PathId(1);
        let b = TimeBucket(10);
        h.record(path, b, 50);
        h.record(path, b, 25);
        let next_day = TimeBucket(blameit_simnet::BUCKETS_PER_DAY + 10);
        assert_eq!(h.predict(path, next_day), Some(75.0));
    }
}
