//! Region- and device-specific RTT badness thresholds.
//!
//! "We use Azure's targets as the latency badness thresholds and it
//! varies according to the region and the device connectivity type. …
//! The targets are … set such that no client prefix's RTT is
//! consistently above the threshold" (§2.1). The paper also notes the
//! USA's targets are *aggressive*, which is why the USA shows a high
//! bad-quartet fraction in Fig. 2 despite good infrastructure.
//!
//! [`BadnessThresholds::calibrate`] reproduces that target-setting
//! process against a simulated world: per (region, device class), the
//! threshold is a high quantile of fault-free baseline RTTs plus
//! headroom — then tightened for the USA.

use crate::stats::quantile_sorted;
use blameit_simnet::{SimTime, World};
use blameit_topology::Region;

/// Badness thresholds per (region, mobile?) in milliseconds.
#[derive(Clone, Debug, PartialEq)]
pub struct BadnessThresholds {
    /// `[region][device]` with device 0 = non-mobile, 1 = mobile.
    ms: [[f64; 2]; Region::ALL.len()],
}

impl BadnessThresholds {
    /// Uniform thresholds (testing convenience).
    pub fn uniform(ms: f64) -> Self {
        BadnessThresholds {
            ms: [[ms; 2]; Region::ALL.len()],
        }
    }

    /// The threshold for a region/device class.
    pub fn get(&self, region: Region, mobile: bool) -> f64 {
        self.ms[region.index()][usize::from(mobile)]
    }

    /// Overrides one threshold.
    pub fn set(&mut self, region: Region, mobile: bool, ms: f64) {
        self.ms[region.index()][usize::from(mobile)] = ms;
    }

    /// Derives targets from a world's fault-free baselines: for each
    /// (region, device class), the p-`quantile_q` of client baseline
    /// RTTs (primary location, midday, no faults/congestion) times
    /// `headroom`. The USA threshold is then multiplied by
    /// `usa_aggressiveness` (< 1) to reproduce the paper's aggressive
    /// US targets.
    pub fn calibrate(
        world: &World,
        quantile_q: f64,
        headroom: f64,
        usa_aggressiveness: f64,
    ) -> Self {
        let topo = world.topology();
        let latency = &world.config().latency;
        // Midday UTC on day 0 is arbitrary but fixed; congestion is
        // excluded explicitly below.
        let t = SimTime::from_hours(12);
        let mut samples: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(), Vec::new()]; Region::ALL.len()];
        for c in &topo.clients {
            // Worst route option toward the primary location: BGP churn
            // legitimately parks prefixes on alternates for hours, and
            // the paper's targets are "set such that no client prefix's
            // RTT is consistently above the threshold" — which includes
            // its alternate-path normal.
            let rtt = topo
                .routes_for(c.primary_loc, c)
                .options
                .iter()
                .map(|route| {
                    let seg = latency.baseline(topo, c.primary_loc, c, route, t);
                    seg.total() - latency.evening_congestion(topo, c, t)
                })
                .fold(f64::MIN, f64::max);
            samples[c.region.index()][usize::from(c.mobile)].push(rtt);
        }
        let mut ms = [[0.0; 2]; Region::ALL.len()];
        for (ri, per_dev) in samples.iter_mut().enumerate() {
            for (di, xs) in per_dev.iter_mut().enumerate() {
                // Sort each group once and query the sorted kernel —
                // `stats::quantile` would copy and re-sort per call.
                xs.sort_by(|a, b| a.total_cmp(b));
                let q = if xs.is_empty() {
                    100.0
                } else {
                    quantile_sorted(xs, quantile_q)
                };
                let mut v = q * headroom;
                if Region::ALL[ri] == Region::UnitedStates {
                    v *= usa_aggressiveness;
                }
                ms[ri][di] = v;
            }
        }
        BadnessThresholds { ms }
    }

    /// Default calibration: p95 worst-option baseline × 1.25 headroom,
    /// USA × 0.82.
    pub fn default_for(world: &World) -> Self {
        Self::calibrate(world, 0.95, 1.25, 0.82)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blameit_simnet::WorldConfig;

    #[test]
    fn uniform_and_set() {
        let mut t = BadnessThresholds::uniform(50.0);
        assert_eq!(t.get(Region::India, true), 50.0);
        t.set(Region::India, true, 90.0);
        assert_eq!(t.get(Region::India, true), 90.0);
        assert_eq!(t.get(Region::India, false), 50.0);
    }

    #[test]
    fn calibrated_thresholds_sane() {
        let w = World::new(WorldConfig::tiny(1, 17));
        let th = BadnessThresholds::default_for(&w);
        for r in Region::ALL {
            for mobile in [false, true] {
                let v = th.get(r, mobile);
                assert!((5.0..500.0).contains(&v), "{r}/{mobile}: {v}");
            }
            // Mobile last miles are slower → higher targets.
            assert!(
                th.get(r, true) > th.get(r, false),
                "{r}: mobile threshold must exceed non-mobile"
            );
        }
    }

    #[test]
    fn most_baseline_quartets_below_threshold() {
        // The paper: targets are set so that no prefix is
        // *consistently* above them. Check that at a calm hour the
        // overwhelming majority of quartets are good.
        let w = World::new(WorldConfig::tiny(1, 23));
        let th = BadnessThresholds::default_for(&w);
        let topo = w.topology();
        let mut good = 0usize;
        let mut total = 0usize;
        let t = SimTime::from_hours(12);
        for c in &topo.clients {
            let route = &topo.routes_for(c.primary_loc, c).options[0];
            let rtt = w
                .config()
                .latency
                .baseline(topo, c.primary_loc, c, route, t)
                .total();
            total += 1;
            if rtt <= th.get(c.region, c.mobile) {
                good += 1;
            }
        }
        assert!(
            good as f64 / total as f64 > 0.9,
            "only {good}/{total} baseline RTTs under threshold"
        );
    }

    #[test]
    fn usa_is_aggressive() {
        let w = World::new(WorldConfig::tiny(1, 29));
        let loose = BadnessThresholds::calibrate(&w, 0.95, 1.35, 1.0);
        let tight = BadnessThresholds::calibrate(&w, 0.95, 1.35, 0.82);
        assert!(tight.get(Region::UnitedStates, false) < loose.get(Region::UnitedStates, false));
        assert_eq!(
            tight.get(Region::Europe, false),
            loose.get(Region::Europe, false)
        );
    }
}
