//! The data-plane abstraction BlameIt runs against.
//!
//! In production (paper Fig. 7) BlameIt consumes: the RTT collector
//! stream, the IP→AS and BGP tables, an IBGP churn feed, and a
//! traceroute agent at each edge. [`Backend`] bundles those five
//! capabilities behind one trait so the engine, the baselines, and the
//! experiment harness all run against the same interface;
//! [`WorldBackend`] implements it over the simulator, counting every
//! traceroute issued (probe volume is a headline metric: BlameIt
//! claims 72× fewer probes than an active-only solution, §6.5).

use blameit_simnet::{QuartetObs, SimTime, TimeBucket, TimeRange, Traceroute, World};
use blameit_topology::bgp::BgpChurnEvent;
use blameit_topology::{Asn, CloudLocId, IpPrefix, MetroId, PathId, Prefix24, Region};
use std::sync::atomic::{AtomicU64, Ordering};

/// Routing metadata for one (location, client /24) pair at an instant —
/// what the paper's "IP-AS Table" and "BGP Table" joins provide.
#[derive(Clone, Debug, PartialEq)]
pub struct RouteInfo {
    /// Interned middle path (the BlameIt middle-segment key).
    pub path: PathId,
    /// The middle ASes, cloud→client order (copy of the interned path).
    pub middle: Vec<Asn>,
    /// Client (origin) AS.
    pub origin: Asn,
    /// Client home metro.
    pub metro: MetroId,
    /// Client region (drives the badness threshold).
    pub region: Region,
    /// BGP-announced prefix covering the /24.
    pub prefix: IpPrefix,
}

/// Everything BlameIt needs from the serving infrastructure.
///
/// `Sync` is a supertrait so the sharded tick can hand `&B` to scoped
/// worker threads; implementations keep any mutable accounting (like
/// the probe counter) behind interior mutability.
pub trait Backend: Sync {
    /// All quartet observations recorded in a bucket.
    fn quartets_in(&self, bucket: TimeBucket) -> Vec<QuartetObs>;

    /// Routing metadata for a (location, /24) pair at `at`; `None` for
    /// unknown clients.
    fn route_info(&self, loc: CloudLocId, p24: Prefix24, at: SimTime) -> Option<RouteInfo>;

    /// Issues a traceroute (counted!). `None` for unknown targets.
    fn traceroute(&self, loc: CloudLocId, p24: Prefix24, at: SimTime) -> Option<Traceroute>;

    /// IBGP-listener churn events within a range.
    fn churn_events(&self, range: TimeRange) -> Vec<BgpChurnEvent>;

    /// All cloud edge locations.
    fn cloud_locations(&self) -> Vec<CloudLocId>;

    /// Total traceroutes issued so far through this backend.
    fn probes_issued(&self) -> u64;
}

/// [`Backend`] over a simulated [`World`], with probe accounting.
///
/// The probe counter is atomic so concurrent shard workers can issue
/// traceroutes through a shared `&WorldBackend` without losing counts.
/// Quartet ingest — the per-client activity/latency sampling that
/// dominates a tick at scale — fans out over [`crate::shard::parallel_map`];
/// each client's quartets are pure functions of `(seed, ids, bucket)`,
/// and the order-preserving map keeps the stream byte-identical to the
/// sequential loop at any thread count.
#[derive(Debug)]
pub struct WorldBackend<'w> {
    world: &'w World,
    probes: AtomicU64,
    parallelism: usize,
}

impl<'w> WorldBackend<'w> {
    /// Wraps a world; ingest parallelism defaults to
    /// [`crate::shard::default_parallelism`] (safe because the output
    /// does not depend on the thread count).
    pub fn new(world: &'w World) -> Self {
        Self::with_parallelism(world, crate::shard::default_parallelism())
    }

    /// Wraps a world with an explicit ingest thread count (`0` and `1`
    /// both mean inline sequential ingest).
    pub fn with_parallelism(world: &'w World, parallelism: usize) -> Self {
        WorldBackend {
            world,
            probes: AtomicU64::new(0),
            parallelism: parallelism.max(1),
        }
    }

    /// The wrapped world (for evaluation-side ground-truth queries).
    pub fn world(&self) -> &'w World {
        self.world
    }

    /// Resets the probe counter (e.g. after a warm-up phase).
    pub fn reset_probes(&mut self) {
        self.probes.store(0, Ordering::Relaxed);
    }
}

impl Backend for WorldBackend<'_> {
    fn quartets_in(&self, bucket: TimeBucket) -> Vec<QuartetObs> {
        // Same order as `World::quartets_in`: per client, primary then
        // secondary, clients in topology order.
        let world = self.world;
        let clients = &world.topology().clients;
        crate::shard::parallel_map(self.parallelism, clients, |_, c| {
            [
                world.quartet(c.primary_loc, c, bucket),
                c.secondary_loc
                    .and_then(|sec| world.quartet(sec, c, bucket)),
            ]
        })
        .into_iter()
        .flatten()
        .flatten()
        .collect()
    }

    fn route_info(&self, loc: CloudLocId, p24: Prefix24, at: SimTime) -> Option<RouteInfo> {
        let topo = self.world.topology();
        let c = topo.client(p24)?;
        let route = self.world.route_at(loc, c, at);
        Some(RouteInfo {
            path: route.path_id,
            middle: topo.paths.get(route.path_id).middle.clone(),
            origin: c.origin,
            metro: c.metro,
            region: c.region,
            prefix: topo.announced_prefix(c).prefix,
        })
    }

    fn traceroute(&self, loc: CloudLocId, p24: Prefix24, at: SimTime) -> Option<Traceroute> {
        let mut span = blameit_obs::span!(
            "blameit::backend",
            "traceroute",
            loc = loc.0,
            at = at.secs()
        );
        self.probes.fetch_add(1, Ordering::Relaxed);
        let tr = self.world.traceroute(loc, p24, at);
        span.record("hops", tr.as_ref().map_or(0, |t| t.hops.len()));
        tr
    }

    fn churn_events(&self, range: TimeRange) -> Vec<BgpChurnEvent> {
        self.world.churn_events(range)
    }

    fn cloud_locations(&self) -> Vec<CloudLocId> {
        self.world
            .topology()
            .cloud_locations
            .iter()
            .map(|c| c.id)
            .collect()
    }

    fn probes_issued(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blameit_simnet::WorldConfig;

    #[test]
    fn world_backend_roundtrip() {
        let w = World::new(WorldConfig::tiny(1, 4));
        let mut b = WorldBackend::new(&w);
        let c = &w.topology().clients[0];
        let info = b
            .route_info(c.primary_loc, c.p24, SimTime(600))
            .expect("known client");
        assert_eq!(info.origin, c.origin);
        assert_eq!(info.region, c.region);
        assert!(info.prefix.covers_24(c.p24));
        // Middle matches the interned path.
        assert_eq!(info.middle, w.topology().paths.get(info.path).middle);
        assert_eq!(b.probes_issued(), 0);
        assert!(b.traceroute(c.primary_loc, c.p24, SimTime(600)).is_some());
        assert!(b
            .traceroute(c.primary_loc, Prefix24::from_block(0xFFFFFF), SimTime(0))
            .is_none());
        // Failed lookups still count: the probe was sent.
        assert_eq!(b.probes_issued(), 2);
        b.reset_probes();
        assert_eq!(b.probes_issued(), 0);
    }

    #[test]
    fn parallel_ingest_matches_sequential_world_order() {
        let w = World::new(WorldConfig::tiny(2, 7));
        for bucket in [TimeBucket(0), TimeBucket(12), TimeBucket(100)] {
            let want = w.quartets_in(bucket);
            for par in [1, 2, 8] {
                let b = WorldBackend::with_parallelism(&w, par);
                assert_eq!(b.quartets_in(bucket), want, "par={par}");
            }
        }
    }

    #[test]
    fn backend_lists_locations() {
        let w = World::new(WorldConfig::tiny(1, 4));
        let b = WorldBackend::new(&w);
        assert_eq!(
            b.cloud_locations().len(),
            w.topology().cloud_locations.len()
        );
    }
}
