//! The data-plane abstraction BlameIt runs against.
//!
//! In production (paper Fig. 7) BlameIt consumes: the RTT collector
//! stream, the IP→AS and BGP tables, an IBGP churn feed, and a
//! traceroute agent at each edge. [`Backend`] bundles those five
//! capabilities behind one trait so the engine, the baselines, and the
//! experiment harness all run against the same interface;
//! [`WorldBackend`] implements it over the simulator, counting every
//! traceroute issued (probe volume is a headline metric: BlameIt
//! claims 72× fewer probes than an active-only solution, §6.5).

use blameit_obs::metrics::{Counter, MetricsRegistry};
use blameit_simnet::{
    ChurnFault, FaultPlan, ProbeFault, QuartetObs, RttRecord, SimTime, TimeBucket, TimeRange,
    Traceroute, World,
};
use blameit_topology::bgp::BgpChurnEvent;
use blameit_topology::{Asn, CloudLocId, IpPrefix, MetroId, PathId, Prefix24, Region};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Routing metadata for one (location, client /24) pair at an instant —
/// what the paper's "IP-AS Table" and "BGP Table" joins provide.
#[derive(Clone, Debug, PartialEq)]
pub struct RouteInfo {
    /// Interned middle path (the BlameIt middle-segment key).
    pub path: PathId,
    /// The middle ASes, cloud→client order (copy of the interned path).
    pub middle: Vec<Asn>,
    /// Client (origin) AS.
    pub origin: Asn,
    /// Client home metro.
    pub metro: MetroId,
    /// Client region (drives the badness threshold).
    pub region: Region,
    /// BGP-announced prefix covering the /24.
    pub prefix: IpPrefix,
}

/// Everything BlameIt needs from the serving infrastructure.
///
/// `Sync` is a supertrait so the sharded tick can hand `&B` to scoped
/// worker threads; implementations keep any mutable accounting (like
/// the probe counter) behind interior mutability.
pub trait Backend: Sync {
    /// All quartet observations recorded in a bucket.
    fn quartets_in(&self, bucket: TimeBucket) -> Vec<QuartetObs>;

    /// The raw RTT sample stream behind a bucket, for backends that can
    /// expose the collector feed *before* aggregation: records arrive
    /// grouped per client (each quartet's samples contiguous), the
    /// shape [`crate::columnar`]'s run-collapse fast path is built for.
    /// Returns `None` when the backend only carries pre-aggregated
    /// observations — callers must fall back to [`Backend::quartets_in`].
    ///
    /// Note the simulator's pre-aggregated [`Backend::quartets_in`]
    /// means are sampled directly (a separate RNG stream), so
    /// aggregating this record stream does not reproduce those exact
    /// observations; the record stream is the ground truth for the
    /// ingest bench and the columnar differential harness, while the
    /// engine tick stays on the aggregated feed.
    fn rtt_records_in(&self, _bucket: TimeBucket) -> Option<Vec<RttRecord>> {
        None
    }

    /// The bucket's record stream in columnar (struct-of-arrays) form:
    /// pre-packed subkeys plus the RTT column, sorted by key with each
    /// key's samples in stream order — the shape the ingest kernel
    /// consumes without touching per-record structs or its sort
    /// fallbacks. The default columnarizes and key-sorts
    /// [`Backend::rtt_records_in`] (the collector-side shuffle);
    /// backends whose collector is natively columnar can override to
    /// skip the row-form detour entirely.
    fn record_batch_in(&self, bucket: TimeBucket) -> Option<crate::columnar::RecordBatch> {
        self.rtt_records_in(bucket).map(|rs| {
            let mut batch = crate::columnar::RecordBatch::from_records(bucket, &rs);
            batch.sort_by_key();
            batch
        })
    }

    /// Routing metadata for a (location, /24) pair at `at`; `None` for
    /// unknown clients.
    fn route_info(&self, loc: CloudLocId, p24: Prefix24, at: SimTime) -> Option<RouteInfo>;

    /// Issues a traceroute (counted!). `None` for unknown targets.
    fn traceroute(&self, loc: CloudLocId, p24: Prefix24, at: SimTime) -> Option<Traceroute>;

    /// IBGP-listener churn events within a range.
    fn churn_events(&self, range: TimeRange) -> Vec<BgpChurnEvent>;

    /// All cloud edge locations.
    fn cloud_locations(&self) -> Vec<CloudLocId>;

    /// Total traceroutes issued so far through this backend.
    fn probes_issued(&self) -> u64;
}

/// [`Backend`] over a simulated [`World`], with probe accounting.
///
/// The probe counter is atomic so concurrent shard workers can issue
/// traceroutes through a shared `&WorldBackend` without losing counts.
/// Quartet ingest — the per-client activity/latency sampling that
/// dominates a tick at scale — fans out over [`crate::shard::parallel_map`];
/// each client's quartets are pure functions of `(seed, ids, bucket)`,
/// and the order-preserving map keeps the stream byte-identical to the
/// sequential loop at any thread count.
#[derive(Debug)]
pub struct WorldBackend<'w> {
    world: &'w World,
    probes: AtomicU64,
    parallelism: usize,
}

impl<'w> WorldBackend<'w> {
    /// Wraps a world; ingest parallelism defaults to
    /// [`crate::shard::default_parallelism`] (safe because the output
    /// does not depend on the thread count).
    pub fn new(world: &'w World) -> Self {
        Self::with_parallelism(world, crate::shard::default_parallelism())
    }

    /// Wraps a world with an explicit ingest thread count (`0` and `1`
    /// both mean inline sequential ingest).
    pub fn with_parallelism(world: &'w World, parallelism: usize) -> Self {
        WorldBackend {
            world,
            probes: AtomicU64::new(0),
            parallelism: parallelism.max(1),
        }
    }

    /// The wrapped world (for evaluation-side ground-truth queries).
    pub fn world(&self) -> &'w World {
        self.world
    }

    /// Resets the probe counter (e.g. after a warm-up phase).
    pub fn reset_probes(&mut self) {
        self.probes.store(0, Ordering::Relaxed);
    }
}

impl Backend for WorldBackend<'_> {
    fn quartets_in(&self, bucket: TimeBucket) -> Vec<QuartetObs> {
        // Same order as `World::quartets_in`: per client, primary then
        // secondary, clients in topology order.
        let world = self.world;
        let clients = &world.topology().clients;
        crate::shard::parallel_map(self.parallelism, clients, |_, c| {
            [
                world.quartet(c.primary_loc, c, bucket),
                c.secondary_loc
                    .and_then(|sec| world.quartet(sec, c, bucket)),
            ]
        })
        .into_iter()
        .flatten()
        .flatten()
        .collect()
    }

    fn rtt_records_in(&self, bucket: TimeBucket) -> Option<Vec<RttRecord>> {
        // Same client order as `quartets_in`; each client contributes
        // its primary-location samples then (if dual-homed) the
        // secondary's, so every quartet's records are one contiguous
        // run.
        let world = self.world;
        let clients = &world.topology().clients;
        Some(
            crate::shard::parallel_map(self.parallelism, clients, |_, c| {
                let mut recs = world.rtt_records(c.primary_loc, c, bucket);
                if let Some(sec) = c.secondary_loc {
                    recs.extend(world.rtt_records(sec, c, bucket));
                }
                recs
            })
            .into_iter()
            .flatten()
            .collect(),
        )
    }

    fn route_info(&self, loc: CloudLocId, p24: Prefix24, at: SimTime) -> Option<RouteInfo> {
        let topo = self.world.topology();
        let c = topo.client(p24)?;
        let route = self.world.route_at(loc, c, at);
        Some(RouteInfo {
            path: route.path_id,
            middle: topo.paths.get(route.path_id).middle.clone(),
            origin: c.origin,
            metro: c.metro,
            region: c.region,
            prefix: topo.announced_prefix(c).prefix,
        })
    }

    fn traceroute(&self, loc: CloudLocId, p24: Prefix24, at: SimTime) -> Option<Traceroute> {
        let mut span = blameit_obs::span!(
            "blameit::backend",
            "traceroute",
            loc = loc.0,
            at = at.secs()
        );
        self.probes.fetch_add(1, Ordering::Relaxed);
        let tr = self.world.traceroute(loc, p24, at);
        span.record("hops", tr.as_ref().map_or(0, |t| t.hops.len()));
        tr
    }

    fn churn_events(&self, range: TimeRange) -> Vec<BgpChurnEvent> {
        self.world.churn_events(range)
    }

    fn cloud_locations(&self) -> Vec<CloudLocId> {
        self.world
            .topology()
            .cloud_locations
            .iter()
            .map(|c| c.id)
            .collect()
    }

    fn probes_issued(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }
}

/// Per-kind injection counts of a [`ChaosBackend`], in a fixed order.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Traceroutes answered with `None`.
    pub probe_timeouts: u64,
    /// Traceroutes returned with a truncated hop list.
    pub probes_truncated: u64,
    /// Traceroutes whose result timestamp was pushed forward.
    pub probes_delayed: u64,
    /// Whole quartet buckets dropped.
    pub quartet_batches_dropped: u64,
    /// Route-table lookups answered with `None`.
    pub route_infos_dropped: u64,
    /// Churn events delivered twice.
    pub churn_duplicated: u64,
    /// Churn events delivered late.
    pub churn_delayed: u64,
}

impl ChaosStats {
    /// Total faults injected across all kinds.
    pub fn total(&self) -> u64 {
        self.probe_timeouts
            + self.probes_truncated
            + self.probes_delayed
            + self.quartet_batches_dropped
            + self.route_infos_dropped
            + self.churn_duplicated
            + self.churn_delayed
    }
}

/// Indices into the per-kind counter arrays; order matches
/// [`ChaosStats`] field order and `KIND_LABELS`.
const KIND_PROBE_TIMEOUT: usize = 0;
const KIND_PROBE_TRUNCATED: usize = 1;
const KIND_PROBE_DELAYED: usize = 2;
const KIND_BATCH_DROPPED: usize = 3;
const KIND_ROUTE_DROPPED: usize = 4;
const KIND_CHURN_DUPLICATED: usize = 5;
const KIND_CHURN_DELAYED: usize = 6;
/// The `kind` labels on `blameit_chaos_faults_injected_total`, in
/// counter-array order. Shared with the snapshot codec so chaos
/// injection counters survive snapshot round-trips.
pub(crate) const KIND_LABELS: [&str; 7] = [
    "probe_timeout",
    "probe_truncated",
    "probe_delayed",
    "quartet_batch_dropped",
    "route_info_dropped",
    "churn_duplicated",
    "churn_delayed",
];

/// [`Backend`] decorator that injects the measurement-plane faults of a
/// [`FaultPlan`] between the engine and any inner backend.
///
/// Every fault decision is keyed on `(plan seed, entity ids, time)` —
/// never on call order or thread identity — so a wrapped run stays
/// byte-deterministic at any thread count, and a zero-rate plan is
/// fully transparent (same answers, same probe accounting).
#[derive(Debug)]
pub struct ChaosBackend<B> {
    inner: B,
    plan: FaultPlan,
    injected: [AtomicU64; 7],
    counters: Option<[Arc<Counter>; 7]>,
}

impl<B: Backend> ChaosBackend<B> {
    /// Wraps `inner` with a fault plan.
    pub fn new(inner: B, plan: FaultPlan) -> Self {
        ChaosBackend {
            inner,
            plan,
            injected: Default::default(),
            counters: None,
        }
    }

    /// Wraps `inner` and additionally mirrors every injection into
    /// `blameit_chaos_faults_injected_total{kind=…}` counters on
    /// `registry` (share the registry with the engine to get one
    /// exposition covering both sides).
    pub fn with_registry(inner: B, plan: FaultPlan, registry: &MetricsRegistry) -> Self {
        let counters = KIND_LABELS.map(|kind| {
            registry.counter_with("blameit_chaos_faults_injected_total", &[("kind", kind)])
        });
        ChaosBackend {
            inner,
            plan,
            injected: Default::default(),
            counters: Some(counters),
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// The active fault plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Snapshot of per-kind injection counts.
    pub fn stats(&self) -> ChaosStats {
        let n = |i: usize| self.injected[i].load(Ordering::Relaxed);
        ChaosStats {
            probe_timeouts: n(KIND_PROBE_TIMEOUT),
            probes_truncated: n(KIND_PROBE_TRUNCATED),
            probes_delayed: n(KIND_PROBE_DELAYED),
            quartet_batches_dropped: n(KIND_BATCH_DROPPED),
            route_infos_dropped: n(KIND_ROUTE_DROPPED),
            churn_duplicated: n(KIND_CHURN_DUPLICATED),
            churn_delayed: n(KIND_CHURN_DELAYED),
        }
    }

    /// Total faults injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.stats().total()
    }

    fn inject(&self, kind: usize) {
        self.injected[kind].fetch_add(1, Ordering::Relaxed);
        if let Some(counters) = &self.counters {
            counters[kind].inc();
        }
        let _span = blameit_obs::span!("blameit::chaos", "inject", kind = KIND_LABELS[kind]);
    }
}

impl<B: Backend> Backend for ChaosBackend<B> {
    fn quartets_in(&self, bucket: TimeBucket) -> Vec<QuartetObs> {
        if self.plan.drop_quartet_batch(bucket) {
            self.inject(KIND_BATCH_DROPPED);
            return Vec::new();
        }
        self.inner.quartets_in(bucket)
    }

    fn rtt_records_in(&self, bucket: TimeBucket) -> Option<Vec<RttRecord>> {
        // A dropped collector batch loses the raw samples too.
        if self.plan.drop_quartet_batch(bucket) {
            self.inject(KIND_BATCH_DROPPED);
            return Some(Vec::new());
        }
        self.inner.rtt_records_in(bucket)
    }

    fn route_info(&self, loc: CloudLocId, p24: Prefix24, at: SimTime) -> Option<RouteInfo> {
        if self.plan.drop_route_info(loc, p24, at) {
            self.inject(KIND_ROUTE_DROPPED);
            return None;
        }
        self.inner.route_info(loc, p24, at)
    }

    fn traceroute(&self, loc: CloudLocId, p24: Prefix24, at: SimTime) -> Option<Traceroute> {
        // The inner backend is always consulted so the probe *counts*:
        // a timed-out traceroute was still sent.
        let tr = self.inner.traceroute(loc, p24, at);
        match self.plan.probe_fault(loc, p24, at) {
            ProbeFault::None => tr,
            ProbeFault::Timeout => {
                self.inject(KIND_PROBE_TIMEOUT);
                None
            }
            ProbeFault::Truncate { keep_fraction } => {
                let mut tr = tr?;
                if tr.hops.len() < 2 {
                    // Nothing to cut without emptying the result; a
                    // one-hop answer degenerates to a timeout.
                    self.inject(KIND_PROBE_TIMEOUT);
                    return None;
                }
                let keep = ((tr.hops.len() as f64 * keep_fraction).ceil() as usize)
                    .clamp(1, tr.hops.len() - 1);
                tr.hops.truncate(keep);
                self.inject(KIND_PROBE_TRUNCATED);
                Some(tr)
            }
            ProbeFault::Slow { by_secs } => {
                let mut tr = tr?;
                tr.at = tr.at + by_secs;
                self.inject(KIND_PROBE_DELAYED);
                Some(tr)
            }
        }
    }

    fn churn_events(&self, range: TimeRange) -> Vec<BgpChurnEvent> {
        if !self.plan.has_churn_faults() {
            return self.inner.churn_events(range);
        }
        // Widen the query backwards so events delayed *into* this
        // window are seen. The fate of an event is keyed on its own
        // identity, and engine consumers query contiguous
        // non-overlapping windows, so each event is delivered exactly
        // once (at its effective time) and duplicates exactly twice.
        let lookback = self.plan.max_churn_delay_secs();
        let wide = TimeRange::new(
            SimTime(range.start.secs().saturating_sub(lookback)),
            range.end,
        );
        let mut out = Vec::new();
        for e in self.inner.churn_events(wide) {
            let original = range.contains(SimTime(e.at_secs));
            match self.plan.churn_fault(&e) {
                ChurnFault::Deliver => {
                    if original {
                        out.push(e);
                    }
                }
                ChurnFault::Duplicate => {
                    if original {
                        self.inject(KIND_CHURN_DUPLICATED);
                        out.push(e);
                        out.push(e);
                    }
                }
                ChurnFault::Delay(d) => {
                    if range.contains(SimTime(e.at_secs + d)) {
                        self.inject(KIND_CHURN_DELAYED);
                        out.push(e);
                    }
                }
            }
        }
        out.sort_by_key(|e| (e.at_secs, e.loc, e.prefix));
        out
    }

    fn cloud_locations(&self) -> Vec<CloudLocId> {
        self.inner.cloud_locations()
    }

    fn probes_issued(&self) -> u64 {
        self.inner.probes_issued()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blameit_simnet::WorldConfig;

    #[test]
    fn world_backend_roundtrip() {
        let w = World::new(WorldConfig::tiny(1, 4));
        let mut b = WorldBackend::new(&w);
        let c = &w.topology().clients[0];
        let info = b
            .route_info(c.primary_loc, c.p24, SimTime(600))
            .expect("known client");
        assert_eq!(info.origin, c.origin);
        assert_eq!(info.region, c.region);
        assert!(info.prefix.covers_24(c.p24));
        // Middle matches the interned path.
        assert_eq!(info.middle, w.topology().paths.get(info.path).middle);
        assert_eq!(b.probes_issued(), 0);
        assert!(b.traceroute(c.primary_loc, c.p24, SimTime(600)).is_some());
        assert!(b
            .traceroute(c.primary_loc, Prefix24::from_block(0xFFFFFF), SimTime(0))
            .is_none());
        // Failed lookups still count: the probe was sent.
        assert_eq!(b.probes_issued(), 2);
        b.reset_probes();
        assert_eq!(b.probes_issued(), 0);
    }

    #[test]
    fn parallel_ingest_matches_sequential_world_order() {
        let w = World::new(WorldConfig::tiny(2, 7));
        for bucket in [TimeBucket(0), TimeBucket(12), TimeBucket(100)] {
            let want = w.quartets_in(bucket);
            for par in [1, 2, 8] {
                let b = WorldBackend::with_parallelism(&w, par);
                assert_eq!(b.quartets_in(bucket), want, "par={par}");
            }
        }
    }

    #[test]
    fn rtt_record_stream_is_parallelism_invariant_and_run_shaped() {
        let w = World::new(WorldConfig::tiny(2, 7));
        let bucket = TimeBucket(140);
        let want = WorldBackend::with_parallelism(&w, 1)
            .rtt_records_in(bucket)
            .expect("world backend exposes raw records");
        assert!(!want.is_empty());
        for par in [2, 8] {
            let b = WorldBackend::with_parallelism(&w, par);
            assert_eq!(b.rtt_records_in(bucket).unwrap(), want, "par={par}");
        }
        // Collector shape: each quartet's samples form one contiguous
        // run, so columnar ingest never needs its sort fallback, and
        // the aggregate covers exactly the simulator's quartets.
        let mut arena = crate::columnar::IngestArena::new();
        let store = crate::columnar::aggregate_records_into(&want, &mut arena);
        assert_eq!(arena.sort_fallbacks, 0, "stream must be run-shaped");
        let sim = w.quartets_in(bucket);
        assert_eq!(store.len(), sim.len());
        let agg = store.to_obs();
        let mut sim_sorted = sim;
        sim_sorted.sort_by_key(|q| (q.bucket, q.loc, q.p24, q.mobile));
        for (a, s) in agg.iter().zip(&sim_sorted) {
            assert_eq!(
                (a.loc, a.p24, a.mobile, a.bucket),
                (s.loc, s.p24, s.mobile, s.bucket)
            );
            assert_eq!(a.n, s.n, "sample count per quartet");
        }
    }

    #[test]
    fn backend_lists_locations() {
        let w = World::new(WorldConfig::tiny(1, 4));
        let b = WorldBackend::new(&w);
        assert_eq!(
            b.cloud_locations().len(),
            w.topology().cloud_locations.len()
        );
    }

    #[test]
    fn noop_chaos_backend_is_transparent() {
        let w = World::new(WorldConfig::tiny(2, 21));
        let plain = WorldBackend::new(&w);
        let chaos = ChaosBackend::new(WorldBackend::new(&w), FaultPlan::none(1));
        let c = &w.topology().clients[0];
        for bucket in [TimeBucket(0), TimeBucket(30), TimeBucket(288)] {
            assert_eq!(chaos.quartets_in(bucket), plain.quartets_in(bucket));
        }
        let t = SimTime::from_hours(12);
        assert_eq!(
            chaos.route_info(c.primary_loc, c.p24, t),
            plain.route_info(c.primary_loc, c.p24, t)
        );
        assert_eq!(
            chaos.traceroute(c.primary_loc, c.p24, t),
            plain.traceroute(c.primary_loc, c.p24, t)
        );
        let day = TimeRange::days(1);
        assert_eq!(chaos.churn_events(day), plain.churn_events(day));
        assert_eq!(chaos.probes_issued(), plain.probes_issued());
        assert_eq!(chaos.stats(), ChaosStats::default());
        assert_eq!(chaos.faults_injected(), 0);
    }

    #[test]
    fn timed_out_probes_still_count() {
        let w = World::new(WorldConfig::tiny(1, 8));
        let plan = FaultPlan {
            probe_timeout: 1.0,
            ..FaultPlan::none(2)
        };
        let chaos = ChaosBackend::new(WorldBackend::new(&w), plan);
        let c = &w.topology().clients[0];
        assert!(chaos
            .traceroute(c.primary_loc, c.p24, SimTime(600))
            .is_none());
        assert_eq!(chaos.probes_issued(), 1);
        assert_eq!(chaos.stats().probe_timeouts, 1);
    }

    #[test]
    fn truncated_probes_lose_their_tail_but_keep_a_hop() {
        let w = World::new(WorldConfig::tiny(1, 8));
        let plan = FaultPlan {
            probe_truncate: 1.0,
            ..FaultPlan::none(3)
        };
        let chaos = ChaosBackend::new(WorldBackend::new(&w), plan);
        let inner = WorldBackend::new(&w);
        let c = &w.topology().clients[0];
        let t = SimTime::from_hours(10);
        let full = inner.traceroute(c.primary_loc, c.p24, t).unwrap();
        let cut = chaos.traceroute(c.primary_loc, c.p24, t).unwrap();
        assert!(!cut.hops.is_empty());
        assert!(cut.hops.len() < full.hops.len());
        assert_eq!(cut.hops[..], full.hops[..cut.hops.len()]);
        assert_eq!(chaos.stats().probes_truncated, 1);
    }

    #[test]
    fn slow_probes_arrive_late() {
        let w = World::new(WorldConfig::tiny(1, 8));
        let plan = FaultPlan {
            probe_slow: 1.0,
            slow_by_secs: 45,
            ..FaultPlan::none(4)
        };
        let chaos = ChaosBackend::new(WorldBackend::new(&w), plan);
        let c = &w.topology().clients[0];
        let t = SimTime::from_hours(10);
        let tr = chaos.traceroute(c.primary_loc, c.p24, t).unwrap();
        assert_eq!(tr.at, t + 45);
        assert_eq!(chaos.stats().probes_delayed, 1);
    }

    #[test]
    fn dropped_batches_are_empty_and_counted() {
        let w = World::new(WorldConfig::tiny(2, 8));
        let plan = FaultPlan {
            drop_quartet_batch: 1.0,
            ..FaultPlan::none(5)
        };
        let chaos = ChaosBackend::new(WorldBackend::new(&w), plan);
        assert!(chaos.quartets_in(TimeBucket(140)).is_empty());
        assert_eq!(chaos.stats().quartet_batches_dropped, 1);
        // The raw sample stream is lost with the batch.
        assert_eq!(chaos.rtt_records_in(TimeBucket(140)), Some(Vec::new()));
        assert_eq!(chaos.stats().quartet_batches_dropped, 2);
    }

    #[test]
    fn delayed_churn_delivers_exactly_once_across_windows() {
        let w = World::new(WorldConfig::tiny(2, 77));
        let plan = FaultPlan {
            churn_delay: 1.0,
            churn_delay_secs: 900,
            ..FaultPlan::none(6)
        };
        let chaos = ChaosBackend::new(WorldBackend::new(&w), plan);
        let inner = WorldBackend::new(&w);
        // Query two days in consecutive 900 s windows; every event of
        // day 0 must appear exactly once, shifted into a later window.
        let horizon = 2 * 86_400;
        let mut delivered = Vec::new();
        let mut t = 0;
        while t < horizon {
            delivered.extend(chaos.churn_events(TimeRange::new(SimTime(t), SimTime(t + 900))));
            t += 900;
        }
        let mut want = inner.churn_events(TimeRange::new(SimTime(0), SimTime(horizon - 900)));
        want.sort_by_key(|e| (e.at_secs, e.loc, e.prefix));
        let mut got: Vec<_> = delivered
            .iter()
            .filter(|e| e.at_secs + 900 < horizon)
            .copied()
            .collect();
        got.sort_by_key(|e| (e.at_secs, e.loc, e.prefix));
        assert!(!want.is_empty(), "the world must churn");
        assert_eq!(got, want);
        assert_eq!(chaos.stats().churn_delayed, delivered.len() as u64);
    }

    #[test]
    fn duplicated_churn_delivers_exactly_twice() {
        let w = World::new(WorldConfig::tiny(2, 77));
        let plan = FaultPlan {
            churn_duplicate: 1.0,
            ..FaultPlan::none(7)
        };
        let chaos = ChaosBackend::new(WorldBackend::new(&w), plan);
        let inner = WorldBackend::new(&w);
        let day = TimeRange::days(1);
        let got = chaos.churn_events(day);
        let want = inner.churn_events(day);
        assert!(!want.is_empty(), "the world must churn");
        assert_eq!(got.len(), 2 * want.len());
        for pair in got.chunks(2) {
            assert_eq!(pair[0], pair[1]);
        }
        assert_eq!(chaos.stats().churn_duplicated, want.len() as u64);
    }

    #[test]
    fn registry_mirror_counts_injections() {
        let w = World::new(WorldConfig::tiny(1, 8));
        let registry = MetricsRegistry::new();
        let plan = FaultPlan {
            probe_timeout: 1.0,
            ..FaultPlan::none(8)
        };
        let chaos = ChaosBackend::with_registry(WorldBackend::new(&w), plan, &registry);
        let c = &w.topology().clients[0];
        chaos.traceroute(c.primary_loc, c.p24, SimTime(600));
        chaos.traceroute(c.primary_loc, c.p24, SimTime(900));
        let counter = registry.counter_with(
            "blameit_chaos_faults_injected_total",
            &[("kind", "probe_timeout")],
        );
        assert_eq!(counter.get(), 2);
    }
}
