//! The end-to-end BlameIt engine.
//!
//! Mirrors the production workflow of §3.3/§6.1 (Fig. 7): RTTs stream
//! in from the edge; an analytics job runs every 15 minutes (3 buckets)
//! assigning coarse blame to every bad quartet; middle-segment issues
//! are prioritized by client-time product and probed on-demand within a
//! budget; background traceroutes (periodic + churn-triggered) maintain
//! the per-path baselines the diffs compare against; and the top issues
//! become operator alerts.
//!
//! The engine is generic over [`Backend`], so it runs identically over
//! the simulator (with ground truth available for scoring) or any other
//! data plane.

use crate::active::{
    diff_contributions_with_floor, LocalizationVerdict, TracrouteDiffResult, UnlocalizedReason,
    MIN_CULPRIT_DELTA_MS,
};
use crate::backend::Backend;
use crate::background::{BackgroundScheduler, BaselineStore, ProbeTarget};
use crate::fxhash::{DetHashMap, DetHashSet};
use crate::grouping::MiddleKey;
use crate::history::{ClientCountHistory, DurationHistory, ExpectedRttLearner, RttKey};
use crate::incident::IncidentTracker;
use crate::metrics::{stage, EngineMetrics, ShardMetrics};
use crate::passive::{aggregate_pass, Blame, BlameConfig, BlameResult};
use crate::priority::{prioritize, select_within_budgets, MiddleIssue, PrioritizedIssue};
use crate::provenance::{BaselineEvidence, IncidentEvidence, ProbeEvidence, Provenance};
use crate::quartet::{enrich_obs_sharded, EnrichedQuartet, MIN_SAMPLES};
use crate::shard::{parallel_map, run_sharded, ShardPlan};
use crate::thresholds::BadnessThresholds;
use blameit_obs::{
    span, FlightFrame, FlightRecorder, FlightTrigger, MetricsRegistry, StageClock, StageTimings,
};
use blameit_simnet::{Segment, SimTime, TimeBucket, TimeRange};
use blameit_topology::{Asn, CloudLocId, PathId, Prefix24};
use std::sync::Arc;

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct BlameItConfig {
    /// Algorithm 1 parameters.
    pub blame: BlameConfig,
    /// Badness thresholds (region × device).
    pub thresholds: BadnessThresholds,
    /// On-demand traceroutes allowed per cloud location per tick.
    pub probe_budget_per_loc: usize,
    /// Background probe period per (location, path), seconds
    /// (paper default: twice a day).
    pub background_period_secs: u64,
    /// Issue background probes on IBGP churn events.
    pub churn_triggered: bool,
    /// Buckets per analysis tick (paper: 3 = 15 minutes).
    pub tick_buckets: u32,
    /// Maximum operator alerts emitted per tick.
    pub max_alerts: usize,
    /// On-demand traceroute attempts per issue (first try + retries).
    pub probe_max_attempts: u32,
    /// Base of the deterministic exponential backoff between on-demand
    /// attempts, seconds: retry `k` waits `base << (k-1)` after the
    /// previous attempt's cost.
    pub probe_backoff_base_secs: u64,
    /// Per-probe deadline, seconds: a traceroute whose answer arrives
    /// later than this after issue (or not at all) counts as lost.
    pub probe_timeout_secs: u64,
    /// Per-tick time budget for on-demand probing, seconds. Issues the
    /// budget cannot cover get a `DeadlineBudget` degraded verdict
    /// instead of a probe. Probes that answer instantly cost nothing,
    /// so healthy runs never hit this.
    pub probe_deadline_budget_secs: u64,
    /// Quarantine age for baselines, seconds: a diff against a baseline
    /// older than this is refused (`StaleBaseline`) rather than
    /// trusted. The default (4 days) sits above the store's normal
    /// retention span so healthy runs never quarantine.
    pub baseline_max_age_secs: u64,
    /// Seed for the expected-RTT reservoir.
    pub seed: u64,
    /// Directory for durable engine state (snapshots + tick journal).
    /// `None` disables persistence entirely.
    pub state_dir: Option<std::path::PathBuf>,
    /// Write a snapshot every this-many completed ticks (journal
    /// records are written every tick regardless).
    pub snapshot_every_ticks: u32,
    /// Worker threads for the sharded tick. `1` runs the exact legacy
    /// single-threaded path inline; any value produces byte-identical
    /// `TickOutput` (shard outputs merge under a canonical sort).
    /// Defaults to `BLAMEIT_THREADS` or the machine's available cores.
    pub parallelism: usize,
    /// Flight-recorder ring capacity (recent tick frames kept).
    pub flight_capacity: usize,
    /// Flight trigger: a tick with at least this many degraded
    /// (`MiddleUnlocalized`) verdicts requests a dump. `0` disables.
    pub flight_degraded_spike: u64,
    /// Flight trigger: a tick whose probe loop absorbed at least this
    /// many lost/late attempts requests a dump. `0` disables.
    pub flight_chaos_burst: u64,
    /// Directory flight dumps are written to when a trigger fires
    /// (`flight-<sim_secs>-<trigger>.jsonl`). `None` keeps the trigger
    /// log in memory only.
    pub flight_dump_dir: Option<std::path::PathBuf>,
}

impl BlameItConfig {
    /// Paper-faithful defaults around the given thresholds.
    pub fn new(thresholds: BadnessThresholds) -> Self {
        BlameItConfig {
            blame: BlameConfig::default(),
            thresholds,
            probe_budget_per_loc: 5,
            background_period_secs: 43_200,
            churn_triggered: true,
            tick_buckets: 3,
            max_alerts: 10,
            probe_max_attempts: 3,
            probe_backoff_base_secs: 30,
            probe_timeout_secs: 30,
            probe_deadline_budget_secs: 600,
            baseline_max_age_secs: 4 * 86_400,
            seed: 0x0B1A_3E17,
            state_dir: None,
            snapshot_every_ticks: 4,
            parallelism: crate::shard::default_parallelism(),
            flight_capacity: blameit_obs::flight::DEFAULT_FLIGHT_CAPACITY,
            flight_degraded_spike: 3,
            flight_chaos_burst: 4,
            flight_dump_dir: None,
        }
    }
}

/// The result of actively localizing one middle-segment issue.
#[derive(Clone, Debug)]
pub struct MiddleLocalization {
    /// The prioritized issue that was probed.
    pub issue: PrioritizedIssue,
    /// When the probe that produced the evidence ran (the first
    /// attempt's issue time when no attempt answered).
    pub probed_at: SimTime,
    /// The /24 probed.
    pub probed_p24: Prefix24,
    /// Traceroute attempts spent on this issue (0 when the deadline
    /// budget dropped it unprobed).
    pub attempts: u32,
    /// Per-AS diff against the background baseline; `None` when no
    /// usable probe answer or no trustworthy baseline existed.
    pub diff: Option<TracrouteDiffResult>,
    /// The localization outcome: a culprit AS, or a degraded
    /// `MiddleUnlocalized` verdict with the recorded reason.
    pub verdict: LocalizationVerdict,
    /// The culprit AS, if the diff names one (`verdict.culprit()`).
    pub culprit: Option<Asn>,
    /// The evidence chain behind the verdict: incident context,
    /// priority/budget position, probe attempts, baseline age.
    pub provenance: Provenance,
}

/// An operator alert (the auto-filed ticket of §6.1).
#[derive(Clone, Debug)]
pub struct Alert {
    /// Tick this alert was raised in (first bucket).
    pub bucket: TimeBucket,
    /// Coarse blame.
    pub blame: Blame,
    /// Cloud location involved.
    pub loc: CloudLocId,
    /// Middle path (for middle blames).
    pub path: Option<PathId>,
    /// Client AS (for client blames).
    pub client_as: Option<Asn>,
    /// Actively-localized culprit AS, when available.
    pub culprit: Option<Asn>,
    /// Affected connections (sum of quartet samples).
    pub impacted_connections: u64,
    /// Affected distinct /24s.
    pub impacted_p24s: usize,
    /// Fraction of the relevant aggregate's quartets agreeing with the
    /// verdict (the paper's §6.3 case-5 "confidence").
    pub confidence: f64,
}

/// Output of one engine tick.
#[derive(Clone, Debug, Default)]
pub struct TickOutput {
    /// Per-bad-quartet verdicts across the tick's buckets.
    pub blames: Vec<BlameResult>,
    /// Active-phase localizations performed this tick.
    pub localizations: Vec<MiddleLocalization>,
    /// Operator alerts (top issues by impact).
    pub alerts: Vec<Alert>,
    /// All middle issues this tick ranked by client-time product,
    /// *before* the probe budget was applied (for prioritization
    /// studies, Fig. 12).
    pub ranked_issues: Vec<PrioritizedIssue>,
    /// On-demand probes issued this tick.
    pub on_demand_probes: u64,
    /// Background probes issued this tick.
    pub background_probes: u64,
    /// Where the tick spent its time, by pipeline stage
    /// (see [`crate::metrics::stage`] for the stage names).
    pub stage_timings: StageTimings,
}

/// Gap (buckets) under which two badness runs on one (location, path)
/// count as the same episode (8 hours: spans an overnight lull).
const EPISODE_GAP_BUCKETS: u32 = 96;

/// The BlameIt engine: all state for continuous operation.
#[derive(Clone, Debug)]
pub struct BlameItEngine {
    pub(crate) cfg: BlameItConfig,
    pub(crate) expected: ExpectedRttLearner,
    pub(crate) durations: DurationHistory,
    pub(crate) client_hist: ClientCountHistory,
    pub(crate) incidents: IncidentTracker<(CloudLocId, PathId)>,
    pub(crate) baselines: BaselineStore,
    pub(crate) scheduler: BackgroundScheduler,
    /// Representative probe target per (loc, path), refreshed from
    /// observed traffic.
    pub(crate) rep_p24: DetHashMap<(CloudLocId, PathId), Prefix24>,
    /// The /24 each stored baseline was measured toward — on-demand
    /// probes must target the same /24 for a comparable diff.
    pub(crate) baseline_p24: DetHashMap<(CloudLocId, PathId), Prefix24>,
    /// (location, announced prefix) pairs observed carrying traffic;
    /// churn events for anything else are not ours to probe.
    pub(crate) monitored_prefixes: DetHashSet<(CloudLocId, blameit_topology::IpPrefix)>,
    /// Badness *episodes* per (loc, path): (first bad bucket, last bad
    /// bucket), where runs separated by less than [`EPISODE_GAP_BUCKETS`]
    /// merge. Incidents fragment overnight when traffic (and thus
    /// quartets) thins out; the diff must still compare against a
    /// baseline predating the whole episode, and background probing
    /// must not re-baseline inside one.
    pub(crate) episodes: DetHashMap<(CloudLocId, PathId), (TimeBucket, TimeBucket)>,
    /// (loc, path) pairs whose last background refresh failed and has
    /// already been rescheduled once — bounds the retry to one, so a
    /// permanently-unanswerable target degrades to its normal period
    /// instead of probing every tick.
    pub(crate) bg_failed_once: DetHashSet<(CloudLocId, PathId)>,
    pub(crate) churn_cursor: SimTime,
    pub(crate) metrics: EngineMetrics,
    /// The deterministic flight ring: recent tick frames + trigger log.
    /// Part of the snapshot, so dumps survive crash→recover→resume.
    pub(crate) flight: FlightRecorder,
    /// Lifetime probe counters.
    pub on_demand_probes_total: u64,
    /// Lifetime background probe count.
    pub background_probes_total: u64,
}

impl BlameItEngine {
    /// A fresh engine with its own metrics registry.
    pub fn new(cfg: BlameItConfig) -> Self {
        Self::with_metrics(cfg, Arc::new(MetricsRegistry::new()))
    }

    /// A fresh engine recording into `registry` (shared registries let
    /// several engines — or an engine plus its harness — publish one
    /// exposition).
    pub fn with_metrics(cfg: BlameItConfig, registry: Arc<MetricsRegistry>) -> Self {
        let scheduler = BackgroundScheduler::new(cfg.background_period_secs, cfg.churn_triggered);
        BlameItEngine {
            metrics: EngineMetrics::new(registry),
            expected: ExpectedRttLearner::new(cfg.seed),
            durations: DurationHistory::new(),
            client_hist: ClientCountHistory::new(),
            incidents: IncidentTracker::new(),
            baselines: BaselineStore::new(),
            scheduler,
            rep_p24: DetHashMap::default(),
            baseline_p24: DetHashMap::default(),
            monitored_prefixes: DetHashSet::default(),
            episodes: DetHashMap::default(),
            bg_failed_once: DetHashSet::default(),
            churn_cursor: SimTime::ZERO,
            flight: FlightRecorder::new(cfg.flight_capacity),
            on_demand_probes_total: 0,
            background_probes_total: 0,
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &BlameItConfig {
        &self.cfg
    }

    /// The engine's metric handles (the registry behind them renders
    /// Prometheus text / JSON via [`EngineMetrics::registry`]).
    pub fn metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    /// The flight recorder (interior-mutable: triggers and manual dumps
    /// go through a shared reference).
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Fires the on-demand (`Manual`) flight trigger and returns the
    /// recorder's JSONL dump — the `blameit flight dump` path.
    pub fn flight_dump_manual(&self, sim_secs: u64, detail: impl Into<String>) -> String {
        self.fire_flight_trigger(sim_secs, FlightTrigger::Manual, detail.into());
        self.flight.dump_jsonl()
    }

    /// The learned expected-RTT store (read access for reporting).
    pub fn expected_rtts(&self) -> &ExpectedRttLearner {
        &self.expected
    }

    /// The duration history (read access).
    pub fn duration_history(&self) -> &DurationHistory {
        &self.durations
    }

    /// The baseline store (read access).
    pub fn baselines(&self) -> &BaselineStore {
        &self.baselines
    }

    /// The client-count history (read access).
    pub fn client_history(&self) -> &ClientCountHistory {
        &self.client_hist
    }

    /// Feeds history (expected RTTs, client counts) from telemetry
    /// without issuing probes — the 14 days of learning Algorithm 1
    /// expects before blame assignment is trusted. `sample_every`
    /// strides the buckets for speed (1 = every bucket; stride > 1
    /// trades fidelity for time and is fine for the medians).
    pub fn warmup<B: Backend>(&mut self, backend: &B, range: TimeRange, sample_every: u32) {
        assert!(sample_every >= 1);
        self.churn_cursor = range.end;
        // Incident-duration prior: track runs of path-level badness
        // (≥ half of a path's quartets above threshold) so the
        // client-time-product estimator has history from day one
        // (§5.3a: "P(T|t) … based on historical fault durations").
        // Only meaningful without striding — runs need contiguity.
        let mut tracker: IncidentTracker<(CloudLocId, PathId)> = IncidentTracker::new();
        for (i, bucket) in range.buckets().enumerate() {
            if !(i as u32).is_multiple_of(sample_every) {
                continue;
            }
            let obs = backend.quartets_in(bucket);
            let enriched = enrich_obs_sharded(
                backend,
                obs,
                bucket,
                &self.cfg.thresholds,
                MIN_SAMPLES,
                self.cfg.parallelism,
            );
            if sample_every == 1 {
                let mut per_path: DetHashMap<(CloudLocId, PathId), (u32, u32)> =
                    DetHashMap::default();
                for q in &enriched {
                    let e = per_path.entry((q.obs.loc, q.info.path)).or_default();
                    e.0 += 1;
                    if q.bad {
                        e.1 += 1;
                    }
                }
                let mut bad_keys: Vec<(CloudLocId, PathId)> = per_path
                    .into_iter()
                    .filter(|(_, (n, bad))| *n >= 3 && *bad * 2 >= *n)
                    .map(|(k, _)| k)
                    .collect();
                bad_keys.sort_unstable();
                for inc in tracker.observe(bucket, bad_keys) {
                    self.durations.record(inc.key.1, inc.buckets);
                }
            }
            self.learn_from(&enriched, bucket);
        }
        for inc in tracker.finish() {
            self.durations.record(inc.key.1, inc.buckets);
        }
    }

    /// Internal: update learners from one bucket's quartets.
    fn learn_from(&mut self, enriched: &[EnrichedQuartet], bucket: TimeBucket) {
        let day = bucket.day();
        let mut per_path_clients: DetHashMap<PathId, u64> = DetHashMap::default();
        for q in enriched {
            self.expected.observe(
                RttKey::Cloud(q.obs.loc, q.obs.mobile),
                day,
                q.obs.mean_rtt_ms,
            );
            let key = self.cfg.blame.grouping.key(&q.info);
            self.expected
                .observe(RttKey::Middle(key, q.obs.mobile), day, q.obs.mean_rtt_ms);
            *per_path_clients.entry(q.info.path).or_default() += q.obs.n as u64;
            self.rep_p24
                .entry((q.obs.loc, q.info.path))
                .or_insert(q.obs.p24);
            self.monitored_prefixes.insert((q.obs.loc, q.info.prefix));
        }
        let mut per_path_sorted: Vec<(PathId, u64)> = per_path_clients.into_iter().collect();
        per_path_sorted.sort_unstable();
        for (path, clients) in per_path_sorted {
            self.client_hist.record(path, bucket, clients);
        }
    }

    /// Runs one 15-minute analysis tick starting at `start`, consuming
    /// `cfg.tick_buckets` buckets of telemetry.
    ///
    /// With `cfg.parallelism > 1` the heavy stages fan out over scoped
    /// worker threads (see [`crate::shard`]); the output is
    /// byte-identical to `parallelism = 1` because every parallel stage
    /// is a pure map over a deterministically ordered worklist whose
    /// results merge under a canonical sort.
    pub fn tick<B: Backend>(&mut self, backend: &mut B, start: TimeBucket) -> TickOutput {
        // Shared view for worker threads; mutation below stays on the
        // coordinator (probe accounting is interior-mutable).
        let backend: &B = backend;
        let nthreads = self.cfg.parallelism.max(1);
        let mut tick_span = span!("blameit::pipeline", "tick", start_bucket = start.0);
        let mut clock = StageClock::start();
        let mut out = TickOutput::default();
        let probes_before = backend.probes_issued();

        // Per-(loc, path) accumulation of middle-segment badness for
        // issue construction, plus per-aggregate alert statistics.
        let mut middle_acc: DetHashMap<(CloudLocId, PathId), MiddleAcc> = DetHashMap::default();
        let mut alert_acc: DetHashMap<AlertKey, AlertAcc> = DetHashMap::default();
        // Raw observation volume for the ingest-throughput instruments
        // (metrics only; never feeds verdicts or transcripts).
        let mut raw_ingested: u64 = 0;

        for i in 0..self.cfg.tick_buckets {
            let bucket = start.plus(i);
            let mut bucket_span = span!("blameit::pipeline", "bucket", bucket = bucket.0);
            let obs = {
                let _s = span!("blameit::pipeline", stage::INGEST);
                backend.quartets_in(bucket)
            };
            raw_ingested += obs.len() as u64;
            clock.lap(stage::INGEST);
            let enriched = {
                let mut s = span!("blameit::pipeline", stage::AGGREGATION, raw = obs.len());
                let e = enrich_obs_sharded(
                    backend,
                    obs,
                    bucket,
                    &self.cfg.thresholds,
                    MIN_SAMPLES,
                    nthreads,
                );
                s.record("enriched", e.len());
                e
            };
            clock.lap(stage::AGGREGATION);
            let mut passive_span = span!(
                "blameit::pipeline",
                stage::PASSIVE,
                quartets = enriched.len()
            );
            // The aggregate pass stays on the coordinator (it reads the
            // expected-RTT learner, whose lookup cache is not
            // thread-safe); per-quartet verdicts are pure against the
            // resulting aggregates and shard by cloud location —
            // Algorithm 1's elimination is independent across
            // locations. Each shard records into scratch metrics that
            // are absorbed after the join (histogram merges are
            // order-independent, so rendered metrics match the legacy
            // path exactly).
            let agg = aggregate_pass(&enriched, &self.expected, &self.cfg.blame);
            let blame_cfg = self.cfg.blame;
            let plan = ShardPlan::by_key(&enriched, nthreads, |q| q.obs.loc);
            let shard_out = run_sharded(nthreads, &plan, |_, idxs| {
                let mut scratch = ShardMetrics::new();
                let mut verdicts: Vec<(usize, BlameResult)> = Vec::new();
                for &i in idxs {
                    let q = &enriched[i];
                    scratch.observe_quartet(q.obs.mean_rtt_ms);
                    if let Some(r) = agg.verdict(q, &blame_cfg) {
                        scratch.record_blame(r.blame);
                        verdicts.push((i, r));
                    }
                }
                (verdicts, scratch)
            });
            let mut indexed: Vec<(usize, BlameResult)> = Vec::new();
            for (verdicts, scratch) in shard_out {
                self.metrics.absorb_shard(&scratch);
                indexed.extend(verdicts);
            }
            // Canonical merge: original input order, as one thread
            // would have produced.
            indexed.sort_unstable_by_key(|(i, _)| *i);
            let blames: Vec<BlameResult> = indexed.into_iter().map(|(_, r)| r).collect();
            let stats = agg.stats;
            passive_span.record("verdicts", blames.len());

            // Incident continuity for middle issues.
            let bad_middle: Vec<(CloudLocId, PathId)> = blames
                .iter()
                .filter(|b| b.blame == Blame::Middle)
                .map(|b| (b.obs.loc, b.path))
                .collect();
            for key in &bad_middle {
                self.episodes
                    .entry(*key)
                    .and_modify(|(start, last)| {
                        if bucket.0 - last.0 > EPISODE_GAP_BUCKETS {
                            *start = bucket;
                        }
                        *last = bucket;
                    })
                    .or_insert((bucket, bucket));
            }
            for inc in self.incidents.observe(bucket, bad_middle) {
                self.durations.record(inc.key.1, inc.buckets);
            }

            for b in &blames {
                // Aggregate for alerts.
                let akey = match b.blame {
                    Blame::Cloud => AlertKey::Cloud(b.obs.loc),
                    Blame::Middle => AlertKey::Middle(b.obs.loc, b.path),
                    Blame::Client => AlertKey::Client(b.origin),
                    Blame::Ambiguous | Blame::Insufficient => continue,
                };
                let acc = alert_acc.entry(akey).or_default();
                acc.connections += b.obs.n as u64;
                acc.p24s.insert(b.obs.p24);
                acc.bucket = bucket;
                acc.confidence = match b.blame {
                    Blame::Cloud => stats.cloud_bad_fraction(b.obs.loc),
                    Blame::Middle => stats.middle_bad_fraction(b.middle_key),
                    _ => 1.0,
                };

                if b.blame == Blame::Middle {
                    let m = middle_acc.entry((b.obs.loc, b.path)).or_default();
                    m.clients += b.obs.n as u64;
                    m.bucket = bucket;
                    m.middle_key = Some(b.middle_key);
                    if !m.p24s.contains(&b.obs.p24) {
                        m.p24s.push(b.obs.p24);
                    }
                }
            }

            // Learn only after assignment: the bucket never sees its
            // own data in the expected values.
            self.learn_from(&enriched, bucket);
            bucket_span.record("blames", blames.len());
            out.blames.extend(blames);
            drop(passive_span);
            clock.lap(stage::PASSIVE);
            drop(bucket_span);
        }

        let priority_span = span!("blameit::pipeline", stage::PRIORITY);
        // Build and prioritize middle issues. `middle_acc` is a
        // HashMap, so impose the canonical (loc, path) order before
        // ranking — prioritize's tie-break keeps the result total
        // either way, but emission order must never lean on hash-seed
        // luck.
        let mut issues: Vec<MiddleIssue> = middle_acc
            .into_iter()
            .map(|((loc, path), m)| {
                let elapsed = self
                    .incidents
                    .open_incident(&(loc, path))
                    .map_or(1, |o| o.elapsed());
                MiddleIssue {
                    loc,
                    path,
                    middle_key: m.middle_key.unwrap_or(MiddleKey::Path(path)),
                    bucket: m.bucket,
                    elapsed_buckets: elapsed,
                    current_clients: m.clients,
                    affected_p24s: m.p24s,
                }
            })
            .collect();
        issues.sort_unstable_by_key(|i| (i.loc, i.path));
        let ranked = prioritize(issues, &self.durations, &self.client_hist);
        // The global cap is a coarse safety valve (one issue per budget
        // second would already be pathological); the real limit is the
        // probe deadline budget applied during the active phase.
        let selected: Vec<PrioritizedIssue> = select_within_budgets(
            &ranked,
            self.cfg.probe_budget_per_loc,
            self.cfg.probe_deadline_budget_secs.max(1) as usize,
        )
        .into_iter()
        .cloned()
        .collect();
        self.metrics
            .probes_suppressed_budget
            .add((ranked.len() - selected.len()) as u64);
        out.ranked_issues = ranked;
        drop(priority_span);
        clock.lap(stage::PRIORITY);

        // On-demand probes, while the issue is live (the probe runs
        // within the tick; we time it at the issue's bucket midpoint).
        let active_span = span!(
            "blameit::pipeline",
            stage::ACTIVE,
            selected = selected.len()
        );
        let mut culprit_by_issue: DetHashMap<(CloudLocId, PathId), Asn> = DetHashMap::default();
        // Probe sequentially in rank order (probe accounting and the
        // issue→probe attribution stay in the legacy order), then diff
        // each traceroute against its baseline concurrently — the diff
        // is a pure function of the probe and the (unmodified-in-this-
        // stage) baseline store — and merge back in rank order.
        struct ProbedIssue {
            issue: PrioritizedIssue,
            probe_at: SimTime,
            p24: Prefix24,
            client_origin: Option<Asn>,
            tr: Option<blameit_simnet::Traceroute>,
            incident_start: SimTime,
            attempts: u32,
            /// Attempts that answered nothing usable (lost or late).
            lost_attempts: u32,
            /// Backoff waited across retries, seconds.
            backoff_secs: u64,
            /// The kept evidence is a truncated traceroute.
            truncated: bool,
            /// Dropped unprobed: the deadline budget ran out first.
            deadline_dropped: bool,
            /// Rank within the selected (budgeted) set this tick.
            rank: usize,
            /// The middle incident this probe serves.
            incident_ev: IncidentEvidence,
        }
        // Probe time the tick can spend: lost attempts burn the
        // per-probe timeout, slow answers their wait. Instant answers
        // (the healthy case) cost nothing, so the budget only bites
        // when the measurement plane misbehaves.
        let probe_timeout = self.cfg.probe_timeout_secs;
        let mut deadline_left = self.cfg.probe_deadline_budget_secs;
        let candidates = out.ranked_issues.len();
        let selected_n = selected.len();
        let probed: Vec<ProbedIssue> = selected
            .into_iter()
            .enumerate()
            .map(|(rank, p)| {
                let first_at = p.issue.bucket.mid();
                // Incident evidence for the provenance chain: the open
                // incident this probe serves (closed-mid-tick incidents
                // fall back to the issue's own bucket, observation-free).
                let open = self.incidents.open_incident(&(p.issue.loc, p.issue.path));
                let incident_ev = IncidentEvidence {
                    start_bucket: open.map_or(p.issue.bucket, |o| o.start),
                    elapsed_buckets: p.issue.elapsed_buckets,
                    observations: open.map_or(0, |o| o.observations),
                    current_clients: p.issue.current_clients,
                    affected_p24s: p.issue.affected_p24s.len(),
                };
                // Probe an *affected* /24 (§5.3 targets the clients of
                // the issue). Its last mile may differ from the /24 the
                // background baseline was measured toward; that
                // difference lands in the client hop, so the client AS
                // gets a raised culprit floor in the diff below.
                let p24 = p.issue.affected_p24s[0];
                // Diff against the newest baseline that predates the
                // whole badness *episode* (gap-tolerant): a mid-incident
                // baseline already carries the inflation (§5.2 compares
                // against the pre-fault picture), and overnight
                // detection gaps must not fool the lookup into using
                // one.
                let incident_start = self
                    .episodes
                    .get(&(p.issue.loc, p.issue.path))
                    .map(|(start, _)| start.start())
                    .unwrap_or_else(|| {
                        p.issue
                            .bucket
                            .minus(p.issue.elapsed_buckets.saturating_sub(1))
                            .start()
                    });
                // Detection lags the fault (τ must be breached, activity
                // must suffice, and a tick must run); pad the lookup so
                // a baseline taken shortly before *detection* — but
                // possibly after the true onset — is not trusted.
                let incident_start = incident_start - 9 * blameit_simnet::BUCKET_SECS;
                if deadline_left < probe_timeout {
                    self.metrics.probes_suppressed_deadline.inc();
                    return ProbedIssue {
                        issue: p,
                        probe_at: first_at,
                        p24,
                        client_origin: None,
                        tr: None,
                        incident_start,
                        attempts: 0,
                        lost_attempts: 0,
                        backoff_secs: 0,
                        truncated: false,
                        deadline_dropped: true,
                        rank,
                        incident_ev,
                    };
                }
                let client_origin = backend
                    .route_info(p.issue.loc, p24, first_at)
                    .map(|i| i.origin);
                // Bounded retry with deterministic exponential backoff:
                // re-issue at a later SimTime, so the answer re-derives
                // purely from (seed, target, time) and the whole loop
                // stays byte-deterministic at any thread count.
                let mut at = first_at;
                let mut evidence: Option<blameit_simnet::Traceroute> = None;
                let mut evidence_at = first_at;
                let mut truncated = false;
                let mut attempts = 0u32;
                let mut lost_attempts = 0u32;
                let mut backoff_secs = 0u64;
                loop {
                    attempts += 1;
                    let mut attempt_span = span!(
                        "blameit::pipeline",
                        "probe_attempt",
                        loc = p.issue.loc.0 as u64,
                        attempt = attempts as u64
                    );
                    let got = backend.traceroute(p.issue.loc, p24, at);
                    self.on_demand_probes_total += 1;
                    out.on_demand_probes += 1;
                    // Classify the attempt: lost (no answer, or an
                    // answer past the per-probe deadline), truncated
                    // (the hop list never reaches the client AS), or
                    // complete.
                    let mut done = false;
                    let cost = match got {
                        None => {
                            self.metrics.probe_attempts_lost.inc();
                            lost_attempts += 1;
                            attempt_span.record("outcome", "lost");
                            probe_timeout
                        }
                        Some(t) => {
                            let wait = t.at.secs().saturating_sub(at.secs());
                            if wait > probe_timeout {
                                self.metrics.probe_attempts_lost.inc();
                                lost_attempts += 1;
                                attempt_span.record("outcome", "late");
                                probe_timeout
                            } else if t.hops.last().is_none_or(|h| h.segment != Segment::Client) {
                                // Keep truncated evidence: a later
                                // complete answer overrides it, and a
                                // partial diff can still clear or
                                // convict the surviving prefix.
                                self.metrics.probe_attempts_truncated.inc();
                                attempt_span.record("outcome", "truncated");
                                evidence_at = t.at;
                                evidence = Some(t);
                                truncated = true;
                                wait
                            } else {
                                attempt_span.record("outcome", "complete");
                                evidence_at = t.at;
                                evidence = Some(t);
                                truncated = false;
                                done = true;
                                wait
                            }
                        }
                    };
                    deadline_left = deadline_left.saturating_sub(cost);
                    if done
                        || attempts >= self.cfg.probe_max_attempts
                        || deadline_left < probe_timeout
                    {
                        break;
                    }
                    let backoff = self.cfg.probe_backoff_base_secs << (attempts - 1).min(16) as u64;
                    at = at + cost + backoff;
                    backoff_secs += backoff;
                    self.metrics.probe_retries.inc();
                }
                ProbedIssue {
                    issue: p,
                    probe_at: evidence_at,
                    p24,
                    client_origin,
                    tr: evidence,
                    incident_start,
                    attempts,
                    lost_attempts,
                    backoff_secs,
                    truncated,
                    deadline_dropped: false,
                    rank,
                    incident_ev,
                }
            })
            .collect();
        // Diff outcome per issue, computed concurrently (pure function
        // of the probe and the unmodified-in-this-stage baseline store).
        enum DiffOutcome {
            NoProbe,
            NoBaseline,
            Stale,
            Diffed(TracrouteDiffResult),
        }
        let baselines = &self.baselines;
        let max_age = self.cfg.baseline_max_age_secs;
        let diffs = parallel_map(nthreads, &probed, |_, p| {
            // Baseline evidence is recorded whether or not a diff runs:
            // "which picture would we have compared against, and how
            // old was it" belongs in the provenance of timeouts too.
            let base = baselines
                .get_before(p.issue.issue.loc, p.issue.issue.path, p.incident_start)
                .or_else(|| baselines.oldest(p.issue.issue.loc, p.issue.issue.path));
            let baseline_ev = match base {
                None => BaselineEvidence::Missing,
                Some(b) => {
                    let age = p.probe_at.secs().saturating_sub(b.at.secs());
                    if age > max_age {
                        BaselineEvidence::Stale {
                            at_secs: b.at.secs(),
                            age_secs: age,
                            max_age_secs: max_age,
                        }
                    } else {
                        BaselineEvidence::Fresh {
                            at_secs: b.at.secs(),
                            age_secs: age,
                        }
                    }
                }
            };
            let Some(t) = p.tr.as_ref() else {
                return (DiffOutcome::NoProbe, baseline_ev);
            };
            let Some(base) = base else {
                return (DiffOutcome::NoBaseline, baseline_ev);
            };
            // Stale-baseline quarantine: a comparison picture this old
            // reflects a path that may have reshaped entirely; naming a
            // culprit from it would be misattribution, not evidence.
            if matches!(baseline_ev, BaselineEvidence::Stale { .. }) {
                return (DiffOutcome::Stale, baseline_ev);
            }
            let diffed = DiffOutcome::Diffed(diff_contributions_with_floor(
                &base.contributions,
                &t.as_contributions(),
                |asn| {
                    if Some(asn) == p.client_origin {
                        // Covers the last-mile spread between
                        // the probed /24 and the baseline's
                        // /24 (up to ~32 ms for cellular) plus
                        // evening-congestion variation.
                        55.0
                    } else {
                        MIN_CULPRIT_DELTA_MS
                    }
                },
            ));
            (diffed, baseline_ev)
        });
        for (p, (outcome, baseline_ev)) in probed.into_iter().zip(diffs) {
            let (verdict, diff) = if p.deadline_dropped {
                (
                    LocalizationVerdict::MiddleUnlocalized {
                        reason: UnlocalizedReason::DeadlineBudget,
                    },
                    None,
                )
            } else {
                match outcome {
                    DiffOutcome::NoProbe => (
                        LocalizationVerdict::MiddleUnlocalized {
                            reason: UnlocalizedReason::ProbeTimeout,
                        },
                        None,
                    ),
                    DiffOutcome::NoBaseline => (
                        LocalizationVerdict::MiddleUnlocalized {
                            reason: UnlocalizedReason::NoBaseline,
                        },
                        None,
                    ),
                    DiffOutcome::Stale => {
                        self.metrics.baseline_quarantines.inc();
                        (
                            LocalizationVerdict::MiddleUnlocalized {
                                reason: UnlocalizedReason::StaleBaseline,
                            },
                            None,
                        )
                    }
                    DiffOutcome::Diffed(d) => {
                        let verdict = match d.culprit {
                            Some(c) => LocalizationVerdict::Culprit(c),
                            // A clean diff with no material delta is an
                            // honest "nothing stands out"; the same from
                            // a truncated probe only cleared the
                            // surviving prefix of the path.
                            None if p.truncated => LocalizationVerdict::MiddleUnlocalized {
                                reason: UnlocalizedReason::TruncatedProbe,
                            },
                            None => LocalizationVerdict::MiddleUnlocalized {
                                reason: UnlocalizedReason::NoMaterialDelta,
                            },
                        };
                        (verdict, Some(d))
                    }
                }
            };
            if let LocalizationVerdict::MiddleUnlocalized { reason } = verdict {
                self.metrics.degraded_counter(reason).inc();
            }
            let culprit = verdict.culprit();
            if let Some(c) = culprit {
                culprit_by_issue.insert((p.issue.issue.loc, p.issue.issue.path), c);
            }
            // SLO: seconds of baseline age consumed by localizations —
            // the "staleness burn" that precedes quarantines.
            if let Some(age) = baseline_ev.age_secs() {
                self.metrics.baseline_staleness_burn_secs.add(age);
            }
            out.localizations.push(MiddleLocalization {
                probed_at: p.probe_at,
                probed_p24: p.p24,
                attempts: p.attempts,
                diff,
                verdict,
                culprit,
                provenance: Provenance {
                    incident: p.incident_ev,
                    priority: p.issue.evidence(p.rank, selected_n, candidates),
                    probe: ProbeEvidence {
                        attempts: p.attempts,
                        lost_attempts: p.lost_attempts,
                        truncated: p.truncated,
                        deadline_dropped: p.deadline_dropped,
                        backoff_secs: p.backoff_secs,
                    },
                    baseline: baseline_ev,
                },
                issue: p.issue,
            });
        }
        self.metrics.on_demand_probes.add(out.on_demand_probes);
        // SLO instruments derived from this tick's active phase.
        let budget = self.cfg.probe_deadline_budget_secs.max(1);
        self.metrics
            .probe_budget_utilization
            .set((budget - deadline_left.min(budget)) as f64 / budget as f64);
        let attempted = out.localizations.len() as u64;
        let localized = out
            .localizations
            .iter()
            .filter(|l| l.culprit.is_some())
            .count() as u64;
        self.metrics.middle_localizations.add(attempted);
        self.metrics.middle_culprits_found.add(localized);
        let loc_total = self.metrics.middle_localizations.get();
        self.metrics
            .middle_localization_coverage
            .set(if loc_total == 0 {
                0.0
            } else {
                self.metrics.middle_culprits_found.get() as f64 / loc_total as f64
            });
        drop(active_span);
        clock.lap(stage::ACTIVE);

        // Background probes: periodic + churn-triggered.
        let baseline_span = span!("blameit::pipeline", stage::BASELINE);
        let now = start.plus(self.cfg.tick_buckets).start();
        // `rep_p24` is a HashMap: sort the candidate list so the probe
        // order never depends on hash-seed iteration order (the
        // scheduler re-sorts, but the invariant belongs at the source).
        let mut periodic: Vec<ProbeTarget> = self
            .rep_p24
            .iter()
            .map(|((loc, path), p24)| ProbeTarget {
                loc: *loc,
                path: *path,
                p24: *p24,
            })
            .collect();
        periodic.sort_unstable();
        let churn_targets: Vec<ProbeTarget> = if self.cfg.churn_triggered {
            // Robust to ticks scheduled before the warmup cursor (the
            // caller's business, but never a panic).
            backend
                .churn_events(TimeRange::new(
                    self.churn_cursor,
                    now.max(self.churn_cursor),
                ))
                .iter()
                .filter_map(|e| {
                    // Only prefixes that actually send traffic to this
                    // location are monitored; churn on a (location,
                    // prefix) pair nobody uses does not merit a probe.
                    if !self.monitored_prefixes.contains(&(e.loc, e.prefix)) {
                        return None;
                    }
                    // Reuse the /24 the path's baselines were measured
                    // toward when there is one, so they stay
                    // comparable; otherwise adopt the prefix's first.
                    let p24 = self
                        .baseline_p24
                        .get(&(e.loc, e.new_path))
                        .copied()
                        .or_else(|| e.prefix.iter_24s().next())?;
                    Some(ProbeTarget {
                        loc: e.loc,
                        path: e.new_path,
                        p24,
                    })
                })
                .collect()
        } else {
            Vec::new()
        };
        self.churn_cursor = now;
        let now_bucket = now.bucket();
        // Episode suppression first (sequential — it reads engine
        // state), leaving an ordered worklist of targets to probe.
        let targets: Vec<ProbeTarget> = self
            .scheduler
            .due(now, &periodic, &churn_targets)
            .into_iter()
            .filter(|t| {
                // Never re-baseline a path inside (or shortly after) a
                // badness episode: the measurement would carry the
                // inflation and evict the healthy pre-incident picture
                // the diff needs (§5.2).
                let in_episode = self
                    .episodes
                    .get(&(t.loc, t.path))
                    .is_some_and(|(_, last)| {
                        now_bucket.0.saturating_sub(last.0) <= EPISODE_GAP_BUCKETS
                    });
                if in_episode {
                    self.metrics.probes_suppressed_episode.inc();
                }
                !in_episode
            })
            .collect();
        // Refresh probes run concurrently — each is a pure query of the
        // backend — and their results apply to the baseline store in
        // the due-list order, exactly as the sequential loop did.
        let refreshed = parallel_map(nthreads, &targets, |_, t| {
            backend.traceroute(t.loc, t.p24, now).map(|tr| {
                // Key by the path actually live at probe time.
                let live_path = backend
                    .route_info(t.loc, t.p24, now)
                    .map_or(t.path, |i| i.path);
                (live_path, tr)
            })
        });
        for (t, probe) in targets.iter().zip(refreshed) {
            match probe {
                Some((live_path, tr)) => {
                    self.baselines.update(t.loc, live_path, &tr);
                    self.baseline_p24.insert((t.loc, live_path), t.p24);
                    self.bg_failed_once.remove(&(t.loc, t.path));
                }
                None => {
                    // A lost refresh must not leave the baseline stale
                    // for a whole period: forget the scheduler clock so
                    // the target is due again next tick — but only
                    // once, so a permanently-unanswerable target (e.g.
                    // a churned prefix with no known /24) settles back
                    // to its normal cadence.
                    self.metrics.background_probe_failures.inc();
                    if self.bg_failed_once.insert((t.loc, t.path)) {
                        self.scheduler.retry_soon(t.loc, t.path);
                        self.metrics.background_retries.inc();
                    }
                }
            }
            self.background_probes_total += 1;
            out.background_probes += 1;
        }
        self.metrics.background_probes.add(out.background_probes);
        // Staleness of the newest baseline per (location, path): how
        // out-of-date the active phase's comparison pictures are.
        let mut stale_max = 0u64;
        let mut stale_sum = 0u64;
        let mut stale_n = 0u64;
        for (_, e) in self.baselines.iter_newest() {
            let age = now.secs().saturating_sub(e.at.secs());
            stale_max = stale_max.max(age);
            stale_sum += age;
            stale_n += 1;
        }
        self.metrics
            .baselines_stored
            .set(self.baselines.len() as f64);
        self.metrics
            .baseline_staleness_max_secs
            .set(stale_max as f64);
        self.metrics
            .baseline_staleness_mean_secs
            .set(if stale_n == 0 {
                0.0
            } else {
                stale_sum as f64 / stale_n as f64
            });
        drop(baseline_span);
        clock.lap(stage::BASELINE);
        debug_assert_eq!(
            backend.probes_issued() - probes_before,
            out.on_demand_probes + out.background_probes
        );

        // Alerts: top issues by impacted connections.
        let mut alerts: Vec<Alert> = alert_acc
            .into_iter()
            .map(|(key, acc)| {
                let (blame, loc, path, client_as) = match key {
                    AlertKey::Cloud(loc) => (Blame::Cloud, loc, None, None),
                    AlertKey::Middle(loc, path) => (Blame::Middle, loc, Some(path), None),
                    AlertKey::Client(origin) => (Blame::Client, CloudLocId(0), None, Some(origin)),
                };
                let culprit = match (blame, path) {
                    (Blame::Middle, Some(p)) => culprit_by_issue.get(&(loc, p)).copied(),
                    (Blame::Client, _) => client_as,
                    _ => None,
                };
                Alert {
                    bucket: acc.bucket,
                    blame,
                    loc,
                    path,
                    client_as,
                    culprit,
                    impacted_connections: acc.connections,
                    impacted_p24s: acc.p24s.len(),
                    confidence: acc.confidence,
                }
            })
            .collect();
        alerts.sort_by(|a, b| {
            b.impacted_connections
                .cmp(&a.impacted_connections)
                .then_with(|| (a.loc, a.path, a.client_as).cmp(&(b.loc, b.path, b.client_as)))
        });
        alerts.truncate(self.cfg.max_alerts);
        out.alerts = alerts;

        self.metrics.alerts.add(out.alerts.len() as u64);
        self.metrics.ticks.inc();
        out.stage_timings = clock.finish();
        self.metrics.observe_stage_timings(&out.stage_timings);
        self.metrics.observe_ingest(
            raw_ingested,
            out.stage_timings
                .get(stage::INGEST)
                .unwrap_or(std::time::Duration::ZERO),
        );
        tick_span.record("blames", out.blames.len());
        tick_span.record("alerts", out.alerts.len());
        self.record_flight_frame(start, &out);
        out
    }

    /// Appends this tick's frame to the flight ring and evaluates the
    /// dump-trigger predicates. Everything recorded is a pure function
    /// of the tick output and sim time — no wall clock, no registry
    /// diffing (a registry resets on restart; the tick output does
    /// not), so the ring is byte-identical across thread counts and
    /// across crash→recover→resume.
    fn record_flight_frame(&mut self, start: TimeBucket, out: &TickOutput) {
        let sim_secs = start.start().secs();
        let tally = crate::report::tally(&out.blames);
        let degraded = out
            .localizations
            .iter()
            .filter(|l| matches!(l.verdict, LocalizationVerdict::MiddleUnlocalized { .. }))
            .count() as u64;
        let absorbed: u64 = out
            .localizations
            .iter()
            .map(|l| l.provenance.probe.lost_attempts as u64)
            .sum();
        let mut deltas: Vec<(String, f64)> = vec![
            ("blameit_alerts_total".into(), out.alerts.len() as f64),
            ("blameit_degraded_verdicts_total".into(), degraded as f64),
            (
                "blameit_middle_localizations_total".into(),
                out.localizations.len() as f64,
            ),
            (
                "blameit_middle_culprits_found_total".into(),
                out.localizations
                    .iter()
                    .filter(|l| l.culprit.is_some())
                    .count() as f64,
            ),
            (
                "blameit_on_demand_probes_total".into(),
                out.on_demand_probes as f64,
            ),
            (
                "blameit_background_probes_total".into(),
                out.background_probes as f64,
            ),
            ("blameit_probe_attempts_lost_total".into(), absorbed as f64),
        ];
        for b in Blame::ALL {
            deltas.push((
                format!("blameit_blames_total{{verdict={b}}}"),
                tally.count(b) as f64,
            ));
        }
        deltas.sort_by(|a, b| a.0.cmp(&b.0));
        self.flight.record(FlightFrame {
            sim_secs,
            bucket: start.0,
            transcript: crate::report::render_tick_transcript(std::slice::from_ref(out)),
            stages: out
                .stage_timings
                .iter()
                .map(|(n, _)| n.to_string())
                .collect(),
            deltas,
        });
        let spike = self.cfg.flight_degraded_spike;
        if spike > 0 && degraded >= spike {
            self.fire_flight_trigger(
                sim_secs,
                FlightTrigger::DegradedSpike,
                format!("{degraded} degraded verdicts in one tick (threshold {spike})"),
            );
        }
        let burst = self.cfg.flight_chaos_burst;
        if burst > 0 && absorbed >= burst {
            self.fire_flight_trigger(
                sim_secs,
                FlightTrigger::ChaosBurst,
                format!("{absorbed} probe attempts absorbed in one tick (threshold {burst})"),
            );
        }
    }

    /// Logs a trigger and, when a dump directory is configured, writes
    /// the current ring as `flight-<sim_secs>-<trigger>.jsonl`. Dump
    /// I/O failures are swallowed: observability must never take the
    /// engine down. Public so the daemon's overload watchdog can fire
    /// `OverloadSustained` through the same path.
    pub fn fire_flight_trigger(&self, sim_secs: u64, trigger: FlightTrigger, detail: String) {
        self.flight.trigger(sim_secs, trigger, detail);
        self.metrics.flight_triggers.inc();
        if let Some(dir) = &self.cfg.flight_dump_dir {
            let path = dir.join(format!("flight-{sim_secs:09}-{}.jsonl", trigger.label()));
            let _ = std::fs::create_dir_all(dir);
            let _ = std::fs::write(path, self.flight.dump_jsonl());
        }
    }

    /// Convenience: runs ticks across a whole range, returning every
    /// tick's output.
    pub fn run<B: Backend>(&mut self, backend: &mut B, range: TimeRange) -> Vec<TickOutput> {
        let mut outs = Vec::new();
        let buckets: Vec<TimeBucket> = range.buckets().collect();
        let mut i = 0usize;
        while i + self.cfg.tick_buckets as usize <= buckets.len() {
            outs.push(self.tick(backend, buckets[i]));
            i += self.cfg.tick_buckets as usize;
        }
        outs
    }
}

#[derive(Default)]
struct MiddleAcc {
    clients: u64,
    p24s: Vec<Prefix24>,
    bucket: TimeBucket,
    middle_key: Option<MiddleKey>,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum AlertKey {
    Cloud(CloudLocId),
    Middle(CloudLocId, PathId),
    Client(Asn),
}

#[derive(Default)]
struct AlertAcc {
    connections: u64,
    p24s: DetHashSet<Prefix24>,
    bucket: TimeBucket,
    confidence: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::WorldBackend;
    use blameit_simnet::{Fault, FaultId, FaultTarget, World, WorldConfig};

    /// A tiny world with a long cloud fault at one location starting
    /// day 2, engine warmed on day 0–1.
    fn scenario() -> (World, CloudLocId) {
        let mut cfg = WorldConfig::tiny(3, 71);
        // Disable random faults: the scenario controls everything.
        cfg.fault_rates = blameit_simnet::FaultRates {
            cloud_per_loc_day: 0.0,
            middle_per_as_day: 0.0,
            client_as_per_day: 0.0,
            client_prefix_per_k_day: 0.0,
            middle_path_scoped_frac: 0.0,
        };
        let mut w = World::new(cfg);
        // Fault the busiest location so aggregates are rich.
        let mut counts: DetHashMap<CloudLocId, usize> = DetHashMap::default();
        for c in &w.topology().clients {
            *counts.entry(c.primary_loc).or_default() += 1;
        }
        let loc = *counts.iter().max_by_key(|(_, n)| **n).unwrap().0;
        w.add_faults(vec![Fault {
            id: FaultId(0),
            target: FaultTarget::CloudLocation(loc),
            start: blameit_simnet::SimTime::from_days(2),
            duration_secs: 6 * 3600,
            added_ms: 120.0,
        }]);
        (w, loc)
    }

    #[test]
    fn engine_blames_cloud_fault_and_alerts() {
        let (w, loc) = scenario();
        let th = BadnessThresholds::default_for(&w);
        let mut engine = BlameItEngine::new(BlameItConfig::new(th));
        let mut backend = WorldBackend::new(&w);
        // Warm up on the fault-free days (stride 2 for speed).
        engine.warmup(
            &backend,
            TimeRange::new(SimTime::ZERO, SimTime::from_days(2)),
            2,
        );

        // Analyze the first 30 minutes of the fault.
        let start = SimTime::from_days(2).bucket();
        let mut cloud_blames = 0usize;
        let mut total_blames = 0usize;
        let mut saw_cloud_alert = false;
        for k in 0..2 {
            let out = engine.tick(&mut backend, start.plus(k * 3));
            for b in &out.blames {
                if b.obs.loc == loc {
                    total_blames += 1;
                    if b.blame == Blame::Cloud {
                        cloud_blames += 1;
                    }
                }
            }
            if out
                .alerts
                .iter()
                .any(|a| a.blame == Blame::Cloud && a.loc == loc && a.confidence >= 0.8)
            {
                saw_cloud_alert = true;
            }
        }
        assert!(total_blames > 0, "the 120 ms fault must breach thresholds");
        assert!(
            cloud_blames as f64 / total_blames as f64 > 0.9,
            "{cloud_blames}/{total_blames} blamed on cloud"
        );
        assert!(saw_cloud_alert, "a high-confidence cloud alert must fire");
    }

    #[test]
    fn engine_probe_budget_respected() {
        let (w, _) = scenario();
        let th = BadnessThresholds::default_for(&w);
        let mut cfg = BlameItConfig::new(th);
        cfg.probe_budget_per_loc = 2;
        let mut engine = BlameItEngine::new(cfg);
        let mut backend = WorldBackend::new(&w);
        engine.warmup(
            &backend,
            TimeRange::new(SimTime::ZERO, SimTime::from_days(1)),
            4,
        );
        let out = engine.tick(&mut backend, SimTime::from_days(2).bucket());
        // On-demand probes per location ≤ budget.
        let mut per_loc: DetHashMap<CloudLocId, u64> = DetHashMap::default();
        for l in &out.localizations {
            *per_loc.entry(l.issue.issue.loc).or_default() += 1;
        }
        for (loc, n) in per_loc {
            assert!(n <= 2, "{loc} got {n} probes");
        }
    }

    #[test]
    fn background_probes_fire_and_build_baselines() {
        let (w, _) = scenario();
        let th = BadnessThresholds::default_for(&w);
        let mut engine = BlameItEngine::new(BlameItConfig::new(th));
        let mut backend = WorldBackend::new(&w);
        engine.warmup(
            &backend,
            TimeRange::new(SimTime::ZERO, SimTime::from_days(1)),
            4,
        );
        assert!(engine.baselines().is_empty());
        let out = engine.tick(&mut backend, SimTime::from_days(1).bucket());
        assert!(
            out.background_probes > 0,
            "first tick baselines every known path"
        );
        assert!(!engine.baselines().is_empty());
        // Immediately after, periodic probes are not due again.
        let out2 = engine.tick(&mut backend, SimTime::from_days(1).bucket().plus(3));
        assert!(
            out2.background_probes < out.background_probes / 2,
            "periodic probes must not re-fire within the period ({} then {})",
            out.background_probes,
            out2.background_probes
        );
    }

    #[test]
    fn run_covers_range_in_ticks() {
        let (w, _) = scenario();
        let th = BadnessThresholds::default_for(&w);
        let mut engine = BlameItEngine::new(BlameItConfig::new(th));
        let mut backend = WorldBackend::new(&w);
        let range = TimeRange::new(SimTime::from_days(1), SimTime::from_days(1) + 3 * 3600);
        let outs = engine.run(&mut backend, range);
        assert_eq!(outs.len(), 12, "3 h / 15 min = 12 ticks");
    }
}
