//! # blameit — WAN latency fault localization
//!
//! A full reimplementation of **BlameIt** (Yuchen Jin et al., *Zooming
//! in on Wide-area Latencies to a Global Cloud Provider*, SIGCOMM
//! 2019): a two-phase system that localizes client-to-cloud RTT
//! degradations to the faulty AS using passively collected TCP
//! handshake RTTs plus a frugal, impact-prioritized budget of active
//! traceroutes.
//!
//! ## Architecture (paper Fig. 7)
//!
//! ```text
//!  RTT stream ──► quartets ──► Algorithm 1 ──► cloud / middle / client
//!  (Backend)      (quartet)    (passive)        │        │
//!                                               ▼        ▼
//!                                         alerts   prioritized probes
//!                                        (report)  (priority + active)
//!                                                        │
//!                    background baselines ◄── scheduler ─┘
//!                    (background)              (periodic + BGP churn)
//! ```
//!
//! * [`backend`] — the data-plane trait (RTT stream, routing tables,
//!   traceroute agent, IBGP feed) + the simulator binding.
//! * [`quartet`] — ⟨/24, location, device, 5-min⟩ aggregation,
//!   enrichment, the ≥10-sample floor, split-half KS validation.
//! * [`columnar`] — the struct-of-arrays quartet store and
//!   arena-backed batch ingest behind [`quartet::aggregate_records`];
//!   bit-identical to the legacy per-record path by construction and
//!   by differential test.
//! * [`fxhash`] — the deterministic non-sip hasher
//!   ([`fxhash::DetHashMap`]/[`fxhash::DetHashSet`]) mandatory for
//!   core map construction (enforced by the `sip-hasher` lint rule).
//! * [`thresholds`] — region/device badness targets (§2.1).
//! * [`history`] — learned expected RTTs (14-day medians, §4.3),
//!   per-path incident-duration history, client-count history (§5.3).
//! * [`grouping`] — middle-segment granularities: BGP path / atom /
//!   prefix / ⟨AS, Metro⟩ (§4.2, Fig. 6, Fig. 11).
//! * [`passive`] — Algorithm 1: hierarchical cloud→middle→client
//!   elimination with `insufficient`/`ambiguous` outcomes.
//! * [`active`] — traceroute diffing and culprit-AS selection (§5.2).
//! * [`priority`] — client-time-product ranking and per-location probe
//!   budgets (§5.3).
//! * [`admission`] — bounded-ingest admission control for the daemon:
//!   watermark-driven backpressure and impact-aware overload shedding
//!   ordered by ascending client-time product.
//! * [`background`] — periodic + churn-triggered baseline probes and
//!   the baseline store (§5.4).
//! * [`incident`] — consecutive-bad-bucket tracking (§2.3).
//! * [`pipeline`] — the 15-minute [`pipeline::BlameItEngine`] tying it
//!   together (§6.1).
//! * [`provenance`] — the structured evidence chain attached to every
//!   verdict: Algorithm-1 fractions vs. τ, baseline ages, probe
//!   retries, priority/budget position.
//! * [`persist`] — durable engine state: versioned CRC'd snapshots, an
//!   fsync'd tick journal, crash recovery by snapshot + deterministic
//!   replay, and the kill-point crash harness hooks.
//! * [`shard`] — scoped-thread fan-out helpers behind the sharded
//!   tick (`BlameItConfig::parallelism`); output is byte-identical
//!   at any thread count.
//! * [`report`] — blame-fraction tallies (Fig. 8/9).
//! * [`metrics`] — per-engine metric handles and the canonical stage
//!   names of the tick profile (built on `blameit-obs`).
//! * [`stats`], [`ks`] — numeric utilities.

pub mod active;
pub mod admission;
pub mod backend;
pub mod background;
pub mod columnar;
pub mod fxhash;
pub mod grouping;
pub mod history;
pub mod incident;
pub mod ks;
pub mod metrics;
pub mod passive;
pub mod persist;
pub mod pipeline;
pub mod priority;
pub mod provenance;
pub mod quartet;
pub mod report;
pub mod shard;
pub mod stats;
pub mod thresholds;

pub use active::{
    combine_directional_diffs, diff_contributions, diff_contributions_with_floor, diff_traceroutes,
    AsDelta, LocalizationVerdict, TracrouteDiffResult, UnlocalizedReason,
};
pub use admission::{AdmissionConfig, AdmissionController, AdmissionDecision, GroupScore};
pub use backend::{Backend, ChaosBackend, ChaosStats, RouteInfo, WorldBackend};
pub use background::{BackgroundScheduler, BaselineEntry, BaselineStore, ProbeTarget};
pub use columnar::{
    aggregate_batch_reuse, aggregate_records_into, aggregate_records_reuse,
    aggregate_records_sharded, pack_key, pack_subkey, unpack_key, IngestArena, QuartetStore,
    RecordBatch,
};
pub use fxhash::{
    det_map_with_capacity, det_set_with_capacity, DetHashMap, DetHashSet, DetState, FxHasher,
};
pub use grouping::{MiddleGrouping, MiddleKey};
pub use history::{ClientCountHistory, DurationHistory, ExpectedRttLearner, RttKey};
pub use incident::{Incident, IncidentTracker, OpenIncident};
pub use ks::{ks_two_sample, KsResult};
pub use metrics::{EngineMetrics, ShardMetrics};
pub use passive::{
    aggregate_pass, assign_blames, AggregateStats, Blame, BlameConfig, BlameResult,
    PassiveAggregates,
};
pub use persist::{
    fsck, tick_digest, CodecError, DurableEngine, FsckReport, PersistError, PersistMetrics,
    RecoveryReport, StartMode, StateStore,
};
pub use pipeline::{Alert, BlameItConfig, BlameItEngine, MiddleLocalization, TickOutput};
pub use priority::{
    prioritize, select_within_budget, select_within_budgets, MiddleIssue, PrioritizedIssue,
};
pub use provenance::{
    BaselineEvidence, IncidentEvidence, PassiveEvidence, PriorityEvidence, ProbeEvidence,
    Provenance,
};
pub use quartet::{
    aggregate_records, aggregate_records_reference, enrich_bucket, enrich_bucket_min_samples,
    enrich_obs, enrich_obs_sharded, split_half_ks, EnrichedQuartet, MIN_SAMPLES,
};
pub use report::{
    render_blame_explain, render_localization_explain, render_tick_transcript, tally, tally_by_day,
    tally_by_region, BlameCounts,
};
pub use shard::{default_parallelism, parallel_map, run_sharded, ShardPlan};
pub use thresholds::BadnessThresholds;
