//! Property tests for the snapshot codec, driven by the in-repo
//! seeded harness in `blameit_topology::testkit`.
//!
//! Three invariants, over *arbitrary* learner/history states:
//!
//! 1. **Canonical round-trip** — `to_bytes → decode → to_bytes` is the
//!    identity on bytes (so state-equal engines persist identically,
//!    regardless of hash-map iteration order), and the decoded learner
//!    answers lookups exactly like the original.
//! 2. **Bit-flip fuzz** — flipping any single bit of a valid snapshot
//!    makes `decode` return an error; it must never panic and never
//!    silently accept.
//! 3. **Truncation fuzz** — every proper prefix of a valid snapshot is
//!    rejected as an error, never a panic.

use blameit::persist::snapshot::{decode, SnapshotState};
use blameit::persist::SnapshotCounters;
use blameit::{
    BaselineStore, ClientCountHistory, DurationHistory, ExpectedRttLearner, MiddleKey,
    OpenIncident, RttKey,
};
use blameit::{DetHashMap, DetHashSet};
use blameit_simnet::{SimTime, TimeBucket};
use blameit_topology::rng::DetRng;
use blameit_topology::testkit::check;
use blameit_topology::{Asn, CloudLocId, IpPrefix, MetroId, PathId, Prefix24};
use std::collections::BTreeMap;

/// A random expected-RTT series key, covering every variant.
fn arbitrary_rtt_key(rng: &mut DetRng) -> RttKey {
    let mobile = rng.chance(0.5);
    match rng.below(5) {
        0 => RttKey::Cloud(CloudLocId(rng.below(30) as u16), mobile),
        1 => RttKey::Middle(MiddleKey::Path(PathId(rng.below(50) as u32)), mobile),
        2 => RttKey::Middle(
            MiddleKey::Atom(PathId(rng.below(50) as u32), Asn(rng.below(500) as u32)),
            mobile,
        ),
        3 => RttKey::Middle(
            MiddleKey::Prefix(
                PathId(rng.below(50) as u32),
                IpPrefix::new(rng.next_u64() as u32, rng.below(33) as u8),
            ),
            mobile,
        ),
        _ => RttKey::Middle(
            MiddleKey::AsMetro(Asn(rng.below(500) as u32), MetroId(rng.below(40) as u16)),
            mobile,
        ),
    }
}

/// An arbitrary learner: random window, random observation stream in
/// non-decreasing day order, with `expected()` lookups interleaved so
/// the median cache holds entries frozen at *different* fill times —
/// the part of the state that cannot be recomputed from the
/// reservoirs.
fn arbitrary_learner(rng: &mut DetRng) -> (ExpectedRttLearner, Vec<RttKey>) {
    let mut learner = ExpectedRttLearner::with_window(rng.range_u64(1, 20) as u32, rng.next_u64());
    let keys: Vec<RttKey> = (0..rng.range_u64(1, 12))
        .map(|_| arbitrary_rtt_key(rng))
        .collect();
    let mut day = 0u32;
    for _ in 0..rng.range_u64(1, 400) {
        if rng.chance(0.02) {
            day += rng.below(4) as u32;
        }
        let key = *rng.pick(&keys);
        learner.observe(key, day, rng.range_f64(1.0, 500.0));
        if rng.chance(0.1) {
            // Freeze this key's median at the current mid-day view.
            let _ = learner.expected(*rng.pick(&keys));
        }
    }
    (learner, keys)
}

fn arbitrary_durations(rng: &mut DetRng) -> DurationHistory {
    let mut d = DurationHistory::new();
    for _ in 0..rng.range_u64(0, 600) {
        d.record(PathId(rng.below(20) as u32), rng.range_u64(1, 300) as u32);
    }
    d
}

fn arbitrary_client_hist(rng: &mut DetRng) -> ClientCountHistory {
    let mut h = ClientCountHistory::with_window(rng.range_u64(1, 5) as u32);
    for _ in 0..rng.range_u64(0, 300) {
        h.record(
            PathId(rng.below(20) as u32),
            TimeBucket(rng.below(96 * 20) as u32),
            rng.below(10_000),
        );
    }
    h
}

fn loc_path(rng: &mut DetRng) -> (CloudLocId, PathId) {
    (
        CloudLocId(rng.below(30) as u16),
        PathId(rng.below(50) as u32),
    )
}

/// A full snapshot state with arbitrary learner/history contents and
/// randomized scalars and maps everywhere else the public API reaches.
fn arbitrary_state(rng: &mut DetRng) -> (SnapshotState, Vec<RttKey>) {
    let (expected, keys) = arbitrary_learner(rng);
    let mut incidents_open = BTreeMap::new();
    let mut rep_p24 = DetHashMap::default();
    let mut episodes = DetHashMap::default();
    let mut monitored_prefixes = DetHashSet::default();
    let mut bg_failed_once = DetHashSet::default();
    let mut scheduler_last = DetHashMap::default();
    for _ in 0..rng.below(20) {
        incidents_open.insert(
            loc_path(rng),
            OpenIncident {
                start: TimeBucket(rng.below(96 * 20) as u32),
                buckets: rng.below(200) as u32,
                observations: rng.below(10_000),
            },
        );
        rep_p24.insert(
            loc_path(rng),
            Prefix24::from_block(rng.below(1 << 24) as u32),
        );
        let start = rng.below(96 * 20) as u32;
        episodes.insert(
            loc_path(rng),
            (TimeBucket(start), TimeBucket(start + rng.below(96) as u32)),
        );
        monitored_prefixes.insert((
            CloudLocId(rng.below(30) as u16),
            IpPrefix::new(rng.next_u64() as u32, rng.below(33) as u8),
        ));
        bg_failed_once.insert(loc_path(rng));
        scheduler_last.insert(loc_path(rng), SimTime(rng.next_u64() >> 20));
    }
    let state = SnapshotState {
        seed: rng.next_u64(),
        tick_buckets: rng.range_u64(1, 12) as u32,
        ticks_done: rng.below(100_000),
        expected,
        durations: arbitrary_durations(rng),
        client_hist: arbitrary_client_hist(rng),
        incidents_open,
        incidents_last_bucket: rng
            .chance(0.7)
            .then(|| TimeBucket(rng.below(96 * 20) as u32)),
        baselines: BaselineStore::new(),
        scheduler_period_secs: rng.range_u64(1, 86_400),
        scheduler_churn_triggered: rng.chance(0.5),
        scheduler_last,
        rep_p24: rep_p24.clone(),
        baseline_p24: rep_p24,
        monitored_prefixes,
        episodes,
        bg_failed_once,
        churn_cursor: SimTime(rng.next_u64() >> 20),
        on_demand_probes_total: rng.below(1 << 40),
        background_probes_total: rng.below(1 << 40),
        flight_frames: arbitrary_flight_frames(rng),
        flight_dumps: arbitrary_flight_dumps(rng),
        counters: arbitrary_counters(rng),
    };
    (state, keys)
}

/// Arbitrary cumulative counter values, exercising the v3 section: the
/// degraded/chaos/shed injection counters must survive round-trips
/// bit-for-bit rather than silently resetting on restart.
fn arbitrary_counters(rng: &mut DetRng) -> SnapshotCounters {
    let mut c = SnapshotCounters::default();
    for v in c.degraded.iter_mut().chain(c.chaos.iter_mut()) {
        *v = rng.below(1 << 40);
    }
    for v in c.shed.iter_mut() {
        *v = rng.below(1 << 40);
    }
    c.backpressure_replies = rng.below(1 << 40);
    c
}

fn arbitrary_flight_frames(rng: &mut DetRng) -> Vec<blameit_obs::FlightFrame> {
    (0..rng.below(6))
        .map(|_| blameit_obs::FlightFrame {
            sim_secs: rng.next_u64() >> 20,
            bucket: rng.below(96 * 20) as u32,
            transcript: format!("tick {}\n  blames=0\n", rng.below(100)),
            stages: (0..rng.below(4)).map(|i| format!("stage-{i}")).collect(),
            deltas: (0..rng.below(4))
                .map(|i| (format!("blameit_metric_{i}"), rng.below(1000) as f64))
                .collect(),
        })
        .collect()
}

fn arbitrary_flight_dumps(rng: &mut DetRng) -> Vec<blameit_obs::FlightDumpEvent> {
    (0..rng.below(4))
        .map(|_| {
            let n = blameit_obs::FlightTrigger::ALL.len() as u64;
            let t = blameit_obs::FlightTrigger::ALL[rng.below(n) as usize];
            blameit_obs::FlightDumpEvent {
                sim_secs: rng.next_u64() >> 20,
                trigger: t,
                detail: format!("detail-{}", rng.below(50)),
            }
        })
        .collect()
}

#[test]
fn snapshot_roundtrip_is_canonical_and_lossless() {
    check("persist_roundtrip", 48, |rng| {
        let (state, keys) = arbitrary_state(rng);
        let bytes = state.to_bytes();
        let decoded = decode(&bytes).expect("a freshly encoded snapshot must decode");
        assert_eq!(
            bytes,
            decoded.to_bytes(),
            "decode ∘ encode must be the identity on bytes"
        );
        // The decoded learner answers exactly like the original —
        // including cache entries frozen mid-day.
        let round = decode(&bytes).unwrap();
        for key in keys {
            assert_eq!(state.expected.expected(key), round.expected.expected(key));
        }
        assert_eq!(
            state.durations.total_recorded(),
            round.durations.total_recorded()
        );
        for p in 0..20 {
            for elapsed in [0u32, 3, 50] {
                assert_eq!(
                    state.durations.expected_remaining(PathId(p), elapsed),
                    round.durations.expected_remaining(PathId(p), elapsed),
                );
            }
        }
    });
}

#[test]
fn bit_flip_fuzz_is_rejected_never_panics() {
    check("persist_bitflip", 24, |rng| {
        let (state, _) = arbitrary_state(rng);
        let bytes = state.to_bytes();
        for _ in 0..64 {
            let pos = rng.index(bytes.len());
            let bit = 1u8 << rng.below(8);
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= bit;
            assert!(
                decode(&corrupt).is_err(),
                "flipping bit {bit:#x} at byte {pos}/{} was accepted",
                bytes.len()
            );
        }
    });
}

#[test]
fn truncation_fuzz_is_rejected_never_panics() {
    check("persist_truncation", 24, |rng| {
        let (state, _) = arbitrary_state(rng);
        let bytes = state.to_bytes();
        for _ in 0..32 {
            let cut = rng.index(bytes.len());
            assert!(
                decode(&bytes[..cut]).is_err(),
                "prefix of {cut}/{} bytes was accepted",
                bytes.len()
            );
        }
        // And a few bytes of appended garbage is also rejected.
        let mut extended = bytes.clone();
        extended.extend_from_slice(&[0xAB; 3]);
        assert!(decode(&extended).is_err());
    });
}
