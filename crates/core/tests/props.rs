//! Property-based tests for BlameIt's core data structures, driven by
//! the in-repo seeded harness in `blameit_topology::testkit`.

use blameit::{
    assign_blames, BlameConfig, ClientCountHistory, DurationHistory, ExpectedRttLearner,
    IncidentTracker, RttKey,
};
use blameit_simnet::TimeBucket;
use blameit_topology::testkit::check;
use blameit_topology::{CloudLocId, PathId};

/// Statistics helpers: quantiles are monotone in q and bounded by the
/// sample extremes; the ECDF is a valid CDF.
#[test]
fn quantiles_monotone_bounded() {
    check("quantiles_monotone_bounded", 128, |rng| {
        let n = rng.range_u64(1, 199) as usize;
        let xs: Vec<f64> = (0..n).map(|_| rng.range_f64(-1e6, 1e6)).collect();
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=10 {
            let q = i as f64 / 10.0;
            let v = blameit::stats::quantile(&xs, q).unwrap();
            assert!(v >= prev - 1e-9);
            assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
            prev = v;
        }
        let cdf = blameit::stats::ecdf(&xs);
        let mut last = 0.0;
        for (x, f) in &cdf {
            assert!(*f > last && *f <= 1.0 + 1e-12);
            assert!(*x >= lo && *x <= hi);
            last = *f;
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    });
}

/// The expected-RTT learner's output is always within the observed
/// value range and tracks the true median for in-window data.
#[test]
fn learner_bounded_by_observations() {
    check("learner_bounded_by_observations", 128, |rng| {
        let n = rng.range_u64(1, 299) as usize;
        let values: Vec<f64> = (0..n).map(|_| rng.range_f64(1.0, 500.0)).collect();
        let mut l = ExpectedRttLearner::new(7);
        let key = RttKey::Cloud(CloudLocId(0), false);
        for v in &values {
            l.observe(key, 0, *v);
        }
        let e = l.expected(key).unwrap();
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(e >= lo - 1e-9 && e <= hi + 1e-9);
    });
}

/// Mean residual life is within the residual range of the surviving
/// durations.
#[test]
fn residual_life_bounded() {
    check("residual_life_bounded", 128, |rng| {
        let n = rng.range_u64(10, 99) as usize;
        let durations: Vec<u32> = (0..n).map(|_| rng.range_u64(1, 199) as u32).collect();
        let elapsed = rng.below(100) as u32;
        let mut h = DurationHistory::new();
        for d in &durations {
            h.record(PathId(1), *d);
        }
        let survivors: Vec<u32> = durations.iter().copied().filter(|d| *d > elapsed).collect();
        let e = h.expected_remaining(PathId(1), elapsed);
        if survivors.is_empty() {
            assert_eq!(e, 1.0);
        } else {
            let min_r = survivors.iter().map(|d| d - elapsed).min().unwrap() as f64;
            let max_r = survivors.iter().map(|d| d - elapsed).max().unwrap() as f64;
            assert!(e >= min_r - 1e-9 && e <= max_r + 1e-9);
        }
    });
}

/// Incident tracking conserves buckets: the total badness fed in equals
/// the sum of closed-incident durations.
#[test]
fn incident_durations_conserve_badness() {
    check("incident_durations_conserve_badness", 128, |rng| {
        let n = rng.range_u64(1, 119) as usize;
        let pattern: Vec<u8> = (0..n).map(|_| rng.next_u64() as u8).collect();
        // Each byte's low 3 bits say which of 3 keys are bad that bucket.
        let mut tracker: IncidentTracker<u8> = IncidentTracker::new();
        let mut fed = [0u32; 3];
        let mut closed_total = [0u32; 3];
        for (i, byte) in pattern.iter().enumerate() {
            let mut keys = Vec::new();
            for k in 0..3u8 {
                if byte & (1 << k) != 0 {
                    keys.push(k);
                    fed[k as usize] += 1;
                }
            }
            for inc in tracker.observe(TimeBucket(i as u32), keys) {
                closed_total[inc.key as usize] += inc.buckets;
            }
        }
        for inc in tracker.finish() {
            closed_total[inc.key as usize] += inc.buckets;
        }
        assert_eq!(fed, closed_total);
    });
}

/// Client-count prediction is always within the min/max of the recorded
/// same-slot history.
#[test]
fn client_prediction_bounded() {
    check("client_prediction_bounded", 128, |rng| {
        let n = rng.range_u64(1, 2) as usize;
        let counts: Vec<u64> = (0..n).map(|_| rng.below(1_000_000)).collect();
        let mut h = ClientCountHistory::new();
        let slot = 77u32;
        for (day, c) in counts.iter().enumerate() {
            let b = TimeBucket(day as u32 * blameit_simnet::BUCKETS_PER_DAY + slot);
            h.record(PathId(3), b, *c);
        }
        let target = TimeBucket(counts.len() as u32 * blameit_simnet::BUCKETS_PER_DAY + slot);
        let p = h.predict(PathId(3), target).unwrap();
        let lo = *counts.iter().min().unwrap() as f64;
        let hi = *counts.iter().max().unwrap() as f64;
        assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
    });
}

/// Median and quantiles are order statistics: exactly invariant under
/// any permutation of the sample; the mean to float tolerance.
#[test]
fn stats_permutation_invariant() {
    check("stats_permutation_invariant", 128, |rng| {
        let n = rng.range_u64(1, 199) as usize;
        let xs: Vec<f64> = (0..n).map(|_| rng.range_f64(-1e6, 1e6)).collect();
        let mut shuffled = xs.clone();
        rng.shuffle(&mut shuffled);
        assert_eq!(
            blameit::stats::median(&xs),
            blameit::stats::median(&shuffled)
        );
        for i in 0..=4 {
            let q = f64::from(i) / 4.0;
            assert_eq!(
                blameit::stats::quantile(&xs, q),
                blameit::stats::quantile(&shuffled, q),
                "q={q}"
            );
        }
        let (a, b) = (
            blameit::stats::mean(&xs).unwrap(),
            blameit::stats::mean(&shuffled).unwrap(),
        );
        assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0));
    });
}

/// Appending a new sample at (or above) the current maximum can never
/// lower any quantile — growing evidence of slowness must not make a
/// distribution look faster.
#[test]
fn quantiles_monotone_under_max_appends() {
    check("quantiles_monotone_under_max_appends", 128, |rng| {
        let n = rng.range_u64(1, 99) as usize;
        let mut xs: Vec<f64> = (0..n).map(|_| rng.range_f64(0.0, 1e3)).collect();
        let before: Vec<f64> = (0..=10)
            .map(|i| blameit::stats::quantile(&xs, f64::from(i) / 10.0).unwrap())
            .collect();
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let extra = rng.range_u64(1, 20);
        for _ in 0..extra {
            xs.push(max + rng.range_f64(0.0, 100.0));
        }
        for (i, prev) in before.iter().enumerate() {
            let now = blameit::stats::quantile(&xs, i as f64 / 10.0).unwrap();
            assert!(
                now >= prev - 1e-9,
                "q={} dropped {prev} -> {now}",
                i as f64 / 10.0
            );
        }
    });
}

/// The KS statistic is a proper distance-like quantity: bounded in
/// [0, 1], symmetric in its arguments, exactly zero on identical
/// samples, and undefined (None) when either sample is empty.
#[test]
fn ks_statistic_properties() {
    check("ks_statistic_properties", 128, |rng| {
        let n = rng.range_u64(1, 99) as usize;
        let m = rng.range_u64(1, 99) as usize;
        let shift = rng.range_f64(0.0, 80.0);
        let a: Vec<f64> = (0..n).map(|_| rng.range_f64(0.0, 100.0)).collect();
        let b: Vec<f64> = (0..m).map(|_| rng.range_f64(0.0, 100.0) + shift).collect();
        let ab = blameit::ks_two_sample(&a, &b).unwrap();
        assert!(
            (0.0..=1.0).contains(&ab.statistic),
            "statistic {} out of range",
            ab.statistic
        );
        assert!((0.0..=1.0).contains(&ab.p_value));
        let ba = blameit::ks_two_sample(&b, &a).unwrap();
        assert!((ab.statistic - ba.statistic).abs() <= 1e-12, "asymmetric");
        let aa = blameit::ks_two_sample(&a, &a).unwrap();
        assert_eq!(aa.statistic, 0.0, "identical samples must have D = 0");
        assert!(blameit::ks_two_sample(&[], &a).is_none());
        assert!(blameit::ks_two_sample(&a, &[]).is_none());
    });
}

/// Calibrated badness targets are monotone in the calibration knobs:
/// a higher quantile or more headroom can only raise (never lower)
/// every (region, device-class) threshold.
#[test]
fn calibrated_thresholds_monotone_in_knobs() {
    use blameit_simnet::{World, WorldConfig};
    use blameit_topology::Region;
    let world = World::new(WorldConfig::tiny(1, 7));
    check("calibrated_thresholds_monotone_in_knobs", 32, |rng| {
        let q_lo = rng.range_f64(0.5, 0.9);
        let q_hi = rng.range_f64(q_lo, 0.99);
        let headroom = rng.range_f64(1.0, 1.4);
        let usa = rng.range_f64(0.6, 1.0);
        let base = blameit::BadnessThresholds::calibrate(&world, q_lo, headroom, usa);
        let higher_q = blameit::BadnessThresholds::calibrate(&world, q_hi, headroom, usa);
        let more_headroom =
            blameit::BadnessThresholds::calibrate(&world, q_lo, headroom * 1.2, usa);
        for region in Region::ALL {
            for mobile in [false, true] {
                let b = base.get(region, mobile);
                assert!(b > 0.0, "{region:?} threshold must be positive");
                assert!(
                    higher_q.get(region, mobile) >= b - 1e-9,
                    "{region:?}/mobile={mobile} fell when the quantile rose"
                );
                assert!(
                    more_headroom.get(region, mobile) >= b - 1e-9,
                    "{region:?}/mobile={mobile} fell when headroom rose"
                );
            }
        }
    });
}

/// Algorithm 1 over an empty learner never blames cloud or middle (no
/// expectations → no aggregate can cross τ), and produces exactly one
/// verdict per bad quartet.
#[test]
fn algorithm1_conservative_without_history() {
    check("algorithm1_conservative_without_history", 64, |rng| {
        use blameit::{EnrichedQuartet, RouteInfo};
        use blameit_simnet::QuartetObs;
        use blameit_topology::{Asn, IpPrefix, MetroId, Prefix24, Region};
        let n_bad = rng.below(30) as usize;
        let n_good = rng.below(30) as usize;
        let mk = |i: usize, bad: bool| EnrichedQuartet {
            obs: QuartetObs {
                loc: CloudLocId(0),
                p24: Prefix24::from_block(i as u32),
                mobile: false,
                bucket: TimeBucket(0),
                n: 20,
                mean_rtt_ms: if bad { 200.0 } else { 20.0 },
            },
            info: RouteInfo {
                path: PathId(1),
                middle: vec![Asn(10)],
                origin: Asn(100 + (i % 5) as u32),
                metro: MetroId(0),
                region: Region::Europe,
                prefix: IpPrefix::new((i as u32) << 10, 22),
            },
            bad,
        };
        let mut quartets = Vec::new();
        for i in 0..n_bad {
            quartets.push(mk(i, true));
        }
        for i in 0..n_good {
            quartets.push(mk(1000 + i, false));
        }
        let learner = ExpectedRttLearner::new(1);
        let (blames, _) = assign_blames(&quartets, &learner, &BlameConfig::default());
        assert_eq!(blames.len(), n_bad);
        for b in &blames {
            assert!(
                !matches!(b.blame, blameit::Blame::Cloud | blameit::Blame::Middle),
                "{:?}",
                b.blame
            );
        }
    });
}
