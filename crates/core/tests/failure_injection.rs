//! Failure injection: the engine must stay correct when the data plane
//! misbehaves — traceroutes time out, telemetry goes missing, routing
//! lookups fail. Production telemetry pipelines do all of these (§6.1
//! describes storage-bucket ordering loss as one real quirk).

use blameit::{Backend, BadnessThresholds, BlameItConfig, BlameItEngine, RouteInfo, WorldBackend};
use blameit_simnet::{QuartetObs, SimTime, TimeBucket, TimeRange, Traceroute, World, WorldConfig};
use blameit_topology::bgp::BgpChurnEvent;
use blameit_topology::rng::DetRng;
use blameit_topology::{CloudLocId, Prefix24};

/// A backend wrapper that drops traceroutes, hides buckets of
/// telemetry, and fails routing lookups, each with configured
/// probability (deterministically, per call site).
struct FlakyBackend<'w> {
    inner: WorldBackend<'w>,
    // Mutex (not RefCell): `Backend: Sync` so the sharded tick can call
    // into it from worker threads. The lock order under parallelism > 1
    // is nondeterministic, which is fine here — these tests assert
    // robustness, not exact outputs.
    rng: std::sync::Mutex<DetRng>,
    drop_traceroute: f64,
    drop_bucket: f64,
    drop_route_info: f64,
}

impl<'w> FlakyBackend<'w> {
    fn new(world: &'w World, seed: u64) -> Self {
        FlakyBackend {
            inner: WorldBackend::new(world),
            rng: std::sync::Mutex::new(DetRng::from_keys(seed, &[0xF1A2])),
            drop_traceroute: 0.5,
            drop_bucket: 0.2,
            drop_route_info: 0.1,
        }
    }
}

impl Backend for FlakyBackend<'_> {
    fn quartets_in(&self, bucket: TimeBucket) -> Vec<QuartetObs> {
        if self.rng.lock().unwrap().chance(self.drop_bucket) {
            return Vec::new(); // a whole bucket of telemetry lost
        }
        self.inner.quartets_in(bucket)
    }

    fn route_info(&self, loc: CloudLocId, p24: Prefix24, at: SimTime) -> Option<RouteInfo> {
        if self.rng.lock().unwrap().chance(self.drop_route_info) {
            return None; // BGP/IP-AS join failed for this row
        }
        self.inner.route_info(loc, p24, at)
    }

    fn traceroute(&self, loc: CloudLocId, p24: Prefix24, at: SimTime) -> Option<Traceroute> {
        if self.rng.lock().unwrap().chance(self.drop_traceroute) {
            // Probe still costs (the packet was sent), result lost.
            let _ = self.inner.traceroute(loc, p24, at);
            return None;
        }
        self.inner.traceroute(loc, p24, at)
    }

    fn churn_events(&self, range: TimeRange) -> Vec<BgpChurnEvent> {
        self.inner.churn_events(range)
    }

    fn cloud_locations(&self) -> Vec<CloudLocId> {
        self.inner.cloud_locations()
    }

    fn probes_issued(&self) -> u64 {
        self.inner.probes_issued()
    }
}

#[test]
fn engine_survives_flaky_data_plane() {
    let world = World::new(WorldConfig::tiny(2, 55));
    let thresholds = BadnessThresholds::default_for(&world);
    let mut engine = BlameItEngine::new(BlameItConfig::new(thresholds));
    let mut backend = FlakyBackend::new(&world, 3);

    engine.warmup(&backend, TimeRange::days(1), 2);
    let start = SimTime::from_days(1);
    let outs = engine.run(&mut backend, TimeRange::new(start, start + 6 * 3600));
    assert_eq!(outs.len(), 24, "every tick must complete despite flakiness");

    // It still produces verdicts from the telemetry that did arrive…
    let total_blames: usize = outs.iter().map(|o| o.blames.len()).sum();
    assert!(
        total_blames > 0,
        "some telemetry must survive a 20% bucket loss"
    );
    // …and whatever localizations happen carry coherent structure.
    for out in &outs {
        for l in &out.localizations {
            if let Some(d) = &l.diff {
                assert!(!d.rows.is_empty());
            }
        }
    }
}

#[test]
fn missing_telemetry_does_not_fabricate_blame() {
    // A backend returning nothing at all: the engine must emit nothing.
    struct NullBackend;
    impl Backend for NullBackend {
        fn quartets_in(&self, _: TimeBucket) -> Vec<QuartetObs> {
            Vec::new()
        }
        fn route_info(&self, _: CloudLocId, _: Prefix24, _: SimTime) -> Option<RouteInfo> {
            None
        }
        fn traceroute(&self, _: CloudLocId, _: Prefix24, _: SimTime) -> Option<Traceroute> {
            None
        }
        fn churn_events(&self, _: TimeRange) -> Vec<BgpChurnEvent> {
            Vec::new()
        }
        fn cloud_locations(&self) -> Vec<CloudLocId> {
            Vec::new()
        }
        fn probes_issued(&self) -> u64 {
            0
        }
    }

    let world = World::new(WorldConfig::tiny(1, 1));
    let thresholds = BadnessThresholds::default_for(&world);
    let mut engine = BlameItEngine::new(BlameItConfig::new(thresholds));
    let mut backend = NullBackend;
    engine.warmup(&backend, TimeRange::days(1), 1);
    // Ticks scheduled before the warmup cursor must still be handled
    // gracefully (no churn-range panic), and produce nothing.
    let outs = engine.run(
        &mut backend,
        TimeRange::new(SimTime::ZERO, SimTime(3 * 3600)),
    );
    for out in outs {
        assert!(out.blames.is_empty());
        assert!(out.alerts.is_empty());
        assert!(out.localizations.is_empty());
        assert_eq!(out.on_demand_probes, 0);
    }
}

#[test]
fn dropped_route_info_drops_the_quartet_not_the_bucket() {
    let world = World::new(WorldConfig::tiny(1, 9));
    let thresholds = BadnessThresholds::default_for(&world);
    let full = WorldBackend::new(&world);
    let mut flaky = FlakyBackend::new(&world, 4);
    flaky.drop_bucket = 0.0;
    flaky.drop_route_info = 0.3;

    let bucket = TimeBucket(150);
    let all = blameit::enrich_bucket(&full, bucket, &thresholds);
    let partial = blameit::enrich_bucket(&flaky, bucket, &thresholds);
    assert!(!partial.is_empty());
    assert!(
        partial.len() < all.len(),
        "{} !< {}",
        partial.len(),
        all.len()
    );
    // Every surviving quartet carries real metadata.
    for q in &partial {
        assert!(world.topology().client(q.obs.p24).is_some());
    }
}
