//! Failure injection: the engine must stay correct when the data plane
//! misbehaves — traceroutes time out, telemetry goes missing, routing
//! lookups fail, BGP updates arrive twice. Production telemetry
//! pipelines do all of these (§6.1 describes storage-bucket ordering
//! loss as one real quirk). All faults come from the seeded
//! [`ChaosBackend`]/[`FaultPlan`] layer, so every run here is exactly
//! reproducible — unlike the hand-rolled flaky wrapper these tests
//! started with, whose shared-RNG decisions depended on call order.

use blameit::{
    render_tick_transcript, Backend, BadnessThresholds, BlameItConfig, BlameItEngine, ChaosBackend,
    LocalizationVerdict, RouteInfo, UnlocalizedReason, WorldBackend,
};
use blameit_simnet::{
    Fault, FaultId, FaultPlan, FaultTarget, QuartetObs, SimTime, TimeBucket, TimeRange, Traceroute,
    World, WorldConfig,
};
use blameit_topology::bgp::BgpChurnEvent;
use blameit_topology::{Asn, CloudLocId, Prefix24};

/// The legacy flaky-pipeline mix, expressed as a fault plan.
fn flaky_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        probe_timeout: 0.5,
        drop_quartet_batch: 0.2,
        drop_route_info: 0.1,
        ..FaultPlan::none(seed)
    }
}

/// A tiny world carrying one strong middle-AS fault in hours 25–27,
/// so the active phase has probes to lose.
fn middle_fault_world(days: u64, seed: u64) -> (World, Asn, SimTime) {
    let mut world = World::new(WorldConfig::tiny(days, seed));
    let topo = world.topology();
    let mut middles: Vec<Asn> = topo
        .clients
        .iter()
        .flat_map(|c| {
            let route = &topo.routes_for(c.primary_loc, c).options[0];
            topo.paths.get(route.path_id).middle.clone()
        })
        .collect();
    middles.sort_unstable();
    middles.dedup();
    let culprit = middles[0];
    let start = SimTime::from_hours(25);
    world.add_faults(vec![Fault {
        id: FaultId(0),
        target: FaultTarget::MiddleAs {
            asn: culprit,
            via_path: None,
        },
        start,
        duration_secs: 2 * 3_600,
        added_ms: 110.0,
    }]);
    (world, culprit, start)
}

#[test]
fn engine_survives_flaky_data_plane() {
    let world = World::new(WorldConfig::tiny(2, 55));
    let thresholds = BadnessThresholds::default_for(&world);
    let mut engine = BlameItEngine::new(BlameItConfig::new(thresholds));
    let mut backend = ChaosBackend::new(WorldBackend::new(&world), flaky_plan(3));

    engine.warmup(&backend, TimeRange::days(1), 2);
    let start = SimTime::from_days(1);
    let outs = engine.run(&mut backend, TimeRange::new(start, start + 6 * 3600));
    assert_eq!(outs.len(), 24, "every tick must complete despite flakiness");
    assert!(
        backend.faults_injected() > 0,
        "the plan must actually have fired"
    );

    // It still produces verdicts from the telemetry that did arrive…
    let total_blames: usize = outs.iter().map(|o| o.blames.len()).sum();
    assert!(
        total_blames > 0,
        "some telemetry must survive a 20% bucket loss"
    );
    // …and whatever localizations happen carry coherent structure.
    for out in &outs {
        for l in &out.localizations {
            if let Some(d) = &l.diff {
                assert!(!d.rows.is_empty());
            }
            assert!(l.attempts >= 1, "every localization records its attempts");
            match l.verdict {
                LocalizationVerdict::Culprit(asn) => assert_eq!(l.culprit, Some(asn)),
                LocalizationVerdict::MiddleUnlocalized { .. } => assert_eq!(l.culprit, None),
            }
        }
    }
}

#[test]
fn flaky_data_plane_is_reproducible() {
    // The point of replacing the hand-rolled wrapper: the same (world
    // seed, fault seed) pair must give the same transcript, run twice.
    let run = || {
        let world = World::new(WorldConfig::tiny(2, 55));
        let thresholds = BadnessThresholds::default_for(&world);
        let mut engine = BlameItEngine::new(BlameItConfig::new(thresholds));
        let mut backend = ChaosBackend::new(WorldBackend::new(&world), flaky_plan(3));
        engine.warmup(&backend, TimeRange::days(1), 2);
        let start = SimTime::from_days(1);
        let outs = engine.run(&mut backend, TimeRange::new(start, start + 2 * 3600));
        render_tick_transcript(&outs)
    };
    assert_eq!(run(), run());
}

#[test]
fn missing_telemetry_does_not_fabricate_blame() {
    // A backend returning nothing at all: the engine must emit nothing.
    struct NullBackend;
    impl Backend for NullBackend {
        fn quartets_in(&self, _: TimeBucket) -> Vec<QuartetObs> {
            Vec::new()
        }
        fn route_info(&self, _: CloudLocId, _: Prefix24, _: SimTime) -> Option<RouteInfo> {
            None
        }
        fn traceroute(&self, _: CloudLocId, _: Prefix24, _: SimTime) -> Option<Traceroute> {
            None
        }
        fn churn_events(&self, _: TimeRange) -> Vec<BgpChurnEvent> {
            Vec::new()
        }
        fn cloud_locations(&self) -> Vec<CloudLocId> {
            Vec::new()
        }
        fn probes_issued(&self) -> u64 {
            0
        }
    }

    let world = World::new(WorldConfig::tiny(1, 1));
    let thresholds = BadnessThresholds::default_for(&world);
    let mut engine = BlameItEngine::new(BlameItConfig::new(thresholds));
    let mut backend = NullBackend;
    engine.warmup(&backend, TimeRange::days(1), 1);
    // Ticks scheduled before the warmup cursor must still be handled
    // gracefully (no churn-range panic), and produce nothing.
    let outs = engine.run(
        &mut backend,
        TimeRange::new(SimTime::ZERO, SimTime(3 * 3600)),
    );
    for out in outs {
        assert!(out.blames.is_empty());
        assert!(out.alerts.is_empty());
        assert!(out.localizations.is_empty());
        assert_eq!(out.on_demand_probes, 0);
    }
}

#[test]
fn dropped_route_info_drops_the_quartet_not_the_bucket() {
    let world = World::new(WorldConfig::tiny(1, 9));
    let thresholds = BadnessThresholds::default_for(&world);
    let full = WorldBackend::new(&world);
    let flaky = ChaosBackend::new(
        WorldBackend::new(&world),
        FaultPlan {
            drop_route_info: 0.3,
            ..FaultPlan::none(4)
        },
    );

    let bucket = TimeBucket(150);
    let all = blameit::enrich_bucket(&full, bucket, &thresholds);
    let partial = blameit::enrich_bucket(&flaky, bucket, &thresholds);
    assert!(!partial.is_empty());
    assert!(
        partial.len() < all.len(),
        "{} !< {}",
        partial.len(),
        all.len()
    );
    // Every surviving quartet carries real metadata.
    for q in &partial {
        assert!(world.topology().client(q.obs.p24).is_some());
    }
}

#[test]
fn retry_exhaustion_degrades_honestly() {
    // Every traceroute lost: the active phase must burn its attempt
    // budget, record the retries, and return degraded verdicts — never
    // a fabricated culprit, never a panic.
    let (world, _culprit, start) = middle_fault_world(2, 21);
    let thresholds = BadnessThresholds::default_for(&world);
    let mut engine = BlameItEngine::new(BlameItConfig::new(thresholds));
    let mut backend = ChaosBackend::new(
        WorldBackend::new(&world),
        FaultPlan {
            probe_timeout: 1.0,
            ..FaultPlan::none(8)
        },
    );
    engine.warmup(&backend, TimeRange::days(1), 2);
    let outs = engine.run(&mut backend, TimeRange::new(start, start + 2 * 3_600));

    let locs: Vec<_> = outs.iter().flat_map(|o| o.localizations.iter()).collect();
    assert!(
        !locs.is_empty(),
        "the middle fault must still rank probes despite total probe loss"
    );
    for l in &locs {
        assert_eq!(l.culprit, None, "no probe evidence → no culprit");
        match l.verdict {
            LocalizationVerdict::MiddleUnlocalized {
                reason: UnlocalizedReason::ProbeTimeout,
            } => assert!(
                l.attempts >= 1,
                "an attempted probe records how many tries it burned"
            ),
            LocalizationVerdict::MiddleUnlocalized {
                reason: UnlocalizedReason::DeadlineBudget,
            } => {}
            ref v => panic!("unexpected verdict under total probe loss: {v}"),
        }
    }
    assert!(
        locs.iter().any(|l| l.attempts > 1),
        "at least one probe must have been retried"
    );
    let m = engine.metrics();
    assert!(m.probe_retries.get() > 0, "retries must be counted");
    assert!(m.probe_attempts_lost.get() > 0);
    assert_eq!(
        m.degraded_total(),
        locs.len() as u64,
        "every unlocalized verdict lands in a degraded counter"
    );
}

#[test]
fn duplicated_bgp_updates_are_absorbed() {
    // Every churn event delivered twice: the background scheduler's
    // per-(loc, path) dedup must absorb the duplicates, leaving the
    // whole engine output byte-identical to the clean run.
    let run = |plan: Option<FaultPlan>| {
        let world = World::new(WorldConfig::tiny(2, 31));
        let thresholds = BadnessThresholds::default_for(&world);
        let mut engine = BlameItEngine::new(BlameItConfig::new(thresholds));
        let start = SimTime::from_days(1);
        let eval = TimeRange::new(start, start + 6 * 3_600);
        match plan {
            None => {
                let mut backend = WorldBackend::new(&world);
                engine.warmup(&backend, TimeRange::days(1), 2);
                let outs = engine.run(&mut backend, eval);
                (render_tick_transcript(&outs), 0)
            }
            Some(plan) => {
                let mut backend = ChaosBackend::new(WorldBackend::new(&world), plan);
                engine.warmup(&backend, TimeRange::days(1), 2);
                let outs = engine.run(&mut backend, eval);
                (
                    render_tick_transcript(&outs),
                    backend.stats().churn_duplicated,
                )
            }
        }
    };
    let (clean, _) = run(None);
    let (doubled, duplicated) = run(Some(FaultPlan {
        churn_duplicate: 1.0,
        ..FaultPlan::none(6)
    }));
    assert!(duplicated > 0, "the world must have churn in the window");
    assert_eq!(
        clean, doubled,
        "duplicate BGP updates must not change any verdict or probe"
    );
}

#[test]
fn late_bgp_updates_never_probe_twice() {
    // Every churn event delayed by 20 minutes: baseline refreshes move,
    // but each update still triggers at most one churn probe — the
    // delayed event is delivered exactly once (in its later window),
    // never dropped and never replayed.
    let world = World::new(WorldConfig::tiny(2, 31));
    let clean_events: Vec<BgpChurnEvent> = {
        let b = WorldBackend::new(&world);
        b.churn_events(TimeRange::new(SimTime::ZERO, SimTime::from_days(2)))
    };
    let plan = FaultPlan {
        churn_delay: 1.0,
        churn_delay_secs: 1_200,
        ..FaultPlan::none(6)
    };
    let chaos = ChaosBackend::new(WorldBackend::new(&world), plan);
    // Walk the whole horizon in engine-sized windows (plus one delay's
    // worth of slack past the end, where the last events surface) and
    // collect what the engine would see.
    let mut seen: Vec<BgpChurnEvent> = Vec::new();
    let mut t = 0u64;
    while t < 2 * 86_400 + 1_800 {
        seen.extend(chaos.churn_events(TimeRange::new(SimTime(t), SimTime(t + 900))));
        t += 900;
    }
    assert_eq!(
        seen.len(),
        clean_events.len(),
        "delay must conserve the event count (no loss, no replay)"
    );
    assert!(chaos.stats().churn_delayed > 0);
}
