//! # blameit-baselines — comparator systems
//!
//! The systems BlameIt is evaluated against (paper Table 1 and §6.5),
//! implemented over the same [`blameit::Backend`] abstraction so probe
//! budgets and localization accuracy are directly comparable:
//!
//! * [`tomography`] — boolean network tomography: exoneration from good
//!   paths plus greedy minimal-set cover. Demonstrates the ambiguity
//!   that §4.1 says makes classical tomography impractical.
//! * [`active_only`] — continuous traceroutes on a fixed short period
//!   with rolling per-AS baselines; the design BlameIt beats by 72× on
//!   probe volume.
//! * [`trinocular`] — Trinocular-style belief/back-off adaptive
//!   probing (the 20× comparison).
//! * [`odin`] — Odin-style randomized client sampling (§6.3 case 2's
//!   "periodic traceroutes from a small fraction of clients … happened
//!   not to be impacted" made quantitative).
//! * [`netprofiler`] — NetProfiler-style peer attribute comparison
//!   (§7: BlameIt's closest passive relative), exhibiting the
//!   overlapping-implication ambiguity the hierarchy resolves.
//! * [`ip_rank`] — prefix-count issue ranking vs impact ranking
//!   (Fig. 4b / Fig. 5 / Fig. 12).
//! * [`oracle`] — ground-truth middle issues with true client-time
//!   products, straight from the simulator's fault schedule.

pub mod active_only;
pub mod ip_rank;
pub mod netprofiler;
pub mod odin;
pub mod oracle;
pub mod tomography;
pub mod trinocular;

pub use active_only::ActiveOnlyMonitor;
pub use ip_rank::{
    cumulative_impact_curve, rank_by_impact, rank_by_prefix_count, tuples_needed_for_coverage,
    ImpactRecord,
};
pub use netprofiler::{implicate, Attribute, Implication};
pub use odin::OdinMonitor;
pub use oracle::{impact_records, middle_issues, OracleIssue};
pub use tomography::{boolean_tomography, SegmentNode, TomographyResult};
pub use trinocular::TrinocularMonitor;
