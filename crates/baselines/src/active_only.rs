//! Continuous-traceroute ("active-only") baseline.
//!
//! The straightforward alternative to BlameIt's budgeted probing:
//! traceroute every (location, BGP path) pair on a fixed short period
//! (the paper's corroboration deployment used every minute on 1,000
//! paths, §6.4; the cost extrapolation in §6.5 uses 10 minutes for
//! full coverage ≈ 200M probes/day). Localization compares each AS's
//! current contribution to its rolling history. BlameIt's headline
//! claim is issuing **72× fewer probes** than this design at a 12-hour
//! background period with churn triggers.

use blameit::{diff_contributions, Backend, ProbeTarget};
use blameit_simnet::{SimTime, TimeRange, BUCKET_SECS};
use blameit_topology::{Asn, CloudLocId, PathId};
use std::collections::{HashMap, VecDeque};

/// Rolling window of per-AS contribution snapshots for one target.
type ContributionHistory = VecDeque<Vec<(Asn, f64)>>;

/// Continuous prober with rolling per-AS contribution baselines.
#[derive(Debug)]
pub struct ActiveOnlyMonitor {
    period_secs: u64,
    history_len: usize,
    history: HashMap<(CloudLocId, PathId), ContributionHistory>,
    last_probe: HashMap<(CloudLocId, PathId), SimTime>,
    probes: u64,
}

impl ActiveOnlyMonitor {
    /// Monitor probing each target every `period_secs` (paper cost
    /// model: 600 s), keeping `history_len` past probes as baseline.
    pub fn new(period_secs: u64, history_len: usize) -> Self {
        assert!(period_secs > 0 && history_len > 0);
        ActiveOnlyMonitor {
            period_secs,
            history_len,
            history: HashMap::new(),
            last_probe: HashMap::new(),
            probes: 0,
        }
    }

    /// Probes issued so far by this monitor.
    pub fn probes_issued(&self) -> u64 {
        self.probes
    }

    /// Advances the monitor over `range`, probing every due target on
    /// schedule. Returns probes issued during the call.
    pub fn run<B: Backend>(
        &mut self,
        backend: &mut B,
        range: TimeRange,
        targets: &[ProbeTarget],
    ) -> u64 {
        let before = self.probes;
        let mut t = range.start;
        while t < range.end {
            for target in targets {
                let key = (target.loc, target.path);
                let due = self
                    .last_probe
                    .get(&key)
                    .is_none_or(|last| t.secs() - last.secs() >= self.period_secs);
                if !due {
                    continue;
                }
                self.last_probe.insert(key, t);
                self.probes += 1;
                if let Some(tr) = backend.traceroute(target.loc, target.p24, t) {
                    let h = self.history.entry(key).or_default();
                    if h.len() == self.history_len {
                        h.pop_front();
                    }
                    h.push_back(tr.as_contributions());
                }
            }
            t = t + BUCKET_SECS.min(self.period_secs);
        }
        self.probes - before
    }

    /// The median per-AS baseline for a target, from history.
    pub fn baseline(&self, loc: CloudLocId, path: PathId) -> Option<Vec<(Asn, f64)>> {
        let h = self.history.get(&(loc, path))?;
        if h.is_empty() {
            return None;
        }
        // Median contribution per AS across the retained probes.
        let mut per_as: HashMap<Asn, Vec<f64>> = HashMap::new();
        let mut order: Vec<Asn> = Vec::new();
        for probe in h {
            for (a, ms) in probe {
                if !per_as.contains_key(a) {
                    order.push(*a);
                }
                per_as.entry(*a).or_default().push(*ms);
            }
        }
        Some(
            order
                .into_iter()
                .map(|a| {
                    let mut xs = per_as.remove(&a).unwrap();
                    xs.sort_by(|x, y| x.total_cmp(y));
                    let mid = blameit::stats::quantile_sorted(&xs, 0.5);
                    (a, mid)
                })
                .collect(),
        )
    }

    /// Localizes the culprit AS for an ongoing issue on a target by
    /// probing now and diffing against the rolling baseline. Returns
    /// `(culprit, probes_used)`.
    pub fn localize<B: Backend>(
        &mut self,
        backend: &mut B,
        target: ProbeTarget,
        now: SimTime,
    ) -> Option<Asn> {
        let base = self.baseline(target.loc, target.path)?;
        self.probes += 1;
        let tr = backend.traceroute(target.loc, target.p24, now)?;
        diff_contributions(&base, &tr.as_contributions()).culprit
    }

    /// The probe cost of full coverage: probes per day for `targets`
    /// targets at this period.
    pub fn probes_per_day(&self, targets: usize) -> u64 {
        (86_400 / self.period_secs) * targets as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blameit::WorldBackend;
    use blameit_simnet::{Fault, FaultId, FaultRates, FaultTarget, World, WorldConfig};
    use blameit_topology::Prefix24;

    fn quiet_world(seed: u64) -> World {
        let mut cfg = WorldConfig::tiny(1, seed);
        cfg.fault_rates = FaultRates {
            cloud_per_loc_day: 0.0,
            middle_per_as_day: 0.0,
            client_as_per_day: 0.0,
            client_prefix_per_k_day: 0.0,
            middle_path_scoped_frac: 0.0,
        };
        cfg.churn_rate_per_day = 0.0;
        World::new(cfg)
    }

    fn target_for(w: &World) -> (ProbeTarget, Asn) {
        // A client whose path has a middle AS.
        for c in &w.topology().clients {
            let r = w.route_at(c.primary_loc, c, SimTime(0));
            if let Some(mid) = w.topology().paths.get(r.path_id).middle.first() {
                return (
                    ProbeTarget {
                        loc: c.primary_loc,
                        path: r.path_id,
                        p24: c.p24,
                    },
                    *mid,
                );
            }
        }
        panic!("no middle path in world");
    }

    #[test]
    fn probe_cost_model() {
        let m = ActiveOnlyMonitor::new(600, 10);
        // §6.5: full coverage works out to ~200M/day at Azure's scale.
        // With ~1.4M (loc, path) targets at 10 min, that's the paper's
        // arithmetic; check the formula at small scale.
        assert_eq!(m.probes_per_day(100), 14_400);
    }

    #[test]
    fn run_probes_on_schedule() {
        let w = quiet_world(3);
        let mut b = WorldBackend::new(&w);
        let (t, _) = target_for(&w);
        let mut m = ActiveOnlyMonitor::new(600, 10);
        let issued = m.run(&mut b, TimeRange::new(SimTime(0), SimTime(3600)), &[t]);
        assert_eq!(issued, 6, "one per 10 minutes for an hour");
        assert_eq!(m.probes_issued(), 6);
        assert!(m.baseline(t.loc, t.path).is_some());
    }

    #[test]
    fn localizes_injected_middle_fault() {
        let w = quiet_world(5);
        let (t, faulty_as) = target_for(&w);
        let mut w2 = w.clone();
        w2.add_faults(vec![Fault {
            id: FaultId(0),
            target: FaultTarget::MiddleAs {
                asn: faulty_as,
                via_path: None,
            },
            start: SimTime(40_000),
            duration_secs: 10_000,
            added_ms: 70.0,
        }]);
        let mut b = WorldBackend::new(&w2);
        let mut m = ActiveOnlyMonitor::new(600, 12);
        // Build baseline before the fault.
        m.run(&mut b, TimeRange::new(SimTime(0), SimTime(36_000)), &[t]);
        let culprit = m.localize(&mut b, t, SimTime(42_000));
        assert_eq!(culprit, Some(faulty_as));
    }

    #[test]
    fn localize_without_baseline_is_none() {
        let w = quiet_world(7);
        let (t, _) = target_for(&w);
        let mut b = WorldBackend::new(&w);
        let mut m = ActiveOnlyMonitor::new(600, 10);
        assert_eq!(m.localize(&mut b, t, SimTime(0)), None);
    }

    #[test]
    fn baseline_median_is_robust_to_one_outlier() {
        let w = quiet_world(9);
        let (t, _) = target_for(&w);
        let mut b = WorldBackend::new(&w);
        let mut m = ActiveOnlyMonitor::new(600, 24);
        m.run(&mut b, TimeRange::new(SimTime(0), SimTime(14_400)), &[t]);
        let base = m.baseline(t.loc, t.path).unwrap();
        // All contributions must be modest (no fault injected).
        for (a, ms) in &base {
            assert!(*ms < 120.0, "{a} baseline {ms}");
        }
        // Unknown key → None.
        assert!(m.baseline(CloudLocId(999), PathId(12345)).is_none());
        let _ = Prefix24::from_block(0);
    }
}
