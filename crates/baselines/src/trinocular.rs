//! Trinocular-style adaptive probing baseline.
//!
//! Trinocular (Quan et al., SIGCOMM 2013) tracks Internet *reachability*
//! with belief-driven adaptive probing: blocks believed stable are
//! probed rarely; uncertainty triggers faster probing. The paper
//! compares probe volumes: "Compared to Trinocular, BlameIt issues 20×
//! fewer active probes" (§6.5). This module implements the adaptive
//! schedule (simplified to the scheduling essence: exponential back-off
//! of the probing interval while observations stay consistent, reset on
//! anomaly) so that probe-budget comparison can be regenerated.
//!
//! Note this baseline diagnoses *unreachability-style* anomalies from
//! probes alone — it has no passive RTT stream, which is exactly why it
//! must keep probing everything.

use blameit::{Backend, ProbeTarget};
use blameit_simnet::{SimTime, TimeRange, BUCKET_SECS};
use blameit_topology::{CloudLocId, PathId};
use std::collections::HashMap;

/// Adaptive prober state for one target.
#[derive(Clone, Copy, Debug)]
struct TargetState {
    last_probe: SimTime,
    interval_secs: u64,
    last_rtt_ms: f64,
}

/// Trinocular-style adaptive monitor.
#[derive(Debug)]
pub struct TrinocularMonitor {
    /// Base probing interval (Trinocular: 11 minutes).
    base_interval_secs: u64,
    /// Maximum backed-off interval.
    max_interval_secs: u64,
    /// Relative end-to-end RTT change treated as an anomaly.
    anomaly_rel_change: f64,
    states: HashMap<(CloudLocId, PathId), TargetState>,
    probes: u64,
    anomalies: u64,
}

impl TrinocularMonitor {
    /// Paper-flavoured defaults: 11-minute base interval, backing off
    /// 1.5× per stable observation to a 33-minute cap — ≈44 probes per
    /// target per day in steady state, ~20× BlameIt's twice-daily
    /// background probing (the §6.5 comparison).
    pub fn paper_default() -> Self {
        Self::new(660, 1_980, 0.5)
    }

    /// Custom configuration.
    pub fn new(base_interval_secs: u64, max_interval_secs: u64, anomaly_rel_change: f64) -> Self {
        assert!(base_interval_secs > 0 && max_interval_secs >= base_interval_secs);
        TrinocularMonitor {
            base_interval_secs,
            max_interval_secs,
            anomaly_rel_change,
            states: HashMap::new(),
            probes: 0,
            anomalies: 0,
        }
    }

    /// Probes issued so far.
    pub fn probes_issued(&self) -> u64 {
        self.probes
    }

    /// Anomalies detected so far.
    pub fn anomalies_detected(&self) -> u64 {
        self.anomalies
    }

    /// Advances over `range`, probing each target per its adaptive
    /// schedule. Returns probes issued during the call.
    pub fn run<B: Backend>(
        &mut self,
        backend: &mut B,
        range: TimeRange,
        targets: &[ProbeTarget],
    ) -> u64 {
        let before = self.probes;
        let mut t = range.start;
        while t < range.end {
            for target in targets {
                let key = (target.loc, target.path);
                let due = match self.states.get(&key) {
                    None => true,
                    Some(s) => t.secs() - s.last_probe.secs() >= s.interval_secs,
                };
                if !due {
                    continue;
                }
                self.probes += 1;
                let rtt = backend
                    .traceroute(target.loc, target.p24, t)
                    .and_then(|tr| tr.end_to_end_ms())
                    .unwrap_or(f64::INFINITY);
                let state = self.states.entry(key).or_insert(TargetState {
                    last_probe: t,
                    interval_secs: self.base_interval_secs,
                    last_rtt_ms: rtt,
                });
                let stable = (rtt - state.last_rtt_ms).abs()
                    <= self.anomaly_rel_change * state.last_rtt_ms.max(1.0);
                state.interval_secs = if stable {
                    // Consistent → back off (probe less).
                    (state.interval_secs * 3 / 2).min(self.max_interval_secs)
                } else {
                    self.anomalies += 1;
                    self.base_interval_secs
                };
                state.last_probe = t;
                state.last_rtt_ms = rtt;
            }
            t = t + BUCKET_SECS;
        }
        self.probes - before
    }

    /// Expected steady-state probes per day for `targets` stable
    /// targets (all backed off to the max interval).
    pub fn steady_state_probes_per_day(&self, targets: usize) -> u64 {
        (86_400 / self.max_interval_secs) * targets as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blameit::WorldBackend;
    use blameit_simnet::{Fault, FaultId, FaultRates, FaultTarget, World, WorldConfig};

    fn quiet_world(seed: u64) -> World {
        let mut cfg = WorldConfig::tiny(1, seed);
        cfg.fault_rates = FaultRates {
            cloud_per_loc_day: 0.0,
            middle_per_as_day: 0.0,
            client_as_per_day: 0.0,
            client_prefix_per_k_day: 0.0,
            middle_path_scoped_frac: 0.0,
        };
        cfg.churn_rate_per_day = 0.0;
        World::new(cfg)
    }

    fn some_target(w: &World) -> ProbeTarget {
        let c = &w.topology().clients[0];
        let r = w.route_at(c.primary_loc, c, SimTime(0));
        ProbeTarget {
            loc: c.primary_loc,
            path: r.path_id,
            p24: c.p24,
        }
    }

    #[test]
    fn stable_target_backs_off() {
        let w = quiet_world(3);
        let mut b = WorldBackend::new(&w);
        let t = some_target(&w);
        let mut m = TrinocularMonitor::new(600, 4800, 0.5);
        let day = m.run(&mut b, TimeRange::days(1), &[t]);
        // Continuous 10-min probing would be 144/day; back-off must cut
        // that several-fold.
        assert!(day < 60, "backed-off probing issued {day} probes");
        assert!(day >= 86_400 / 4800, "still probes at the max interval");
        assert_eq!(m.anomalies_detected(), 0, "quiet world, no anomalies");
    }

    #[test]
    fn anomaly_resets_interval() {
        let w = quiet_world(5);
        let t = some_target(&w);
        // A huge middle/cloud fault in the middle of the day.
        let mut w2 = w.clone();
        w2.add_faults(vec![Fault {
            id: FaultId(0),
            target: FaultTarget::CloudLocation(t.loc),
            start: SimTime(40_000),
            duration_secs: 20_000,
            added_ms: 300.0,
        }]);
        let mut b = WorldBackend::new(&w2);
        let mut m = TrinocularMonitor::new(600, 4800, 0.5);
        m.run(&mut b, TimeRange::days(1), &[t]);
        assert!(
            m.anomalies_detected() >= 1,
            "the 300 ms jump must trip the detector"
        );
    }

    #[test]
    fn probes_more_than_blameit_background() {
        // The scheduling arithmetic behind the paper's 20× comparison:
        // even fully backed off, Trinocular probes each target ~22×/day
        // at a 1.1 h cap, vs BlameIt's 2/day background.
        let m = TrinocularMonitor::paper_default();
        let trinocular_daily = m.steady_state_probes_per_day(1000);
        let blameit_background_daily = 2 * 1000;
        assert!(trinocular_daily as f64 / blameit_background_daily as f64 > 5.0);
    }

    #[test]
    fn accounting_counts_every_probe() {
        let w = quiet_world(7);
        let mut b = WorldBackend::new(&w);
        let t = some_target(&w);
        let mut m = TrinocularMonitor::new(600, 600, 0.5); // no back-off
        let n = m.run(&mut b, TimeRange::new(SimTime(0), SimTime(3600)), &[t]);
        assert_eq!(n, 6);
        assert_eq!(m.probes_issued(), b.probes_issued());
    }
}
