//! Impact-ranking comparators (Fig. 4b / Fig. 5 / Fig. 12).
//!
//! §2.4 contrasts two ways of ordering ⟨cloud location, BGP path⟩
//! issues for attention: by the number of problematic IP-/24s (prior
//! work's spatial-aggregate importance, e.g. WhyHigh), or by the true
//! *impact* — affected clients × duration. Ranked by impact, 20% of
//! tuples cover ~80% of cumulative impact; ranked by prefix count it
//! takes ~60% — a 3× difference that motivates BlameIt's client-time
//! product.

use std::collections::HashSet;

use blameit_topology::{CloudLocId, PathId, Prefix24};

/// One ⟨location, path⟩ issue with its measured footprint.
#[derive(Clone, Debug)]
pub struct ImpactRecord {
    /// Cloud location.
    pub loc: CloudLocId,
    /// Middle path.
    pub path: PathId,
    /// Problematic /24s observed in the issue.
    pub p24s: HashSet<Prefix24>,
    /// Ground-truth impact: affected clients × duration (client-time).
    pub impact: f64,
}

/// Orders records by problematic-prefix count, descending (the prior-
/// work ranking).
pub fn rank_by_prefix_count(records: &mut [ImpactRecord]) {
    records.sort_by(|a, b| {
        b.p24s
            .len()
            .cmp(&a.p24s.len())
            .then_with(|| (a.loc, a.path).cmp(&(b.loc, b.path)))
    });
}

/// Orders records by impact, descending (the oracle/impact ranking).
pub fn rank_by_impact(records: &mut [ImpactRecord]) {
    records.sort_by(|a, b| {
        b.impact
            .total_cmp(&a.impact)
            .then_with(|| (a.loc, a.path).cmp(&(b.loc, b.path)))
    });
}

/// The cumulative-impact curve for an ordering: point `i` is
/// `(fraction of tuples ≤ i, fraction of total impact covered)`.
pub fn cumulative_impact_curve(ordered: &[ImpactRecord]) -> Vec<(f64, f64)> {
    let total: f64 = ordered.iter().map(|r| r.impact).sum();
    if total <= 0.0 || ordered.is_empty() {
        return Vec::new();
    }
    let n = ordered.len() as f64;
    let mut acc = 0.0;
    ordered
        .iter()
        .enumerate()
        .map(|(i, r)| {
            acc += r.impact;
            ((i + 1) as f64 / n, acc / total)
        })
        .collect()
}

/// The fraction of tuples needed (under the given ordering) to cover
/// `coverage` of the total impact. Returns 1.0 if never reached.
pub fn tuples_needed_for_coverage(ordered: &[ImpactRecord], coverage: f64) -> f64 {
    for (frac_tuples, frac_impact) in cumulative_impact_curve(ordered) {
        if frac_impact >= coverage {
            return frac_tuples;
        }
    }
    1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(path: u32, n_p24s: u32, impact: f64) -> ImpactRecord {
        ImpactRecord {
            loc: CloudLocId(0),
            path: PathId(path),
            p24s: (0..n_p24s)
                .map(|i| Prefix24::from_block(path * 100 + i))
                .collect(),
            impact,
        }
    }

    #[test]
    fn fig5_example_orderings_differ() {
        // Paper Fig. 5: tuple #1 has 3 prefixes, impact 350; tuple #2
        // has 1 prefix, impact 2000.
        let mut by_prefix = vec![rec(1, 3, 350.0), rec(2, 1, 2000.0)];
        rank_by_prefix_count(&mut by_prefix);
        assert_eq!(by_prefix[0].path, PathId(1));
        let mut by_impact = vec![rec(1, 3, 350.0), rec(2, 1, 2000.0)];
        rank_by_impact(&mut by_impact);
        assert_eq!(by_impact[0].path, PathId(2));
    }

    #[test]
    fn impact_ranking_dominates_coverage() {
        // Heavy-tailed impacts uncorrelated with prefix counts: the
        // impact ranking must reach 80% coverage with fewer tuples.
        let mut records = Vec::new();
        for i in 0..100u32 {
            let impact = if i < 10 { 1000.0 } else { 10.0 };
            // Prefix counts anti-correlated with impact.
            let p24s = if i < 10 { 1 } else { 5 };
            records.push(rec(i, p24s, impact));
        }
        let mut a = records.clone();
        rank_by_impact(&mut a);
        let mut b = records;
        rank_by_prefix_count(&mut b);
        let need_impact = tuples_needed_for_coverage(&a, 0.8);
        let need_prefix = tuples_needed_for_coverage(&b, 0.8);
        assert!(
            need_impact < need_prefix / 2.0,
            "impact {need_impact} vs prefix {need_prefix}"
        );
    }

    #[test]
    fn curve_monotone_and_complete() {
        let mut records: Vec<_> = (0..20).map(|i| rec(i, i + 1, (i + 1) as f64)).collect();
        rank_by_impact(&mut records);
        let curve = cumulative_impact_curve(&records);
        assert_eq!(curve.len(), 20);
        let mut prev = (0.0, 0.0);
        for p in &curve {
            assert!(p.0 > prev.0 && p.1 >= prev.1);
            prev = *p;
        }
        assert!((curve.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(cumulative_impact_curve(&[]).is_empty());
        let zero = vec![rec(1, 1, 0.0)];
        assert!(cumulative_impact_curve(&zero).is_empty());
        assert_eq!(tuples_needed_for_coverage(&zero, 0.8), 1.0);
    }
}
