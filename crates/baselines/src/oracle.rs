//! The impact oracle: ground-truth middle-segment issues.
//!
//! Plays the role of the paper's oracle in Fig. 12 ("we are able to
//! prioritize the traceroutes as good as an oracle"): it reads the
//! simulator's fault schedule directly and computes each middle-segment
//! issue's *true* client-time product — affected clients × duration —
//! which BlameIt's estimated prioritization is scored against.

use crate::ip_rank::ImpactRecord;
use blameit_simnet::{FaultId, FaultTarget, TimeRange, World, BUCKET_SECS};
use blameit_topology::{Asn, CloudLocId, PathId, Prefix24};
use std::collections::{HashMap, HashSet};

/// One ground-truth middle-segment issue.
#[derive(Clone, Debug)]
pub struct OracleIssue {
    /// The underlying fault.
    pub fault: FaultId,
    /// The faulty middle AS.
    pub asn: Asn,
    /// Most-affected cloud location (by client population).
    pub loc: CloudLocId,
    /// Representative middle path through the faulty AS.
    pub path: PathId,
    /// True affected client population (sum over affected /24s).
    pub affected_clients: f64,
    /// Duration in 5-minute buckets (rounded up, ≥ 1).
    pub duration_buckets: u32,
    /// Affected /24s.
    pub p24s: HashSet<Prefix24>,
}

impl OracleIssue {
    /// The true client-time product.
    pub fn client_time_product(&self) -> f64 {
        self.affected_clients * self.duration_buckets as f64
    }

    /// Converts to an [`ImpactRecord`] for ranking comparisons.
    pub fn to_impact_record(&self) -> ImpactRecord {
        ImpactRecord {
            loc: self.loc,
            path: self.path,
            p24s: self.p24s.clone(),
            impact: self.client_time_product(),
        }
    }
}

/// Extracts every middle-segment fault active in `range` with its true
/// footprint: which clients' primary routes traverse the faulty AS (at
/// the fault's midpoint), honoring path-scoped faults.
pub fn middle_issues(world: &World, range: TimeRange) -> Vec<OracleIssue> {
    let topo = world.topology();
    let mut out = Vec::new();
    for f in world.faults().faults() {
        let FaultTarget::MiddleAs { asn, via_path } = f.target else {
            continue;
        };
        if f.end() <= range.start || f.start >= range.end {
            continue;
        }
        let mid_t = blameit_simnet::SimTime(f.start.secs() + f.duration_secs / 2);
        let mut p24s = HashSet::new();
        let mut affected_clients = 0.0;
        let mut per_loc: HashMap<CloudLocId, f64> = HashMap::new();
        let mut rep_path: Option<PathId> = via_path;
        for c in &topo.clients {
            let route = world.route_at(c.primary_loc, c, mid_t);
            if via_path.is_some_and(|p| p != route.path_id) {
                continue;
            }
            if !topo.paths.get(route.path_id).middle.contains(&asn) {
                continue;
            }
            p24s.insert(c.p24);
            affected_clients += c.population as f64;
            *per_loc.entry(c.primary_loc).or_default() += c.population as f64;
            rep_path.get_or_insert(route.path_id);
        }
        if p24s.is_empty() {
            continue; // fault on a path nobody uses
        }
        let loc = *per_loc
            .iter()
            .max_by(|a, b| a.1.total_cmp(b.1).then(b.0.cmp(a.0)))
            .map(|(l, _)| l)
            .unwrap();
        out.push(OracleIssue {
            fault: f.id,
            asn,
            loc,
            path: rep_path.expect("set when p24s nonempty"),
            affected_clients,
            duration_buckets: (f.duration_secs as u32).div_ceil(BUCKET_SECS as u32).max(1),
            p24s,
        });
    }
    out
}

/// All oracle issues as impact records.
pub fn impact_records(world: &World, range: TimeRange) -> Vec<ImpactRecord> {
    middle_issues(world, range)
        .iter()
        .map(OracleIssue::to_impact_record)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use blameit_simnet::{Fault, FaultRates, SimTime, World, WorldConfig};

    fn quiet_world(seed: u64) -> World {
        let mut cfg = WorldConfig::tiny(1, seed);
        cfg.fault_rates = FaultRates {
            cloud_per_loc_day: 0.0,
            middle_per_as_day: 0.0,
            client_as_per_day: 0.0,
            client_prefix_per_k_day: 0.0,
            middle_path_scoped_frac: 0.0,
        };
        cfg.churn_rate_per_day = 0.0;
        World::new(cfg)
    }

    fn middle_as_of_first_client(w: &World) -> (Asn, PathId) {
        for c in &w.topology().clients {
            let r = w.route_at(c.primary_loc, c, SimTime(0));
            if let Some(m) = w.topology().paths.get(r.path_id).middle.first() {
                return (*m, r.path_id);
            }
        }
        panic!("no middle AS");
    }

    #[test]
    fn oracle_extracts_injected_fault() {
        let mut w = quiet_world(3);
        let (asn, _) = middle_as_of_first_client(&w);
        w.add_faults(vec![Fault {
            id: FaultId(0),
            target: FaultTarget::MiddleAs {
                asn,
                via_path: None,
            },
            start: SimTime(10_000),
            duration_secs: 3_000,
            added_ms: 60.0,
        }]);
        let issues = middle_issues(&w, TimeRange::days(1));
        assert_eq!(issues.len(), 1);
        let i = &issues[0];
        assert_eq!(i.asn, asn);
        assert_eq!(i.duration_buckets, 10);
        assert!(i.affected_clients > 0.0);
        assert!(!i.p24s.is_empty());
        assert!(i.client_time_product() > 0.0);
        let rec = i.to_impact_record();
        assert_eq!(rec.p24s.len(), i.p24s.len());
    }

    #[test]
    fn path_scoped_fault_has_smaller_footprint() {
        let w0 = quiet_world(5);
        let (asn, path) = middle_as_of_first_client(&w0);
        let mut w_all = w0.clone();
        w_all.add_faults(vec![Fault {
            id: FaultId(0),
            target: FaultTarget::MiddleAs {
                asn,
                via_path: None,
            },
            start: SimTime(10_000),
            duration_secs: 3_000,
            added_ms: 60.0,
        }]);
        let mut w_scoped = w0.clone();
        w_scoped.add_faults(vec![Fault {
            id: FaultId(0),
            target: FaultTarget::MiddleAs {
                asn,
                via_path: Some(path),
            },
            start: SimTime(10_000),
            duration_secs: 3_000,
            added_ms: 60.0,
        }]);
        let all = &middle_issues(&w_all, TimeRange::days(1))[0];
        let scoped = &middle_issues(&w_scoped, TimeRange::days(1))[0];
        assert!(scoped.p24s.len() <= all.p24s.len());
        assert!(scoped.p24s.is_subset(&all.p24s));
        assert_eq!(scoped.path, path);
    }

    #[test]
    fn faults_outside_range_ignored() {
        let mut w = quiet_world(7);
        let (asn, _) = middle_as_of_first_client(&w);
        w.add_faults(vec![Fault {
            id: FaultId(0),
            target: FaultTarget::MiddleAs {
                asn,
                via_path: None,
            },
            start: SimTime::from_days(3),
            duration_secs: 3_000,
            added_ms: 60.0,
        }]);
        assert!(middle_issues(&w, TimeRange::days(1)).is_empty());
    }

    #[test]
    fn non_middle_faults_ignored() {
        let mut w = quiet_world(9);
        let loc = w.topology().cloud_locations[0].id;
        w.add_faults(vec![Fault {
            id: FaultId(0),
            target: FaultTarget::CloudLocation(loc),
            start: SimTime(1000),
            duration_secs: 3_000,
            added_ms: 100.0,
        }]);
        assert!(middle_issues(&w, TimeRange::days(1)).is_empty());
    }
}
