//! Boolean network tomography baseline.
//!
//! §4.1 argues classical tomography is infeasible at BlameIt's scale:
//! the linear system over (cloud, middle, client) segment latencies is
//! rank-deficient (only composite expressions are solvable), and even
//! *boolean* tomography — each segment is good or bad, a path is good
//! iff all its segments are good — leaves many bad paths ambiguous
//! when coverage is thin. This module implements boolean tomography
//! honestly (exoneration from good paths + greedy minimal-set cover
//! for the rest) so the experiments can measure exactly how ambiguous
//! it is on the same inputs BlameIt handles.

use blameit::{EnrichedQuartet, MiddleKey};
use blameit_topology::{Asn, CloudLocId};
use std::collections::{HashMap, HashSet};

/// A boolean-tomography segment node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum SegmentNode {
    /// A cloud location.
    Cloud(CloudLocId),
    /// A middle segment (BGP path).
    Middle(MiddleKey),
    /// A client AS.
    Client(Asn),
}

/// Outcome of a boolean-tomography solve over one bucket.
#[derive(Clone, Debug, Default)]
pub struct TomographyResult {
    /// Segments declared faulty by the greedy minimal cover.
    pub blamed: Vec<SegmentNode>,
    /// Bad paths fully explained by a single forced segment.
    pub explained: usize,
    /// Bad paths whose culprit choice was ambiguous (≥ 2 candidate
    /// segments remained; greedy picked one arbitrarily).
    pub ambiguous: usize,
    /// Bad paths with *no* candidate segment (every segment exonerated
    /// by good paths — contradictory observations).
    pub contradictory: usize,
}

impl TomographyResult {
    /// Fraction of bad paths that were ambiguous or contradictory.
    pub fn unresolved_fraction(&self) -> f64 {
        let total = self.explained + self.ambiguous + self.contradictory;
        if total == 0 {
            0.0
        } else {
            (self.ambiguous + self.contradictory) as f64 / total as f64
        }
    }
}

/// The three segment nodes of a quartet's path.
fn nodes_of(q: &EnrichedQuartet) -> [SegmentNode; 3] {
    [
        SegmentNode::Cloud(q.obs.loc),
        SegmentNode::Middle(MiddleKey::Path(q.info.path)),
        SegmentNode::Client(q.info.origin),
    ]
}

/// Runs boolean tomography over one bucket's enriched quartets:
///
/// 1. every segment on any *good* path is exonerated;
/// 2. each bad path must contain ≥ 1 faulty segment among its
///    non-exonerated ones;
/// 3. a greedy set cover picks the fewest segments explaining all bad
///    paths (Insight-2's smaller-failure-set prior, applied globally).
pub fn boolean_tomography(quartets: &[EnrichedQuartet]) -> TomographyResult {
    let mut exonerated: HashSet<SegmentNode> = HashSet::new();
    for q in quartets.iter().filter(|q| !q.bad) {
        exonerated.extend(nodes_of(q));
    }

    // Candidate sets per bad path.
    let mut candidate_sets: Vec<Vec<SegmentNode>> = Vec::new();
    for q in quartets.iter().filter(|q| q.bad) {
        let cands: Vec<SegmentNode> = nodes_of(q)
            .into_iter()
            .filter(|n| !exonerated.contains(n))
            .collect();
        candidate_sets.push(cands);
    }

    let mut result = TomographyResult::default();
    let mut blamed: HashSet<SegmentNode> = HashSet::new();

    // Classify determinism first.
    for cands in &candidate_sets {
        match cands.len() {
            0 => result.contradictory += 1,
            1 => result.explained += 1,
            _ => result.ambiguous += 1,
        }
    }

    // Greedy cover: repeatedly pick the candidate covering the most
    // uncovered bad paths (ties → smallest node, deterministically).
    let mut uncovered: Vec<&Vec<SegmentNode>> =
        candidate_sets.iter().filter(|c| !c.is_empty()).collect();
    while !uncovered.is_empty() {
        let mut freq: HashMap<SegmentNode, usize> = HashMap::new();
        for cands in &uncovered {
            for n in cands.iter() {
                *freq.entry(*n).or_default() += 1;
            }
        }
        let best = *freq
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
            .map(|(n, _)| n)
            .expect("uncovered paths have candidates");
        blamed.insert(best);
        uncovered.retain(|cands| !cands.contains(&best));
    }

    let mut blamed: Vec<SegmentNode> = blamed.into_iter().collect();
    blamed.sort();
    result.blamed = blamed;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use blameit::RouteInfo;
    use blameit_simnet::{QuartetObs, TimeBucket};
    use blameit_topology::{IpPrefix, MetroId, PathId, Prefix24, Region};

    fn q(loc: u16, block: u32, path: u32, origin: u32, bad: bool) -> EnrichedQuartet {
        EnrichedQuartet {
            obs: QuartetObs {
                loc: CloudLocId(loc),
                p24: Prefix24::from_block(block),
                mobile: false,
                bucket: TimeBucket(0),
                n: 20,
                mean_rtt_ms: if bad { 200.0 } else { 20.0 },
            },
            info: RouteInfo {
                path: PathId(path),
                middle: vec![Asn(1000 + path)],
                origin: Asn(origin),
                metro: MetroId(0),
                region: Region::Europe,
                prefix: IpPrefix::new(block << 8, 22),
            },
            bad,
        }
    }

    #[test]
    fn exoneration_forces_unique_culprit() {
        // Path 1 bad for client A; the same loc and the same middle are
        // good for client B → only Client(A) remains.
        let quartets = vec![q(0, 1, 1, 100, true), q(0, 2, 1, 200, false)];
        let r = boolean_tomography(&quartets);
        assert_eq!(r.explained, 1);
        assert_eq!(r.ambiguous, 0);
        assert_eq!(r.blamed, vec![SegmentNode::Client(Asn(100))]);
        assert_eq!(r.unresolved_fraction(), 0.0);
    }

    #[test]
    fn isolated_bad_path_is_ambiguous() {
        // One bad path, nothing else observed: cloud, middle and client
        // are all candidates — tomography cannot decide.
        let quartets = vec![q(0, 1, 1, 100, true)];
        let r = boolean_tomography(&quartets);
        assert_eq!(r.ambiguous, 1);
        assert_eq!(r.explained, 0);
        assert_eq!(r.blamed.len(), 1, "greedy still picks one");
        assert!(r.unresolved_fraction() > 0.99);
    }

    #[test]
    fn contradictory_when_all_exonerated() {
        // The same (loc, path, client) triple is both good and bad in
        // the bucket (flapping) → every segment exonerated.
        let quartets = vec![q(0, 1, 1, 100, true), q(0, 1, 1, 100, false)];
        let r = boolean_tomography(&quartets);
        assert_eq!(r.contradictory, 1);
        assert!(r.blamed.is_empty());
    }

    #[test]
    fn greedy_prefers_shared_segment() {
        // Many bad paths share one middle; separate clients. Insight-2
        // says blame the shared middle, and greedy cover agrees.
        let mut quartets: Vec<_> = (0..10).map(|i| q(0, i, 7, 100 + i, true)).collect();
        // Exonerate the cloud with a good path elsewhere.
        quartets.push(q(0, 99, 8, 500, false));
        let r = boolean_tomography(&quartets);
        assert!(r
            .blamed
            .contains(&SegmentNode::Middle(MiddleKey::Path(PathId(7)))));
        assert_eq!(
            r.blamed.len(),
            1,
            "one segment explains all: {:?}",
            r.blamed
        );
    }

    #[test]
    fn empty_input() {
        let r = boolean_tomography(&[]);
        assert!(r.blamed.is_empty());
        assert_eq!(r.unresolved_fraction(), 0.0);
    }
}
