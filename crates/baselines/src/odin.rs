//! Odin-style randomized client measurement baseline.
//!
//! Odin (Calder et al., NSDI'18) is Microsoft's CDN measurement system:
//! rich clients are randomly sampled to take active measurements,
//! giving continuous visibility without targeting. Table 1 credits it
//! with scale and low diagnosis latency but **not** with triggered,
//! impact-prioritized probes — it measures a random cross-section, so
//! catching a specific incident depends on sampling luck.
//!
//! This module implements that sampling discipline over the simulator
//! so the comparison is quantitative: for a given probe budget, what
//! fraction of ground-truth middle incidents does random sampling
//! observe at all (vs BlameIt, which aims every probe at a known
//! issue)?

use blameit::Backend;
use blameit_simnet::{SimTime, TimeRange, World, BUCKET_SECS};
use blameit_topology::rng::DetRng;
use blameit_topology::{Asn, CloudLocId, PathId, Prefix24};
use std::collections::HashSet;

/// Randomized client prober.
#[derive(Debug)]
pub struct OdinMonitor {
    /// Measurements issued per 5-minute bucket (the budget).
    pub probes_per_bucket: usize,
    rng: DetRng,
    probes: u64,
    /// (loc, path) pairs with at least one measurement, per bucket kept
    /// only for the most recent run.
    observed: HashSet<(CloudLocId, PathId, u32)>,
}

impl OdinMonitor {
    /// A monitor issuing `probes_per_bucket` randomly-targeted
    /// measurements per bucket.
    pub fn new(probes_per_bucket: usize, seed: u64) -> Self {
        OdinMonitor {
            probes_per_bucket,
            rng: DetRng::from_keys(seed, &[0x0D1A]),
            probes: 0,
            observed: HashSet::new(),
        }
    }

    /// Probes issued so far.
    pub fn probes_issued(&self) -> u64 {
        self.probes
    }

    /// Runs over `range`, sampling clients uniformly at random each
    /// bucket and recording which (loc, path, bucket) combinations got
    /// any visibility.
    pub fn run<B: Backend>(&mut self, backend: &mut B, world: &World, range: TimeRange) {
        let clients = &world.topology().clients;
        let mut t = range.start;
        while t < range.end {
            for _ in 0..self.probes_per_bucket {
                let c = &clients[self.rng.index(clients.len())];
                self.probes += 1;
                if backend.traceroute(c.primary_loc, c.p24, t).is_some() {
                    let route = world.route_at(c.primary_loc, c, t);
                    self.observed
                        .insert((c.primary_loc, route.path_id, t.bucket().0));
                }
            }
            t = t + BUCKET_SECS;
        }
    }

    /// Whether any measurement touched the given (loc, path) while the
    /// window was active.
    pub fn observed_during(&self, loc: CloudLocId, path: PathId, window: TimeRange) -> bool {
        window
            .buckets()
            .any(|b| self.observed.contains(&(loc, path, b.0)))
    }

    /// Fraction of the given ground-truth middle issues that random
    /// sampling observed at least once while they were live. Each issue
    /// is `(loc, path, window)`.
    pub fn coverage_of(&self, issues: &[(CloudLocId, PathId, TimeRange)]) -> f64 {
        if issues.is_empty() {
            return 1.0;
        }
        issues
            .iter()
            .filter(|(loc, path, w)| self.observed_during(*loc, *path, *w))
            .count() as f64
            / issues.len() as f64
    }
}

/// Convenience: the paper's case-2 observation ("one system was based
/// on periodic traceroutes from a small fraction of clients, but these
/// clients happened not to be impacted") as a measurable quantity —
/// ground-truth middle issues from `world` over `range`, with each
/// issue's most-affected location and representative path.
pub fn issue_windows(world: &World, range: TimeRange) -> Vec<(CloudLocId, PathId, TimeRange)> {
    crate::oracle::middle_issues(world, range)
        .into_iter()
        .map(|i| {
            let f = world.faults().fault(i.fault);
            (
                i.loc,
                i.path,
                TimeRange::new(
                    f.start.max(range.start),
                    SimTime(f.end().secs().min(range.end.secs())),
                ),
            )
        })
        .collect()
}

/// The faulty AS for an issue index (test/report helper).
pub fn issue_asn(world: &World, range: TimeRange, idx: usize) -> Option<Asn> {
    crate::oracle::middle_issues(world, range)
        .get(idx)
        .map(|i| i.asn)
}

/// A deterministic sample /24 for a (loc, path) pair (report helper).
pub fn sample_p24(world: &World, loc: CloudLocId, path: PathId, at: SimTime) -> Option<Prefix24> {
    world
        .topology()
        .clients
        .iter()
        .find(|c| c.primary_loc == loc && world.route_at(loc, c, at).path_id == path)
        .map(|c| c.p24)
}

#[cfg(test)]
mod tests {
    use super::*;
    use blameit::WorldBackend;
    use blameit_simnet::{Fault, FaultId, FaultRates, FaultTarget, WorldConfig};

    fn quiet_world(seed: u64) -> World {
        let mut cfg = WorldConfig::tiny(1, seed);
        cfg.fault_rates = FaultRates {
            cloud_per_loc_day: 0.0,
            middle_per_as_day: 0.0,
            client_as_per_day: 0.0,
            client_prefix_per_k_day: 0.0,
            middle_path_scoped_frac: 0.0,
        };
        cfg.churn_rate_per_day = 0.0;
        World::new(cfg)
    }

    #[test]
    fn probe_accounting() {
        let w = quiet_world(3);
        let mut b = WorldBackend::new(&w);
        let mut m = OdinMonitor::new(3, 7);
        m.run(&mut b, &w, TimeRange::new(SimTime(0), SimTime(3 * 300)));
        assert_eq!(m.probes_issued(), 9);
        assert_eq!(b.probes_issued(), 9);
    }

    #[test]
    fn dense_sampling_sees_issue_sparse_often_does_not() {
        let mut w = quiet_world(5);
        // A 2-hour middle fault on the *least shared* (loc, path) so a
        // one-probe-per-bucket random sampler has a real chance to miss.
        let mut sharers: std::collections::HashMap<(CloudLocId, PathId), u32> =
            std::collections::HashMap::new();
        for c in &w.topology().clients {
            let r = w.route_at(c.primary_loc, c, SimTime(0));
            *sharers.entry((c.primary_loc, r.path_id)).or_default() += 1;
        }
        let (asn, loc, path) = w
            .topology()
            .clients
            .iter()
            .filter_map(|c| {
                let r = w.route_at(c.primary_loc, c, SimTime(0));
                w.topology()
                    .paths
                    .get(r.path_id)
                    .middle
                    .first()
                    .map(|a| (*a, c.primary_loc, r.path_id))
            })
            .min_by_key(|(_, loc, path)| sharers[&(*loc, *path)])
            .unwrap();
        w.add_faults(vec![Fault {
            id: FaultId(0),
            target: FaultTarget::MiddleAs {
                asn,
                via_path: None,
            },
            start: SimTime(30_000),
            duration_secs: 7_200,
            added_ms: 80.0,
        }]);
        let window = TimeRange::new(SimTime(30_000), SimTime(37_200));

        // Dense random sampling covers the issue's (loc, path)…
        let mut dense = OdinMonitor::new(50, 1);
        let mut b1 = WorldBackend::new(&w);
        dense.run(&mut b1, &w, window);
        assert!(dense.observed_during(loc, path, window));

        // …while a tiny random budget frequently misses it (measured
        // over several seeds so the test is robust).
        let mut misses = 0;
        for seed in 0..16 {
            let mut sparse = OdinMonitor::new(1, seed);
            let mut b2 = WorldBackend::new(&w);
            sparse.run(&mut b2, &w, window);
            if !sparse.observed_during(loc, path, window) {
                misses += 1;
            }
        }
        assert!(misses >= 1, "random sampling should miss sometimes");
    }

    #[test]
    fn coverage_of_empty_is_full() {
        let m = OdinMonitor::new(1, 1);
        assert_eq!(m.coverage_of(&[]), 1.0);
    }
}
