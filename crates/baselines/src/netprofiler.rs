//! NetProfiler-style peer-cooperation diagnosis.
//!
//! NetProfiler (Padmanabhan, Ramabhadran & Padhye, IPTPS'05) diagnoses
//! wide-area problems by having *peers* compare end-to-end performance
//! along shared attributes (same ISP, same prefix, same destination):
//! if everyone sharing an attribute degrades together, the attribute is
//! implicated. §7 calls BlameIt's passive phase "closest to
//! NetProfiler", with BlameIt differing in scale and in the selective
//! active probing layered on top.
//!
//! This implementation groups bad quartets by each attribute the
//! clients share — client AS, announced prefix, serving location, and
//! BGP path — and blames the attribute(s) whose member badness rate
//! crosses a threshold. Unlike Algorithm 1 there is **no hierarchy**
//! (no cloud-first elimination), so a single incident commonly
//! implicates several overlapping attributes at once; the experiments
//! measure that over-blaming against BlameIt's single verdict.

use blameit::EnrichedQuartet;
use blameit_topology::{Asn, CloudLocId, IpPrefix, PathId};
use std::collections::HashMap;
use std::fmt;

/// An attribute shared by a set of clients.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Attribute {
    /// All clients of one access AS.
    ClientAs(Asn),
    /// All clients in one announced prefix.
    Prefix(IpPrefix),
    /// All clients served by one cloud location.
    Location(CloudLocId),
    /// All clients sharing one middle path.
    Path(PathId),
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Attribute::ClientAs(a) => write!(f, "client:{a}"),
            Attribute::Prefix(p) => write!(f, "prefix:{p}"),
            Attribute::Location(l) => write!(f, "location:{l}"),
            Attribute::Path(p) => write!(f, "path:{p}"),
        }
    }
}

/// One implicated attribute with its badness statistics.
#[derive(Clone, Debug)]
pub struct Implication {
    /// The shared attribute.
    pub attribute: Attribute,
    /// Members observed this window.
    pub members: usize,
    /// Members whose quartet was bad.
    pub bad_members: usize,
}

impl Implication {
    /// Fraction of members that degraded together.
    pub fn badness_rate(&self) -> f64 {
        self.bad_members as f64 / self.members as f64
    }
}

/// NetProfiler-style analysis over one bucket of enriched quartets:
/// every attribute whose members degrade together (rate ≥ `threshold`,
/// with ≥ `min_members` members) is implicated.
pub fn implicate(
    quartets: &[EnrichedQuartet],
    threshold: f64,
    min_members: usize,
) -> Vec<Implication> {
    let mut groups: HashMap<Attribute, (usize, usize)> = HashMap::new();
    for q in quartets {
        for attr in [
            Attribute::ClientAs(q.info.origin),
            Attribute::Prefix(q.info.prefix),
            Attribute::Location(q.obs.loc),
            Attribute::Path(q.info.path),
        ] {
            let e = groups.entry(attr).or_default();
            e.0 += 1;
            if q.bad {
                e.1 += 1;
            }
        }
    }
    let mut out: Vec<Implication> = groups
        .into_iter()
        .filter(|(_, (n, bad))| *n >= min_members && *bad as f64 / *n as f64 >= threshold)
        .map(|(attribute, (members, bad_members))| Implication {
            attribute,
            members,
            bad_members,
        })
        .collect();
    out.sort_by(|a, b| {
        b.badness_rate()
            .total_cmp(&a.badness_rate())
            .then_with(|| a.attribute.cmp(&b.attribute))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use blameit::RouteInfo;
    use blameit_simnet::{QuartetObs, TimeBucket};
    use blameit_topology::{MetroId, Prefix24, Region};

    fn q(
        loc: u16,
        block: u32,
        path: u32,
        origin: u32,
        prefix_base: u32,
        bad: bool,
    ) -> EnrichedQuartet {
        EnrichedQuartet {
            obs: QuartetObs {
                loc: CloudLocId(loc),
                p24: Prefix24::from_block(block),
                mobile: false,
                bucket: TimeBucket(0),
                n: 20,
                mean_rtt_ms: if bad { 200.0 } else { 20.0 },
            },
            info: RouteInfo {
                path: PathId(path),
                middle: vec![Asn(1000 + path)],
                origin: Asn(origin),
                metro: MetroId(0),
                region: Region::Europe,
                prefix: IpPrefix::new(prefix_base << 12, 20),
            },
            bad,
        }
    }

    #[test]
    fn shared_isp_degradation_implicates_the_isp() {
        // AS100's clients all degrade, across two locations and paths.
        let mut quartets = vec![
            q(0, 1, 1, 100, 1, true),
            q(0, 2, 1, 100, 1, true),
            q(1, 3, 2, 100, 2, true),
            q(1, 4, 2, 100, 2, true),
        ];
        // Healthy bystanders sharing the locations and paths.
        for i in 10u32..30 {
            quartets.push(q((i % 2) as u16, i, 1 + (i % 2), 200 + i, 3 + i, false));
        }
        let imps = implicate(&quartets, 0.9, 3);
        assert!(imps
            .iter()
            .any(|i| i.attribute == Attribute::ClientAs(Asn(100))));
        // The shared locations are NOT implicated (bystanders fine).
        assert!(!imps
            .iter()
            .any(|i| matches!(i.attribute, Attribute::Location(_))));
    }

    #[test]
    fn overlapping_attributes_over_blame() {
        // One prefix's clients degrade; the prefix, its AS, and its
        // path are all implicated — NetProfiler cannot pick one, which
        // is the ambiguity BlameIt's hierarchy resolves.
        let quartets: Vec<_> = (0..6).map(|i| q(0, i, 7, 300, 5, true)).collect();
        let imps = implicate(&quartets, 0.8, 3);
        let kinds: Vec<_> = imps.iter().map(|i| i.attribute).collect();
        assert!(kinds.contains(&Attribute::ClientAs(Asn(300))));
        assert!(kinds.contains(&Attribute::Path(PathId(7))));
        assert!(kinds.contains(&Attribute::Location(CloudLocId(0))));
        assert!(
            imps.len() >= 3,
            "multiple overlapping implications: {imps:?}"
        );
    }

    #[test]
    fn min_members_filters_thin_groups() {
        let quartets = vec![q(0, 1, 1, 100, 1, true), q(0, 2, 2, 101, 2, true)];
        assert!(implicate(&quartets, 0.8, 3).is_empty());
    }

    #[test]
    fn ranking_by_badness_rate() {
        let mut quartets: Vec<_> = (0..10).map(|i| q(0, i, 1, 100, 1, true)).collect();
        quartets.extend((10..20).map(|i| q(0, i, 2, 200, 2, i < 18)));
        let imps = implicate(&quartets, 0.5, 5);
        assert!(!imps.is_empty());
        for w in imps.windows(2) {
            assert!(w[0].badness_rate() >= w[1].badness_rate() - 1e-12);
        }
    }
}
