//! The crash-safe ingest write-ahead log.
//!
//! The engine's journal makes *ticks* durable; this WAL makes the
//! *not-yet-ticked queue* durable. Every admitted batch is appended
//! and fsync'd **before** it becomes engine-visible, so a hard kill
//! between admission and the covering snapshot loses nothing: on
//! restart the WAL refills the queue first, then
//! [`DurableEngine::open`](blameit::DurableEngine::open) replays
//! journaled ticks *through* the refilled queue — which is what makes
//! the resumed run byte-identical to one that never crashed.
//!
//! Layout reuses the persistence codec: the standard preamble with a
//! WAL kind byte, then one CRC'd section per admitted batch (the
//! section payload is the batch's wire frame — one byte dialect
//! everywhere). A torn tail (the append that was racing the kill) is
//! detected by the section CRC and truncated on replay, exactly like
//! the tick journal.

use crate::wire::{decode_frame, encode_frame, Frame};
use blameit::persist::codec::{self, ByteWriter};
use blameit::RecordBatch;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Preamble kind byte for ingest WALs (snapshots are 1, journals 2).
const KIND_INGEST_WAL: u8 = 3;
/// Section id for one admitted batch.
const SEC_BATCH: u8 = 1;

/// What [`IngestWal::open`] found on disk.
#[derive(Debug, Default)]
pub struct WalRecovery {
    /// Batches recovered, in append order.
    pub batches: Vec<RecordBatch>,
    /// A torn trailing record was found and discarded.
    pub torn_tail: bool,
}

/// An append-only, fsync'd log of admitted ingest batches.
pub struct IngestWal {
    path: PathBuf,
    file: File,
}

impl IngestWal {
    /// Opens (creating if absent) the WAL at `path` and replays any
    /// existing contents. A torn tail is truncated away so subsequent
    /// appends start at a valid boundary.
    pub fn open(path: &Path) -> io::Result<(IngestWal, WalRecovery)> {
        let mut recovery = WalRecovery::default();
        let mut valid_len = 0u64;
        match std::fs::read(path) {
            Ok(bytes) if !bytes.is_empty() => {
                let (batches, valid, torn) = replay(&bytes);
                recovery.batches = batches;
                recovery.torn_tail = torn;
                valid_len = valid;
            }
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let file = if valid_len == 0 {
            let mut f = File::create(path)?;
            let mut w = ByteWriter::new();
            codec::write_preamble(&mut w, KIND_INGEST_WAL);
            f.write_all(&w.into_bytes())?;
            f.sync_data()?;
            f
        } else {
            let f = OpenOptions::new().write(true).open(path)?;
            f.set_len(valid_len)?;
            f.sync_data()?;
            let mut f = f;
            use std::io::Seek;
            f.seek(io::SeekFrom::End(0))?;
            f
        };
        Ok((
            IngestWal {
                path: path.to_path_buf(),
                file,
            },
            recovery,
        ))
    }

    /// Appends one admitted batch and fsyncs. Only after this returns
    /// may the batch become engine-visible.
    pub fn append(&mut self, batch: &RecordBatch) -> io::Result<()> {
        let payload = encode_frame(&Frame::Batch {
            batch: batch.clone(),
        });
        let mut w = ByteWriter::new();
        codec::write_section(&mut w, SEC_BATCH, &payload);
        self.file.write_all(&w.into_bytes())?;
        self.file.sync_data()
    }

    /// Rewrites the WAL to hold exactly `retained` (batches whose
    /// buckets a durable snapshot does not yet cover), via temp file +
    /// fsync + rename so a kill mid-compaction leaves the old WAL
    /// intact.
    pub fn compact(&mut self, retained: &[RecordBatch]) -> io::Result<()> {
        let tmp = self.path.with_extension("wal.tmp");
        let mut w = ByteWriter::new();
        codec::write_preamble(&mut w, KIND_INGEST_WAL);
        for batch in retained {
            let payload = encode_frame(&Frame::Batch {
                batch: batch.clone(),
            });
            codec::write_section(&mut w, SEC_BATCH, &payload);
        }
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&w.into_bytes())?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        if let Some(dir) = self.path.parent() {
            // Make the rename itself durable.
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        let mut f = OpenOptions::new().write(true).open(&self.path)?;
        use std::io::Seek;
        f.seek(io::SeekFrom::End(0))?;
        self.file = f;
        Ok(())
    }
}

/// Walks `bytes`, returning (recovered batches, valid byte length,
/// torn tail seen). Anything undecodable counts as the torn tail —
/// the WAL's only writer appends whole sections, so a bad section can
/// only be the append in flight at the kill.
fn replay(bytes: &[u8]) -> (Vec<RecordBatch>, u64, bool) {
    let Ok(mut r) = codec::read_preamble(bytes, KIND_INGEST_WAL) else {
        return (Vec::new(), 0, true);
    };
    let preamble_len = bytes.len() - r.remaining();
    let mut batches = Vec::new();
    let mut valid = preamble_len as u64;
    loop {
        if r.remaining() == 0 {
            return (batches, valid, false);
        }
        match codec::read_section(&mut r) {
            Ok((SEC_BATCH, payload)) => match decode_frame(payload) {
                Ok(Frame::Batch { batch }) => {
                    batches.push(batch);
                    valid = (bytes.len() - r.remaining()) as u64;
                }
                _ => return (batches, valid, true),
            },
            _ => return (batches, valid, true),
        }
    }
}

/// Reads back every batch in a WAL file (fsck-style helper for tests
/// and the smoke harness).
pub fn read_wal(path: &Path) -> io::Result<WalRecovery> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let (batches, _, torn_tail) = replay(&bytes);
    Ok(WalRecovery { batches, torn_tail })
}

#[cfg(test)]
mod tests {
    use super::*;
    use blameit_simnet::TimeBucket;

    fn batch(bucket: u32, n: u64) -> RecordBatch {
        RecordBatch {
            bucket: TimeBucket(bucket),
            keys: (0..n).collect(),
            rtt: (0..n).map(|i| 10.0 + i as f64).collect(),
        }
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("blameitd-wal-{name}-{}", std::process::id()))
    }

    #[test]
    fn append_then_reopen_recovers_in_order() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        let (mut wal, rec) = IngestWal::open(&path).unwrap();
        assert!(rec.batches.is_empty());
        wal.append(&batch(3, 5)).unwrap();
        wal.append(&batch(4, 2)).unwrap();
        drop(wal);
        let (_, rec) = IngestWal::open(&path).unwrap();
        assert_eq!(rec.batches, vec![batch(3, 5), batch(4, 2)]);
        assert!(!rec.torn_tail);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_resume() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _) = IngestWal::open(&path).unwrap();
        wal.append(&batch(3, 5)).unwrap();
        wal.append(&batch(4, 2)).unwrap();
        drop(wal);
        // Tear the last record mid-write.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 7).unwrap();
        drop(f);
        let (mut wal, rec) = IngestWal::open(&path).unwrap();
        assert_eq!(rec.batches, vec![batch(3, 5)]);
        assert!(rec.torn_tail);
        // The WAL is usable again after truncation.
        wal.append(&batch(5, 1)).unwrap();
        drop(wal);
        let rec = read_wal(&path).unwrap();
        assert_eq!(rec.batches, vec![batch(3, 5), batch(5, 1)]);
        assert!(!rec.torn_tail);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compact_keeps_only_retained() {
        let path = tmp("compact");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _) = IngestWal::open(&path).unwrap();
        for b in 0..6 {
            wal.append(&batch(b, 4)).unwrap();
        }
        wal.compact(&[batch(4, 4), batch(5, 4)]).unwrap();
        wal.append(&batch(6, 1)).unwrap();
        drop(wal);
        let rec = read_wal(&path).unwrap();
        assert_eq!(rec.batches, vec![batch(4, 4), batch(5, 4), batch(6, 1)]);
        let _ = std::fs::remove_file(&path);
    }
}
