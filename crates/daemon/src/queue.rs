//! [`QueueBackend`]: the bounded ingest queue as a [`Backend`].
//!
//! The engine's tick pulls quartets through [`Backend::quartets_in`];
//! the daemon's ingest path pushes admitted [`RecordBatch`]es. This
//! adapter joins the two: buckets before `feed_start` delegate to the
//! inner backend (warmup history comes from the world, exactly like an
//! offline run), buckets at or after it aggregate whatever the socket
//! fed — concatenated, key-sorted, and collapsed through the columnar
//! ingest kernel.
//!
//! Determinism: for a given multiset of admitted batches pushed in a
//! given order, aggregation is a pure function — no wall clock, no
//! map iteration. With a single feeder connection (the supported
//! configuration) arrival order is the sender's frame order, so a
//! replayed feed reproduces every tick byte-for-byte; that is what
//! lets [`DurableEngine`](blameit::DurableEngine) journal-replay
//! through this backend after a crash.

use blameit::columnar::{aggregate_batch_reuse, IngestArena, QuartetStore, RecordBatch};
use blameit::Backend;
use blameit_simnet::{QuartetObs, RttRecord, SimTime, TimeBucket, TimeRange};
use blameit_topology::bgp::BgpChurnEvent;
use blameit_topology::{CloudLocId, Prefix24};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// A [`Backend`] that serves fed batches for the ingest window and
/// delegates everything else (routing, traceroutes, churn, warmup
/// buckets) to the inner backend.
pub struct QueueBackend<B> {
    inner: B,
    feed_start: TimeBucket,
    queued: Mutex<BTreeMap<u32, Vec<RecordBatch>>>,
}

impl<B: Backend> QueueBackend<B> {
    /// Wraps `inner`; buckets `>= feed_start` are served from the
    /// queue, earlier buckets from `inner`.
    pub fn new(inner: B, feed_start: TimeBucket) -> Self {
        QueueBackend {
            inner,
            feed_start,
            queued: Mutex::new(BTreeMap::new()),
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// First fed bucket.
    pub fn feed_start(&self) -> TimeBucket {
        self.feed_start
    }

    /// Enqueues one admitted batch (appended after any batches already
    /// held for its bucket).
    pub fn push(&self, batch: RecordBatch) {
        if batch.keys.is_empty() {
            return;
        }
        self.queued
            .lock()
            .expect("queue lock")
            .entry(batch.bucket.0)
            .or_default()
            .push(batch);
    }

    /// The highest bucket any batch has been fed for.
    pub fn max_fed(&self) -> Option<TimeBucket> {
        self.queued
            .lock()
            .expect("queue lock")
            .keys()
            .next_back()
            .map(|&b| TimeBucket(b))
    }

    /// Records held for buckets in `[start, start + buckets)`.
    pub fn records_in(&self, start: TimeBucket, buckets: u32) -> usize {
        let q = self.queued.lock().expect("queue lock");
        q.range(start.0..start.0 + buckets)
            .map(|(_, v)| v.iter().map(|b| b.keys.len()).sum::<usize>())
            .sum()
    }

    /// Records held for buckets at or after `start`.
    pub fn records_from(&self, start: TimeBucket) -> usize {
        let q = self.queued.lock().expect("queue lock");
        q.range(start.0..)
            .map(|(_, v)| v.iter().map(|b| b.keys.len()).sum::<usize>())
            .sum()
    }

    /// Drops buckets strictly below `cutoff` (covered by a durable
    /// snapshot — no replay can need them again).
    pub fn prune_below(&self, cutoff: TimeBucket) {
        let mut q = self.queued.lock().expect("queue lock");
        *q = q.split_off(&cutoff.0);
    }

    /// The retained batches in (bucket, arrival) order, for WAL
    /// compaction.
    pub fn retained(&self) -> Vec<RecordBatch> {
        let q = self.queued.lock().expect("queue lock");
        q.values().flat_map(|v| v.iter().cloned()).collect()
    }
}

impl<B: Backend> Backend for QueueBackend<B> {
    fn quartets_in(&self, bucket: TimeBucket) -> Vec<QuartetObs> {
        if bucket.0 < self.feed_start.0 {
            return self.inner.quartets_in(bucket);
        }
        let merged = {
            let q = self.queued.lock().expect("queue lock");
            let Some(batches) = q.get(&bucket.0) else {
                return Vec::new();
            };
            let total: usize = batches.iter().map(|b| b.keys.len()).sum();
            let mut merged = RecordBatch {
                bucket,
                keys: Vec::with_capacity(total),
                rtt: Vec::with_capacity(total),
            };
            for b in batches {
                merged.keys.extend_from_slice(&b.keys);
                merged.rtt.extend_from_slice(&b.rtt);
            }
            merged
        };
        let mut merged = merged;
        merged.sort_by_key();
        let mut arena = IngestArena::new();
        let mut store = QuartetStore::new();
        aggregate_batch_reuse(&merged, &mut arena, &mut store);
        store.to_obs()
    }

    fn rtt_records_in(&self, bucket: TimeBucket) -> Option<Vec<RttRecord>> {
        if bucket.0 < self.feed_start.0 {
            self.inner.rtt_records_in(bucket)
        } else {
            // The raw record stream was consumed at the socket; only
            // the columnar form exists here.
            None
        }
    }

    fn route_info(
        &self,
        loc: CloudLocId,
        p24: Prefix24,
        at: SimTime,
    ) -> Option<blameit::RouteInfo> {
        self.inner.route_info(loc, p24, at)
    }

    fn traceroute(
        &self,
        loc: CloudLocId,
        p24: Prefix24,
        at: SimTime,
    ) -> Option<blameit_simnet::Traceroute> {
        self.inner.traceroute(loc, p24, at)
    }

    fn churn_events(&self, range: TimeRange) -> Vec<BgpChurnEvent> {
        self.inner.churn_events(range)
    }

    fn cloud_locations(&self) -> Vec<CloudLocId> {
        self.inner.cloud_locations()
    }

    fn probes_issued(&self) -> u64 {
        self.inner.probes_issued()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blameit::{BadnessThresholds, WorldBackend};
    use blameit_simnet::{World, WorldConfig};

    #[test]
    fn fed_buckets_aggregate_and_early_buckets_delegate() {
        let world = World::new(WorldConfig::tiny(2, 7));
        let _ = BadnessThresholds::default_for(&world);
        let backend = WorldBackend::new(&world);
        let feed_start = TimeBucket(10);
        let q = QueueBackend::new(backend, feed_start);

        // Early bucket: identical to the inner backend.
        let inner_obs = q.inner().quartets_in(TimeBucket(3));
        assert_eq!(q.quartets_in(TimeBucket(3)), inner_obs);

        // Fed bucket with nothing queued: empty, not delegated.
        assert!(q.quartets_in(TimeBucket(10)).is_empty());

        // Two split batches aggregate like one combined batch.
        let recs: Vec<RttRecord> = q.inner().rtt_records_in(TimeBucket(10)).unwrap();
        assert!(!recs.is_empty());
        let mid = recs.len() / 2;
        q.push(RecordBatch::from_records(TimeBucket(10), &recs[..mid]));
        q.push(RecordBatch::from_records(TimeBucket(10), &recs[mid..]));
        let split = q.quartets_in(TimeBucket(10));

        let whole = QueueBackend::new(WorldBackend::new(&world), feed_start);
        whole.push(RecordBatch::from_records(TimeBucket(10), &recs));
        assert_eq!(split, whole.quartets_in(TimeBucket(10)));
        assert_eq!(q.records_in(TimeBucket(10), 1), recs.len());
        assert_eq!(q.max_fed(), Some(TimeBucket(10)));
    }

    #[test]
    fn prune_drops_only_older_buckets() {
        let world = World::new(WorldConfig::tiny(2, 7));
        let q = QueueBackend::new(WorldBackend::new(&world), TimeBucket(0));
        for b in [5u32, 6, 7] {
            q.push(RecordBatch {
                bucket: TimeBucket(b),
                keys: vec![1, 2],
                rtt: vec![10.0, 20.0],
            });
        }
        q.prune_below(TimeBucket(7));
        assert!(q.quartets_in(TimeBucket(5)).is_empty());
        assert!(q.quartets_in(TimeBucket(6)).is_empty());
        assert!(!q.quartets_in(TimeBucket(7)).is_empty());
        assert_eq!(q.records_from(TimeBucket(0)), 2);
    }
}
