//! The `blameitd` ingest wire protocol.
//!
//! Length-prefixed binary frames over localhost TCP, reusing the
//! persistence codec's primitives ([`ByteWriter`]/[`ByteReader`],
//! CRC-32) so the daemon has exactly one byte-level dialect:
//!
//! ```text
//! frame   := len:u32-le  payload[len]
//! payload := kind:u8  body  crc:u32-le        (crc over kind‖body)
//! ```
//!
//! Client → server: `HELLO` (version handshake), `BATCH` (one
//! bucket's RTT records in columnar form), `TERM` (graceful shutdown:
//! drain, snapshot, exit). Server → client: `ACK` (admitted, possibly
//! with groups shed), `SLOW_DOWN` (queue at cap — backpressure with a
//! retry-after hint), `BYE` (TERM acknowledged, snapshot durable),
//! `ERR` (protocol violation).
//!
//! A `BATCH` body is the [`RecordBatch`] layout verbatim: bucket,
//! record count, the packed subkey column, then the RTT column. The
//! encode/decode pair is pure (no sockets), so the codec is testable
//! and fuzzable without IO; [`read_frame`]/[`write_frame`] only add
//! the framing.

use blameit::persist::codec::{crc32, ByteReader, ByteWriter};
use blameit::RecordBatch;
use blameit_simnet::TimeBucket;
use std::io::{self, Read, Write};

/// Wire protocol version, negotiated by `HELLO`. Bump on any frame
/// layout change; the server refuses other versions.
pub const WIRE_VERSION: u16 = 1;

/// Frames larger than this are refused outright (a length prefix from
/// a confused or hostile peer must not allocate unbounded memory).
pub const MAX_FRAME_BYTES: u32 = 64 << 20;

const KIND_HELLO: u8 = 1;
const KIND_BATCH: u8 = 2;
const KIND_TERM: u8 = 3;
const KIND_ACK: u8 = 0x81;
const KIND_SLOW_DOWN: u8 = 0x82;
const KIND_BYE: u8 = 0x83;
const KIND_ERR: u8 = 0x84;

/// One protocol frame, either direction.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// Client handshake; the server replies `Ack` (zeroes) or `Err`.
    Hello {
        /// The client's [`WIRE_VERSION`].
        version: u16,
    },
    /// One bucket's records, columnar.
    Batch {
        /// The offered batch (keys are packed subkeys, stream order).
        batch: RecordBatch,
    },
    /// Graceful shutdown request: drain complete tick windows,
    /// snapshot, reply `Bye`, exit.
    Term,
    /// The batch was accepted (possibly reduced by shedding).
    Ack {
        /// Records admitted to the queue.
        admitted: u64,
        /// Records shed by the overload controller.
        shed: u64,
        /// Queue depth (records) after this offer.
        queue_depth: u64,
    },
    /// The batch was refused at the queue cap; back off.
    SlowDown {
        /// Seconds the sender should wait before retrying.
        retry_after_secs: u64,
        /// Queue depth (records) that forced the refusal.
        queue_depth: u64,
    },
    /// TERM acknowledged; the shutdown snapshot is durable.
    Bye,
    /// Protocol violation; the connection is closing.
    Err {
        /// Human-readable reason.
        msg: String,
    },
}

/// A wire decode failure (the IO side maps these to `Frame::Err`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for WireError {}

fn werr(msg: impl Into<String>) -> WireError {
    WireError(msg.into())
}

/// Encodes one frame payload (kind + body + CRC), without the length
/// prefix.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut w = ByteWriter::new();
    match frame {
        Frame::Hello { version } => {
            w.put_u8(KIND_HELLO);
            w.put_u16(*version);
        }
        Frame::Batch { batch } => {
            w.put_u8(KIND_BATCH);
            w.put_u32(batch.bucket.0);
            // lint:allow(as-cast-truncation): a batch near u32::MAX keys is undecodable anyway — write_frame rejects past the 64 MiB frame cap (~8M keys)
            w.put_u32(batch.keys.len() as u32);
            for &k in &batch.keys {
                w.put_u64(k);
            }
            for &r in &batch.rtt {
                w.put_f64(r);
            }
        }
        Frame::Term => w.put_u8(KIND_TERM),
        Frame::Ack {
            admitted,
            shed,
            queue_depth,
        } => {
            w.put_u8(KIND_ACK);
            w.put_u64(*admitted);
            w.put_u64(*shed);
            w.put_u64(*queue_depth);
        }
        Frame::SlowDown {
            retry_after_secs,
            queue_depth,
        } => {
            w.put_u8(KIND_SLOW_DOWN);
            w.put_u64(*retry_after_secs);
            w.put_u64(*queue_depth);
        }
        Frame::Bye => w.put_u8(KIND_BYE),
        Frame::Err { msg } => {
            w.put_u8(KIND_ERR);
            let b = msg.as_bytes();
            // lint:allow(as-cast-truncation): error strings are short format! output; frames past the 64 MiB cap are rejected by write_frame
            w.put_u32(b.len() as u32);
            w.put_bytes(b);
        }
    }
    let mut bytes = w.into_bytes();
    let crc = crc32(&bytes);
    bytes.extend_from_slice(&crc.to_le_bytes());
    bytes
}

/// Decodes one frame payload (as produced by [`encode_frame`]).
pub fn decode_frame(payload: &[u8]) -> Result<Frame, WireError> {
    if payload.len() < 5 {
        return Err(werr("frame shorter than kind + crc"));
    }
    let (body, crc_bytes) = payload.split_at(payload.len() - 4);
    let want = u32::from_le_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
    if crc32(body) != want {
        return Err(werr("frame crc mismatch"));
    }
    let mut r = ByteReader::new(body);
    let kind = r.u8().map_err(|e| werr(format!("frame kind: {e}")))?;
    let frame = match kind {
        KIND_HELLO => Frame::Hello {
            version: r.u16().map_err(|e| werr(format!("hello: {e}")))?,
        },
        KIND_BATCH => {
            let bucket = TimeBucket(r.u32().map_err(|e| werr(format!("batch bucket: {e}")))?);
            let n = r.u32().map_err(|e| werr(format!("batch len: {e}")))? as usize;
            // Defensive pre-check: both columns must fit the body.
            if r.remaining() < n.saturating_mul(16) {
                return Err(werr(format!(
                    "batch claims {n} records but only {} body bytes remain",
                    r.remaining()
                )));
            }
            let mut keys = Vec::with_capacity(n);
            for _ in 0..n {
                keys.push(r.u64().map_err(|e| werr(format!("batch key: {e}")))?);
            }
            let mut rtt = Vec::with_capacity(n);
            for _ in 0..n {
                rtt.push(r.f64().map_err(|e| werr(format!("batch rtt: {e}")))?);
            }
            Frame::Batch {
                batch: RecordBatch { bucket, keys, rtt },
            }
        }
        KIND_TERM => Frame::Term,
        KIND_ACK => Frame::Ack {
            admitted: r.u64().map_err(|e| werr(format!("ack: {e}")))?,
            shed: r.u64().map_err(|e| werr(format!("ack: {e}")))?,
            queue_depth: r.u64().map_err(|e| werr(format!("ack: {e}")))?,
        },
        KIND_SLOW_DOWN => Frame::SlowDown {
            retry_after_secs: r.u64().map_err(|e| werr(format!("slow-down: {e}")))?,
            queue_depth: r.u64().map_err(|e| werr(format!("slow-down: {e}")))?,
        },
        KIND_BYE => Frame::Bye,
        KIND_ERR => {
            let n = r.u32().map_err(|e| werr(format!("err len: {e}")))? as usize;
            let b = r.take(n).map_err(|e| werr(format!("err msg: {e}")))?;
            Frame::Err {
                msg: String::from_utf8_lossy(b).into_owned(),
            }
        }
        other => return Err(werr(format!("unknown frame kind {other:#04x}"))),
    };
    if r.remaining() != 0 {
        return Err(werr(format!(
            "{} trailing byte(s) after frame body",
            r.remaining()
        )));
    }
    Ok(frame)
}

/// Writes one length-prefixed frame.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> io::Result<()> {
    let payload = encode_frame(frame);
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&n| n <= MAX_FRAME_BYTES)
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "frame payload of {} bytes exceeds the {MAX_FRAME_BYTES}-byte cap",
                    payload.len()
                ),
            )
        })?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&payload)?;
    w.flush()
}

/// Reads one length-prefixed frame. `Ok(None)` on clean EOF at a
/// frame boundary (the peer hung up between frames).
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Frame>> {
    let mut len_bytes = [0u8; 4];
    match r.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap {MAX_FRAME_BYTES}"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    decode_frame(&payload)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_frames() -> Vec<Frame> {
        vec![
            Frame::Hello {
                version: WIRE_VERSION,
            },
            Frame::Batch {
                batch: RecordBatch {
                    bucket: TimeBucket(42),
                    keys: vec![3, 3, 9, 700],
                    rtt: vec![10.0, 11.5, 80.25, 0.5],
                },
            },
            Frame::Term,
            Frame::Ack {
                admitted: 7,
                shed: 2,
                queue_depth: 990,
            },
            Frame::SlowDown {
                retry_after_secs: 30,
                queue_depth: 50_000,
            },
            Frame::Bye,
            Frame::Err {
                msg: "bad hello".to_string(),
            },
        ]
    }

    #[test]
    fn every_frame_round_trips() {
        for f in all_frames() {
            let bytes = encode_frame(&f);
            assert_eq!(decode_frame(&bytes).unwrap(), f, "{f:?}");
        }
    }

    #[test]
    fn framing_round_trips_through_io() {
        let mut buf = Vec::new();
        for f in all_frames() {
            write_frame(&mut buf, &f).unwrap();
        }
        let mut cursor = &buf[..];
        for f in all_frames() {
            assert_eq!(read_frame(&mut cursor).unwrap(), Some(f));
        }
        assert_eq!(read_frame(&mut cursor).unwrap(), None, "clean EOF");
    }

    #[test]
    fn bit_flips_are_rejected() {
        let bytes = encode_frame(&all_frames()[1]);
        for pos in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0x10;
            assert!(
                decode_frame(&corrupt).is_err(),
                "bit flip at byte {pos} accepted"
            );
        }
    }

    #[test]
    fn truncations_are_rejected() {
        let bytes = encode_frame(&all_frames()[1]);
        for cut in 0..bytes.len() {
            assert!(
                decode_frame(&bytes[..cut]).is_err(),
                "prefix {cut} accepted"
            );
        }
    }

    #[test]
    fn oversized_length_prefix_is_refused_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&[0u8; 16]);
        let mut cursor = &buf[..];
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn batch_length_lie_is_refused() {
        // A batch body claiming 1M records with a 4-byte body must be
        // rejected by the pre-check, not by attempting the allocation.
        let mut w = ByteWriter::new();
        w.put_u8(super::KIND_BATCH);
        w.put_u32(0);
        w.put_u32(1_000_000);
        let mut bytes = w.into_bytes();
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        assert!(decode_frame(&bytes).is_err());
    }
}
