//! Argv-level entry points shared by the `blameitd` binary and the
//! `blameit daemon` / `blameit feed` / `blameit scrape` subcommands.
//!
//! Argument conventions follow the rest of the CLI (`--key value`,
//! deterministic in `--seed`); both front ends parse with
//! [`blameit_bench::Args`] and call these.

use crate::client::{feed_world, http_get, FeedConfig};
use crate::clock::WallClock;
use crate::core::{AdmissionConfig, DaemonConfig, DaemonCore};
use crate::server::{Server, ServerConfig};
use blameit::{BadnessThresholds, BlameItConfig, StateStore, WorldBackend};
use blameit_bench::{organic_world, Args, Scale};
use blameit_obs::MetricsRegistry;
use blameit_simnet::time::BUCKETS_PER_HOUR;
use blameit_simnet::{SimTime, SurgePlan, TimeBucket, TimeRange};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// Runs the daemon until a feeder sends `TERM`; returns the exit
/// summary. Prints the bound addresses to stdout first (flushed) so
/// harnesses can discover ephemeral ports.
pub fn run_daemon(args: &Args) -> Result<String, String> {
    let dir = args
        .get("state-dir")
        .map(str::to_string)
        .ok_or_else(|| "daemon requires --state-dir DIR".to_string())?;
    let days = args.u64("days", 2).max(2);
    let warmup_days = args.u64("warmup", 1).min(days - 1);
    let resume = args.get("resume").is_some_and(|v| v != "0");

    let world = organic_world(args.scale(Scale::Small), days, args.u64("seed", 2019));
    let mut cfg = BlameItConfig::new(BadnessThresholds::default_for(&world));
    let threads = args.u64("threads", 0) as usize;
    if threads > 0 {
        cfg.parallelism = threads;
    }
    cfg.state_dir = Some(PathBuf::from(&dir));
    cfg.flight_dump_dir = Some(PathBuf::from(&dir).join("flight"));
    cfg.snapshot_every_ticks = args.u64("snapshot-every", 4).max(1) as u32;
    if !resume {
        let store = StateStore::create(&dir).map_err(|e| format!("state dir {dir}: {e}"))?;
        store.wipe().map_err(|e| format!("state dir {dir}: {e}"))?;
    }

    let dcfg = DaemonConfig {
        admission: AdmissionConfig {
            queue_cap_records: args.u64("queue-cap", 50_000) as usize,
            shed_watermark_records: args.u64("shed-watermark", 40_000) as usize,
            per_loc_shed_cap: args.u64("per-loc-shed-cap", 1_000) as usize,
            retry_after_secs: args.u64("retry-after", 30),
        },
        overload_sustained_ticks: args.u64("sustained-ticks", 3).max(1) as u32,
    };

    let backend = WorldBackend::with_parallelism(&world, cfg.parallelism);
    let registry = Arc::new(MetricsRegistry::new());
    let warmup = TimeRange::new(SimTime::ZERO, SimTime::from_days(warmup_days));
    let (mut core, recovery) =
        DaemonCore::open(cfg, dcfg, registry, backend, warmup).map_err(|e| e.to_string())?;
    eprintln!("{}", recovery.describe());

    let server = Server::bind(&ServerConfig {
        ingest_addr: args
            .get("ingest-addr")
            .unwrap_or("127.0.0.1:4815")
            .to_string(),
        http_addr: args
            .get("http-addr")
            .unwrap_or("127.0.0.1:4816")
            .to_string(),
        poll_ms: 5,
    })
    .map_err(|e| format!("bind: {e}"))?;
    println!("ingest={}", server.ingest_addr);
    println!("http={}", server.http_addr);
    use std::io::Write as _;
    std::io::stdout().flush().ok();

    let shutdown = AtomicBool::new(false);
    let summary = server
        .run(&mut core, &WallClock, &shutdown)
        .map_err(|e| e.to_string())?;
    let s = summary.stats;
    let mut out = String::new();
    writeln!(
        out,
        "blameitd exit: ticks={} alerts={} offered={} admitted={} shed_low_impact={} \
         shed_backpressure={} slow_downs={} queue_peak={} clean_shutdown={}",
        summary.ticks,
        summary.alerts,
        s.offered,
        s.admitted,
        s.shed_low_impact,
        s.shed_backpressure,
        s.backpressure_replies,
        s.queue_peak,
        summary.clean_shutdown,
    )
    .unwrap();
    Ok(out)
}

/// Feeds a world into a running daemon, optionally surged; returns the
/// feed summary. World parameters must match the daemon's for the
/// daemon's routing/traceroute plane to describe the fed clients.
pub fn run_feed(args: &Args) -> Result<String, String> {
    let days = args.u64("days", 2).max(2);
    let warmup_days = args.u64("warmup", 1).min(days - 1);
    let world = organic_world(args.scale(Scale::Small), days, args.u64("seed", 2019));
    // `--term-only 1` feeds nothing and just delivers TERM, so a
    // harness can scrape a daemon it fed earlier with `--no-term 1`
    // and still shut it down cleanly afterwards.
    let feed_end = if args.get("term-only").is_some_and(|v| v != "0") {
        SimTime::from_days(warmup_days)
    } else {
        SimTime::from_days(days)
    };
    let feed_range = TimeRange::new(SimTime::from_days(warmup_days), feed_end);

    let mult = args.u64("surge-mult", 1).max(1) as u32;
    let surge = if mult > 1 {
        let start_hour = args.u64("surge-start-hour", warmup_days * 24) as u32;
        let hours = args.u64("surge-hours", 2).max(1) as u32;
        let start = TimeBucket(start_hour * BUCKETS_PER_HOUR);
        let end = TimeBucket((start_hour + hours) * BUCKETS_PER_HOUR - 1);
        SurgePlan::single(start, end, mult, args.u64("surge-seed", 0x5u64))
    } else {
        SurgePlan::default()
    };

    let cfg = FeedConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:4815").to_string(),
        surge,
        max_attempts: args.u64("max-attempts", 5).max(1) as u32,
        max_backoff_ms: args.u64("max-backoff-ms", 2_000),
        term: args.get("no-term").is_none_or(|v| v == "0"),
    };
    let summary =
        feed_world(&world, feed_range, &cfg, &WallClock).map_err(|e| format!("feed: {e}"))?;
    let mut out = String::new();
    writeln!(
        out,
        "feed done: batches={} offered={} admitted={} shed={} slow_downs={} abandoned={} terminated={}",
        summary.batches,
        summary.records_offered,
        summary.records_admitted,
        summary.records_shed,
        summary.slow_downs,
        summary.batches_abandoned,
        summary.terminated,
    )
    .unwrap();
    Ok(out)
}

/// One HTTP GET against a running daemon (default `/metrics`).
pub fn run_scrape(args: &Args) -> Result<String, String> {
    let addr = args.get("addr").unwrap_or("127.0.0.1:4816").to_string();
    let path = args.get("path").unwrap_or("/metrics").to_string();
    http_get(&addr, &path).map_err(|e| format!("scrape {addr}{path}: {e}"))
}
