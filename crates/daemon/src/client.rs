//! The `feed` client: replays a simulated world into `blameitd`.
//!
//! Streams one [`RecordBatch`] per bucket over the ingest socket —
//! optionally amplified through a [`SurgePlan`] to provoke the
//! daemon's overload machinery — honoring backpressure: a `SLOW_DOWN`
//! reply makes the feeder wait (via the injected [`Clock`]) and retry,
//! up to a bounded number of attempts before the batch is abandoned
//! and counted. This is the reference implementation of a well-behaved
//! sender; its accounting is what the smoke harness and overload tests
//! assert against.

use crate::clock::Clock;
use crate::wire::{read_frame, write_frame, Frame, WIRE_VERSION};
use blameit::{Backend, RecordBatch, WorldBackend};
use blameit_simnet::{SurgePlan, TimeRange, World};
use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Feeder knobs.
#[derive(Clone, Debug)]
pub struct FeedConfig {
    /// Ingest address (`host:port`).
    pub addr: String,
    /// Volume amplification; an empty plan feeds the world verbatim.
    pub surge: SurgePlan,
    /// Attempts per batch before giving up (first try + retries).
    pub max_attempts: u32,
    /// Cap on one backpressure wait, milliseconds (the server's
    /// retry-after hint is in seconds; tests cap it near zero).
    pub max_backoff_ms: u64,
    /// Send `TERM` (drain + snapshot + exit) after the last bucket.
    pub term: bool,
}

impl Default for FeedConfig {
    fn default() -> Self {
        FeedConfig {
            addr: "127.0.0.1:4815".to_string(),
            surge: SurgePlan::default(),
            max_attempts: 5,
            max_backoff_ms: 2_000,
            term: true,
        }
    }
}

/// What one feed run did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FeedSummary {
    /// Batches sent (excluding retries).
    pub batches: u64,
    /// Records offered (after surge amplification).
    pub records_offered: u64,
    /// Records the daemon admitted.
    pub records_admitted: u64,
    /// Records the daemon shed at admission.
    pub records_shed: u64,
    /// `SLOW_DOWN` replies received.
    pub slow_downs: u64,
    /// Batches abandoned after exhausting retries.
    pub batches_abandoned: u64,
    /// The daemon confirmed TERM with a durable snapshot.
    pub terminated: bool,
}

fn proto_err(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Replays `world`'s RTT stream for `range` into the daemon at
/// `cfg.addr`, bucket by bucket in order.
pub fn feed_world(
    world: &World,
    range: TimeRange,
    cfg: &FeedConfig,
    clock: &dyn Clock,
) -> io::Result<FeedSummary> {
    let backend = WorldBackend::new(world);
    let mut stream = TcpStream::connect(&cfg.addr)?;
    stream.set_nodelay(true).ok();
    write_frame(
        &mut stream,
        &Frame::Hello {
            version: WIRE_VERSION,
        },
    )?;
    match read_frame(&mut stream)? {
        Some(Frame::Ack { .. }) => {}
        Some(Frame::Err { msg }) => return Err(proto_err(format!("hello refused: {msg}"))),
        other => return Err(proto_err(format!("bad hello reply: {other:?}"))),
    }

    let mut summary = FeedSummary::default();
    for bucket in range.buckets() {
        let records = backend
            .rtt_records_in(bucket)
            .expect("the world backend exposes raw records");
        let records = cfg.surge.amplify(bucket, &records);
        if records.is_empty() {
            continue;
        }
        let batch = RecordBatch::from_records(bucket, &records);
        summary.batches += 1;
        summary.records_offered += batch.keys.len() as u64;
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            write_frame(
                &mut stream,
                &Frame::Batch {
                    batch: batch.clone(),
                },
            )?;
            match read_frame(&mut stream)? {
                Some(Frame::Ack { admitted, shed, .. }) => {
                    summary.records_admitted += admitted;
                    summary.records_shed += shed;
                    break;
                }
                Some(Frame::SlowDown {
                    retry_after_secs, ..
                }) => {
                    summary.slow_downs += 1;
                    if attempts >= cfg.max_attempts {
                        summary.batches_abandoned += 1;
                        break;
                    }
                    clock.sleep_ms((retry_after_secs * 1_000).min(cfg.max_backoff_ms));
                }
                Some(Frame::Err { msg }) => {
                    return Err(proto_err(format!("daemon refused batch: {msg}")))
                }
                other => return Err(proto_err(format!("bad batch reply: {other:?}"))),
            }
        }
    }

    if cfg.term {
        write_frame(&mut stream, &Frame::Term)?;
        match read_frame(&mut stream)? {
            Some(Frame::Bye) => summary.terminated = true,
            other => return Err(proto_err(format!("bad term reply: {other:?}"))),
        }
    }
    Ok(summary)
}

/// Minimal HTTP/1.0 GET against the daemon's scrape endpoint; returns
/// the response body. Dependency-free on purpose — the smoke harness
/// and CLI use it to pull `/metrics` without an HTTP stack.
pub fn http_get(addr: &str, path: &str) -> io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    write!(
        stream,
        "GET {path} HTTP/1.0\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| proto_err("no header/body separator in HTTP response"))?;
    let status = head.lines().next().unwrap_or("");
    if !status.contains("200") {
        return Err(proto_err(format!("HTTP error: {status}")));
    }
    Ok(body.to_string())
}
