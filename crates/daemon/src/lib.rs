//! # blameit-daemon — `blameitd`, the engine as a service
//!
//! The repo's engine is a pure deterministic tick
//! ([`blameit::BlameItEngine`]); this crate wraps it in the thinnest
//! possible service shell without surrendering determinism:
//!
//! * [`wire`] — framed, length-prefixed, CRC'd ingest protocol over
//!   localhost TCP (`std::net` only): `HELLO`/`BATCH`/`TERM` in,
//!   `ACK`/`SLOW_DOWN`/`BYE`/`ERR` out.
//! * [`queue`] — the bounded ingest queue as a [`blameit::Backend`]:
//!   fed buckets aggregate through the columnar kernel, warmup buckets
//!   delegate to the wrapped world.
//! * [`wal`] — fsync'd write-ahead log of admitted batches, appended
//!   *before* engine visibility, so a hard kill between admission and
//!   snapshot loses nothing.
//! * [`core`] — [`core::DaemonCore`], every decision the daemon makes:
//!   admission + impact-ordered overload shedding (via
//!   [`blameit::AdmissionController`]), data-driven tick scheduling
//!   over [`blameit::DurableEngine`], the sustained-overload watchdog
//!   that trips the flight recorder, and graceful drain/snapshot.
//! * [`server`] — the single-threaded socket/HTTP shell: ingest loop,
//!   `GET /metrics` (Prometheus text), `/alerts`, `/healthz`.
//! * [`client`] — the reference `feed` sender: world replay with
//!   optional surge amplification, honoring backpressure.
//! * [`clock`] — the injected pacing clock; decisions never read time.
//!
//! The split is the repo's standing architecture rule: *IO at the
//! edges, determinism in the middle*. `DaemonCore` is fully
//! exercisable without sockets, and the overload tests prove the same
//! feed sheds the same quartets byte-for-byte at any thread count.

pub mod client;
pub mod clock;
pub mod core;
pub mod entry;
pub mod queue;
pub mod server;
pub mod wal;
pub mod wire;

pub use client::{feed_world, http_get, FeedConfig, FeedSummary};
pub use clock::{Clock, NoopClock, WallClock};
pub use core::{DaemonConfig, DaemonCore, DaemonError, IngestStats, OfferReply, ShedEntry};
pub use entry::{run_daemon, run_feed, run_scrape};
pub use queue::QueueBackend;
pub use server::{ServeSummary, Server, ServerConfig};
pub use wal::{read_wal, IngestWal, WalRecovery};
pub use wire::{Frame, WireError, WIRE_VERSION};
