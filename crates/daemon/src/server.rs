//! The `blameitd` IO shell: ingest socket + plain-HTTP observability.
//!
//! A deliberately small, dependency-free, single-threaded event loop
//! over two nonblocking localhost listeners:
//!
//! * the **ingest** listener speaks the framed [`crate::wire`]
//!   protocol (one feeder connection at a time — the supported
//!   topology, which is also what keeps ingest order deterministic);
//! * the **http** listener answers `GET /metrics` (Prometheus text
//!   from the engine's registry), `GET /alerts` (recent operator
//!   alerts as JSON lines), and `GET /healthz`.
//!
//! All decisions happen in [`DaemonCore`]; this module only moves
//! bytes and paces itself with an injected [`Clock`]. Graceful
//! shutdown is protocol-level: a `TERM` frame (or the external
//! shutdown flag) drains pending tick windows, writes a final
//! snapshot, compacts the ingest WAL, and replies `BYE` — after which
//! a restart recovers with zero journal replay.

use crate::clock::Clock;
use crate::core::{DaemonCore, DaemonError, IngestStats, OfferReply};
use crate::wire::{read_frame, write_frame, Frame, WIRE_VERSION};
use blameit::{Backend, TickOutput};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Where to listen. Port 0 binds an ephemeral port (tests); the bound
/// addresses are on [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Ingest (framed wire protocol) listen address.
    pub ingest_addr: String,
    /// HTTP (metrics/alerts/health) listen address.
    pub http_addr: String,
    /// Idle-loop pause, milliseconds.
    pub poll_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            ingest_addr: "127.0.0.1:0".to_string(),
            http_addr: "127.0.0.1:0".to_string(),
            poll_ms: 5,
        }
    }
}

/// What a serve loop did, for the exit report.
#[derive(Clone, Debug, Default)]
pub struct ServeSummary {
    /// Engine ticks run.
    pub ticks: u64,
    /// Operator alerts emitted.
    pub alerts: u64,
    /// Ingest accounting at exit.
    pub stats: IngestStats,
    /// The shutdown was graceful (TERM or external flag), with a final
    /// snapshot written.
    pub clean_shutdown: bool,
}

/// The bound listeners.
pub struct Server {
    ingest: TcpListener,
    http: TcpListener,
    /// Actual ingest address (resolves port 0).
    pub ingest_addr: SocketAddr,
    /// Actual http address (resolves port 0).
    pub http_addr: SocketAddr,
    poll_ms: u64,
}

impl Server {
    /// Binds both listeners (nonblocking).
    pub fn bind(cfg: &ServerConfig) -> io::Result<Server> {
        let ingest = TcpListener::bind(&cfg.ingest_addr)?;
        let http = TcpListener::bind(&cfg.http_addr)?;
        ingest.set_nonblocking(true)?;
        http.set_nonblocking(true)?;
        Ok(Server {
            ingest_addr: ingest.local_addr()?,
            http_addr: http.local_addr()?,
            ingest,
            http,
            poll_ms: cfg.poll_ms,
        })
    }

    /// Runs the serve loop until a `TERM` frame arrives or `shutdown`
    /// is set. Both paths drain, snapshot, and compact before
    /// returning.
    pub fn run<B: Backend>(
        &self,
        core: &mut DaemonCore<B>,
        clock: &dyn Clock,
        shutdown: &AtomicBool,
    ) -> Result<ServeSummary, DaemonError> {
        let mut summary = ServeSummary::default();
        let mut alert_ring: Vec<String> = Vec::new();
        loop {
            if shutdown.load(Ordering::Relaxed) {
                let outs = core.term()?;
                note_ticks(&outs, &mut summary, &mut alert_ring);
                summary.clean_shutdown = true;
                break;
            }
            self.poll_http(core, &alert_ring);
            match self.ingest.accept() {
                Ok((stream, _)) => {
                    let done =
                        self.serve_ingest(stream, core, shutdown, &mut summary, &mut alert_ring)?;
                    if done {
                        summary.clean_shutdown = true;
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    clock.sleep_ms(self.poll_ms);
                }
                Err(e) => return Err(DaemonError::Io(e)),
            }
        }
        summary.stats = core.stats();
        Ok(summary)
    }

    /// Serves one feeder connection. Returns `Ok(true)` after a TERM
    /// (the daemon should exit), `Ok(false)` when the peer hung up.
    fn serve_ingest<B: Backend>(
        &self,
        mut stream: TcpStream,
        core: &mut DaemonCore<B>,
        shutdown: &AtomicBool,
        summary: &mut ServeSummary,
        alert_ring: &mut Vec<String>,
    ) -> Result<bool, DaemonError> {
        stream.set_nodelay(true).ok();
        stream
            .set_read_timeout(Some(Duration::from_millis(20)))
            .ok();
        let mut hello_seen = false;
        loop {
            if shutdown.load(Ordering::Relaxed) {
                let outs = core.term()?;
                note_ticks(&outs, summary, alert_ring);
                return Ok(true);
            }
            let frame = match read_frame(&mut stream) {
                Ok(Some(f)) => f,
                Ok(None) => return Ok(false),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    // Idle between frames: keep the scrape endpoint
                    // responsive.
                    self.poll_http(core, alert_ring);
                    continue;
                }
                Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                    let _ = write_frame(&mut stream, &Frame::Err { msg: e.to_string() });
                    return Ok(false);
                }
                Err(e) => return Err(DaemonError::Io(e)),
            };
            match frame {
                Frame::Hello { version } => {
                    if version != WIRE_VERSION {
                        let _ = write_frame(
                            &mut stream,
                            &Frame::Err {
                                msg: format!(
                                    "wire version {version} unsupported (want {WIRE_VERSION})"
                                ),
                            },
                        );
                        return Ok(false);
                    }
                    hello_seen = true;
                    write_frame(
                        &mut stream,
                        &Frame::Ack {
                            admitted: 0,
                            shed: 0,
                            queue_depth: core.queue_depth() as u64,
                        },
                    )?;
                }
                Frame::Batch { batch } => {
                    if !hello_seen {
                        let _ = write_frame(
                            &mut stream,
                            &Frame::Err {
                                msg: "batch before hello".to_string(),
                            },
                        );
                        return Ok(false);
                    }
                    let reply = match core.offer(batch)? {
                        OfferReply::Ack {
                            admitted,
                            shed,
                            queue_depth,
                        } => Frame::Ack {
                            admitted,
                            shed,
                            queue_depth,
                        },
                        OfferReply::SlowDown {
                            retry_after_secs,
                            queue_depth,
                        } => Frame::SlowDown {
                            retry_after_secs,
                            queue_depth,
                        },
                    };
                    write_frame(&mut stream, &reply)?;
                    let outs = core.pump()?;
                    note_ticks(&outs, summary, alert_ring);
                }
                Frame::Term => {
                    let outs = core.term()?;
                    note_ticks(&outs, summary, alert_ring);
                    write_frame(&mut stream, &Frame::Bye)?;
                    return Ok(true);
                }
                other => {
                    let _ = write_frame(
                        &mut stream,
                        &Frame::Err {
                            msg: format!("unexpected frame from feeder: {other:?}"),
                        },
                    );
                    return Ok(false);
                }
            }
        }
    }

    /// Answers at most a few queued HTTP requests, without blocking.
    fn poll_http<B: Backend>(&self, core: &DaemonCore<B>, alert_ring: &[String]) {
        for _ in 0..4 {
            match self.http.accept() {
                Ok((stream, _)) => serve_http(stream, core, alert_ring),
                Err(_) => return,
            }
        }
    }
}

fn note_ticks(outs: &[TickOutput], summary: &mut ServeSummary, alert_ring: &mut Vec<String>) {
    for out in outs {
        summary.ticks += 1;
        summary.alerts += out.alerts.len() as u64;
        for a in &out.alerts {
            alert_ring.push(format!(
                "{{\"bucket\":{},\"blame\":{:?},\"loc\":{},\"culprit\":{},\"impacted_connections\":{},\"confidence\":{:.3}}}",
                a.bucket.0,
                format!("{:?}", a.blame),
                a.loc.0,
                a.culprit.map_or("null".to_string(), |asn| asn.0.to_string()),
                a.impacted_connections,
                a.confidence,
            ));
        }
    }
    // Ring cap: the alert stream is an operator tail, not an archive.
    if alert_ring.len() > 256 {
        let excess = alert_ring.len() - 256;
        alert_ring.drain(..excess);
    }
}

/// One-shot HTTP/1.0 responder. Errors are swallowed: observability
/// must never take the daemon down.
fn serve_http<B: Backend>(mut stream: TcpStream, core: &DaemonCore<B>, alert_ring: &[String]) {
    stream
        .set_read_timeout(Some(Duration::from_millis(200)))
        .ok();
    let mut buf = [0u8; 2048];
    let n = match stream.read(&mut buf) {
        Ok(n) => n,
        Err(_) => return,
    };
    let req = String::from_utf8_lossy(&buf[..n]);
    let path = req
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .unwrap_or("/");
    let (status, content_type, body) = match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4",
            core.engine().metrics().registry().render_prometheus(),
        ),
        "/alerts" => {
            let mut body = String::new();
            for line in alert_ring {
                body.push_str(line);
                body.push('\n');
            }
            ("200 OK", "application/json", body)
        }
        "/healthz" => ("200 OK", "text/plain", "ok\n".to_string()),
        _ => (
            "404 Not Found",
            "text/plain",
            "unknown path; try /metrics /alerts /healthz\n".to_string(),
        ),
    };
    let _ = write!(
        stream,
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.flush();
}
