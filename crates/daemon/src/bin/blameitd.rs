//! `blameitd` — the BlameIt engine as a long-running localhost service.
//!
//! ```text
//! blameitd --state-dir DIR [--scale tiny|small|default] [--seed N]
//!          [--days D] [--warmup W] [--threads N] [--snapshot-every N]
//!          [--ingest-addr H:P] [--http-addr H:P]
//!          [--queue-cap N] [--shed-watermark N] [--per-loc-shed-cap N]
//!          [--sustained-ticks N] [--resume 1]
//! ```
//!
//! Binds the ingest and HTTP listeners, prints their addresses (one
//! per line, `ingest=…` / `http=…`), then serves until a feeder sends
//! `TERM` — at which point it drains, snapshots, compacts the WAL, and
//! prints an exit summary. Restarting with `--resume 1` recovers from
//! the snapshot + journal + ingest WAL, byte-identical to a run that
//! never stopped. Implementation: [`blameit_daemon::entry::run_daemon`]
//! (shared with `blameit daemon`).

fn main() {
    match blameit_daemon::run_daemon(&blameit_bench::Args::parse()) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("blameitd: {e}");
            std::process::exit(2);
        }
    }
}
