//! [`DaemonCore`]: the deterministic service loop, with no IO shell.
//!
//! Everything `blameitd` decides — admission, shedding, when a tick
//! fires, when the overload watchdog trips — lives here, as a pure
//! function of the offered batches and the engine's own state. The
//! socket/HTTP shell ([`crate::server`]) only moves bytes; tests drive
//! this struct directly, batch by batch, with no sockets and no
//! clocks, which is what makes overload runs byte-reproducible at any
//! thread count.
//!
//! Tick scheduling is **data-driven**, not timer-driven: a tick window
//! `[start, start + tick_buckets)` fires once a batch for a bucket at
//! or past the window's end has been admitted (the feed is in bucket
//! order, so the window can no longer grow). A wall clock never picks
//! the tick boundary, so a surged replay and a quiet replay of the
//! same feed tick at exactly the same buckets.

use crate::queue::QueueBackend;
use crate::wal::IngestWal;
use blameit::{
    metrics::shed_reason, AdmissionController, AdmissionDecision, Backend, BlameItConfig,
    BlameItEngine, DurableEngine, PersistError, RecordBatch, RecoveryReport, TickOutput,
};
use blameit_obs::{Counter, FlightTrigger, Gauge, MetricsRegistry};
use blameit_simnet::{CrashPlan, TimeBucket, TimeRange};
use std::io;
use std::sync::Arc;

pub use blameit::AdmissionConfig;

/// Daemon-level knobs on top of the engine config.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Bounded-queue / shedding knobs.
    pub admission: AdmissionConfig,
    /// Consecutive overloaded ticks (ticks whose inter-tick window saw
    /// shedding or backpressure) before the watchdog fires the
    /// `overload-sustained` flight trigger. Re-arms after a clean tick.
    pub overload_sustained_ticks: u32,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            admission: AdmissionConfig::default(),
            overload_sustained_ticks: 3,
        }
    }
}

/// A daemon failure: engine persistence or WAL IO.
#[derive(Debug)]
pub enum DaemonError {
    /// The durable engine failed (or a simulated crash fired).
    Persist(PersistError),
    /// The ingest WAL could not be written/read.
    Io(io::Error),
}

impl std::fmt::Display for DaemonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DaemonError::Persist(e) => write!(f, "{e}"),
            DaemonError::Io(e) => write!(f, "ingest wal: {e}"),
        }
    }
}

impl std::error::Error for DaemonError {}

impl From<PersistError> for DaemonError {
    fn from(e: PersistError) -> Self {
        DaemonError::Persist(e)
    }
}

impl From<io::Error> for DaemonError {
    fn from(e: io::Error) -> Self {
        DaemonError::Io(e)
    }
}

/// What the daemon tells the sender about one offered batch (maps 1:1
/// onto the wire's `ACK`/`SLOW_DOWN`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OfferReply {
    /// Admitted (possibly reduced by shedding).
    Ack {
        /// Records admitted.
        admitted: u64,
        /// Records shed by the overload controller.
        shed: u64,
        /// Queue depth after the offer.
        queue_depth: u64,
    },
    /// Refused at the queue cap.
    SlowDown {
        /// Seconds the sender should wait before retrying.
        retry_after_secs: u64,
        /// Queue depth that forced the refusal.
        queue_depth: u64,
    },
}

/// Cumulative ingest accounting since open.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Records offered over the socket.
    pub offered: u64,
    /// Records admitted to the queue.
    pub admitted: u64,
    /// Records shed by the impact-ordered controller.
    pub shed_low_impact: u64,
    /// Records refused wholesale at the queue cap.
    pub shed_backpressure: u64,
    /// `SLOW_DOWN` replies issued.
    pub backpressure_replies: u64,
    /// Highest queue depth observed after an admit.
    pub queue_peak: u64,
}

/// One shed quartet group, logged for reproducibility checks: two runs
/// of the same feed must shed exactly the same groups.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShedEntry {
    /// Bucket of the offer the group was shed from.
    pub bucket: TimeBucket,
    /// The group's packed subkey.
    pub subkey: u64,
    /// Records the group carried.
    pub records: u32,
}

/// The daemon's decision core: bounded ingest → durable ticks.
pub struct DaemonCore<B: Backend> {
    durable: DurableEngine,
    backend: QueueBackend<B>,
    admission: AdmissionController,
    wal: IngestWal,
    dcfg: DaemonConfig,
    tick_buckets: u32,
    snapshot_every: u64,
    stats: IngestStats,
    shed_log: Vec<ShedEntry>,
    overload_since_tick: bool,
    overload_streak: u32,
    overload_fired: bool,
    last_prune_cutoff: u32,
    // Cached metric handles (the engine owns the registry).
    m_shed_low: Arc<Counter>,
    m_shed_back: Arc<Counter>,
    m_backpressure: Arc<Counter>,
    m_queue_depth: Arc<Gauge>,
    m_coverage: Arc<Gauge>,
}

impl<B: Backend> DaemonCore<B> {
    /// Opens the daemon state: refills the queue from the ingest WAL,
    /// then opens the durable engine (which replays journaled ticks
    /// *through* the refilled queue), then warms up + checkpoints on a
    /// cold start. The feed window begins at `warmup.end` — earlier
    /// buckets are served by `inner`, later ones by the socket.
    pub fn open(
        cfg: BlameItConfig,
        dcfg: DaemonConfig,
        registry: Arc<MetricsRegistry>,
        inner: B,
        warmup: TimeRange,
    ) -> Result<(DaemonCore<B>, RecoveryReport), DaemonError> {
        let dir = cfg.state_dir.clone().ok_or(PersistError::NoStateDir)?;
        std::fs::create_dir_all(&dir)?;
        let feed_start = warmup.end.bucket();
        let backend = QueueBackend::new(inner, feed_start);
        let (wal, wal_recovery) = IngestWal::open(&dir.join("ingest.wal"))?;
        for batch in wal_recovery.batches {
            backend.push(batch);
        }
        let snapshot_every = cfg.snapshot_every_ticks.max(1) as u64;
        let tick_buckets = cfg.tick_buckets;
        let mut backend = backend;
        let (mut durable, recovery) = DurableEngine::open(cfg, registry, &mut backend)?;
        if recovery.mode == blameit::StartMode::Cold {
            durable.warmup_and_checkpoint(&backend, warmup, 2)?;
        }
        let m = durable.engine().metrics();
        let core = DaemonCore {
            m_shed_low: Arc::clone(m.shed_counter(shed_reason::LOW_IMPACT)),
            m_shed_back: Arc::clone(m.shed_counter(shed_reason::BACKPRESSURE)),
            m_backpressure: Arc::clone(&m.backpressure_replies),
            m_queue_depth: Arc::clone(&m.ingest_queue_depth),
            m_coverage: Arc::clone(&m.ingest_coverage),
            durable,
            backend,
            admission: AdmissionController::new(dcfg.admission.clone()),
            wal,
            dcfg,
            tick_buckets,
            snapshot_every,
            stats: IngestStats::default(),
            shed_log: Vec::new(),
            overload_since_tick: false,
            overload_streak: 0,
            overload_fired: false,
            last_prune_cutoff: 0,
        };
        Ok((core, recovery))
    }

    /// The engine (read access for transcripts, metrics, flight).
    pub fn engine(&self) -> &BlameItEngine {
        self.durable.engine()
    }

    /// Ticks completed since the post-warmup checkpoint.
    pub fn ticks_done(&self) -> u64 {
        self.durable.ticks_done()
    }

    /// Cumulative ingest accounting.
    pub fn stats(&self) -> IngestStats {
        self.stats
    }

    /// Every group shed so far, in shed order.
    pub fn shed_log(&self) -> &[ShedEntry] {
        &self.shed_log
    }

    /// The admission controller (read access, e.g. to score an offer
    /// with the same history [`offer`](Self::offer) will use).
    pub fn admission(&self) -> &AdmissionController {
        &self.admission
    }

    /// Arms (or clears) a simulated-kill plan on the durable engine.
    pub fn set_crash_plan(&mut self, plan: Option<CrashPlan>) {
        self.durable.set_crash_plan(plan);
    }

    /// The first bucket a tick has not yet consumed.
    fn next_tick_start(&self) -> TimeBucket {
        TimeBucket(self.backend.feed_start().0 + (self.ticks_done() as u32) * self.tick_buckets)
    }

    /// Records queued but not yet consumed by a tick — the admission
    /// controller's notion of queue depth.
    pub fn queue_depth(&self) -> usize {
        self.backend.records_from(self.next_tick_start())
    }

    /// Offers one batch: admission decision, WAL append (fsync'd
    /// *before* the batch becomes engine-visible), queue insert,
    /// metric updates.
    pub fn offer(&mut self, batch: RecordBatch) -> Result<OfferReply, DaemonError> {
        let offered = batch.keys.len() as u64;
        self.stats.offered += offered;
        let depth = self.queue_depth();
        match self.admission.offer(batch, depth) {
            AdmissionDecision::Reject {
                retry_after_secs,
                records,
            } => {
                self.stats.shed_backpressure += records;
                self.stats.backpressure_replies += 1;
                self.m_shed_back.add(records);
                self.m_backpressure.inc();
                self.overload_since_tick = true;
                self.update_coverage();
                Ok(OfferReply::SlowDown {
                    retry_after_secs,
                    queue_depth: depth as u64,
                })
            }
            AdmissionDecision::Admit { batch, shed } => {
                let bucket = batch.bucket;
                let mut shed_records = 0u64;
                for g in &shed {
                    shed_records += u64::from(g.records);
                    self.shed_log.push(ShedEntry {
                        bucket,
                        subkey: g.subkey,
                        records: g.records,
                    });
                }
                if shed_records > 0 {
                    self.m_shed_low.add(shed_records);
                    self.stats.shed_low_impact += shed_records;
                    self.overload_since_tick = true;
                }
                let admitted = batch.keys.len() as u64;
                if admitted > 0 {
                    self.wal.append(&batch)?;
                    self.backend.push(batch);
                }
                self.stats.admitted += admitted;
                let depth_after = self.queue_depth() as u64;
                self.stats.queue_peak = self.stats.queue_peak.max(depth_after);
                self.m_queue_depth.set(depth_after as f64);
                self.update_coverage();
                Ok(OfferReply::Ack {
                    admitted,
                    shed: shed_records,
                    queue_depth: depth_after,
                })
            }
        }
    }

    /// The degraded-coverage SLO gauge: fraction of offered records
    /// admitted (1.0 while nothing was offered).
    fn update_coverage(&self) {
        let cov = if self.stats.offered == 0 {
            1.0
        } else {
            self.stats.admitted as f64 / self.stats.offered as f64
        };
        self.m_coverage.set(cov);
    }

    /// Runs every tick whose window is complete (a bucket at or past
    /// the window end has been fed). Call after each admitted batch;
    /// idle offers make this a no-op.
    pub fn pump(&mut self) -> Result<Vec<TickOutput>, DaemonError> {
        self.run_ready(false)
    }

    /// Graceful shutdown: drains every window with *any* fed data
    /// (the feed has ended, so trailing windows can no longer grow),
    /// snapshots, and compacts the WAL. The daemon can be killed and
    /// reopened after this with zero replay.
    pub fn term(&mut self) -> Result<Vec<TickOutput>, DaemonError> {
        let outs = self.run_ready(true)?;
        self.durable.checkpoint_now()?;
        self.backend.prune_below(self.next_tick_start());
        self.wal.compact(&self.backend.retained())?;
        self.m_queue_depth.set(self.queue_depth() as f64);
        Ok(outs)
    }

    fn run_ready(&mut self, draining: bool) -> Result<Vec<TickOutput>, DaemonError> {
        let mut outs = Vec::new();
        while let Some(max_fed) = self.backend.max_fed() {
            let start = self.next_tick_start();
            let ready = if draining {
                max_fed.0 >= start.0
            } else {
                max_fed.0 >= start.0 + self.tick_buckets
            };
            if !ready {
                break;
            }
            let out = self.durable.tick(&mut self.backend, start)?;
            self.watchdog(start);
            outs.push(out);
            self.prune();
        }
        if !outs.is_empty() {
            // Cleared per pump, not per tick: sustained overload can
            // stall the feed cursor (whole buckets refused), and the
            // catch-up pump then releases several ticks at once — all
            // of whose windows overlapped the overloaded stretch.
            self.overload_since_tick = false;
            self.m_queue_depth.set(self.queue_depth() as f64);
        }
        Ok(outs)
    }

    /// Overload watchdog: counts consecutive ticks whose inter-tick
    /// window saw shedding/backpressure, and fires the flight recorder
    /// once per sustained episode.
    fn watchdog(&mut self, tick_start: TimeBucket) {
        if self.overload_since_tick {
            self.overload_streak += 1;
            if self.overload_streak >= self.dcfg.overload_sustained_ticks && !self.overload_fired {
                self.overload_fired = true;
                let s = self.stats;
                self.durable.engine().fire_flight_trigger(
                    tick_start.start().secs(),
                    FlightTrigger::OverloadSustained,
                    format!(
                        "overloaded for {} consecutive tick(s): shed={} refused={} queue_peak={}",
                        self.overload_streak, s.shed_low_impact, s.shed_backpressure, s.queue_peak
                    ),
                );
            }
        } else {
            self.overload_streak = 0;
            self.overload_fired = false;
        }
    }

    /// Drops queue + WAL data already covered by a durable snapshot,
    /// keeping one extra snapshot period so a fallback recovery (the
    /// newest snapshot torn by a crash) can still replay.
    fn prune(&mut self) {
        let done = self.ticks_done();
        let covered = done - (done % self.snapshot_every);
        let Some(safe) = covered.checked_sub(self.snapshot_every) else {
            return;
        };
        let cutoff = self.backend.feed_start().0 + (safe as u32) * self.tick_buckets;
        if cutoff <= self.last_prune_cutoff {
            return;
        }
        self.last_prune_cutoff = cutoff;
        self.backend.prune_below(TimeBucket(cutoff));
        // Compaction failure is not fatal: the WAL is merely larger
        // than needed, and the next prune retries.
        let _ = self.wal.compact(&self.backend.retained());
    }
}
