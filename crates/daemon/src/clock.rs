//! Injectable pacing clock for the IO shell.
//!
//! The daemon's *decisions* (admission, shedding, tick boundaries) are
//! data-driven and never consult a clock — see [`crate::core`]. The IO
//! shell still needs to pace polling loops and honor retry-after
//! hints, and that is the only thing this trait provides. Tests inject
//! [`NoopClock`] so a full overload run completes in milliseconds and
//! never depends on scheduler timing.

/// A source of real (or fake) delay. Deliberately minimal: the shell
/// may *wait*, it may not *read the time* — reading would invite
/// clock-dependent behavior back into the service.
pub trait Clock {
    /// Blocks the caller for about `ms` milliseconds (may be a no-op
    /// in tests).
    fn sleep_ms(&self, ms: u64);
}

/// The production clock: actually sleeps.
pub struct WallClock;

impl Clock for WallClock {
    fn sleep_ms(&self, ms: u64) {
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }
}

/// The test clock: records how long it *would* have slept, returns
/// immediately.
#[derive(Default)]
pub struct NoopClock {
    slept_ms: std::sync::atomic::AtomicU64,
}

impl NoopClock {
    /// Total virtual sleep requested, milliseconds.
    pub fn slept_ms(&self) -> u64 {
        self.slept_ms.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl Clock for NoopClock {
    fn sleep_ms(&self, ms: u64) {
        self.slept_ms
            .fetch_add(ms, std::sync::atomic::Ordering::Relaxed);
    }
}
